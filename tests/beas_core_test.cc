#include <gtest/gtest.h>

#include <cmath>

#include "accuracy/measures.h"
#include "beas/beas.h"
#include "beas/chase.h"
#include "beas/tableau.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},    // phi2: each pid lives in 1 city
      {"friend", {"pid"}, {"fid"}, 12},    // phi1: bounded friend lists
  };
}

class BeasCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(30, 100, 5, 8, 400);
    schema_ = db_.Schema();
    BeasOptions options;
    options.constraints = SocialConstraints();
    auto built = Beas::Build(&db_, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = beas_->Parse(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Table Exact(const QueryPtr& q) {
    Evaluator ev(db_);
    auto t = ev.Eval(q);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
  DatabaseSchema schema_;
  std::unique_ptr<Beas> beas_;
};

// --- Tableau ---

TEST_F(BeasCoreTest, TableauUnifiesJoinVariables) {
  QueryPtr q = Q(
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95");
  auto tb = BuildTableau(q);
  ASSERT_TRUE(tb.ok()) << tb.status();
  EXPECT_EQ(tb->atoms.size(), 3u);
  // f.fid and p.pid share one variable; p.city and h.city share another.
  ASSERT_TRUE(tb->VarOf("f.fid").has_value());
  ASSERT_TRUE(tb->VarOf("p.pid").has_value());
  EXPECT_EQ(*tb->VarOf("f.fid"), *tb->VarOf("p.pid"));
  EXPECT_EQ(*tb->VarOf("p.city"), *tb->VarOf("h.city"));
  // f.pid is bound to the constant 0.
  ASSERT_TRUE(tb->VarOf("f.pid").has_value());
  auto c = tb->ConstOf(*tb->VarOf("f.pid"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, Value(int64_t{0}));
  EXPECT_FALSE(tb->unsatisfiable);
}

TEST_F(BeasCoreTest, TableauDetectsUnsatisfiable) {
  QueryPtr q = Q("select p.pid from person as p where p.pid = 1 and p.pid = 2");
  auto tb = BuildTableau(q);
  ASSERT_TRUE(tb.ok());
  EXPECT_TRUE(tb->unsatisfiable);
}

// --- Chase / plans ---

TEST_F(BeasCoreTest, ChaseUsesConstraintChainForExample1) {
  QueryPtr q = Q(
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95");
  auto plan = beas_->PlanOnly(q, 0.5);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->units.size(), 1u);
  const FetchPlan& fetch = plan->units[0].fetch;
  // friend and person atoms should be covered by the declared constraints.
  bool friend_by_constraint = false, person_by_constraint = false;
  for (const auto& op : fetch.ops) {
    if (op.family->relation == "friend" && op.family->is_constraint) {
      friend_by_constraint = true;
    }
    if (op.family->relation == "person" && op.family->is_constraint) {
      person_by_constraint = true;
    }
  }
  EXPECT_TRUE(friend_by_constraint) << plan->ToString();
  EXPECT_TRUE(person_by_constraint) << plan->ToString();
}

TEST_F(BeasCoreTest, PlanRespectsBudgetEstimate) {
  QueryPtr q = Q("select h.address, h.price from poi as h where h.price <= 60");
  for (double alpha : {0.02, 0.05, 0.2, 0.8}) {
    auto plan = beas_->PlanOnly(q, alpha);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_LE(plan->est_tariff, plan->budget + 1e-9) << "alpha=" << alpha;
  }
}

TEST_F(BeasCoreTest, EtaMonotoneInAlpha) {
  QueryPtr q = Q("select h.address, h.price from poi as h where h.price <= 60");
  double prev_eta = -1;
  for (double alpha : {0.01, 0.05, 0.1, 0.3, 0.9}) {
    auto plan = beas_->PlanOnly(q, alpha);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_GE(plan->eta, prev_eta - 1e-12) << "alpha=" << alpha;
    prev_eta = plan->eta;
  }
}

TEST_F(BeasCoreTest, BoundedlyEvaluableQueryIsExactUnderTinyAlpha) {
  // The paper's Q2: cities of my friends — answered via the constraints
  // alone, independent of |D|.
  QueryPtr q = Q(
      "select p.city from friend as f, person as p where f.pid = 7 and f.fid = p.pid");
  double alpha_exact = *beas_->AlphaExact(q);
  EXPECT_LT(alpha_exact, 0.2);
  auto answer = beas_->Answer(q, std::max(alpha_exact * 1.5, 0.05));
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->exact);
  EXPECT_DOUBLE_EQ(answer->eta, 1.0);
  Table exact = Exact(q);
  exact.SortRows();
  Table got = answer->table;
  got.SortRows();
  ASSERT_EQ(got.size(), exact.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got.row(i), exact.row(i));
}

TEST_F(BeasCoreTest, AnswerStaysWithinBudget) {
  QueryPtr q = Q(
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95");
  for (double alpha : {0.05, 0.1, 0.3}) {
    auto answer = beas_->Answer(q, alpha);
    ASSERT_TRUE(answer.ok()) << answer.status();
    uint64_t budget =
        static_cast<uint64_t>(alpha * static_cast<double>(beas_->db_size()));
    EXPECT_LE(answer->accessed, budget) << "alpha=" << alpha;
  }
}

TEST_F(BeasCoreTest, EtaIsValidLowerBoundOnRcAccuracy) {
  std::vector<std::string> queries = {
      "select h.address, h.price from poi as h where h.type = 'hotel' and h.price <= 95",
      "select h.price from poi as h where h.price <= 50",
      "select p.city from friend as f, person as p where f.pid = 3 and f.fid = p.pid",
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95",
  };
  for (const auto& sql : queries) {
    QueryPtr q = Q(sql);
    for (double alpha : {0.05, 0.2, 0.6}) {
      auto answer = beas_->Answer(q, alpha);
      ASSERT_TRUE(answer.ok()) << sql << " " << answer.status();
      auto report = RcMeasure(db_, q, answer->table);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_GE(report->accuracy + 1e-9, answer->eta)
          << sql << " alpha=" << alpha << " acc=" << report->accuracy
          << " eta=" << answer->eta;
    }
  }
}

TEST_F(BeasCoreTest, FullAlphaGivesExactAnswers) {
  QueryPtr q = Q(
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95");
  auto answer = beas_->Answer(q, 1.0);
  ASSERT_TRUE(answer.ok()) << answer.status();
  Table exact = Exact(q);
  if (answer->exact) {
    EXPECT_EQ(answer->table.size(), exact.size());
  }
  auto report = RcMeasure(db_, q, answer->table);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->accuracy, 0.99) << "alpha=1 should be (near) exact";
}

TEST_F(BeasCoreTest, DifferenceSoundness) {
  // Theorem 6(5): no returned tuple is an exact answer of the negated side.
  QueryPtr q = Q(
      "select p.city from person as p except "
      "select h.city from poi as h where h.type = 'hotel'");
  for (double alpha : {0.05, 0.2, 0.7}) {
    auto answer = beas_->Answer(q, alpha);
    ASSERT_TRUE(answer.ok()) << answer.status();
    QueryPtr negated = Q("select h.city from poi as h where h.type = 'hotel'");
    Table negated_exact = Exact(negated);
    for (const auto& row : answer->table.rows()) {
      EXPECT_FALSE(negated_exact.Contains(row)) << "alpha=" << alpha;
    }
  }
}

TEST_F(BeasCoreTest, UnsatisfiableQueryAnswersEmptyExactly) {
  QueryPtr q = Q("select p.pid from person as p where p.pid = 1 and p.pid = 2");
  auto answer = beas_->Answer(q, 0.1);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->table.size(), 0u);
  EXPECT_TRUE(answer->exact);
  EXPECT_EQ(answer->accessed, 0u);
}

TEST_F(BeasCoreTest, AggregateCountAnswer) {
  QueryPtr q = Q(
      "select h.city, count(h.address) as n from poi as h "
      "where h.type = 'hotel' group by h.city");
  auto answer = beas_->Answer(q, 0.6);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_GT(answer->table.size(), 0u);
  // Counts should be in the right ballpark of the exact ones.
  Table exact = Exact(q);
  std::map<int64_t, double> exact_counts;
  for (const auto& row : exact.rows()) exact_counts[row[0].as_int64()] = row[1].numeric();
  for (const auto& row : answer->table.rows()) {
    auto it = exact_counts.find(row[0].as_int64());
    ASSERT_NE(it, exact_counts.end());
    EXPECT_LE(row[1].numeric(), it->second * 2 + 8);
    EXPECT_GE(row[1].numeric(), 0.0);
  }
}

TEST_F(BeasCoreTest, AggregateMinRespectsEta) {
  QueryPtr q = Q(
      "select h.city, min(h.price) from poi as h where h.type = 'hotel' group by h.city");
  auto answer = beas_->Answer(q, 0.6);
  ASSERT_TRUE(answer.ok()) << answer.status();
  auto report = RcMeasure(db_, q, answer->table);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->accuracy + 1e-9, answer->eta);
}

TEST_F(BeasCoreTest, AlphaExactShrinksRelativeToFullScan) {
  // Bounded plans should need far less than the whole database.
  QueryPtr q = Q(
      "select p.city from friend as f, person as p where f.pid = 7 and f.fid = p.pid");
  double alpha_exact = *beas_->AlphaExact(q);
  EXPECT_GT(alpha_exact, 0.0);
  EXPECT_LT(alpha_exact, 0.1);
}

TEST_F(BeasCoreTest, PlanGenerationDoesNotTouchData) {
  QueryPtr q = Q("select h.address, h.price from poi as h where h.price <= 60");
  beas_->store().meter().StartQuery(0);
  uint64_t before = beas_->store().meter().accessed();
  auto plan = beas_->PlanOnly(q, 0.1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(beas_->store().meter().accessed(), before);
}

TEST_F(BeasCoreTest, InvalidAlphaRejected) {
  QueryPtr q = Q("select p.pid from person as p");
  EXPECT_FALSE(beas_->Answer(q, 0.0).ok());
  EXPECT_FALSE(beas_->Answer(q, 1.5).ok());
  EXPECT_FALSE(beas_->Answer(q, -0.1).ok());
}

TEST_F(BeasCoreTest, MaintenanceInsertVisibleToQueries) {
  QueryPtr q = Q("select p.city from friend as f, person as p "
                 "where f.pid = 55 and f.fid = p.pid");
  Tuple new_person{Value(int64_t{5555}), Value(int64_t{3}), Value(77.0)};
  ASSERT_TRUE(beas_->Insert("person", new_person).ok());
  Tuple new_friend{Value(int64_t{55}), Value(int64_t{5555})};
  ASSERT_TRUE(beas_->Insert("friend", new_friend).ok());
  auto answer = beas_->Answer(q, 0.3);
  ASSERT_TRUE(answer.ok()) << answer.status();
  bool found = false;
  for (const auto& row : answer->table.rows()) found |= row[0] == Value(int64_t{3});
  EXPECT_TRUE(found);
}

// --- Batched vs. scalar executor equivalence ---
//
// The vectorized executor (batched index fetches with per-batch meter
// charges, chunked guard filtering, batched xi_E evaluation) must produce
// BeasAnswers identical to the tuple-at-a-time fallback: same rows in the
// same order, same eta, same accessed count, same exact flag.

TEST_F(BeasCoreTest, BatchedExecutorMatchesScalarOnRandomizedQueries) {
  std::vector<std::string> queries = {
      "select h.address, h.price from poi as h where h.price <= 60",
      "select h.address, h.price from poi as h, friend as f, person as p "
      "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
      "h.type = 'hotel' and h.price <= 95",
      "select p.city from person as p except "
      "select h.city from poi as h where h.type = 'hotel'",
      "select h.city, count(h.address) as n from poi as h "
      "where h.type = 'hotel' group by h.city",
      "select h.city, min(h.price) from poi as h where h.type = 'hotel' "
      "group by h.city",
      "select h.city from poi as h where h.type = 'hotel' union "
      "select h2.city from poi as h2 where h2.type = 'museum'",
  };
  // Randomized variants: random pivots and thresholds over the social db.
  Rng rng(424242);
  for (int i = 0; i < 12; ++i) {
    queries.push_back(
        "select p.city from friend as f, person as p where f.pid = " +
        std::to_string(rng.Uniform(0, 30)) + " and f.fid = p.pid");
    queries.push_back("select h.address from poi as h where h.price <= " +
                      std::to_string(rng.Uniform(30, 190)));
  }

  EvalOptions scalar_opts;
  scalar_opts.vectorized = false;
  EvalOptions batched_opts;
  batched_opts.vectorized = true;
  for (const auto& sql : queries) {
    QueryPtr q = Q(sql);
    for (double alpha : {0.05, 0.2, 0.7}) {
      auto plan = beas_->PlanOnly(q, alpha);
      ASSERT_TRUE(plan.ok()) << sql << ": " << plan.status();
      uint64_t budget =
          static_cast<uint64_t>(alpha * static_cast<double>(beas_->db_size()));
      PlanExecutor scalar(&beas_->store(), scalar_opts);
      PlanExecutor batched(&beas_->store(), batched_opts);
      auto a = scalar.Execute(*plan, budget);
      auto b = batched.Execute(*plan, budget);
      ASSERT_EQ(a.ok(), b.ok()) << sql << " alpha=" << alpha << "\nscalar: "
                                << a.status() << "\nbatched: " << b.status();
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code()) << sql;
        continue;
      }
      // Answers: same rows in the same order.
      ASSERT_EQ(a->table.size(), b->table.size()) << sql << " alpha=" << alpha;
      for (size_t r = 0; r < a->table.size(); ++r) {
        EXPECT_EQ(a->table.row(r), b->table.row(r)) << sql << " row " << r;
      }
      // Accuracy bound and budget accounting.
      EXPECT_EQ(a->eta, b->eta) << sql << " alpha=" << alpha;
      EXPECT_EQ(a->accessed, b->accessed) << sql << " alpha=" << alpha;
      EXPECT_EQ(a->exact, b->exact) << sql << " alpha=" << alpha;
      EXPECT_EQ(a->d_prime, b->d_prime) << sql << " alpha=" << alpha;
    }
  }
}

TEST_F(BeasCoreTest, UnionQueryAnswered) {
  QueryPtr q = Q(
      "select h.city from poi as h where h.type = 'hotel' union "
      "select h2.city from poi as h2 where h2.type = 'museum'");
  auto answer = beas_->Answer(q, 0.8);
  ASSERT_TRUE(answer.ok()) << answer.status();
  auto report = RcMeasure(db_, q, answer->table);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->accuracy + 1e-9, answer->eta);
}

}  // namespace
}  // namespace beas
