// Tests for the network front-end (src/net/): session handshake,
// streaming cursor pages pinned byte-identical to in-process
// Beas::Answer (via the differential harness's canonical
// serialization), first-page delivery while the query is still
// evaluating, bounded cursor residency, per-query deadline cancellation
// with kDeadlineExceeded (before and mid-stream), session quotas and
// limits, and a stress case racing paging cursors against epoch-guarded
// Insert/Remove. The suite carries the ctest label `net` and runs in
// the ASan and TSan CI jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "beas/beas.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "testing/differential.h"
#include "testing/test_data.h"

namespace beas {
namespace {

using ::beas::testing::MakeSocialDb;
using ::beas::testing::SerializeAnswer;

// The join from Example 1: bounded under the social constraints, known
// to answer with multiple rows at alpha 0.2.
constexpr char kJoinSql[] =
    "select p.city from friend as f, person as p "
    "where f.pid = 7 and f.fid = p.pid";

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

void SpinUntil(const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "condition never held";
    std::this_thread::yield();
  }
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSocialDb(30, 100, 5, 8, 400);
    BeasOptions options;
    options.constraints = SocialConstraints();
    options.plan_cache.enabled = true;
    auto built = Beas::Build(&db_, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = beas_->Parse(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  // The canonical byte-exact rendering used across the differential
  // suites: equal strings mean bit-identical rows, eta, d', accessed,
  // and exactness.
  static std::string Canon(const Result<BeasAnswer>& answer) {
    return SerializeAnswer(answer, /*with_cache_counters=*/false);
  }

  static Result<NetClient> Dial(const NetServer& server,
                                QueryPriority priority = QueryPriority::kNormal) {
    return NetClient::Connect("127.0.0.1", server.port(), priority);
  }

  Database db_;
  std::unique_ptr<Beas> beas_;
};

TEST_F(NetTest, HandshakeAssignsDistinctSessionIds) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0) << "ephemeral port was not resolved";

  auto a = Dial(server);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = Dial(server, QueryPriority::kHigh);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_NE(a->session_id(), 0u);
  EXPECT_NE(b->session_id(), 0u);
  EXPECT_NE(a->session_id(), b->session_id());

  NetStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.sessions_active, 2u);
}

// The acceptance criterion of the front-end: a wire query's reassembled
// pages are byte-identical to the in-process Beas::Answer of the same
// query, at every page size (including pages of one row and one page
// covering everything).
TEST_F(NetTest, PagedCursorsMatchInProcessAnswersByteForByte) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  const std::vector<std::string> corpus = {
      kJoinSql,
      "select p.pid from person as p where p.city = 2",
      // A miss: the empty answer must still round-trip (one done page).
      "select p.city from person as p where p.pid = 987654",
  };
  // 0 = server default page; 100000 exceeds max_page_rows and clamps.
  const std::vector<uint32_t> page_sizes = {0, 1, 3, 100000};

  for (const std::string& sql : corpus) {
    auto direct = beas_->Answer(Q(sql), 0.2);
    ASSERT_TRUE(direct.ok()) << sql << ": " << direct.status();
    const std::string want = Canon(direct);
    for (uint32_t page_rows : page_sizes) {
      NetClient::QueryOptions opts;
      opts.page_rows = page_rows;
      auto remote = client->QueryAll(sql, 0.2, opts);
      ASSERT_TRUE(remote.ok()) << sql << " page=" << page_rows << ": "
                               << remote.status();
      EXPECT_EQ(Canon(Result<BeasAnswer>(remote->ToBeasAnswer())), want)
          << sql << " page=" << page_rows;
      if (page_rows == 1) {
        // One row per page; an empty answer still takes one (done) page.
        uint64_t rows = remote->table.size();
        EXPECT_EQ(remote->pages, rows > 0 ? rows : 1u) << sql;
      }
    }
  }
}

TEST_F(NetTest, DrainedCursorsReleaseAndUnknownCursorsFail) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  // Drain a cursor page by page; once the done page is served the
  // cursor is gone server-side. The row total is only announced in the
  // final page's trailer (the query was still running at kQueryOk time)
  // and must match what actually streamed.
  NetClient::QueryOptions one_row;
  one_row.page_rows = 1;
  auto cursor = client->Query(kJoinSql, 0.2, one_row);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  uint64_t streamed = 0;
  uint64_t announced = 0;
  for (;;) {
    auto page = client->Fetch(cursor->id);
    ASSERT_TRUE(page.ok()) << page.status();
    streamed += page->rows.size();
    if (page->done) {
      announced = page->total_rows;
      break;
    }
  }
  ASSERT_GT(streamed, 0u);
  EXPECT_EQ(streamed, announced);
  EXPECT_EQ(client->Fetch(cursor->id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->CloseCursor(cursor->id).code(), StatusCode::kNotFound);

  // An explicit close releases an unfinished cursor.
  auto open = client->Query(kJoinSql, 0.2, one_row);
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_TRUE(client->CloseCursor(open->id).ok());
  EXPECT_EQ(client->Fetch(open->id).status().code(), StatusCode::kNotFound);

  // Cursor ids the server never issued.
  EXPECT_EQ(client->Fetch(424242).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->CloseCursor(424242).code(), StatusCode::kNotFound);

  // Server-reported errors leave the session usable.
  auto after = client->QueryAll(kJoinSql, 0.2);
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST_F(NetTest, SessionQuotaBouncesQueriesButKeepsCursorsStreaming) {
  QueryService service(beas_.get(), {});
  NetServerOptions options;
  options.session_query_quota = 2;
  NetServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  NetClient::QueryOptions one_row;
  one_row.page_rows = 1;
  auto first = client->Query(kJoinSql, 0.2, one_row);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = client->QueryAll("select p.pid from person as p where p.city = 2", 0.2);
  ASSERT_TRUE(second.ok()) << second.status();

  // The third query exhausts the auth-style quota...
  auto third = client->QueryAll(kJoinSql, 0.2);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  // ...but the open cursor keeps streaming (fetches are not queries).
  auto page = client->Fetch(first->id);
  EXPECT_TRUE(page.ok()) << page.status();

  NetStats stats = server.stats();
  EXPECT_EQ(stats.quota_rejections, 1u);
  EXPECT_GE(stats.errors_sent, 1u);

  // The quota is per session: a fresh session starts from zero.
  auto other = Dial(server);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_TRUE(other->QueryAll(kJoinSql, 0.2).ok());
}

TEST_F(NetTest, SessionLimitRefusesAndRecovers) {
  QueryService service(beas_.get(), {});
  NetServerOptions options;
  options.max_sessions = 1;
  NetServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  auto first = Dial(server);
  ASSERT_TRUE(first.ok()) << first.status();
  auto refused = Dial(server);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().sessions_refused, 1u);

  // Closing the occupant frees the slot.
  first->Close();
  SpinUntil([&] { return server.stats().sessions_active == 0; });
  auto recovered = Dial(server);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->QueryAll(kJoinSql, 0.2).ok());
}

// The second acceptance criterion: a deliberately short deadline cancels
// a long query with kDeadlineExceeded, and the service keeps serving
// correct answers afterwards. The write lock makes it deterministic —
// the query is pinned behind maintenance until its deadline has
// provably expired, so the executor's entry check must fire.
TEST_F(NetTest, ShortDeadlineCancelsWithDeadlineExceeded) {
  ServiceOptions service_options;
  service_options.workers = 1;
  QueryService service(beas_.get(), service_options);
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto direct = beas_->Answer(Q(kJoinSql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();

  std::optional<EpochGuard::WriteLock> gate(service.epoch_guard().LockWrite());
  Result<RemoteAnswer> deadlined = Status::Internal("query never ran");
  std::thread session([&] {
    auto client = Dial(server);
    if (!client.ok()) {
      deadlined = client.status();
      return;
    }
    NetClient::QueryOptions opts;
    opts.deadline = std::chrono::milliseconds(30);
    deadlined = client->QueryAll(kJoinSql, 0.2, opts);
  });
  // Hold the gate until the submission's 30ms deadline has provably
  // expired (the clock only starts once the server received the query,
  // i.e. at or before the submit we spin on).
  SpinUntil([&] { return service.stats().submitted == 1; });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  gate.reset();
  session.join();

  ASSERT_FALSE(deadlined.ok());
  EXPECT_EQ(deadlined.status().code(), StatusCode::kDeadlineExceeded)
      << deadlined.status();

  // The cancellation is accounted at both layers...
  NetStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.service.deadline_exceeded, 1u);
  EXPECT_EQ(stats.service.failed, 1u);

  // ...and the service stays healthy: the same query without a deadline
  // answers byte-identically to the in-process reference.
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();
  auto after = client->QueryAll(kJoinSql, 0.2);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(Canon(Result<BeasAnswer>(after->ToBeasAnswer())), Canon(direct));
  EXPECT_EQ(server.stats().service.completed, 1u);
}

// Paging cursors materialize private answer copies, so they must stream
// correct bytes while epoch-guarded maintenance mutates the database
// under them. Every answer must match the reference of the epoch it ran
// under — pre- or post-mutation, never a torn state. Runs under TSan in
// CI (label `net`).
TEST_F(NetTest, CursorsStreamSafelyAgainstEpochGuardedMaintenance) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  QueryPtr q = Q(kJoinSql);
  const Tuple ghost{Value(int64_t{7777}), Value(int64_t{1}), Value(1.0)};
  // References for both database states, prepared through the service so
  // the epoch parity below lines up: even epochs (after the two prep
  // ops) are ghost-free, odd epochs contain the ghost.
  ASSERT_TRUE(service.Insert("person", ghost).ok());
  auto with_ghost = beas_->Answer(q, 0.2);
  ASSERT_TRUE(with_ghost.ok()) << with_ghost.status();
  ASSERT_TRUE(service.Remove("person", ghost).ok());
  auto without_ghost = beas_->Answer(q, 0.2);
  ASSERT_TRUE(without_ghost.ok()) << without_ghost.status();
  const std::string canon_without = Canon(without_ghost);
  const std::string canon_with = Canon(with_ghost);
  const uint64_t base_epoch = service.stats().epoch;

  constexpr int kSessions = 4;
  constexpr int kQueriesPerSession = 6;
  constexpr int kMaintenanceOps = 20;  // even: ends ghost-free

  std::atomic<int> mismatches{0};
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    sessions.emplace_back([&] {
      auto client = Dial(server);
      if (!client.ok()) {
        ADD_FAILURE() << client.status();
        ++mismatches;
        return;
      }
      NetClient::QueryOptions one_row;
      one_row.page_rows = 1;  // worst case: every row is its own frame
      for (int i = 0; i < kQueriesPerSession; ++i) {
        auto remote = client->QueryAll(kJoinSql, 0.2, one_row);
        if (!remote.ok()) {
          ADD_FAILURE() << remote.status();
          ++mismatches;
          continue;
        }
        const std::string& want = (remote->epoch - base_epoch) % 2 == 0
                                      ? canon_without
                                      : canon_with;
        if (Canon(Result<BeasAnswer>(remote->ToBeasAnswer())) != want) {
          ADD_FAILURE() << "epoch " << remote->epoch
                        << " answer diverged from its state's reference";
          ++mismatches;
        }
      }
    });
  }
  std::thread maintenance([&] {
    for (int i = 0; i < kMaintenanceOps; ++i) {
      Status st = i % 2 == 0 ? service.Insert("person", ghost)
                             : service.Remove("person", ghost);
      EXPECT_TRUE(st.ok()) << st;
    }
  });
  for (std::thread& t : sessions) t.join();
  maintenance.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.stats().maintenance_ops,
            static_cast<uint64_t>(kMaintenanceOps) + 2);
}

// Regression for the QueryAll page_rows knob: an answer spanning many
// pages reassembles byte-identically, with exactly ceil(rows/page_rows)
// kPage frames and a trailer that matches the streamed count.
TEST_F(NetTest, MultiPageQueryAllRoundTripsByteIdentically) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  const std::string sql = "select p.pid from person as p where p.city = 2";
  auto direct = beas_->Answer(Q(sql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  const uint64_t rows = direct->table.size();
  ASSERT_GE(rows, 6u) << "test data no longer yields a multi-page answer";

  NetClient::QueryOptions opts;
  opts.page_rows = 3;
  auto remote = client->QueryAll(sql, 0.2, opts);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_GT(remote->pages, 1u);
  EXPECT_EQ(remote->pages, (rows + 2) / 3);
  EXPECT_EQ(Canon(Result<BeasAnswer>(remote->ToBeasAnswer())), Canon(direct));
}

// The tentpole acceptance criterion: a cursor's first page is served
// while its query is still evaluating. With a 2-page queue and one-row
// pages, an answer bigger than the queue provably cannot finish before
// the client starts draining — so observing in_flight == 1 after the
// first page proves streaming, and the residency counters must show
// bytes buffered now and a peak bounded by the queue, all drained back
// to zero at the end.
TEST_F(NetTest, FirstPageArrivesWhileQueryStillRunning) {
  QueryService service(beas_.get(), {});
  NetServerOptions options;
  options.cursor_queue_pages = 2;
  NetServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  const std::string sql = "select p.pid from person as p where p.city = 2";
  auto direct = beas_->Answer(Q(sql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_GE(direct->table.size(), 6u)
      << "test data no longer overflows the 2-page stream queue";

  NetClient::QueryOptions one_row;
  one_row.page_rows = 1;
  auto cursor = client->Query(sql, 0.2, one_row);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  auto first = client->Fetch(cursor->id);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->rows.size(), 1u);
  EXPECT_FALSE(first->done);
  // The producer is parked in backpressure: evaluation has not finished.
  EXPECT_EQ(service.stats().in_flight, 1u)
      << "first page should arrive before the query completes";
  NetStats mid = server.stats();
  EXPECT_GT(mid.cursor_resident_bytes, 0u);
  EXPECT_GT(mid.cursor_resident_peak_bytes, 0u);

  uint64_t streamed = first->rows.size();
  for (;;) {
    auto page = client->Fetch(cursor->id);
    ASSERT_TRUE(page.ok()) << page.status();
    streamed += page->rows.size();
    if (page->done) {
      EXPECT_EQ(page->total_rows, direct->table.size());
      break;
    }
  }
  EXPECT_EQ(streamed, direct->table.size());
  NetStats after = server.stats();
  EXPECT_EQ(after.cursor_resident_bytes, 0u) << "drained pages must decrement";
  EXPECT_GE(after.cursor_resident_peak_bytes, mid.cursor_resident_peak_bytes);
  EXPECT_EQ(after.session_peak_resident_bytes, after.cursor_resident_peak_bytes);
}

// Mid-stream deadline cancellation: pages committed before the deadline
// ship normally; once the deadline expires with the producer parked in
// backpressure, the stream terminates with a clean kDeadlineExceeded on
// the next fetch (no worker is held hostage) and the session stays
// usable.
TEST_F(NetTest, MidStreamDeadlineDeliversPagesThenDeadlineExceeded) {
  QueryService service(beas_.get(), {});
  NetServerOptions options;
  options.cursor_queue_pages = 2;
  NetServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  const std::string sql = "select p.pid from person as p where p.city = 2";
  auto direct = beas_->Answer(Q(sql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_GE(direct->table.size(), 6u)
      << "test data no longer overflows the 2-page stream queue";

  NetClient::QueryOptions opts;
  opts.page_rows = 1;
  opts.deadline = std::chrono::milliseconds(300);
  auto cursor = client->Query(sql, 0.2, opts);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  auto first = client->Fetch(cursor->id);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->rows.size(), 1u);
  EXPECT_FALSE(first->done);

  // Stall past the deadline. The producer cannot finish (queue of 2 <
  // remaining pages), so it must cut over to kDeadlineExceeded instead
  // of waiting on this client forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  Status terminal = Status::OK();
  for (;;) {
    auto page = client->Fetch(cursor->id);
    if (!page.ok()) {
      terminal = page.status();
      break;
    }
    ASSERT_FALSE(page->done) << "a deadlined stream must not finish cleanly";
  }
  EXPECT_EQ(terminal.code(), StatusCode::kDeadlineExceeded) << terminal;
  // The cursor is gone, the failure is accounted at both layers...
  EXPECT_EQ(client->Fetch(cursor->id).status().code(), StatusCode::kNotFound);
  NetStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.service.deadline_exceeded, 1u);
  EXPECT_EQ(stats.service.failed, 1u);
  EXPECT_EQ(stats.cursor_resident_bytes, 0u)
      << "a failed stream must drop its queued pages";

  // ...and the session still answers the same query byte-identically.
  auto after = client->QueryAll(sql, 0.2);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(Canon(Result<BeasAnswer>(after->ToBeasAnswer())), Canon(direct));
}

TEST_F(NetTest, StatsCountTrafficAndFoldInServiceSnapshot) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto client = Dial(server);
  ASSERT_TRUE(client.ok()) << client.status();

  auto a = client->QueryAll(kJoinSql, 0.2);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = client->QueryAll("select p.pid from person as p where p.city = 2", 0.2);
  ASSERT_TRUE(b.ok()) << b.status();

  NetStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_active, 1u);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GE(stats.pages_sent, 2u);
  EXPECT_EQ(stats.rows_sent, a->table.size() + b->table.size());
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_GE(stats.request_p50_ms, 0.0);
  EXPECT_GE(stats.request_p95_ms, stats.request_p50_ms);
  // The folded service snapshot sees the same two queries.
  EXPECT_EQ(stats.service.submitted, 2u);
  EXPECT_EQ(stats.service.completed, 2u);
  EXPECT_EQ(stats.service.failed, 0u);
}

}  // namespace
}  // namespace beas
