// Planner-internals tests: chAT behaviour, exact-plan statistics,
// fetch-plan accounting, and the infinite-resolution coverage policy.

#include <gtest/gtest.h>

#include <cmath>

#include "beas/beas.h"
#include "ra/parser.h"
#include "testing/test_data.h"
#include "workload/tpch.h"

namespace beas {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakeTpch(0.001, 55);
    BeasOptions options;
    options.constraints = ds_.constraints;
    auto built = Beas::Build(&ds_.db, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
    schema_ = ds_.db.Schema();
  }

  QueryPtr Q(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Dataset ds_;
  DatabaseSchema schema_;
  std::unique_ptr<Beas> beas_;
};

TEST_F(PlannerTest, ChatSpendsMoreBudgetAtHigherAlpha) {
  QueryPtr q = Q("select l.l_quantity, l.l_extendedprice from lineitem as l "
                 "where l.l_quantity <= 30 and l.l_shipdate >= 500");
  auto lo = beas_->PlanOnly(q, 0.01);
  auto hi = beas_->PlanOnly(q, 0.3);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GE(hi->est_tariff, lo->est_tariff);
  EXPECT_LE(lo->est_tariff, lo->budget + 1e-9);
  EXPECT_LE(hi->est_tariff, hi->budget + 1e-9);
  // chAT must actually raise levels when budget allows.
  auto max_level = [](const BeasPlan& p) {
    int k = 0;
    for (const auto& u : p.units) {
      for (const auto& op : u.fetch.ops) k = std::max(k, op.level);
    }
    return k;
  };
  EXPECT_GT(max_level(*hi), max_level(*lo));
}

TEST_F(PlannerTest, DisablingChatKeepsLevelZero) {
  BeasOptions options;
  options.constraints = ds_.constraints;
  options.planner.optimize_levels = false;
  Dataset copy = MakeTpch(0.001, 55);
  auto ablated = Beas::Build(&copy.db, options);
  ASSERT_TRUE(ablated.ok());
  auto q = ParseSql(copy.db.Schema(),
                    "select l.l_quantity from lineitem as l where l.l_quantity <= 30");
  ASSERT_TRUE(q.ok());
  auto plan = (*ablated)->PlanOnly(*q, 0.3);
  ASSERT_TRUE(plan.ok());
  for (const auto& u : plan->units) {
    for (const auto& op : u.fetch.ops) {
      if (!op.family->is_constraint) EXPECT_EQ(op.level, 0);
    }
  }
}

TEST_F(PlannerTest, ExactPlanStatsClassifiesBoundedEvaluability) {
  // Point lookup through key constraints: boundedly evaluable.
  QueryPtr bounded = Q(
      "select l.l_quantity from lineitem as l, orders as o "
      "where l.l_orderkey = o.o_orderkey and o.o_orderkey = 5");
  auto s1 = beas_->ExactPlanStats(bounded);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE(s1->constraints_only);
  EXPECT_LT(s1->tariff, 100);

  // Range scan: needs template enumeration, not bounded.
  QueryPtr unbounded = Q("select l.l_quantity from lineitem as l "
                         "where l.l_quantity <= 30");
  auto s2 = beas_->ExactPlanStats(unbounded);
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE(s2->constraints_only);
  EXPECT_GT(s2->tariff, s1->tariff);
}

TEST_F(PlannerTest, PlanToStringMentionsFetches) {
  QueryPtr q = Q(
      "select l.l_quantity from lineitem as l, orders as o "
      "where l.l_orderkey = o.o_orderkey and o.o_orderkey = 5");
  auto plan = beas_->PlanOnly(q, 0.1);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("fetch"), std::string::npos);
  EXPECT_NE(text.find("eta="), std::string::npos);
}

TEST_F(PlannerTest, InfiniteResolutionSelectionZeroesEta) {
  // A selection on a categorical attribute fetched through a level-0
  // universal template cannot claim coverage: at a budget that cannot
  // raise the template to a uniform frontier, eta must be ~0, yet at a
  // generous budget the planner recovers a positive eta.
  Database db = testing::MakeNumericDb(5, 512);
  auto built = Beas::Build(&db, {});
  ASSERT_TRUE(built.ok());
  auto q = ParseSql(db.Schema(), "select r.a from r as r where r.c = 3");
  ASSERT_TRUE(q.ok());
  auto tight = (*built)->PlanOnly(*q, 0.01);  // budget 5: level ~2
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(tight->eta, 1e-6);
  auto generous = (*built)->PlanOnly(*q, 0.9);
  ASSERT_TRUE(generous.ok());
  EXPECT_GT(generous->eta, 0.01);
}

TEST_F(PlannerTest, EstimatedTariffDominatesActualAccesses) {
  // The tariff is a worst-case estimate from the N constants: actual
  // metered accesses never exceed it (for plans without self-pruning).
  QueryPtr q = Q(
      "select l.l_quantity from lineitem as l, orders as o "
      "where l.l_orderkey = o.o_orderkey and o.o_orderstatus = 'F' "
      "and l.l_quantity <= 25");
  for (double alpha : {0.05, 0.2}) {
    auto plan = beas_->PlanOnly(q, alpha);
    ASSERT_TRUE(plan.ok());
    auto answer = beas_->Answer(q, alpha);
    ASSERT_TRUE(answer.ok());
    EXPECT_LE(answer->accessed, static_cast<uint64_t>(plan->est_tariff) + 1);
  }
}

TEST_F(PlannerTest, UnionOfUnitsPlansBothSides) {
  QueryPtr q = Q(
      "select o.o_totalprice from orders as o where o.o_orderstatus = 'F' union "
      "select o2.o_totalprice from orders as o2 where o2.o_orderstatus = 'O'");
  auto plan = beas_->PlanOnly(q, 0.1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->units.size(), 2u);
  EXPECT_GT(plan->units[0].fetch.ops.size(), 0u);
  EXPECT_GT(plan->units[1].fetch.ops.size(), 0u);
}

}  // namespace
}  // namespace beas
