// Tests for the concurrent query service (src/service/): epoch-guard
// semantics, session API (Submit/Wait tickets, bounded admission),
// N-session determinism (concurrent answers bit-identical to solo runs),
// and the Answer-vs-Insert/Remove race — every query must observe either
// the pre- or the post-mutation database, never a torn state. The suite
// carries the ctest labels `service` and runs in the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "beas/beas.h"
#include "service/epoch_guard.h"
#include "service/query_service.h"
#include "testing/test_data.h"

namespace beas {
namespace {

using ::beas::testing::MakeSocialDb;

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

void SpinUntil(const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "condition never held";
    std::this_thread::yield();
  }
}

// --- EpochGuard ---

TEST(EpochGuardTest, EpochCountsCompletedWrites) {
  EpochGuard g;
  EXPECT_EQ(g.epoch(), 0u);
  { EpochGuard::WriteLock w = g.LockWrite(); }
  EXPECT_EQ(g.epoch(), 1u);
  { EpochGuard::WriteLock w = g.LockWrite(); }
  EXPECT_EQ(g.epoch(), 2u);
}

TEST(EpochGuardTest, ReadersShareAndObserveEpoch) {
  EpochGuard g;
  { EpochGuard::WriteLock w = g.LockWrite(); }
  EpochGuard::ReadLock a = g.LockRead();
  EpochGuard::ReadLock b = g.LockRead();  // concurrent with a: no deadlock
  EXPECT_EQ(a.epoch(), 1u);
  EXPECT_EQ(b.epoch(), 1u);
  EXPECT_EQ(g.active_readers(), 2);
}

TEST(EpochGuardTest, WriterDrainsActiveReaders) {
  EpochGuard g;
  std::optional<EpochGuard::ReadLock> reader(g.LockRead());
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    EpochGuard::WriteLock w = g.LockWrite();
    wrote.store(true);
  });
  SpinUntil([&] { return g.waiting_writers() == 1; });
  EXPECT_FALSE(wrote.load()) << "writer entered while a reader was active";
  reader.reset();
  writer.join();
  EXPECT_TRUE(wrote.load());
  EXPECT_EQ(g.epoch(), 1u);
}

TEST(EpochGuardTest, WaitingWriterBeatsNewReaders) {
  EpochGuard g;
  std::optional<EpochGuard::ReadLock> reader(g.LockRead());
  std::thread writer([&] { EpochGuard::WriteLock w = g.LockWrite(); });
  SpinUntil([&] { return g.waiting_writers() == 1; });
  // A reader arriving behind a waiting writer must enter only after the
  // write completes: writer preference, observable through its epoch.
  std::thread late_reader([&] {
    EpochGuard::ReadLock r = g.LockRead();
    EXPECT_EQ(r.epoch(), 1u) << "late reader overtook the waiting writer";
  });
  reader.reset();
  writer.join();
  late_reader.join();
}

// --- QueryService over the Example 1 social database ---

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSocialDb(30, 100, 5, 8, 400);
    BeasOptions options;
    options.constraints = SocialConstraints();
    options.plan_cache.enabled = true;
    auto built = Beas::Build(&db_, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = beas_->Parse(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  static void ExpectSameAnswer(const BeasAnswer& got, const BeasAnswer& want,
                               const std::string& label) {
    EXPECT_EQ(got.eta, want.eta) << label;
    EXPECT_EQ(got.accessed, want.accessed) << label;
    ASSERT_EQ(got.table.size(), want.table.size()) << label;
    for (size_t i = 0; i < got.table.size(); ++i) {
      EXPECT_EQ(got.table.row(i), want.table.row(i)) << label << " row " << i;
    }
  }

  Database db_;
  std::unique_ptr<Beas> beas_;
};

TEST_F(QueryServiceTest, SubmitWaitMatchesDirectAnswer) {
  QueryPtr q = Q("select p.city from friend as f, person as p "
                 "where f.pid = 7 and f.fid = p.pid");
  auto direct = beas_->Answer(q, 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();

  QueryService service(beas_.get(), {});
  auto ticket = service.Submit(q, 0.2);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto served = service.Wait(*ticket);
  ASSERT_TRUE(served.ok()) << served.status();
  ExpectSameAnswer(served->answer, *direct, "served vs direct");
  EXPECT_EQ(served->epoch, 0u);
  EXPECT_GE(served->latency_ms, 0.0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(QueryServiceTest, TicketsRedeemOnceAndUnknownTicketsFail) {
  QueryService service(beas_.get(), {});
  QueryPtr q = Q("select p.pid from person as p where p.city = 2");
  auto ticket = service.Submit(q, 0.2);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(service.Wait(*ticket).ok());
  EXPECT_EQ(service.Wait(*ticket).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Wait(QueryTicket{12345}).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, FailedQueriesReportTheirStatus) {
  QueryService service(beas_.get(), {});
  // alpha outside (0, 1] fails in planning; the failure must surface
  // through Wait, not poison the service.
  QueryPtr q = Q("select p.pid from person as p");
  auto served = service.Answer(q, -1.0);
  EXPECT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kInvalidArgument);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(QueryServiceTest, BoundedAdmissionRejectsDeterministically) {
  ServiceOptions options;
  options.workers = 1;
  options.max_queue = 2;
  QueryService service(beas_.get(), options);
  QueryPtr q = Q("select p.pid from person as p where p.city = 1");

  std::vector<QueryTicket> tickets;
  {
    // Holding the maintenance gate blocks the (single) worker at the
    // epoch guard, making the admission state fully deterministic.
    std::optional<EpochGuard::WriteLock> gate(service.epoch_guard().LockWrite());

    auto first = service.Submit(q, 0.2);
    ASSERT_TRUE(first.ok());
    tickets.push_back(*first);
    // Wait for the worker to pick the first query up (it then blocks at
    // the guard), leaving the whole queue capacity for the next two.
    SpinUntil([&] { return service.stats().in_flight == 1; });

    for (int i = 0; i < 2; ++i) {
      auto t = service.Submit(q, 0.2);
      ASSERT_TRUE(t.ok()) << "admission " << i << ": " << t.status();
      tickets.push_back(*t);
    }
    auto rejected = service.Submit(q, 0.2);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(service.stats().rejected, 1u);
    gate.reset();  // release maintenance; the backlog drains
  }
  for (QueryTicket t : tickets) {
    auto served = service.Wait(t);
    EXPECT_TRUE(served.ok()) << served.status();
    EXPECT_EQ(served->epoch, 1u);  // all ran after the (empty) write
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST_F(QueryServiceTest, ConcurrentSessionsAreDeterministic) {
  // Solo reference answers, computed before any service traffic.
  std::vector<std::string> sqls = {
      "select p.city from friend as f, person as p where f.pid = 7 and f.fid = p.pid",
      "select p.pid from person as p where p.city = 2",
      "select h.address, h.price from poi as h where h.type = 'hotel' and h.price <= 90",
      "select f.pid, count(f.fid) from friend as f group by f.pid",
      "select p.pid from person as p where p.city = 0 union "
      "select p.pid from person as p where p.city = 1",
      "select h.address from poi as h where h.city = 3",
  };
  std::vector<QueryPtr> queries;
  std::vector<BeasAnswer> solo;
  for (const auto& sql : sqls) {
    QueryPtr q = Q(sql);
    auto answer = beas_->Answer(q, 0.25);
    ASSERT_TRUE(answer.ok()) << sql << ": " << answer.status();
    queries.push_back(q);
    solo.push_back(std::move(*answer));
  }

  ServiceOptions options;
  options.workers = 4;
  QueryService service(beas_.get(), options);

  // 6 sessions x 8 rounds, all in flight together; every answer must be
  // bit-identical to the solo run (per-query meters, shared indices).
  constexpr int kRounds = 8;
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < queries.size(); ++s) {
    sessions.emplace_back([&, s] {
      for (int r = 0; r < kRounds; ++r) {
        auto served = service.Answer(queries[s], 0.25);
        ASSERT_TRUE(served.ok()) << sqls[s] << ": " << served.status();
        ExpectSameAnswer(served->answer, solo[s], sqls[s]);
        EXPECT_EQ(served->epoch, 0u);
      }
    });
  }
  for (auto& t : sessions) t.join();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, queries.size() * kRounds);
  EXPECT_EQ(stats.completed, queries.size() * kRounds);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.p95_ms + 1.0, stats.p50_ms);  // percentiles populated, ordered
}

TEST_F(QueryServiceTest, ConcurrentSessionsShareTheParallelFetchPool) {
  // Same determinism bar with intra-query fetch parallelism on: sessions
  // share the executor's worker pool without corrupting each other.
  Database db = MakeSocialDb(31, 120, 5, 8, 300);
  BeasOptions options;
  options.constraints = SocialConstraints();
  options.eval.fetch_threads = 3;
  auto built = Beas::Build(&db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> beas = std::move(*built);

  QueryPtr q = *beas->Parse(
      "select p.city from friend as f, person as p where f.pid = 3 and f.fid = p.pid");
  auto solo = beas->Answer(q, 0.3);
  ASSERT_TRUE(solo.ok()) << solo.status();

  QueryService service(beas.get(), {});
  std::vector<std::thread> sessions;
  for (int s = 0; s < 4; ++s) {
    sessions.emplace_back([&] {
      for (int r = 0; r < 6; ++r) {
        auto served = service.Answer(q, 0.3);
        ASSERT_TRUE(served.ok()) << served.status();
        ExpectSameAnswer(served->answer, *solo, "parallel-fetch session");
      }
    });
  }
  for (auto& t : sessions) t.join();
}

TEST_F(QueryServiceTest, MaintenanceDrainsAndQueriesSeeOneEpoch) {
  QueryService service(beas_.get(), {});
  // pid 5000 does not exist in the generated database; the stress
  // alternates Insert/Remove of this row, so at epoch e the row exists
  // iff e is odd — each answer's row count must match its epoch exactly.
  const Tuple kRow{Value(int64_t{5000}), Value(int64_t{3}), Value(500.0)};
  QueryPtr probe = Q("select p.city from person as p where p.pid = 5000");

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 24;
  constexpr int kMutations = 16;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int s = 0; s < kReaders; ++s) {
    readers.emplace_back([&] {
      for (int r = 0; r < kQueriesPerReader; ++r) {
        auto served = service.Answer(probe, 0.3);
        ASSERT_TRUE(served.ok()) << served.status();
        size_t want_rows = served->epoch % 2 == 1 ? 1u : 0u;
        ASSERT_EQ(served->answer.table.size(), want_rows)
            << "torn read: epoch " << served->epoch << " but "
            << served->answer.table.size() << " rows";
        if (want_rows == 1) {
          EXPECT_EQ(served->answer.table.row(0), Tuple{Value(int64_t{3})});
        }
      }
    });
  }
  std::thread maintenance([&] {
    for (int m = 0; m < kMutations && !stop.load(); ++m) {
      Status st = m % 2 == 0 ? service.Insert("person", kRow)
                             : service.Remove("person", kRow);
      ASSERT_TRUE(st.ok()) << st;
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  maintenance.join();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kReaders * kQueriesPerReader));
  EXPECT_EQ(stats.maintenance_ops, stats.epoch);
  EXPECT_LE(stats.epoch, static_cast<uint64_t>(kMutations));

  // The database must end in a consistent state: epoch parity decides
  // whether the row is present, and a final solo query agrees.
  auto final_answer = beas_->Answer(probe, 0.3);
  ASSERT_TRUE(final_answer.ok());
  EXPECT_EQ(final_answer->table.size(), stats.epoch % 2 == 1 ? 1u : 0u);
}

TEST_F(QueryServiceTest, MorselEvalSessionsRaceMaintenanceWithoutTearing) {
  // The PR's TSan stress point: sessions whose queries fan out into
  // unit and window morsels (eval_threads > 1) race epoch-guarded
  // Insert/Remove, with the per-query thread budget splitting the pool
  // under load. Same epoch-parity oracle as the drain test above: the
  // probe row exists iff the observed epoch is odd, so any torn read —
  // or any morsel observing a mid-mutation index — trips the assert.
  Database db = MakeSocialDb(30, 100, 5, 8, 400);
  BeasOptions options;
  options.constraints = SocialConstraints();
  options.eval.eval_threads = 3;
  options.eval.fetch_threads = 2;
  auto built = Beas::Build(&db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> beas = std::move(*built);

  ServiceOptions sopts;
  sopts.workers = 4;
  sopts.eval_thread_budget = 6;  // exercises the per-query clamp path
  QueryService service(beas.get(), sopts);

  const Tuple kRow{Value(int64_t{5000}), Value(int64_t{3}), Value(500.0)};
  // A union probe: its plan has two kSpc units, so eval_threads > 1
  // actually fans unit morsels out while maintenance races.
  QueryPtr probe = *beas->Parse(
      "select p.city from person as p where p.pid = 5000 union "
      "select p.city from person as p where p.pid = 5001");

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 20;
  constexpr int kMutations = 14;
  std::vector<std::thread> readers;
  for (int s = 0; s < kReaders; ++s) {
    readers.emplace_back([&] {
      for (int r = 0; r < kQueriesPerReader; ++r) {
        auto served = service.Answer(probe, 0.3);
        ASSERT_TRUE(served.ok()) << served.status();
        size_t want_rows = served->epoch % 2 == 1 ? 1u : 0u;
        ASSERT_EQ(served->answer.table.size(), want_rows)
            << "torn morsel read: epoch " << served->epoch << " but "
            << served->answer.table.size() << " rows";
        if (want_rows == 1) {
          EXPECT_EQ(served->answer.table.row(0), Tuple{Value(int64_t{3})});
        }
      }
    });
  }
  std::thread maintenance([&] {
    for (int m = 0; m < kMutations; ++m) {
      Status st = m % 2 == 0 ? service.Insert("person", kRow)
                             : service.Remove("person", kRow);
      ASSERT_TRUE(st.ok()) << st;
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  maintenance.join();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kReaders * kQueriesPerReader));
  EXPECT_EQ(stats.maintenance_ops, stats.epoch);

  // Final state agrees with the parity oracle on a solo morsel run.
  auto final_answer = beas->Answer(probe, 0.3);
  ASSERT_TRUE(final_answer.ok());
  EXPECT_EQ(final_answer->table.size(), stats.epoch % 2 == 1 ? 1u : 0u);
}

TEST_F(QueryServiceTest, FailedMaintenanceDoesNotAdvanceTheEpoch) {
  QueryService service(beas_.get(), {});
  const Tuple ghost{Value(int64_t{7777}), Value(int64_t{1}), Value(1.0)};
  // Removing a row that does not exist fails before any mutation: the
  // database version is unchanged, so the epoch must not move and the
  // op must not count as served maintenance.
  EXPECT_EQ(service.Remove("person", ghost).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Remove("no_such_relation", ghost).code(), StatusCode::kNotFound);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.epoch, 0u);
  EXPECT_EQ(stats.maintenance_ops, 0u);

  // A successful mutation still bumps it.
  ASSERT_TRUE(service.Insert("person", ghost).ok());
  stats = service.stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.maintenance_ops, 1u);
}

TEST(NearestRankPercentileTest, UsesCeilNearestRank) {
  // n=10 is the regression case: the old floor(p * (n - 1)) index put
  // p95 at the 9th smallest sample; ceil nearest-rank selects the 10th.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(i);
  EXPECT_EQ(NearestRankPercentile(ten, 0.95), 10.0);
  EXPECT_EQ(NearestRankPercentile(ten, 0.50), 5.0);

  // n=20, handed over unsorted (selection must not assume order).
  std::vector<double> twenty;
  for (int i = 20; i >= 1; --i) twenty.push_back(i);
  EXPECT_EQ(NearestRankPercentile(twenty, 0.50), 10.0);
  EXPECT_EQ(NearestRankPercentile(twenty, 0.95), 19.0);
  EXPECT_EQ(NearestRankPercentile(twenty, 1.00), 20.0);
  // The rank clamps into [1, n]: tiny p still selects the minimum.
  EXPECT_EQ(NearestRankPercentile(twenty, 0.001), 1.0);

  EXPECT_EQ(NearestRankPercentile({42.0}, 0.95), 42.0);
  EXPECT_EQ(NearestRankPercentile({}, 0.95), 0.0);
}

TEST_F(QueryServiceTest, WaitForTimesOutWithoutConsumingTheTicket) {
  ServiceOptions options;
  options.workers = 1;
  QueryService service(beas_.get(), options);
  // Pin the sole worker behind the maintenance gate so the query cannot
  // finish while we probe the timeout path.
  std::optional<EpochGuard::WriteLock> gate(service.epoch_guard().LockWrite());
  auto ticket = service.Submit(Q("select p.pid from person as p where p.city = 2"), 0.2);
  ASSERT_TRUE(ticket.ok()) << ticket.status();

  auto timed_out = service.WaitFor(*ticket, std::chrono::milliseconds(20));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  // The timeout did NOT consume the ticket: a second WaitFor still finds
  // it (and times out again while the gate is held).
  auto again = service.WaitFor(*ticket, std::chrono::milliseconds(20));
  EXPECT_EQ(again.status().code(), StatusCode::kDeadlineExceeded);

  gate.reset();
  auto served = service.Wait(*ticket);
  ASSERT_TRUE(served.ok()) << served.status();
  // Redeeming consumed it: the usual once-only ticket contract resumes.
  EXPECT_EQ(service.Wait(*ticket).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, ExpiredDeadlineFailsFastAndDeterministically) {
  QueryService service(beas_.get(), {});
  QueryPtr q = Q("select p.city from friend as f, person as p "
                 "where f.pid = 7 and f.fid = p.pid");
  SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);

  // An already-expired deadline fails before planning — no meter, cache,
  // or index traffic — so the outcome is bitwise repeatable.
  std::vector<std::string> messages;
  for (int i = 0; i < 2; ++i) {
    auto ticket = service.Submit(q, 0.2, opts);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    auto served = service.Wait(*ticket);
    ASSERT_FALSE(served.ok());
    EXPECT_EQ(served.status().code(), StatusCode::kDeadlineExceeded);
    messages.push_back(served.status().ToString());
  }
  EXPECT_EQ(messages[0], messages[1]);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.deadline_exceeded, 2u);
  EXPECT_EQ(stats.completed, 0u);

  // The service stays healthy: the same query without a deadline answers.
  auto answer = service.Answer(q, 0.2);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST_F(QueryServiceTest, ReservedSlotsKeepHeadroomForHighPriority) {
  ServiceOptions options;
  options.workers = 1;
  options.max_queue = 3;
  options.reserved_slots = 1;
  QueryService service(beas_.get(), options);
  QueryPtr q = Q("select p.pid from person as p where p.city = 2");

  // Pin the worker on the first query so subsequent submissions stay
  // queued deterministically.
  std::optional<EpochGuard::WriteLock> gate(service.epoch_guard().LockWrite());
  std::vector<QueryTicket> tickets;
  auto first = service.Submit(q, 0.2);
  ASSERT_TRUE(first.ok()) << first.status();
  tickets.push_back(*first);
  SpinUntil([&] { return service.stats().in_flight == 1; });

  // Normal priority fills max_queue - reserved_slots = 2 slots...
  for (int i = 0; i < 2; ++i) {
    auto t = service.Submit(q, 0.2);
    ASSERT_TRUE(t.ok()) << t.status();
    tickets.push_back(*t);
  }
  // ...and the next normal submission bounces off the headroom.
  EXPECT_EQ(service.Submit(q, 0.2).status().code(), StatusCode::kUnavailable);

  // High priority may take the reserved slot up to the hard cap.
  SubmitOptions high;
  high.priority = QueryPriority::kHigh;
  auto vip = service.Submit(q, 0.2, high);
  ASSERT_TRUE(vip.ok()) << "high priority must use the reserved headroom: "
                        << vip.status();
  tickets.push_back(*vip);
  EXPECT_EQ(service.Submit(q, 0.2, high).status().code(), StatusCode::kUnavailable);

  gate.reset();
  for (QueryTicket t : tickets) {
    EXPECT_TRUE(service.Wait(t).ok());
  }
  EXPECT_EQ(service.stats().rejected, 2u);
}

TEST_F(QueryServiceTest, DestructorDrainsUnredeemedTickets) {
  QueryPtr q = Q("select p.pid from person as p where p.city = 4");
  {
    QueryService service(beas_.get(), {});
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(service.Submit(q, 0.2).ok());
    }
    // Tickets intentionally never redeemed; destruction must not hang
    // or leak (ASan/TSan watch this test).
  }
  SUCCEED();
}

}  // namespace
}  // namespace beas
