#include <gtest/gtest.h>

#include "types/column_chunk.h"
#include "types/distance.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_EQ(Value(int64_t{5}).as_int64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value(1.5));
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, StringNeverEqualsNumeric) {
  EXPECT_NE(Value("1"), Value(int64_t{1}));
}

TEST(ValueTest, NullSemantics) {
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(int64_t{0}));
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(2.0));
  EXPECT_LT(Value(int64_t{100}), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(1.25).ToString(), "1.25");
}

TEST(DistanceTest, TrivialMetric) {
  DistanceSpec spec = DistanceSpec::Trivial();
  EXPECT_EQ(AttributeDistance(spec, Value(int64_t{1}), Value(int64_t{1})), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value(int64_t{1}), Value(int64_t{2})), kInfDistance);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("a")), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("b")), kInfDistance);
}

TEST(DistanceTest, NumericMetric) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(95.0), Value(99.0)), 4.0);
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(int64_t{5}), Value(2.5)), 2.5);
}

TEST(DistanceTest, NumericScale) {
  DistanceSpec spec = DistanceSpec::Numeric(0.5);
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(0.0), Value(10.0)), 5.0);
}

TEST(DistanceTest, NumericSpecOnStringsFallsBackToTrivial) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("b")), kInfDistance);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("a")), 0.0);
}

TEST(DistanceTest, NullDistance) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_EQ(AttributeDistance(spec, Value(), Value()), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value(), Value(1.0)), kInfDistance);
}

TEST(DistanceTest, TriangleInequalityNumericSample) {
  DistanceSpec spec = DistanceSpec::Numeric();
  Value a(1.0), b(5.0), c(9.0);
  EXPECT_LE(AttributeDistance(spec, a, c),
            AttributeDistance(spec, a, b) + AttributeDistance(spec, b, c));
}

TEST(SchemaTest, AttributeLookup) {
  RelationSchema r("r", {{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(r.arity(), 2u);
  ASSERT_TRUE(r.FindAttribute("b").has_value());
  EXPECT_EQ(*r.FindAttribute("b"), 1u);
  EXPECT_FALSE(r.FindAttribute("z").has_value());
  EXPECT_FALSE(r.AttributeIndex("z").ok());
}

TEST(SchemaTest, DatabaseSchemaRejectsDuplicates) {
  DatabaseSchema db;
  ASSERT_TRUE(db.AddRelation(RelationSchema("r", {{"a", DataType::kInt64}})).ok());
  EXPECT_FALSE(db.AddRelation(RelationSchema("r", {{"b", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.FindRelation("r").ok());
  EXPECT_FALSE(db.FindRelation("missing").ok());
}

TEST(TupleTest, DistanceIsWorstAttribute) {
  RelationSchema r("r", {{"a", DataType::kDouble, DistanceSpec::Numeric()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(1.0), Value(10.0)};
  Tuple t2{Value(2.0), Value(15.0)};
  EXPECT_DOUBLE_EQ(TupleDistance(r, t1, t2), 5.0);
}

TEST(TupleTest, DistanceInfiniteOnTrivialMismatch) {
  RelationSchema r("r", {{"a", DataType::kInt64, DistanceSpec::Trivial()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(int64_t{1}), Value(10.0)};
  Tuple t2{Value(int64_t{2}), Value(10.0)};
  EXPECT_EQ(TupleDistance(r, t1, t2), kInfDistance);
}

TEST(TupleTest, DistanceOnSubset) {
  RelationSchema r("r", {{"a", DataType::kInt64, DistanceSpec::Trivial()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(int64_t{1}), Value(10.0)};
  Tuple t2{Value(int64_t{2}), Value(13.0)};
  EXPECT_DOUBLE_EQ(TupleDistanceOn(r, {1}, t1, t2), 3.0);
}

TEST(TupleTest, HashConsistentWithEquality) {
  Tuple a{Value(int64_t{1}), Value("x")};
  Tuple b{Value(1.0), Value("x")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(TupleHash(a), TupleHash(b));
}

TEST(TupleTest, ToString) {
  Tuple t{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(TupleToString(t), "(1, x)");
}

// --- ColumnChunk / RowBatch (the columnar batch contract) ---

TEST(ColumnChunkTest, ResetAppendAndRowRoundTrip) {
  ColumnChunk chunk;
  chunk.Reset(3, 4);
  EXPECT_EQ(chunk.num_columns(), 3u);
  EXPECT_EQ(chunk.capacity(), 4u);
  EXPECT_TRUE(chunk.empty());
  chunk.AppendRowUnchecked({Value(int64_t{1}), Value(2.5), Value("a")});
  chunk.AppendRowUnchecked({Value(int64_t{2}), Value(3.5), Value("b")});
  EXPECT_EQ(chunk.size(), 2u);
  EXPECT_FALSE(chunk.full());
  // Columnar layout: column(c)[r] == row r's value in column c.
  EXPECT_EQ(chunk.column(0)[1], Value(int64_t{2}));
  EXPECT_EQ(chunk.at(1, 2), Value("b"));
  EXPECT_EQ(chunk.RowAt(0), (Tuple{Value(int64_t{1}), Value(2.5), Value("a")}));
  // All columns hold exactly size() rows (layout invariant).
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    EXPECT_EQ(chunk.column(c).size(), chunk.size());
  }
  chunk.Clear();
  EXPECT_EQ(chunk.size(), 0u);
  EXPECT_EQ(chunk.num_columns(), 3u);
}

TEST(ColumnChunkTest, AppendFromRowsGathersColumnSubset) {
  std::vector<Tuple> rows = {
      {Value(int64_t{1}), Value(10.0), Value("x")},
      {Value(int64_t{2}), Value(20.0), Value("y")},
      {Value(int64_t{3}), Value(30.0), Value("z")},
  };
  // Projection-pushdown gather: only columns (2, 0), window [1, 3).
  ColumnChunk chunk;
  chunk.Reset(2, 4);
  chunk.AppendFromRows(rows, /*start=*/1, /*n=*/2, {2, 0});
  ASSERT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk.RowAt(0), (Tuple{Value("y"), Value(int64_t{2})}));
  EXPECT_EQ(chunk.RowAt(1), (Tuple{Value("z"), Value(int64_t{3})}));
  // Identity overload transposes every column.
  ColumnChunk full;
  full.Reset(3, 4);
  full.AppendFromRows(rows, 0, 3);
  ASSERT_EQ(full.size(), 3u);
  EXPECT_EQ(full.RowAt(2), rows[2]);
}

TEST(RowBatchTest, SelectAllIsIdentityAndSorted) {
  RelationSchema schema("r", {{"a", DataType::kInt64}});
  RowBatch batch;
  batch.Reset(schema, 8);
  EXPECT_EQ(batch.schema, &schema);
  for (int i = 0; i < 5; ++i) batch.chunk.AppendRowUnchecked({Value(int64_t{i})});
  batch.SelectAll();
  ASSERT_EQ(batch.live(), 5u);
  // Selection-vector invariant: strictly increasing, all < chunk.size().
  for (size_t i = 0; i < batch.sel.size(); ++i) {
    EXPECT_EQ(batch.sel[i], i);
  }
}

}  // namespace
}  // namespace beas
