#include <gtest/gtest.h>

#include "types/distance.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_EQ(Value(int64_t{5}).as_int64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value(1.5));
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, StringNeverEqualsNumeric) {
  EXPECT_NE(Value("1"), Value(int64_t{1}));
}

TEST(ValueTest, NullSemantics) {
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(int64_t{0}));
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(2.0));
  EXPECT_LT(Value(int64_t{100}), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(1.25).ToString(), "1.25");
}

TEST(DistanceTest, TrivialMetric) {
  DistanceSpec spec = DistanceSpec::Trivial();
  EXPECT_EQ(AttributeDistance(spec, Value(int64_t{1}), Value(int64_t{1})), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value(int64_t{1}), Value(int64_t{2})), kInfDistance);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("a")), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("b")), kInfDistance);
}

TEST(DistanceTest, NumericMetric) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(95.0), Value(99.0)), 4.0);
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(int64_t{5}), Value(2.5)), 2.5);
}

TEST(DistanceTest, NumericScale) {
  DistanceSpec spec = DistanceSpec::Numeric(0.5);
  EXPECT_DOUBLE_EQ(AttributeDistance(spec, Value(0.0), Value(10.0)), 5.0);
}

TEST(DistanceTest, NumericSpecOnStringsFallsBackToTrivial) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("b")), kInfDistance);
  EXPECT_EQ(AttributeDistance(spec, Value("a"), Value("a")), 0.0);
}

TEST(DistanceTest, NullDistance) {
  DistanceSpec spec = DistanceSpec::Numeric();
  EXPECT_EQ(AttributeDistance(spec, Value(), Value()), 0.0);
  EXPECT_EQ(AttributeDistance(spec, Value(), Value(1.0)), kInfDistance);
}

TEST(DistanceTest, TriangleInequalityNumericSample) {
  DistanceSpec spec = DistanceSpec::Numeric();
  Value a(1.0), b(5.0), c(9.0);
  EXPECT_LE(AttributeDistance(spec, a, c),
            AttributeDistance(spec, a, b) + AttributeDistance(spec, b, c));
}

TEST(SchemaTest, AttributeLookup) {
  RelationSchema r("r", {{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(r.arity(), 2u);
  ASSERT_TRUE(r.FindAttribute("b").has_value());
  EXPECT_EQ(*r.FindAttribute("b"), 1u);
  EXPECT_FALSE(r.FindAttribute("z").has_value());
  EXPECT_FALSE(r.AttributeIndex("z").ok());
}

TEST(SchemaTest, DatabaseSchemaRejectsDuplicates) {
  DatabaseSchema db;
  ASSERT_TRUE(db.AddRelation(RelationSchema("r", {{"a", DataType::kInt64}})).ok());
  EXPECT_FALSE(db.AddRelation(RelationSchema("r", {{"b", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.FindRelation("r").ok());
  EXPECT_FALSE(db.FindRelation("missing").ok());
}

TEST(TupleTest, DistanceIsWorstAttribute) {
  RelationSchema r("r", {{"a", DataType::kDouble, DistanceSpec::Numeric()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(1.0), Value(10.0)};
  Tuple t2{Value(2.0), Value(15.0)};
  EXPECT_DOUBLE_EQ(TupleDistance(r, t1, t2), 5.0);
}

TEST(TupleTest, DistanceInfiniteOnTrivialMismatch) {
  RelationSchema r("r", {{"a", DataType::kInt64, DistanceSpec::Trivial()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(int64_t{1}), Value(10.0)};
  Tuple t2{Value(int64_t{2}), Value(10.0)};
  EXPECT_EQ(TupleDistance(r, t1, t2), kInfDistance);
}

TEST(TupleTest, DistanceOnSubset) {
  RelationSchema r("r", {{"a", DataType::kInt64, DistanceSpec::Trivial()},
                         {"b", DataType::kDouble, DistanceSpec::Numeric()}});
  Tuple t1{Value(int64_t{1}), Value(10.0)};
  Tuple t2{Value(int64_t{2}), Value(13.0)};
  EXPECT_DOUBLE_EQ(TupleDistanceOn(r, {1}, t1, t2), 3.0);
}

TEST(TupleTest, HashConsistentWithEquality) {
  Tuple a{Value(int64_t{1}), Value("x")};
  Tuple b{Value(1.0), Value("x")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(TupleHash(a), TupleHash(b));
}

TEST(TupleTest, ToString) {
  Tuple t{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(TupleToString(t), "(1, x)");
}

}  // namespace
}  // namespace beas
