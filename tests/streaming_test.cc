// Tests for the push-based streaming answer pipeline: AnswerSink
// protocol and byte-equivalence with the materialized path across the
// thread/backend differential matrix, StreamingTicket paging at page
// sizes {1, 64, 4096} on both storage backends, backpressure bounding
// cursor residency, mid-stream OutOfBudget and deadline failure
// delivery, consumer cancellation, and the morsel-granularity deadline
// overshoot bound (ROADMAP item c). Carries the ctest label `eval` and
// runs in the ASan and TSan CI jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "beas/answer_sink.h"
#include "beas/beas.h"
#include "service/query_service.h"
#include "testing/differential.h"
#include "testing/test_data.h"

namespace beas {
namespace {

using ::beas::testing::DifferentialHarness;
using ::beas::testing::DifferentialOptions;
using ::beas::testing::MakeSocialDb;
using ::beas::testing::SerializeAnswer;

constexpr char kJoinSql[] =
    "select p.city from friend as f, person as p "
    "where f.pid = 7 and f.fid = p.pid";
// A single-relation projection: the shape the engine streams live,
// window by window, instead of materializing first. ~1/5 of persons.
constexpr char kScanSql[] = "select p.pid from person as p where p.city = 2";
// The empty answer: one Finish with zero rows, no Append.
constexpr char kMissSql[] = "select p.city from person as p where p.pid = 987654";

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

std::string Canon(const Result<BeasAnswer>& answer) {
  return SerializeAnswer(answer, /*with_cache_counters=*/false);
}

class StreamingTest : public ::testing::Test {
 protected:
  // num_people is bumped vs the other suites so kScanSql overflows small
  // page queues (the backpressure and mid-stream cases need answers much
  // bigger than the queue).
  void SetUp() override { Rebuild(/*disk=*/false); }

  void Rebuild(bool disk) {
    db_ = MakeSocialDb(30, 500, 5, 8, 400);
    BeasOptions options;
    options.constraints = SocialConstraints();
    if (disk) {
      options.index.backend = IndexBackendKind::kBlockFile;
      options.index.path = ::testing::TempDir() + "streaming_test_disk.blk";
      options.index.block_bytes = 512;
    }
    auto built = Beas::Build(&db_, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = beas_->Parse(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  // Drains \p ticket completely and rebuilds the answer it streamed,
  // recording how many pages it took and validating per-page invariants
  // (page sizing, the last page's trailer).
  Result<BeasAnswer> Drain(StreamingTicket* ticket, uint32_t page_rows,
                           uint64_t* pages_out) {
    BEAS_ASSIGN_OR_RETURN(RelationSchema schema, ticket->WaitSchema());
    BeasAnswer answer;
    answer.table = Table(schema);
    uint64_t pages = 0;
    for (;;) {
      BEAS_ASSIGN_OR_RETURN(StreamPage page, ticket->NextPage());
      ++pages;
      if (!page.last && page.rows.size() != page_rows) {
        return Status::Internal("non-final page is not exactly page_rows");
      }
      for (Tuple& row : page.rows) answer.table.AppendUnchecked(std::move(row));
      if (page.last) {
        const BeasAnswer& fin = page.final.answer;
        if (fin.streamed_rows != answer.table.size()) {
          return Status::Internal("trailer row count diverged from stream");
        }
        answer.eta = fin.eta;
        answer.d_prime = fin.d_prime;
        answer.accessed = fin.accessed;
        answer.exact = fin.exact;
        break;
      }
    }
    if (pages_out != nullptr) *pages_out = pages;
    return answer;
  }

  Database db_;
  std::unique_ptr<Beas> beas_;
};

// The tentpole invariant, swept across the full differential matrix:
// streamed answers are byte-identical to materialized ones on both
// storage backends at eval/fetch threads {1,4}, for joins, live-streamed
// scans, empty answers, and OutOfBudget planning cuts.
TEST_F(StreamingTest, StreamedAnswersMatchMaterializedAcrossMatrix) {
  DifferentialOptions options;
  options.constraints = SocialConstraints();
  options.eval_threads = {1, 4};
  options.fetch_threads = {1, 4};
  options.temp_dir = ::testing::TempDir();
  auto harness = DifferentialHarness::Create(
      [] { return MakeSocialDb(30, 100, 5, 8, 400); }, options);
  ASSERT_TRUE(harness.ok()) << harness.status();

  int mismatches = 0;
  for (const char* sql : {kJoinSql, kScanSql, kMissSql}) {
    mismatches += (*harness)->CheckStreaming(sql, 0.2, sql);
  }
  // An alpha too small to plan under: both paths must fail identically.
  mismatches += (*harness)->CheckStreaming(kJoinSql, 1e-9, "starved");
  EXPECT_EQ(mismatches, 0);
  EXPECT_GE((*harness)->checks(), 32) << "sweep did not cover the matrix";
}

// The CollectingAnswerSink protocol on a successful live stream: Open
// before rows, batches in commit order, one Finish whose trailer matches
// the materialized scalars.
TEST_F(StreamingTest, SinkSeesOpenBatchesFinishInOrder) {
  auto q = Q(kScanSql);
  auto direct = beas_->Answer(q, 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_GT(direct->table.size(), 0u);

  CollectingAnswerSink sink;
  auto streamed = beas_->Answer(q, 0.2, beas_->eval_options(), &sink);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_TRUE(sink.opened());
  EXPECT_TRUE(sink.finished());
  EXPECT_FALSE(sink.failed());
  EXPECT_GE(sink.batches(), 1u);
  EXPECT_EQ(streamed->table.size(), 0u) << "streamed rows must not also materialize";
  EXPECT_EQ(streamed->streamed_rows, direct->table.size());
  EXPECT_EQ(sink.trailer().total_rows, direct->table.size());

  BeasAnswer rebuilt = std::move(*streamed);
  rebuilt.table = sink.table();
  EXPECT_EQ(Canon(Result<BeasAnswer>(std::move(rebuilt))), Canon(direct));
}

// An empty answer streams as Open + Finish with zero batches.
TEST_F(StreamingTest, EmptyAnswerStreamsNoBatches) {
  CollectingAnswerSink sink;
  auto streamed = beas_->Answer(Q(kMissSql), 0.2, beas_->eval_options(), &sink);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_TRUE(sink.opened());
  EXPECT_TRUE(sink.finished());
  EXPECT_EQ(sink.batches(), 0u);
  EXPECT_EQ(sink.trailer().total_rows, 0u);
}

// Mid-stream resource exhaustion: a cap that admits the base relation
// but not the post-filter charges fails AFTER rows were already pushed
// into the sink — and with a status byte-identical to the materialized
// path's, so the cut point does not move when streaming.
TEST_F(StreamingTest, MidStreamCapFailureMatchesMaterializedCutPoint) {
  EvalOptions eval = beas_->eval_options();
  // person has 500 rows; kScanSql charges 500 (base) + ~100 (survivors)
  // + ~100 (distinct). A cap between base and base+survivors fails on
  // the survivors charge, after every window was emitted.
  eval.max_intermediate_rows = 520;

  auto q = Q(kScanSql);
  auto materialized = beas_->Answer(q, 0.2, eval);
  ASSERT_FALSE(materialized.ok()) << "cap was expected to trip mid-eval";

  CollectingAnswerSink sink;
  auto streamed = beas_->Answer(q, 0.2, eval, &sink);
  ASSERT_FALSE(streamed.ok());
  EXPECT_TRUE(sink.failed());
  EXPECT_FALSE(sink.finished());
  EXPECT_GE(sink.batches(), 1u)
      << "rows should have streamed before the cap tripped";
  EXPECT_EQ(Canon(streamed), Canon(materialized))
      << "the failure cut must not move between paths";
}

// StreamingTicket paging at the satellite page sizes, on both storage
// backends: every page size reassembles the same bytes, with exactly
// ceil(rows / page_rows) pages (one page for the empty answer).
TEST_F(StreamingTest, TicketPagesReassembleIdenticallyAcrossPageSizes) {
  for (bool disk : {false, true}) {
    Rebuild(disk);
    QueryService service(beas_.get(), {});
    for (const char* sql : {kJoinSql, kScanSql, kMissSql}) {
      auto direct = beas_->Answer(Q(sql), 0.2);
      ASSERT_TRUE(direct.ok()) << direct.status();
      const uint64_t rows = direct->table.size();
      for (uint32_t page_rows : {1u, 64u, 4096u}) {
        StreamOptions opts;
        opts.page_rows = page_rows;
        auto ticket = service.SubmitStreamingSql(sql, 0.2, opts);
        ASSERT_TRUE(ticket.ok()) << ticket.status();
        uint64_t pages = 0;
        auto streamed = Drain(&*ticket, page_rows, &pages);
        ASSERT_TRUE(streamed.ok())
            << sql << " page=" << page_rows << ": " << streamed.status();
        EXPECT_EQ(Canon(streamed), Canon(direct))
            << (disk ? "disk" : "mem") << " " << sql << " page=" << page_rows;
        uint64_t want_pages = rows == 0 ? 1 : (rows + page_rows - 1) / page_rows;
        EXPECT_EQ(pages, want_pages) << sql << " page=" << page_rows;
      }
    }
  }
}

// Backpressure bounds residency: with one-row pages and a queue of two,
// the resident-bytes hook must never see more than the queue bound
// buffered, however large the answer — and everything balances back to
// zero once drained.
TEST_F(StreamingTest, BackpressureBoundsResidentBytes) {
  QueryService service(beas_.get(), {});
  auto direct = beas_->Answer(Q(kScanSql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_GE(direct->table.size(), 8u);
  const size_t row_bytes = ApproxTupleBytes(direct->table.row(0));

  std::atomic<int64_t> current{0};
  std::atomic<int64_t> peak{0};
  StreamOptions opts;
  opts.page_rows = 1;
  opts.max_queued_pages = 2;
  opts.on_resident_delta = [&](int64_t delta) {
    int64_t now = current.fetch_add(delta) + delta;
    int64_t seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
  };
  auto ticket = service.SubmitStreamingSql(kScanSql, 0.2, opts);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto streamed = Drain(&*ticket, 1, nullptr);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(Canon(streamed), Canon(direct));
  EXPECT_EQ(current.load(), 0) << "residency deltas must balance to zero";
  EXPECT_GT(peak.load(), 0);
  // O(page_rows * (max_queued_pages + 2)), NOT O(answer): two queued
  // pages, the producer's in-hand page waiting out backpressure, and at
  // most one popped page whose drain-side decrement (fired outside the
  // stream lock) has not landed yet. All rows of kScanSql are same-width
  // integers, so the bound is exact in row units.
  EXPECT_LE(peak.load(), static_cast<int64_t>(4 * row_bytes));
}

// A consumer that walks away: Cancel() (and ticket destruction) must
// unblock a backpressured producer, terminate the query as failed, and
// leave the service healthy.
TEST_F(StreamingTest, CancelUnblocksProducerAndFailsQuery) {
  QueryService service(beas_.get(), {});
  {
    StreamOptions opts;
    opts.page_rows = 1;
    opts.max_queued_pages = 2;
    auto ticket = service.SubmitStreamingSql(kScanSql, 0.2, opts);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    auto schema = ticket->WaitSchema();
    ASSERT_TRUE(schema.ok()) << schema.status();
    auto first = ticket->NextPage();
    ASSERT_TRUE(first.ok()) << first.status();
    EXPECT_EQ(first->rows.size(), 1u);
    ticket->Cancel();
    // Further paging reports the cancellation (possibly after the
    // producer's terminal status lands).
    for (;;) {
      auto page = ticket->NextPage();
      if (!page.ok()) {
        EXPECT_EQ(page.status().code(), StatusCode::kUnavailable)
            << page.status();
        break;
      }
    }
  }
  // The cancelled query resolves as failed, not leaked: afterwards the
  // service still answers the same query correctly.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().in_flight > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "producer stuck";
    std::this_thread::yield();
  }
  EXPECT_EQ(service.stats().failed, 1u);
  auto direct = beas_->Answer(Q(kScanSql), 0.2);
  ASSERT_TRUE(direct.ok());
  StreamOptions opts;
  opts.page_rows = 64;
  auto again = service.SubmitStreamingSql(kScanSql, 0.2, opts);
  ASSERT_TRUE(again.ok()) << again.status();
  auto streamed = Drain(&*again, 64, nullptr);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(Canon(streamed), Canon(direct));
}

// Mid-stream deadline at the service layer: committed pages deliver,
// then the stream terminates with a clean kDeadlineExceeded once the
// deadline expires with the producer parked in backpressure (the worker
// is not held hostage by the stalled consumer).
TEST_F(StreamingTest, MidStreamDeadlineFailsCleanlyAfterPartialDelivery) {
  QueryService service(beas_.get(), {});
  auto direct = beas_->Answer(Q(kScanSql), 0.2);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_GE(direct->table.size(), 8u);

  StreamOptions opts;
  opts.page_rows = 1;
  opts.max_queued_pages = 2;
  opts.submit.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  auto ticket = service.SubmitStreamingSql(kScanSql, 0.2, opts);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto schema = ticket->WaitSchema();
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto first = ticket->NextPage();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->rows.size(), 1u);
  EXPECT_FALSE(first->last);

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  Status terminal = Status::OK();
  for (;;) {
    auto page = ticket->NextPage();
    if (!page.ok()) {
      terminal = page.status();
      break;
    }
    ASSERT_FALSE(page->last) << "a deadlined stream must not finish cleanly";
  }
  EXPECT_EQ(terminal.code(), StatusCode::kDeadlineExceeded) << terminal;
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
  EXPECT_EQ(service.stats().failed, 1u);
}

// ROADMAP item (c): kDeadlineExceeded overshoot is bounded at morsel
// granularity. A deadline that expires while evaluation/fetch is in
// flight must cancel within a small multiple of one morsel's work, not
// after finishing the query. The overshoot is recorded as a test
// property for the bench history; the assertion itself is deliberately
// generous to stay robust on loaded CI machines.
TEST_F(StreamingTest, DeadlineOvershootStaysAtMorselGranularity) {
  EvalOptions eval = beas_->eval_options();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  eval.deadline = deadline;
  // Let the deadline lapse so the run is guaranteed to cancel mid-way
  // (entry checks, fetch-loop checks, or the window-filter claim loop).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto answer = beas_->Answer(Q(kScanSql), 0.2, eval);
  auto finished = std::chrono::steady_clock::now();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status();
  double overshoot_ms =
      std::chrono::duration<double, std::milli>(finished - deadline).count();
  RecordProperty("deadline_overshoot_ms", static_cast<int>(overshoot_ms));
  // One morsel of this workload is well under a millisecond; 2s of slack
  // absorbs scheduler noise while still catching a run-to-completion
  // regression on any realistically sized answer.
  EXPECT_LT(overshoot_ms, 2000.0);
}

}  // namespace
}  // namespace beas
