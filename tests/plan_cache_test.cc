// Plan-cache tests (ctest label: cache):
//
//   - fingerprint canonicalization: constants are abstracted; predicate
//     shape, relaxation slack and attribute distance specs are not (two
//     queries differing only in a distance spec or a relaxation bound
//     never share a cache entry);
//   - PlanCache mechanics: keying on (fingerprint, alpha), LRU eviction,
//     hit/miss/evict/invalidation counters;
//   - end-to-end equivalence: cached plans produce byte-identical rows,
//     eta and accessed counts to fresh plans, across constant renamings,
//     constant-conflict flips, and Insert/Remove invalidation.

#include <gtest/gtest.h>

#include "beas/beas.h"
#include "beas/plan_cache.h"
#include "common/hash.h"
#include "ra/fingerprint.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(30, 100, 5, 8, 400);
    schema_ = db_.Schema();
  }

  std::unique_ptr<Beas> Build(Database* db, bool cache_enabled, size_t capacity = 64) {
    BeasOptions options;
    options.constraints = SocialConstraints();
    options.plan_cache.enabled = cache_enabled;
    options.plan_cache.capacity = capacity;
    auto built = Beas::Build(db, options);
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status() << " for " << sql;
    return *q;
  }

  static void ExpectSameAnswer(const BeasAnswer& got, const BeasAnswer& want,
                               const std::string& context) {
    EXPECT_EQ(got.eta, want.eta) << context;
    EXPECT_EQ(got.accessed, want.accessed) << context;
    EXPECT_EQ(got.exact, want.exact) << context;
    ASSERT_EQ(got.table.size(), want.table.size()) << context;
    for (size_t i = 0; i < got.table.size(); ++i) {
      EXPECT_EQ(got.table.row(i), want.table.row(i)) << context << " row " << i;
    }
  }

  Database db_;
  DatabaseSchema schema_;
};

// --- Fingerprint canonicalization ---

TEST_F(PlanCacheTest, FingerprintAbstractsConstants) {
  QueryPtr a = Q("select p.pid from person as p where p.city = 'c1'");
  QueryPtr b = Q("select p.pid from person as p where p.city = 'c4'");
  EXPECT_EQ(FingerprintQuery(a), FingerprintQuery(b));

  QueryPtr c = Q(
      "select h.address from poi as h, person as p "
      "where p.pid = 3 and p.city = h.city and h.price <= 95");
  QueryPtr d = Q(
      "select h.address from poi as h, person as p "
      "where p.pid = 77 and p.city = h.city and h.price <= 40");
  EXPECT_EQ(FingerprintQuery(c), FingerprintQuery(d));
  EXPECT_NE(FingerprintQuery(a), FingerprintQuery(c));
}

TEST_F(PlanCacheTest, FingerprintKeepsPredicateShape) {
  QueryPtr le = Q("select h.address from poi as h where h.price <= 95");
  QueryPtr lt = Q("select h.address from poi as h where h.price < 95");
  QueryPtr other_attr = Q("select h.address from poi as h where h.address <= 95");
  EXPECT_NE(FingerprintQuery(le), FingerprintQuery(lt));
  EXPECT_NE(FingerprintQuery(le), FingerprintQuery(other_attr));

  // Set- vs bag-semantics projections (the parser always emits distinct,
  // so build both by hand) must not alias.
  auto leaf = QueryNode::Relation(schema_, "poi", "h");
  ASSERT_TRUE(leaf.ok());
  auto distinct_proj = QueryNode::Project(*leaf, {"h.type"}, /*distinct=*/true);
  auto bag_proj = QueryNode::Project(*leaf, {"h.type"}, /*distinct=*/false);
  ASSERT_TRUE(distinct_proj.ok() && bag_proj.ok());
  EXPECT_NE(FingerprintQuery(*distinct_proj), FingerprintQuery(*bag_proj));
}

TEST_F(PlanCacheTest, FingerprintDistinguishesRelaxationBounds) {
  // Queries that differ only in Comparison::slack (the relaxation bound)
  // must never share an entry: the slack feeds the rewrite's relaxed
  // semantics directly.
  auto base_leaf = QueryNode::Relation(schema_, "poi", "h");
  ASSERT_TRUE(base_leaf.ok());
  QueryPtr base = *base_leaf;
  Comparison cmp;
  cmp.lhs = Operand::Attr("h.price");
  cmp.op = CompareOp::kEq;
  cmp.rhs = Operand::Const(Value(95.0));
  cmp.slack = 0.0;
  auto exact_sel = QueryNode::Select(base, {cmp});
  ASSERT_TRUE(exact_sel.ok()) << exact_sel.status();
  cmp.slack = 2.5;
  auto relaxed_sel = QueryNode::Select(base, {cmp});
  ASSERT_TRUE(relaxed_sel.ok()) << relaxed_sel.status();
  EXPECT_NE(FingerprintQuery(*exact_sel), FingerprintQuery(*relaxed_sel));
}

TEST_F(PlanCacheTest, FingerprintDistinguishesDistanceSpecs) {
  // Same SQL over two schemas that differ only in one attribute's
  // distance spec: the fingerprints must differ, so instances with
  // different metrics can never share plans.
  auto make_schema = [](DistanceSpec price_distance) {
    DatabaseSchema s;
    EXPECT_TRUE(s.AddRelation(RelationSchema(
                                  "poi", {AttributeDef("address", DataType::kInt64,
                                                       DistanceSpec::Numeric(1.0)),
                                          AttributeDef("price", DataType::kDouble,
                                                       price_distance)}))
                    .ok());
    return s;
  };
  DatabaseSchema numeric = make_schema(DistanceSpec::Numeric(1.0));
  DatabaseSchema scaled = make_schema(DistanceSpec::Numeric(0.25));
  DatabaseSchema trivial = make_schema(DistanceSpec::Trivial());

  const std::string sql = "select h.address from poi as h where h.price <= 95";
  auto qn = ParseSql(numeric, sql);
  auto qs = ParseSql(scaled, sql);
  auto qt = ParseSql(trivial, sql);
  ASSERT_TRUE(qn.ok() && qs.ok() && qt.ok());
  EXPECT_NE(FingerprintQuery(*qn), FingerprintQuery(*qs));
  EXPECT_NE(FingerprintQuery(*qn), FingerprintQuery(*qt));
  EXPECT_NE(FingerprintQuery(*qs), FingerprintQuery(*qt));

  // And at the cache level: an entry stored under one spec's fingerprint
  // is invisible to the other's.
  PlanCache cache(PlanCacheOptions{true, 8});
  cache.Insert(FingerprintQuery(*qn), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(FingerprintQuery(*qs), 0.1), nullptr);
  EXPECT_EQ(cache.Lookup(FingerprintQuery(*qt), 0.1), nullptr);
  EXPECT_NE(cache.Lookup(FingerprintQuery(*qn), 0.1), nullptr);
}

// --- PlanCache mechanics ---

QueryFingerprint FakeFp(const std::string& canonical) {
  QueryFingerprint fp;
  fp.canonical = canonical;
  fp.hash = Fnv1a64(canonical);
  return fp;
}

TEST_F(PlanCacheTest, HashCollisionDegradesToMiss) {
  // Two distinct canonical forms forced onto one hash: the entry must
  // never be served for the other form — a collision is a miss.
  PlanCache cache(PlanCacheOptions{true, 8});
  QueryFingerprint a, b;
  a.canonical = "q-a";
  b.canonical = "q-b";
  a.hash = b.hash = 42;
  cache.Insert(a, 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(b, 0.1), nullptr);
  EXPECT_NE(cache.Lookup(a, 0.1), nullptr);
}

TEST_F(PlanCacheTest, CacheKeysOnAlpha) {
  PlanCache cache(PlanCacheOptions{true, 8});
  cache.Insert(FakeFp("q"), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(FakeFp("q"), 0.2), nullptr);
  EXPECT_NE(cache.Lookup(FakeFp("q"), 0.1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(PlanCacheTest, LruEvictionAndStats) {
  PlanCache cache(PlanCacheOptions{true, 2});
  cache.Insert(FakeFp("q1"), 0.1, PlanTemplate{});
  cache.Insert(FakeFp("q2"), 0.1, PlanTemplate{});
  // Touch q1 so q2 is the LRU entry when q3 arrives.
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  cache.Insert(FakeFp("q3"), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(FakeFp("q2"), 0.1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  EXPECT_NE(cache.Lookup(FakeFp("q3"), 0.1), nullptr);

  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
}

TEST_F(PlanCacheTest, DemoteLastHitRebooks) {
  PlanCache cache(PlanCacheOptions{true, 2});
  cache.Insert(FakeFp("q1"), 0.1, PlanTemplate{});
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  cache.DemoteLastHit();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// --- End-to-end equivalence ---

TEST_F(PlanCacheTest, CachedAnswersMatchFreshAcrossConstants) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  auto fresh = Build(&db_, /*cache_enabled=*/false);

  // Query families sharing a structure, varying only constants (the
  // fig6g/fig6i repeated-workload shape).
  std::vector<std::string> sqls;
  for (int pid : {0, 3, 7, 12, 25}) {
    sqls.push_back(
        "select h.address, h.price from poi as h, friend as f, person as p "
        "where f.pid = " + std::to_string(pid) +
        " and f.fid = p.pid and p.city = h.city and h.price <= " +
        std::to_string(40 + pid));
  }
  for (int city : {0, 1, 2}) {
    sqls.push_back("select p.pid from person as p where p.city = " +
                   std::to_string(city));
  }

  for (double alpha : {0.05, 0.3}) {
    for (const auto& sql : sqls) {
      QueryPtr q = Q(sql);
      auto from_cache_path = cached->Answer(q, alpha);
      auto from_fresh_path = fresh->Answer(q, alpha);
      ASSERT_EQ(from_cache_path.ok(), from_fresh_path.ok()) << sql;
      if (!from_cache_path.ok()) continue;
      ExpectSameAnswer(*from_cache_path, *from_fresh_path, sql);
    }
  }
  // The families repeat per alpha, so the cache must have seen hits.
  PlanCacheStats stats = cached->plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  // Re-answering everything again must be all hits and still identical.
  uint64_t misses_before = cached->plan_cache_stats().misses;
  for (const auto& sql : sqls) {
    QueryPtr q = Q(sql);
    auto again = cached->Answer(q, 0.3);
    auto reference = fresh->Answer(q, 0.3);
    ASSERT_EQ(again.ok(), reference.ok()) << sql;
    if (!again.ok()) continue;
    EXPECT_TRUE(again->plan_cached) << sql;
    ExpectSameAnswer(*again, *reference, sql);
  }
  EXPECT_EQ(cached->plan_cache_stats().misses, misses_before);
}

TEST_F(PlanCacheTest, ConstantConflictNeverReusesTemplate) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  auto fresh = Build(&db_, /*cache_enabled=*/false);

  // Same fingerprint (constants abstracted), opposite satisfiability.
  QueryPtr sat = Q("select p.pid from person as p where p.city = 1 and p.city = 1");
  QueryPtr unsat = Q("select p.pid from person as p where p.city = 1 and p.city = 2");
  ASSERT_EQ(FingerprintQuery(sat), FingerprintQuery(unsat));

  auto a1 = cached->Answer(sat, 0.3);
  ASSERT_TRUE(a1.ok()) << a1.status();
  auto a2 = cached->Answer(unsat, 0.3);
  ASSERT_TRUE(a2.ok()) << a2.status();
  EXPECT_FALSE(a2->plan_cached);  // template bailed out, planned fresh
  EXPECT_EQ(a2->table.size(), 0u);
  ExpectSameAnswer(*a2, *fresh->Answer(unsat, 0.3), "unsat after sat");

  // And the flip side: the unsat plan now cached must not serve sat.
  auto a3 = cached->Answer(sat, 0.3);
  ASSERT_TRUE(a3.ok());
  ExpectSameAnswer(*a3, *fresh->Answer(sat, 0.3), "sat after unsat");
  EXPECT_GT(a3->table.size(), 0u);
}

TEST_F(PlanCacheTest, InsertRemoveInvalidatesCachedPlans) {
  auto cached = Build(&db_, /*cache_enabled=*/true);

  QueryPtr q = Q("select p.pid from person as p where p.city = 'c1'");
  ASSERT_TRUE(cached->Answer(q, 0.3).ok());
  auto warm = cached->Answer(q, 0.3);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cached);

  // Remove one person row, then re-insert it: the query reads person, so
  // both maintenance steps must drop its entry (per-relation
  // invalidation; unrelated entries would survive — see
  // MutationInvalidatesOnlyTouchedRelations).
  auto person = db_.FindTable("person");
  ASSERT_TRUE(person.ok());
  Tuple row = (*person)->row(0);
  ASSERT_TRUE(cached->Remove("person", row).ok());
  auto after_remove = cached->Answer(q, 0.3);
  ASSERT_TRUE(after_remove.ok());
  EXPECT_FALSE(after_remove->plan_cached) << "stale plan served after Remove";

  ASSERT_TRUE(cached->Insert("person", row).ok());
  auto after_insert = cached->Answer(q, 0.3);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_FALSE(after_insert->plan_cached) << "stale plan served after Insert";
  EXPECT_EQ(cached->plan_cache_stats().invalidations, 2u);

  // The database is back to its original content: a fresh instance over
  // it must agree with the (re-cached) answers.
  auto fresh = Build(&db_, /*cache_enabled=*/false);
  auto again = cached->Answer(q, 0.3);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cached);
  ExpectSameAnswer(*again, *fresh->Answer(q, 0.3), "after remove+insert roundtrip");
}

// --- Per-relation invalidation ---

TEST_F(PlanCacheTest, InvalidateRelationDropsOnlyTouchingEntries) {
  PlanCache cache(PlanCacheOptions{true, 8, 8});
  QueryFingerprint person_fp{1, "person-query"};
  QueryFingerprint poi_fp{2, "poi-query"};
  QueryFingerprint join_fp{3, "join-query"};
  QueryFingerprint unknown_fp{4, "unknown-relations"};
  cache.Insert(person_fp, 0.1, PlanTemplate{}, {"person"});
  cache.Insert(poi_fp, 0.1, PlanTemplate{}, {"poi"});
  cache.Insert(join_fp, 0.1, PlanTemplate{}, {"friend", "person"});
  cache.Insert(unknown_fp, 0.1, PlanTemplate{});  // no relation set

  cache.InvalidateRelation("person");
  // person + join entries touch "person"; the relation-less entry is
  // conservatively treated as touching everything.
  EXPECT_EQ(cache.Lookup(person_fp, 0.1), nullptr);
  EXPECT_EQ(cache.Lookup(join_fp, 0.1), nullptr);
  EXPECT_EQ(cache.Lookup(unknown_fp, 0.1), nullptr);
  EXPECT_NE(cache.Lookup(poi_fp, 0.1), nullptr);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries_invalidated, 3u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(PlanCacheTest, MutationInvalidatesOnlyTouchedRelations) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  QueryPtr person_q = Q("select p.pid from person as p where p.city = 'c2'");
  QueryPtr poi_q = Q("select h.address from poi as h where h.type = 'hotel'");
  ASSERT_TRUE(cached->Answer(person_q, 0.3).ok());
  ASSERT_TRUE(cached->Answer(poi_q, 0.3).ok());

  // Mutate poi (remove + re-insert: |D| net unchanged, so surviving
  // templates stay byte-equivalent to fresh planning).
  auto poi = db_.FindTable("poi");
  ASSERT_TRUE(poi.ok());
  Tuple row = (*poi)->row(0);
  ASSERT_TRUE(cached->Remove("poi", row).ok());
  ASSERT_TRUE(cached->Insert("poi", row).ok());

  // The person entry survived both maintenance steps...
  auto person_hit = cached->Answer(person_q, 0.3);
  ASSERT_TRUE(person_hit.ok());
  EXPECT_TRUE(person_hit->plan_cached) << "unrelated entry was invalidated";
  // ... while the poi entry was dropped and re-planned fresh.
  auto poi_miss = cached->Answer(poi_q, 0.3);
  ASSERT_TRUE(poi_miss.ok());
  EXPECT_FALSE(poi_miss->plan_cached) << "stale poi plan served after mutation";

  // Surviving and re-planned answers both match a cache-less instance.
  auto fresh = Build(&db_, /*cache_enabled=*/false);
  ExpectSameAnswer(*person_hit, *fresh->Answer(person_q, 0.3), "warm survivor");
  ExpectSameAnswer(*poi_miss, *fresh->Answer(poi_q, 0.3), "re-planned");
}

// --- Negative caching of OutOfBudget verdicts ---

TEST_F(PlanCacheTest, NegativeEntriesRoundTripAndAgeOut) {
  PlanCacheOptions options;
  options.enabled = true;
  options.negative_capacity = 2;
  PlanCache cache(options);
  QueryFingerprint fp{10, "starved-query"};
  EXPECT_FALSE(cache.LookupNegative(fp, 1e-9).has_value());

  Status verdict = Status::OutOfBudget("cannot fund one representative");
  cache.InsertNegative(fp, 1e-9, verdict);
  auto hit = cache.LookupNegative(fp, 1e-9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, verdict);  // bit-identical Status, message included
  EXPECT_FALSE(cache.LookupNegative(fp, 0.5).has_value());  // other alpha

  // LRU bound: two more distinct keys evict the oldest.
  cache.InsertNegative(QueryFingerprint{11, "b"}, 1e-9, verdict);
  cache.InsertNegative(QueryFingerprint{12, "c"}, 1e-9, verdict);
  EXPECT_FALSE(cache.LookupNegative(fp, 1e-9).has_value());

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.negative_entries, 2u);
  EXPECT_EQ(stats.negative_hits, 1u);

  // A successful plan under the same key supersedes the verdict...
  cache.Insert(QueryFingerprint{11, "b"}, 1e-9, PlanTemplate{}, {"r"});
  EXPECT_FALSE(cache.LookupNegative(QueryFingerprint{11, "b"}, 1e-9).has_value());
  EXPECT_NE(cache.Lookup(QueryFingerprint{11, "b"}, 1e-9), nullptr);
  // ... and a verdict supersedes a (now unreachable) template: a key is
  // either negative or positive, never both.
  cache.InsertNegative(QueryFingerprint{11, "b"}, 1e-9, verdict);
  EXPECT_EQ(cache.Lookup(QueryFingerprint{11, "b"}, 1e-9), nullptr);
  EXPECT_TRUE(cache.LookupNegative(QueryFingerprint{11, "b"}, 1e-9).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(PlanCacheTest, NegativeEntriesDropOnAnyMutation) {
  PlanCache cache(PlanCacheOptions{true, 8, 8});
  Status verdict = Status::OutOfBudget("starved");
  cache.InsertNegative(QueryFingerprint{20, "q"}, 1e-9, verdict);
  // The verdict depends on alpha * |D|, so even a mutation of a relation
  // the query never reads invalidates it.
  cache.InvalidateRelation("some-unrelated-relation");
  EXPECT_FALSE(cache.LookupNegative(QueryFingerprint{20, "q"}, 1e-9).has_value());
  EXPECT_EQ(cache.stats().negative_entries, 0u);
}

TEST_F(PlanCacheTest, RepeatedOutOfBudgetQueriesSkipReplanning) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  // alpha small enough that the budget cannot fund one representative:
  // planning itself fails OutOfBudget.
  QueryPtr q = Q("select p.pid from person as p where p.city = 'c1'");
  const double alpha = 1e-9;
  auto first = cached->Answer(q, alpha);
  ASSERT_FALSE(first.ok());
  ASSERT_EQ(first.status().code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(cached->plan_cache_stats().negative_entries, 1u);

  // The second failure is served from the negative cache, bit-identical.
  auto second = cached->Answer(q, alpha);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status(), first.status());
  EXPECT_EQ(cached->plan_cache_stats().negative_hits, 1u);

  // The same query at a workable alpha still answers (separate key).
  auto ok_alpha = cached->Answer(q, 0.3);
  ASSERT_TRUE(ok_alpha.ok()) << ok_alpha.status();

  // Any mutation moves |D| and clears the verdicts.
  auto person = db_.FindTable("person");
  ASSERT_TRUE(person.ok());
  Tuple row = (*person)->row(0);
  ASSERT_TRUE(cached->Remove("person", row).ok());
  EXPECT_EQ(cached->plan_cache_stats().negative_entries, 0u);
  auto after = cached->Answer(q, alpha);
  EXPECT_FALSE(after.ok());  // still unanswerable at this |D|, re-planned
  EXPECT_EQ(cached->plan_cache_stats().negative_entries, 1u);
}

}  // namespace
}  // namespace beas
