// Plan-cache tests (ctest label: cache):
//
//   - fingerprint canonicalization: constants are abstracted; predicate
//     shape, relaxation slack and attribute distance specs are not (two
//     queries differing only in a distance spec or a relaxation bound
//     never share a cache entry);
//   - PlanCache mechanics: keying on (fingerprint, alpha), LRU eviction,
//     hit/miss/evict/invalidation counters;
//   - end-to-end equivalence: cached plans produce byte-identical rows,
//     eta and accessed counts to fresh plans, across constant renamings,
//     constant-conflict flips, and Insert/Remove invalidation.

#include <gtest/gtest.h>

#include "beas/beas.h"
#include "beas/plan_cache.h"
#include "common/hash.h"
#include "ra/fingerprint.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(30, 100, 5, 8, 400);
    schema_ = db_.Schema();
  }

  std::unique_ptr<Beas> Build(Database* db, bool cache_enabled, size_t capacity = 64) {
    BeasOptions options;
    options.constraints = SocialConstraints();
    options.plan_cache.enabled = cache_enabled;
    options.plan_cache.capacity = capacity;
    auto built = Beas::Build(db, options);
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status() << " for " << sql;
    return *q;
  }

  static void ExpectSameAnswer(const BeasAnswer& got, const BeasAnswer& want,
                               const std::string& context) {
    EXPECT_EQ(got.eta, want.eta) << context;
    EXPECT_EQ(got.accessed, want.accessed) << context;
    EXPECT_EQ(got.exact, want.exact) << context;
    ASSERT_EQ(got.table.size(), want.table.size()) << context;
    for (size_t i = 0; i < got.table.size(); ++i) {
      EXPECT_EQ(got.table.row(i), want.table.row(i)) << context << " row " << i;
    }
  }

  Database db_;
  DatabaseSchema schema_;
};

// --- Fingerprint canonicalization ---

TEST_F(PlanCacheTest, FingerprintAbstractsConstants) {
  QueryPtr a = Q("select p.pid from person as p where p.city = 'c1'");
  QueryPtr b = Q("select p.pid from person as p where p.city = 'c4'");
  EXPECT_EQ(FingerprintQuery(a), FingerprintQuery(b));

  QueryPtr c = Q(
      "select h.address from poi as h, person as p "
      "where p.pid = 3 and p.city = h.city and h.price <= 95");
  QueryPtr d = Q(
      "select h.address from poi as h, person as p "
      "where p.pid = 77 and p.city = h.city and h.price <= 40");
  EXPECT_EQ(FingerprintQuery(c), FingerprintQuery(d));
  EXPECT_NE(FingerprintQuery(a), FingerprintQuery(c));
}

TEST_F(PlanCacheTest, FingerprintKeepsPredicateShape) {
  QueryPtr le = Q("select h.address from poi as h where h.price <= 95");
  QueryPtr lt = Q("select h.address from poi as h where h.price < 95");
  QueryPtr other_attr = Q("select h.address from poi as h where h.address <= 95");
  EXPECT_NE(FingerprintQuery(le), FingerprintQuery(lt));
  EXPECT_NE(FingerprintQuery(le), FingerprintQuery(other_attr));

  // Set- vs bag-semantics projections (the parser always emits distinct,
  // so build both by hand) must not alias.
  auto leaf = QueryNode::Relation(schema_, "poi", "h");
  ASSERT_TRUE(leaf.ok());
  auto distinct_proj = QueryNode::Project(*leaf, {"h.type"}, /*distinct=*/true);
  auto bag_proj = QueryNode::Project(*leaf, {"h.type"}, /*distinct=*/false);
  ASSERT_TRUE(distinct_proj.ok() && bag_proj.ok());
  EXPECT_NE(FingerprintQuery(*distinct_proj), FingerprintQuery(*bag_proj));
}

TEST_F(PlanCacheTest, FingerprintDistinguishesRelaxationBounds) {
  // Queries that differ only in Comparison::slack (the relaxation bound)
  // must never share an entry: the slack feeds the rewrite's relaxed
  // semantics directly.
  auto base_leaf = QueryNode::Relation(schema_, "poi", "h");
  ASSERT_TRUE(base_leaf.ok());
  QueryPtr base = *base_leaf;
  Comparison cmp;
  cmp.lhs = Operand::Attr("h.price");
  cmp.op = CompareOp::kEq;
  cmp.rhs = Operand::Const(Value(95.0));
  cmp.slack = 0.0;
  auto exact_sel = QueryNode::Select(base, {cmp});
  ASSERT_TRUE(exact_sel.ok()) << exact_sel.status();
  cmp.slack = 2.5;
  auto relaxed_sel = QueryNode::Select(base, {cmp});
  ASSERT_TRUE(relaxed_sel.ok()) << relaxed_sel.status();
  EXPECT_NE(FingerprintQuery(*exact_sel), FingerprintQuery(*relaxed_sel));
}

TEST_F(PlanCacheTest, FingerprintDistinguishesDistanceSpecs) {
  // Same SQL over two schemas that differ only in one attribute's
  // distance spec: the fingerprints must differ, so instances with
  // different metrics can never share plans.
  auto make_schema = [](DistanceSpec price_distance) {
    DatabaseSchema s;
    EXPECT_TRUE(s.AddRelation(RelationSchema(
                                  "poi", {AttributeDef("address", DataType::kInt64,
                                                       DistanceSpec::Numeric(1.0)),
                                          AttributeDef("price", DataType::kDouble,
                                                       price_distance)}))
                    .ok());
    return s;
  };
  DatabaseSchema numeric = make_schema(DistanceSpec::Numeric(1.0));
  DatabaseSchema scaled = make_schema(DistanceSpec::Numeric(0.25));
  DatabaseSchema trivial = make_schema(DistanceSpec::Trivial());

  const std::string sql = "select h.address from poi as h where h.price <= 95";
  auto qn = ParseSql(numeric, sql);
  auto qs = ParseSql(scaled, sql);
  auto qt = ParseSql(trivial, sql);
  ASSERT_TRUE(qn.ok() && qs.ok() && qt.ok());
  EXPECT_NE(FingerprintQuery(*qn), FingerprintQuery(*qs));
  EXPECT_NE(FingerprintQuery(*qn), FingerprintQuery(*qt));
  EXPECT_NE(FingerprintQuery(*qs), FingerprintQuery(*qt));

  // And at the cache level: an entry stored under one spec's fingerprint
  // is invisible to the other's.
  PlanCache cache(PlanCacheOptions{true, 8});
  cache.Insert(FingerprintQuery(*qn), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(FingerprintQuery(*qs), 0.1), nullptr);
  EXPECT_EQ(cache.Lookup(FingerprintQuery(*qt), 0.1), nullptr);
  EXPECT_NE(cache.Lookup(FingerprintQuery(*qn), 0.1), nullptr);
}

// --- PlanCache mechanics ---

QueryFingerprint FakeFp(const std::string& canonical) {
  QueryFingerprint fp;
  fp.canonical = canonical;
  fp.hash = Fnv1a64(canonical);
  return fp;
}

TEST_F(PlanCacheTest, HashCollisionDegradesToMiss) {
  // Two distinct canonical forms forced onto one hash: the entry must
  // never be served for the other form — a collision is a miss.
  PlanCache cache(PlanCacheOptions{true, 8});
  QueryFingerprint a, b;
  a.canonical = "q-a";
  b.canonical = "q-b";
  a.hash = b.hash = 42;
  cache.Insert(a, 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(b, 0.1), nullptr);
  EXPECT_NE(cache.Lookup(a, 0.1), nullptr);
}

TEST_F(PlanCacheTest, CacheKeysOnAlpha) {
  PlanCache cache(PlanCacheOptions{true, 8});
  cache.Insert(FakeFp("q"), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.Lookup(FakeFp("q"), 0.2), nullptr);
  EXPECT_NE(cache.Lookup(FakeFp("q"), 0.1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(PlanCacheTest, LruEvictionAndStats) {
  PlanCache cache(PlanCacheOptions{true, 2});
  cache.Insert(FakeFp("q1"), 0.1, PlanTemplate{});
  cache.Insert(FakeFp("q2"), 0.1, PlanTemplate{});
  // Touch q1 so q2 is the LRU entry when q3 arrives.
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  cache.Insert(FakeFp("q3"), 0.1, PlanTemplate{});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(FakeFp("q2"), 0.1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  EXPECT_NE(cache.Lookup(FakeFp("q3"), 0.1), nullptr);

  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
}

TEST_F(PlanCacheTest, DemoteLastHitRebooks) {
  PlanCache cache(PlanCacheOptions{true, 2});
  cache.Insert(FakeFp("q1"), 0.1, PlanTemplate{});
  EXPECT_NE(cache.Lookup(FakeFp("q1"), 0.1), nullptr);
  cache.DemoteLastHit();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// --- End-to-end equivalence ---

TEST_F(PlanCacheTest, CachedAnswersMatchFreshAcrossConstants) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  auto fresh = Build(&db_, /*cache_enabled=*/false);

  // Query families sharing a structure, varying only constants (the
  // fig6g/fig6i repeated-workload shape).
  std::vector<std::string> sqls;
  for (int pid : {0, 3, 7, 12, 25}) {
    sqls.push_back(
        "select h.address, h.price from poi as h, friend as f, person as p "
        "where f.pid = " + std::to_string(pid) +
        " and f.fid = p.pid and p.city = h.city and h.price <= " +
        std::to_string(40 + pid));
  }
  for (int city : {0, 1, 2}) {
    sqls.push_back("select p.pid from person as p where p.city = " +
                   std::to_string(city));
  }

  for (double alpha : {0.05, 0.3}) {
    for (const auto& sql : sqls) {
      QueryPtr q = Q(sql);
      auto from_cache_path = cached->Answer(q, alpha);
      auto from_fresh_path = fresh->Answer(q, alpha);
      ASSERT_EQ(from_cache_path.ok(), from_fresh_path.ok()) << sql;
      if (!from_cache_path.ok()) continue;
      ExpectSameAnswer(*from_cache_path, *from_fresh_path, sql);
    }
  }
  // The families repeat per alpha, so the cache must have seen hits.
  PlanCacheStats stats = cached->plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  // Re-answering everything again must be all hits and still identical.
  uint64_t misses_before = cached->plan_cache_stats().misses;
  for (const auto& sql : sqls) {
    QueryPtr q = Q(sql);
    auto again = cached->Answer(q, 0.3);
    auto reference = fresh->Answer(q, 0.3);
    ASSERT_EQ(again.ok(), reference.ok()) << sql;
    if (!again.ok()) continue;
    EXPECT_TRUE(again->plan_cached) << sql;
    ExpectSameAnswer(*again, *reference, sql);
  }
  EXPECT_EQ(cached->plan_cache_stats().misses, misses_before);
}

TEST_F(PlanCacheTest, ConstantConflictNeverReusesTemplate) {
  auto cached = Build(&db_, /*cache_enabled=*/true);
  auto fresh = Build(&db_, /*cache_enabled=*/false);

  // Same fingerprint (constants abstracted), opposite satisfiability.
  QueryPtr sat = Q("select p.pid from person as p where p.city = 1 and p.city = 1");
  QueryPtr unsat = Q("select p.pid from person as p where p.city = 1 and p.city = 2");
  ASSERT_EQ(FingerprintQuery(sat), FingerprintQuery(unsat));

  auto a1 = cached->Answer(sat, 0.3);
  ASSERT_TRUE(a1.ok()) << a1.status();
  auto a2 = cached->Answer(unsat, 0.3);
  ASSERT_TRUE(a2.ok()) << a2.status();
  EXPECT_FALSE(a2->plan_cached);  // template bailed out, planned fresh
  EXPECT_EQ(a2->table.size(), 0u);
  ExpectSameAnswer(*a2, *fresh->Answer(unsat, 0.3), "unsat after sat");

  // And the flip side: the unsat plan now cached must not serve sat.
  auto a3 = cached->Answer(sat, 0.3);
  ASSERT_TRUE(a3.ok());
  ExpectSameAnswer(*a3, *fresh->Answer(sat, 0.3), "sat after unsat");
  EXPECT_GT(a3->table.size(), 0u);
}

TEST_F(PlanCacheTest, InsertRemoveInvalidatesCachedPlans) {
  auto cached = Build(&db_, /*cache_enabled=*/true);

  QueryPtr q = Q("select p.pid from person as p where p.city = 'c1'");
  ASSERT_TRUE(cached->Answer(q, 0.3).ok());
  auto warm = cached->Answer(q, 0.3);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cached);

  // Remove one person row, then re-insert it: |D| passes through a
  // different value, and both maintenance steps must clear the cache.
  auto person = db_.FindTable("person");
  ASSERT_TRUE(person.ok());
  Tuple row = (*person)->row(0);
  ASSERT_TRUE(cached->Remove("person", row).ok());
  auto after_remove = cached->Answer(q, 0.3);
  ASSERT_TRUE(after_remove.ok());
  EXPECT_FALSE(after_remove->plan_cached) << "stale plan served after Remove";

  ASSERT_TRUE(cached->Insert("person", row).ok());
  auto after_insert = cached->Answer(q, 0.3);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_FALSE(after_insert->plan_cached) << "stale plan served after Insert";
  EXPECT_EQ(cached->plan_cache_stats().invalidations, 2u);

  // The database is back to its original content: a fresh instance over
  // it must agree with the (re-cached) answers.
  auto fresh = Build(&db_, /*cache_enabled=*/false);
  auto again = cached->Answer(q, 0.3);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cached);
  ExpectSameAnswer(*again, *fresh->Answer(q, 0.3), "after remove+insert roundtrip");
}

}  // namespace
}  // namespace beas
