#include <gtest/gtest.h>

#include "accuracy/measures.h"
#include "baselines/baselines.h"
#include "engine/evaluator.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(40, 120, 5, 6, 600);
    schema_ = db_.Schema();
  }

  Table Exact(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status();
    Evaluator ev(db_);
    auto t = ev.Eval(*q);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
  DatabaseSchema schema_;
};

TEST_F(BaselinesTest, SamplSynopsisRespectsBudget) {
  for (double alpha : {0.05, 0.2, 0.5}) {
    Sampl sampl(db_, alpha, 7);
    // Proportional sampling with a 1-row floor per relation.
    size_t budget = static_cast<size_t>(alpha * static_cast<double>(db_.TotalTuples()));
    EXPECT_LE(sampl.SynopsisSize(), budget + db_.tables().size());
  }
}

TEST_F(BaselinesTest, SamplAnswersSubsetOfExact) {
  Sampl sampl(db_, 0.5, 7);
  std::string sql = "select h.address, h.price from poi as h where h.price <= 60";
  auto approx = sampl.Answer(sql);
  ASSERT_TRUE(approx.ok()) << approx.status();
  Table exact = Exact(sql);
  for (const auto& row : approx->rows()) {
    EXPECT_TRUE(exact.Contains(row));
  }
  EXPECT_LE(approx->size(), exact.size());
}

TEST_F(BaselinesTest, SamplScalesAggregates) {
  Sampl sampl(db_, 0.5, 7);
  std::string sql = "select h.city, count(h.address) as n from poi as h group by h.city";
  auto approx = sampl.Answer(sql);
  ASSERT_TRUE(approx.ok()) << approx.status();
  Table exact = Exact(sql);
  std::map<int64_t, double> exact_counts;
  for (const auto& row : exact.rows()) exact_counts[row[0].as_int64()] = row[1].numeric();
  ASSERT_GT(approx->size(), 0u);
  for (const auto& row : approx->rows()) {
    double e = exact_counts.at(row[0].as_int64());
    // Inverse-fraction scaling should land within a factor ~2 at alpha 0.5.
    EXPECT_GT(row[1].numeric(), e * 0.35);
    EXPECT_LT(row[1].numeric(), e * 2.5);
  }
}

TEST_F(BaselinesTest, HistoBudgetAndAnswers) {
  Histo histo(db_, 0.2, 7);
  size_t budget = static_cast<size_t>(0.2 * static_cast<double>(db_.TotalTuples()));
  EXPECT_LE(histo.SynopsisSize(), budget + db_.tables().size());
  std::string sql = "select h.price from poi as h where h.price <= 60";
  auto approx = histo.Answer(sql);
  ASSERT_TRUE(approx.ok()) << approx.status();
  // Representatives are real tuples, so answers come from the data.
  Table all = Exact("select h.price from poi as h");
  for (const auto& row : approx->rows()) EXPECT_TRUE(all.Contains(row));
}

TEST_F(BaselinesTest, HistoWeightedCountsApproximateExact) {
  Histo histo(db_, 0.3, 7);
  std::string sql = "select h.city, count(h.address) as n from poi as h group by h.city";
  auto approx = histo.Answer(sql);
  ASSERT_TRUE(approx.ok()) << approx.status();
  Table exact = Exact(sql);
  double exact_total = 0, approx_total = 0;
  for (const auto& row : exact.rows()) exact_total += row[1].numeric();
  for (const auto& row : approx->rows()) approx_total += row[1].numeric();
  // Bucket populations preserve the overall count up to the bucket cap.
  EXPECT_GT(approx_total, exact_total * 0.5);
  EXPECT_LT(approx_total, exact_total * 1.5);
}

TEST_F(BaselinesTest, BlinkDbRejectsNonAggregates) {
  BlinkDbSim blink(db_, 0.3, {{"poi", {"type"}}}, 7);
  auto r = blink.Answer("select h.price from poi as h where h.price <= 60");
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  auto r2 =
      blink.Answer("select h.city, min(h.price) from poi as h group by h.city");
  EXPECT_EQ(r2.status().code(), StatusCode::kUnimplemented);
}

TEST_F(BaselinesTest, BlinkDbAnswersAggregatesOnStratifiedSample) {
  BlinkDbSim blink(db_, 0.4, {{"poi", {"type", "city"}}}, 7);
  std::string sql =
      "select h.city, count(h.address) as n from poi as h where h.type = 'hotel' "
      "group by h.city";
  auto approx = blink.Answer(sql);
  ASSERT_TRUE(approx.ok()) << approx.status();
  Table exact = Exact(sql);
  // Stratified on (type, city): every exact group should be represented.
  EXPECT_EQ(approx->size(), exact.size());
}

TEST_F(BaselinesTest, MethodsAreDeterministicInSeed) {
  Sampl a(db_, 0.2, 99), b(db_, 0.2, 99);
  std::string sql = "select h.price from poi as h where h.price <= 80";
  auto ra = a.Answer(sql);
  auto rb = b.Answer(sql);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->size(), rb->size());
}

}  // namespace
}  // namespace beas
