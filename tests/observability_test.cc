// End-to-end tests of the observability stack: wire-level EXPLAIN
// ANALYZE (a TCP query with the trace flag returns a span breakdown
// consistent with the reported wall latency), kStatsRequest exposition
// in JSON and Prometheus text form, the slow-query JSONL log, and —
// the torn-read regression — snapshot-vs-update hammers asserting that
// every ServiceStats/NetStats snapshot is coherent under concurrent
// load (runs under TSan in CI). The suite carries the ctest label
// `obs`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "beas/beas.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "testing/test_data.h"

namespace beas {
namespace {

using ::beas::testing::MakeSocialDb;

// The join from Example 1: bounded under the social constraints, known
// to answer with multiple rows at alpha 0.2.
constexpr char kJoinSql[] =
    "select p.city from friend as f, person as p "
    "where f.pid = 7 and f.fid = p.pid";

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

// Minimal structural JSON check: object braces/brackets balance outside
// string literals. Enough to catch malformed exposition without a JSON
// library; the real parse happens in scripts/trace_summarize_test.py.
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']': if (--depth < 0) return false; break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSocialDb(30, 100, 5, 8, 400);
    BeasOptions options;
    options.constraints = SocialConstraints();
    options.plan_cache.enabled = true;
    auto built = Beas::Build(&db_, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);
  }

  QueryPtr Q(const std::string& sql) {
    auto q = beas_->Parse(sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Database db_;
  std::unique_ptr<Beas> beas_;
};

// --- Wire-level EXPLAIN ANALYZE ---

// The tentpole acceptance criterion: a TCP query submitted with the
// trace flag returns a span breakdown covering queue_wait, plan, fetch,
// eval, and stream, whose non-overlapping span total is consistent with
// the reported wall latency.
TEST_F(ObservabilityTest, TracedTcpQueryReturnsConsistentSpanBreakdown) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  NetQueryOptions opts;
  opts.trace = true;
  auto answer = client->QueryAll(kJoinSql, 0.2, opts);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_TRUE(answer->has_trace) << "trace flag set but no trace came back";
  ASSERT_FALSE(answer->trace_spans.empty());
  EXPECT_GT(answer->table.size(), 0u);

  std::set<std::string> names;
  for (const TraceSpan& span : answer->trace_spans) names.insert(span.name);
  for (const char* required : {"queue_wait", "plan", "fetch", "eval", "stream"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }

  // Consistency with the wall latency: latency_ms is submit-to-completion
  // and the trace's epoch is the admission instant, so every span
  // recorded before the latency measurement must end within the wall
  // interval, and the non-overlapping phases must sum to no more than
  // the wall time. The `stream` span runs concurrently with execution
  // and closes just after the latency clock is read, so it is excluded
  // from both checks (its start must still fall inside the interval).
  // 1ms slack absorbs clock-read ordering at the boundary.
  const uint64_t wall_us =
      static_cast<uint64_t>(answer->latency_ms * 1000.0) + 1000;
  uint64_t disjoint_sum = 0;
  for (const TraceSpan& span : answer->trace_spans) {
    if (span.name == "stream") {
      EXPECT_LE(span.start_us, wall_us) << "stream opened past the wall latency";
      continue;
    }
    EXPECT_LE(span.start_us + span.dur_us, wall_us)
        << "span " << span.name << " ends past the wall latency";
    // Dotted names (plan.chase, plan.chat) nest inside their parent
    // phase — counting them would double-bill the parent's time.
    if (span.name.find('.') == std::string::npos) disjoint_sum += span.dur_us;
  }
  EXPECT_LE(disjoint_sum, wall_us)
      << "non-overlapping spans sum past the wall latency";

  // The always-on attributes ride along with the spans.
  bool saw_keys_charged = false;
  for (const auto& [key, value] : answer->trace_attrs) {
    if (key == "keys_charged") {
      saw_keys_charged = true;
      EXPECT_EQ(static_cast<uint64_t>(value), answer->accessed);
    }
  }
  EXPECT_TRUE(saw_keys_charged);
}

// Tracing is opt-in on the wire: without the flag the done page carries
// no trace block, and the answer is identical either way.
TEST_F(ObservabilityTest, UntracedTcpQueryCarriesNoTraceBlock) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto plain = client->QueryAll(kJoinSql, 0.2);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(plain->has_trace);
  EXPECT_TRUE(plain->trace_spans.empty());

  NetQueryOptions opts;
  opts.trace = true;
  auto traced = client->QueryAll(kJoinSql, 0.2, opts);
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_EQ(plain->table.size(), traced->table.size());
  EXPECT_EQ(plain->eta, traced->eta);
  EXPECT_EQ(plain->accessed, traced->accessed);
}

// --- In-process EXPLAIN ANALYZE ---

TEST_F(ObservabilityTest, ServiceExplainAnalyzeFollowsTraceFlag) {
  QueryService service(beas_.get(), {});
  SubmitOptions traced;
  traced.trace = true;
  auto ticket = service.Submit(Q(kJoinSql), 0.2, traced);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto sa = service.Wait(*ticket);
  ASSERT_TRUE(sa.ok()) << sa.status();
  ASSERT_NE(sa->trace, nullptr);
  EXPECT_FALSE(sa->trace->spans().empty());
  std::string explain = sa->ExplainAnalyze();
  EXPECT_NE(explain.find("plan"), std::string::npos);
  EXPECT_NE(explain.find("eval"), std::string::npos);

  // Untraced: counters/attributes still recorded, no timed spans.
  auto plain = service.Answer(Q(kJoinSql), 0.2);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_NE(plain->trace, nullptr);
  EXPECT_TRUE(plain->trace->spans().empty());
  EXPECT_GT(plain->trace->Attr("keys_charged"), 0);
}

// --- kStatsRequest exposition ---

TEST_F(ObservabilityTest, StatsRequestReturnsRegistryInBothForms) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 3; ++i) {
    auto answer = client->QueryAll(kJoinSql, 0.2);
    ASSERT_TRUE(answer.ok()) << answer.status();
  }
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();

  // JSON form: structurally valid, carries the service and net metrics.
  EXPECT_TRUE(JsonBalanced(stats->json)) << stats->json;
  EXPECT_EQ(stats->json.front(), '{');
  for (const char* name :
       {"beas_service_query_latency_us", "beas_service_queue_wait_us",
        "beas_service_queries_total", "beas_net_request_us",
        "beas_net_ttfp_us", "beas_net_page_serve_us",
        "beas_service_in_flight", "beas_net_sessions_active"}) {
    EXPECT_NE(stats->json.find(name), std::string::npos)
        << "JSON exposition missing " << name;
    EXPECT_NE(stats->text.find(name), std::string::npos)
        << "text exposition missing " << name;
  }
  // The three queries are visible in both forms.
  EXPECT_NE(stats->json.find("\"beas_service_queries_total\":3"),
            std::string::npos)
      << stats->json;
  EXPECT_NE(stats->text.find("beas_service_queries_total 3"),
            std::string::npos)
      << stats->text;
  EXPECT_NE(stats->text.find("# TYPE beas_service_query_latency_us summary"),
            std::string::npos);
  EXPECT_NE(
      stats->text.find("beas_service_query_latency_us{quantile=\"0.5\"}"),
      std::string::npos);
}

// ServiceStats percentiles and the registry exposition derive from the
// same histogram, so the surfaces agree.
TEST_F(ObservabilityTest, ServiceStatsPercentilesComeFromSharedHistogram) {
  QueryService service(beas_.get(), {});
  for (int i = 0; i < 5; ++i) {
    auto sa = service.Answer(Q(kJoinSql), 0.2);
    ASSERT_TRUE(sa.ok()) << sa.status();
  }
  ServiceStats stats = service.stats();
  Histogram* hist =
      service.metrics()->GetHistogram("beas_service_query_latency_us");
  EXPECT_EQ(hist->count(), 5u);
  EXPECT_EQ(stats.p50_ms, hist->Percentile(50.0) / 1000.0);
  EXPECT_EQ(stats.p95_ms, hist->Percentile(95.0) / 1000.0);
  EXPECT_GT(stats.p95_ms, 0.0);
  EXPECT_EQ(service.metrics()->GetCounter("beas_service_queries_total")->value(),
            5u);
}

// --- Slow-query log ---

TEST_F(ObservabilityTest, SlowQueryLogEmitsJsonlWithFullTrace) {
  ServiceOptions options;
  options.slow_query_ms = 0.0001;  // everything is slow: log every query
  std::mutex mu;
  std::vector<std::string> lines;
  options.slow_query_hook = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  QueryService service(beas_.get(), options);

  // slow_query_ms forces span timings even without SubmitOptions::trace.
  auto sa = service.Answer(Q(kJoinSql), 0.2);
  ASSERT_TRUE(sa.ok()) << sa.status();
  ASSERT_NE(sa->trace, nullptr);
  EXPECT_FALSE(sa->trace->spans().empty());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_TRUE(JsonBalanced(line)) << line;
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  for (const char* key : {"\"latency_ms\":", "\"alpha\":", "\"status\":\"ok\"",
                          "\"epoch\":", "\"trace\":", "\"spans\":",
                          "\"attrs\":", "\"queue_wait\"", "\"eval\""}) {
    EXPECT_NE(line.find(key), std::string::npos)
        << "slow-query line missing " << key << ": " << line;
  }
  EXPECT_EQ(service.metrics()
                ->GetCounter("beas_service_slow_queries_total")
                ->value(),
            1u);
}

TEST_F(ObservabilityTest, FastQueriesStayOutOfSlowQueryLog) {
  ServiceOptions options;
  options.slow_query_ms = 60000.0;  // nothing is that slow
  std::atomic<int> logged{0};
  options.slow_query_hook = [&](const std::string&) { ++logged; };
  QueryService service(beas_.get(), options);
  auto sa = service.Answer(Q(kJoinSql), 0.2);
  ASSERT_TRUE(sa.ok()) << sa.status();
  EXPECT_EQ(logged.load(), 0);
  EXPECT_EQ(service.metrics()
                ->GetCounter("beas_service_slow_queries_total")
                ->value(),
            0u);
}

// --- Torn-read regression: coherent stats snapshots under load ---

// Every ServiceStats snapshot taken while queries are in flight must
// satisfy the lifecycle invariant submitted == queued + in_flight +
// completed + failed — the seed read those fields under separate lock
// acquisitions, so snapshots could tear mid-transition. Runs under TSan
// via the `obs` label.
TEST_F(ObservabilityTest, ServiceStatsSnapshotsAreCoherentUnderLoad) {
  ServiceOptions options;
  options.workers = 4;
  QueryService service(beas_.get(), options);

  constexpr int kQueries = 48;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      ServiceStats s = service.stats();
      ASSERT_EQ(s.submitted, s.queued + s.in_flight + s.completed + s.failed)
          << "torn ServiceStats snapshot";
    }
  });

  std::vector<QueryTicket> tickets;
  tickets.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    auto ticket = service.Submit(Q(kJoinSql), 0.2);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  for (QueryTicket ticket : tickets) {
    auto sa = service.Wait(ticket);
    ASSERT_TRUE(sa.ok()) << sa.status();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  ServiceStats final = service.stats();
  EXPECT_EQ(final.submitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(final.completed, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(final.queued, 0u);
  EXPECT_EQ(final.in_flight, 0u);
}

// Same hammer on the net tier: NetStats snapshots race against live
// sessions, queries, and page traffic; every snapshot must be
// internally consistent (active <= opened, resident <= peak).
TEST_F(ObservabilityTest, NetStatsSnapshotsAreCoherentUnderLoad) {
  QueryService service(beas_.get(), {});
  NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      NetStats s = server.stats();
      ASSERT_LE(s.sessions_active, s.sessions_opened);
      ASSERT_LE(s.cursor_resident_bytes, s.cursor_resident_peak_bytes);
      ASSERT_LE(s.pages_sent, s.pages_sent + s.errors_sent);  // overflow guard
      ASSERT_EQ(s.service.submitted, s.service.queued + s.service.in_flight +
                                         s.service.completed + s.service.failed);
    }
  });

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server] {
      auto client = NetClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok()) << client.status();
      for (int i = 0; i < 6; ++i) {
        NetQueryOptions opts;
        opts.page_rows = 2;  // several pages per query: more traffic races
        opts.trace = (i % 2) == 0;
        auto answer = client->QueryAll(kJoinSql, 0.2, opts);
        ASSERT_TRUE(answer.ok()) << answer.status();
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  NetStats final = server.stats();
  EXPECT_EQ(final.queries, static_cast<uint64_t>(kClients * 6));
  EXPECT_EQ(final.sessions_opened, static_cast<uint64_t>(kClients));
}

// --- Determinism: tracing never changes answers ---

TEST_F(ObservabilityTest, TracingNeverChangesAnswers) {
  QueryService service(beas_.get(), {});
  auto baseline = service.Answer(Q(kJoinSql), 0.2);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  SubmitOptions traced;
  traced.trace = true;
  auto ticket = service.Submit(Q(kJoinSql), 0.2, traced);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto sa = service.Wait(*ticket);
  ASSERT_TRUE(sa.ok()) << sa.status();
  EXPECT_EQ(sa->answer.eta, baseline->answer.eta);
  EXPECT_EQ(sa->answer.accessed, baseline->answer.accessed);
  EXPECT_EQ(sa->answer.d_prime, baseline->answer.d_prime);
  ASSERT_EQ(sa->answer.table.size(), baseline->answer.table.size());
  for (size_t i = 0; i < sa->answer.table.size(); ++i) {
    EXPECT_EQ(sa->answer.table.row(i), baseline->answer.table.row(i));
  }
}

}  // namespace
}  // namespace beas
