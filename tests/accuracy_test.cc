#include <gtest/gtest.h>

#include <cmath>

#include "accuracy/measures.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

class AccuracyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(20, 50, 4, 5, 120);
    schema_ = db_.Schema();
  }

  QueryPtr Q(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Table Exact(const QueryPtr& q) {
    Evaluator ev(db_);
    auto t = ev.Eval(q);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
  DatabaseSchema schema_;
};

TEST_F(AccuracyTest, ExactAnswersScorePerfect) {
  QueryPtr q = Q("select h.address, h.price from poi as h where h.price <= 60");
  Table exact = Exact(q);
  ASSERT_GT(exact.size(), 0u);
  auto report = RcMeasure(db_, q, exact);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->f_rel, 1.0);
  EXPECT_DOUBLE_EQ(report->f_cov, 1.0);
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
}

TEST_F(AccuracyTest, EmptyAnswersForNonEmptyExactScoreZero) {
  QueryPtr q = Q("select h.address, h.price from poi as h where h.price <= 60");
  Table empty(q->output_schema());
  auto report = RcMeasure(db_, q, empty);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->f_cov, 0.0);
  EXPECT_DOUBLE_EQ(report->accuracy, 0.0);
}

TEST_F(AccuracyTest, EmptyExactAnswersGiveFullCoverage) {
  QueryPtr q = Q("select h.address from poi as h where h.price <= -1");
  Table empty(q->output_schema());
  auto report = RcMeasure(db_, q, empty);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->f_cov, 1.0);
}

TEST_F(AccuracyTest, Example2SensibleAnswersScoreNonZero) {
  // The paper's Example 2: answers slightly above the price cut (real
  // hotels at $41-$45 against a $40 cut) have F-measure 0 but positive RC
  // accuracy thanks to query relaxation.
  QueryPtr q = Q("select h.price from poi as h where h.type = 'hotel' and h.price <= 40");
  QueryPtr above =
      Q("select h.price from poi as h where h.type = 'hotel' and "
        "h.price >= 41 and h.price <= 60");
  Table exact = Exact(q);
  Table approx = Exact(above);
  ASSERT_GT(exact.size(), 0u);
  ASSERT_GT(approx.size(), 0u);

  EXPECT_EQ(FMeasure(approx, exact), 0.0);
  auto report = RcMeasure(db_, q, approx);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->accuracy, 0.0);
}

TEST_F(AccuracyTest, RelevanceDistanceMatchesHandComputation) {
  // Controlled data: prices {10, 30, 100}, query price <= 20, answer 100.
  //   t=10:  max(r=0,  d=90) = 90
  //   t=30:  max(r=10, d=70) = 70   <- minimum
  //   t=100: max(r=80, d=0)  = 80
  Database db;
  RelationSchema r("p", {{"price", DataType::kDouble, DistanceSpec::Numeric()}});
  Table t(r);
  t.AppendUnchecked({Value(10.0)});
  t.AppendUnchecked({Value(30.0)});
  t.AppendUnchecked({Value(100.0)});
  (void)db.AddTable(std::move(t));
  DatabaseSchema schema = db.Schema();
  auto q = *ParseSql(schema, "select a.price from p as a where a.price <= 20");
  Table approx((*q).output_schema());
  approx.AppendUnchecked({Value(100.0)});
  auto report = RcMeasure(db, q, approx);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NEAR(report->max_rel_distance, 70.0, 1e-9);
  EXPECT_NEAR(report->f_rel, 1.0 / 71.0, 1e-9);
}

TEST_F(AccuracyTest, CoverageWorstCaseOverExactAnswers) {
  QueryPtr q = Q("select h.price from poi as h where h.price <= 60");
  Table exact = Exact(q);
  ASSERT_GT(exact.size(), 2u);
  // Keep only the lowest-price answer: coverage distance = spread.
  double lo = 1e18, hi = -1e18;
  for (const auto& row : exact.rows()) {
    lo = std::min(lo, row[0].numeric());
    hi = std::max(hi, row[0].numeric());
  }
  Table approx(q->output_schema());
  approx.AppendUnchecked({Value(lo)});
  auto report = RcMeasure(db_, q, approx);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->max_cov_distance, hi - lo, 1e-9);
  EXPECT_NEAR(report->f_cov, 1.0 / (1.0 + (hi - lo)), 1e-9);
}

TEST_F(AccuracyTest, AggregateCountCoverageUsesDagg) {
  QueryPtr q = Q(
      "select h.city, count(h.address) as n from poi as h "
      "where h.type = 'hotel' group by h.city");
  Table exact = Exact(q);
  ASSERT_GT(exact.size(), 0u);
  // Perturb counts by +2: coverage distance should be 2 (X matches, fagg=2).
  Table approx(q->output_schema());
  for (const auto& row : exact.rows()) {
    approx.AppendUnchecked({row[0], Value(row[1].as_int64() + 2)});
  }
  auto report = RcMeasure(db_, q, approx);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NEAR(report->max_cov_distance, 2.0, 1e-9);
  EXPECT_GT(report->f_rel, 0.0);
}

TEST_F(AccuracyTest, AggregateDuplicateGroupsAreIrrelevant) {
  QueryPtr q = Q(
      "select h.city, count(h.address) as n from poi as h group by h.city");
  Table exact = Exact(q);
  ASSERT_GT(exact.size(), 0u);
  Table approx(q->output_schema());
  // Two different counts for the same city: violates group-by semantics.
  approx.AppendUnchecked({exact.row(0)[0], Value(int64_t{1})});
  approx.AppendUnchecked({exact.row(0)[0], Value(int64_t{2})});
  auto report = RcMeasure(db_, q, approx);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->f_rel, 0.0);
}

TEST_F(AccuracyTest, AggregateMinRelevance) {
  QueryPtr q = Q(
      "select h.city, min(h.price) from poi as h where h.type = 'hotel' group by h.city");
  Table exact = Exact(q);
  ASSERT_GT(exact.size(), 0u);
  auto report = RcMeasure(db_, q, exact);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
}

TEST_F(AccuracyTest, MacAccuracyBounds) {
  QueryPtr q = Q("select h.price from poi as h where h.price <= 60");
  Table exact = Exact(q);
  EXPECT_DOUBLE_EQ(MacAccuracy(q->output_schema(), exact, exact), 1.0);
  Table empty(q->output_schema());
  EXPECT_DOUBLE_EQ(MacAccuracy(q->output_schema(), empty, exact), 0.0);
  EXPECT_DOUBLE_EQ(MacAccuracy(q->output_schema(), empty, empty), 1.0);
  // Perturbed answers land strictly between 0 and 1.
  Table approx(q->output_schema());
  for (const auto& row : exact.rows()) approx.AppendUnchecked({Value(row[0].numeric() + 1)});
  double mac = MacAccuracy(q->output_schema(), approx, exact);
  EXPECT_GT(mac, 0.0);
  EXPECT_LT(mac, 1.0);
}

TEST_F(AccuracyTest, FMeasureBasics) {
  QueryPtr q = Q("select h.price from poi as h where h.price <= 60");
  Table exact = Exact(q);
  EXPECT_DOUBLE_EQ(FMeasure(exact, exact), 1.0);
  Table empty(q->output_schema());
  EXPECT_DOUBLE_EQ(FMeasure(empty, exact), 0.0);
  // Half of the answers: recall 0.5, precision 1 -> F = 2/3.
  Table half(q->output_schema());
  for (size_t i = 0; i < exact.size(); i += 2) half.AppendUnchecked(exact.row(i));
  double f = FMeasure(half, exact);
  double recall = static_cast<double>(half.size()) / static_cast<double>(exact.size());
  EXPECT_NEAR(f, 2 * recall / (1 + recall), 1e-9);
}

TEST_F(AccuracyTest, RcOnDifferenceQuery) {
  QueryPtr q = Q(
      "select h.price from poi as h where h.type = 'hotel' except "
      "select h2.price from poi as h2 where h2.type = 'museum'");
  Table exact = Exact(q);
  auto report = RcMeasure(db_, q, exact);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
}

}  // namespace
}  // namespace beas
