#include <gtest/gtest.h>

#include <cmath>

#include "index/conformance.h"
#include "index/index_store.h"
#include "index/kd_tree.h"
#include "testing/test_data.h"
#include "types/distance.h"

namespace beas {
namespace {

std::vector<AttributeDef> NumericAttrs() {
  return {{"a", DataType::kDouble, DistanceSpec::Numeric()},
          {"b", DataType::kDouble, DistanceSpec::Numeric()}};
}

TEST(KdTreeTest, SingleTuple) {
  KdTree tree;
  tree.Build(NumericAttrs(), {{Value(1.0), Value(2.0)}});
  EXPECT_TRUE(tree.built());
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.distinct_count(), 1u);
  std::vector<KdTree::FrontierEntry> f;
  tree.Frontier(0, &f);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].count, 1);
}

TEST(KdTreeTest, DuplicatesCollapseWithCounts) {
  KdTree tree;
  std::vector<Tuple> rows;
  for (int i = 0; i < 5; ++i) rows.push_back({Value(1.0), Value(2.0)});
  rows.push_back({Value(3.0), Value(4.0)});
  tree.Build(NumericAttrs(), rows);
  EXPECT_EQ(tree.distinct_count(), 2u);
  EXPECT_EQ(tree.total_count(), 6);
  std::vector<KdTree::FrontierEntry> f;
  tree.Frontier(10, &f);
  int64_t total = 0;
  for (const auto& e : f) total += e.count;
  EXPECT_EQ(total, 6);
}

TEST(KdTreeTest, FrontierSizesBounded) {
  Rng rng(3);
  std::vector<Tuple> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({Value(rng.UniformReal(0, 100)), Value(rng.UniformReal(0, 100))});
  }
  KdTree tree;
  tree.Build(NumericAttrs(), rows);
  for (int k = 0; k <= tree.depth(); ++k) {
    EXPECT_LE(tree.FrontierSize(k), static_cast<size_t>(1) << k);
  }
  EXPECT_EQ(tree.FrontierSize(tree.depth()), tree.distinct_count());
}

TEST(KdTreeTest, FrontierCountsAlwaysSumToTotal) {
  Rng rng(4);
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({Value(rng.UniformReal(0, 10)), Value(rng.UniformReal(0, 10))});
  }
  KdTree tree;
  tree.Build(NumericAttrs(), rows);
  for (int k = 0; k <= tree.depth(); ++k) {
    std::vector<KdTree::FrontierEntry> f;
    tree.Frontier(k, &f);
    int64_t total = 0;
    for (const auto& e : f) total += e.count;
    EXPECT_EQ(total, 200) << "level " << k;
  }
}

TEST(KdTreeTest, ResolutionNonIncreasingInLevel) {
  Rng rng(5);
  std::vector<Tuple> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back({Value(rng.UniformReal(0, 100)), Value(rng.UniformReal(0, 100))});
  }
  KdTree tree;
  tree.Build(NumericAttrs(), rows);
  std::vector<double> prev = tree.FrontierResolution(0);
  for (int k = 1; k <= tree.depth(); ++k) {
    std::vector<double> cur = tree.FrontierResolution(k);
    for (size_t a = 0; a < cur.size(); ++a) {
      EXPECT_LE(cur[a], prev[a] + 1e-9) << "level " << k << " attr " << a;
    }
    prev = cur;
  }
  // Leaves are exact.
  for (double r : tree.FrontierResolution(tree.depth())) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(KdTreeTest, FrontierCoversWithinResolution) {
  Rng rng(6);
  std::vector<Tuple> rows;
  for (int i = 0; i < 128; ++i) {
    rows.push_back({Value(rng.UniformReal(0, 50)), Value(rng.UniformReal(0, 50))});
  }
  KdTree tree;
  auto attrs = NumericAttrs();
  tree.Build(attrs, rows);
  for (int k = 0; k <= tree.depth(); k += 2) {
    std::vector<KdTree::FrontierEntry> f;
    tree.Frontier(k, &f);
    std::vector<double> res = tree.FrontierResolution(k);
    for (const auto& row : rows) {
      bool covered = false;
      for (const auto& e : f) {
        bool within = true;
        for (size_t a = 0; a < attrs.size() && within; ++a) {
          within = AttributeDistance(attrs[a].distance, row[a], (*e.representative)[a]) <=
                   res[a] + 1e-9;
        }
        if (within) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "level " << k;
    }
  }
}

TEST(KdTreeTest, TrivialAttrsReachZeroResolution) {
  // A categorical column with 4 distinct values must reach resolution 0
  // once the frontier separates the values.
  std::vector<AttributeDef> attrs{{"c", DataType::kInt64, DistanceSpec::Trivial()},
                                  {"v", DataType::kDouble, DistanceSpec::Numeric()}};
  Rng rng(7);
  std::vector<Tuple> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({Value(rng.Uniform(0, 3)), Value(rng.UniformReal(0, 10))});
  }
  KdTree tree;
  tree.Build(attrs, rows);
  EXPECT_TRUE(std::isinf(tree.FrontierResolution(0)[0]));
  EXPECT_DOUBLE_EQ(tree.FrontierResolution(tree.depth())[0], 0.0);
  // At some moderate level the categorical spread should already be 0.
  bool zero_before_leaves = false;
  for (int k = 2; k < tree.depth(); ++k) {
    if (tree.FrontierResolution(k)[0] == 0.0) {
      zero_before_leaves = true;
      break;
    }
  }
  EXPECT_TRUE(zero_before_leaves);
}

TEST(KdTreeTest, NodeCountLinear) {
  Rng rng(8);
  std::vector<Tuple> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value(rng.UniformReal(0, 1000)), Value(rng.UniformReal(0, 1000))});
  }
  KdTree tree;
  tree.Build(NumericAttrs(), rows);
  EXPECT_LE(tree.node_count(), 2 * tree.distinct_count());
}

// --- IndexStore ---

// Every IndexStore test runs against both storage backends: the
// in-memory tier and the disk-backed block file (small blocks so group
// records straddle block boundaries, and a modest cache so reads evict).
// The assertions are backend-agnostic on purpose — fetch results,
// meter charges, conformance, and maintenance must be bit-identical.
class IndexStoreTest : public ::testing::TestWithParam<IndexBackendKind> {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(10, 80, 5, 6, 200);
    schema_ = db_.Schema();
  }
  IndexStoreOptions Options() const {
    IndexStoreOptions opts;
    opts.backend = GetParam();
    if (opts.backend == IndexBackendKind::kBlockFile) {
      const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
      std::string tag = std::string(info->test_suite_name()) + "_" + info->name();
      for (char& c : tag) {
        if (c == '/') c = '_';
      }
      opts.path = ::testing::TempDir() + "beas_index_" + tag + ".blk";
      opts.block_bytes = 512;
      opts.cache_bytes = 16 * 1024;
    }
    return opts;
  }
  Database db_;
  DatabaseSchema schema_;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, IndexStoreTest,
    ::testing::Values(IndexBackendKind::kMemory, IndexBackendKind::kBlockFile),
    [](const ::testing::TestParamInfo<IndexBackendKind>& info) {
      return info.param == IndexBackendKind::kMemory ? "Memory" : "BlockFile";
    });

TEST_P(IndexStoreTest, BuildsUniversalSchema) {
  IndexStore store;
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), {}, Options()).ok());
  EXPECT_EQ(store.schema().families().size(), 3u);
  for (const auto& f : store.schema().families()) {
    EXPECT_FALSE(f.is_constraint);
    EXPECT_TRUE(f.x_attrs.empty());
    EXPECT_GT(f.max_level, 0);
    // Top level is exact.
    for (double r : f.level_resolution.back()) EXPECT_DOUBLE_EQ(r, 0.0);
  }
}

TEST_P(IndexStoreTest, ConstraintValidated) {
  ConstraintSpec ok{"person", {"pid"}, {"city"}, 1};
  IndexStore store;
  EXPECT_TRUE(store.Build(db_, {}, {ok}, Options()).ok());
  // A deliberately false bound: a person can have up to 6 friends.
  ConstraintSpec bad{"friend", {"pid"}, {"fid"}, 1};
  IndexStore store2;
  EXPECT_FALSE(store2.Build(db_, {}, {bad}, Options()).ok());
  ConstraintSpec good{"friend", {"pid"}, {"fid"}, 6};
  IndexStore store3;
  EXPECT_TRUE(store3.Build(db_, {}, {good}, Options()).ok());
}

TEST_P(IndexStoreTest, FetchConstraintReturnsExactGroup) {
  IndexStore store;
  ASSERT_TRUE(store.Build(db_, {}, {{"person", {"pid"}, {"city"}, 1}}, Options()).ok());
  store.meter().StartQuery(0);
  auto entries = store.Fetch("person(pid->city)!1", 0, {Value(int64_t{3})});
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 1u);
  const Table* person = *db_.FindTable("person");
  Value expected;
  for (const auto& row : person->rows()) {
    if (row[0] == Value(int64_t{3})) expected = row[1];
  }
  EXPECT_EQ((*(*entries)[0].y)[0], expected);
}

TEST_P(IndexStoreTest, MeterChargesAndEnforcesBudget) {
  IndexStore store;
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), {}, Options()).ok());
  const BoundFamily& poi = **store.schema().FindFamily("poi(->address,type,city,price)");
  store.meter().StartQuery(4);
  auto r1 = store.Fetch(poi.id, 2, {});
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_LE(store.meter().accessed(), 4u);
  auto r2 = store.Fetch(poi.id, 3, {});
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kOutOfBudget);
}

TEST(AccessMeterTest, ChargeOverflowClampsAndFails) {
  // Regression: accessed_ + n used to wrap for adversarial n (e.g. a
  // corrupt batch size), silently passing the budget check.
  AccessMeter meter;
  meter.StartQuery(1000);
  ASSERT_TRUE(meter.Charge(5).ok());
  Status st = meter.Charge(UINT64_MAX - 2);
  EXPECT_EQ(st.code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(meter.accessed(), UINT64_MAX);  // clamped, not wrapped
  // The meter stays exhausted afterwards.
  EXPECT_FALSE(meter.Charge(1).ok());
}

TEST(AccessMeterTest, ChargeOverflowFailsEvenWithoutEnforcement) {
  // budget 0 disables the alpha bound, but a wrapped counter is still
  // meaningless and must not be reported as a valid accessed count.
  AccessMeter meter;
  meter.StartQuery(0);
  ASSERT_TRUE(meter.Charge(UINT64_MAX).ok());
  EXPECT_EQ(meter.Charge(1).code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(meter.accessed(), UINT64_MAX);
}

TEST(AccessMeterTest, DepositCommitOverflowClampsAndFails) {
  // The parallel deposit protocol funnels through the same guard.
  AccessMeter meter;
  meter.StartQuery(1000);
  meter.BeginDeposits(2);
  meter.Deposit(0, {5});
  meter.Deposit(1, {UINT64_MAX - 2});
  EXPECT_TRUE(meter.failed());
  EXPECT_EQ(meter.FinishDeposits().code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(meter.accessed(), UINT64_MAX);
}

TEST_P(IndexStoreTest, UnknownFamilyFails) {
  IndexStore store;
  ASSERT_TRUE(store.Build(db_, {}, {}, Options()).ok());
  store.meter().StartQuery(0);
  EXPECT_FALSE(store.Fetch("nope", 0, {}).ok());
}

TEST_P(IndexStoreTest, ConformanceOfAllFamilies) {
  IndexStore store;
  std::vector<ConstraintSpec> constraints{{"person", {"pid"}, {"city"}, 1},
                                          {"friend", {"pid"}, {"fid"}, 6}};
  auto families = UniversalFamilies(schema_);
  auto derived = FamiliesFromConstraints(schema_, constraints);
  ASSERT_TRUE(derived.ok());
  for (auto& f : *derived) families.push_back(f);
  ASSERT_TRUE(store.Build(db_, families, constraints, Options()).ok());
  Status st = CheckAllConformance(db_, &store);
  EXPECT_TRUE(st.ok()) << st;
}

TEST_P(IndexStoreTest, SizeAccounting) {
  IndexStore store;
  std::vector<ConstraintSpec> constraints{{"person", {"pid"}, {"city"}, 1}};
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), constraints, Options()).ok());
  EXPECT_GT(store.TotalEntries(), 0u);
  EXPECT_GT(store.ConstraintEntries(), 0u);
  EXPECT_LT(store.ConstraintEntries(), store.TotalEntries());
  auto fam = store.FamilyEntries("person(pid->city)!1");
  ASSERT_TRUE(fam.ok());
  EXPECT_EQ(*fam, 80u);  // one entry per person
}

TEST_P(IndexStoreTest, IncrementalInsertKeepsConformance) {
  IndexStore store;
  std::vector<ConstraintSpec> constraints{{"person", {"pid"}, {"city"}, 1}};
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), constraints, Options()).ok());
  Tuple row{Value(int64_t{1000}), Value(int64_t{2}), Value(123.0)};
  ASSERT_TRUE(store.ApplyInsert("person", row).ok());
  Table* person = *db_.FindMutableTable("person");
  ASSERT_TRUE(person->Append(row).ok());
  Status st = CheckAllConformance(db_, &store);
  EXPECT_TRUE(st.ok()) << st;
}

TEST_P(IndexStoreTest, IncrementalInsertRejectsConstraintViolation) {
  IndexStore store;
  std::vector<ConstraintSpec> constraints{{"person", {"pid"}, {"city"}, 1}};
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), constraints, Options()).ok());
  // pid 0 already has a city; adding a second distinct city violates N=1.
  Tuple row{Value(int64_t{0}), Value(int64_t{999}), Value(1.0)};
  EXPECT_FALSE(store.ApplyInsert("person", row).ok());
}

TEST_P(IndexStoreTest, IncrementalRemove) {
  IndexStore store;
  ASSERT_TRUE(store.Build(db_, UniversalFamilies(schema_), {}, Options()).ok());
  Table* person = *db_.FindMutableTable("person");
  Tuple victim = person->row(0);
  ASSERT_TRUE(store.ApplyRemove("person", victim).ok());
  // Remove from the table too, then everything should still conform.
  Table rebuilt(person->schema());
  for (size_t i = 1; i < person->size(); ++i) rebuilt.AppendUnchecked(person->row(i));
  *person = std::move(rebuilt);
  Status st = CheckAllConformance(db_, &store);
  EXPECT_TRUE(st.ok()) << st;
}

}  // namespace
}  // namespace beas
