#include <gtest/gtest.h>

#include "ra/analysis.h"
#include "ra/ast.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

class RaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(1, 50, 5, 4, 100);
    schema_ = db_.Schema();
  }
  Database db_;
  DatabaseSchema schema_;
};

TEST_F(RaTest, RelationLeafQualifiesAttributes) {
  auto q = QueryNode::Relation(schema_, "person", "p");
  ASSERT_TRUE(q.ok()) << q.status();
  const RelationSchema& out = (*q)->output_schema();
  EXPECT_EQ(out.arity(), 3u);
  EXPECT_TRUE(out.FindAttribute("p.pid").has_value());
  EXPECT_TRUE(out.FindAttribute("p.city").has_value());
}

TEST_F(RaTest, RelationUnknownFails) {
  EXPECT_FALSE(QueryNode::Relation(schema_, "nope", "n").ok());
}

TEST_F(RaTest, SelectValidatesAttributes) {
  auto rel = *QueryNode::Relation(schema_, "person", "p");
  Predicate good{{Operand::Attr("p.pid"), CompareOp::kEq, Operand::Const(Value(1))}};
  EXPECT_TRUE(QueryNode::Select(rel, good).ok());
  Predicate bad{{Operand::Attr("p.zzz"), CompareOp::kEq, Operand::Const(Value(1))}};
  EXPECT_FALSE(QueryNode::Select(rel, bad).ok());
}

TEST_F(RaTest, ProductRejectsSharedAliases) {
  auto a = *QueryNode::Relation(schema_, "person", "p");
  auto b = *QueryNode::Relation(schema_, "person", "p");
  EXPECT_FALSE(QueryNode::Product(a, b).ok());
  auto c = *QueryNode::Relation(schema_, "person", "q");
  EXPECT_TRUE(QueryNode::Product(a, c).ok());
}

TEST_F(RaTest, ProjectRenames) {
  auto rel = *QueryNode::Relation(schema_, "person", "p");
  auto proj = QueryNode::Project(rel, {"p.city"}, true, {"city_out"});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE((*proj)->output_schema().FindAttribute("city_out").has_value());
}

TEST_F(RaTest, GroupBySchema) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  auto gp = QueryNode::GroupBy(rel, {"h.city"}, AggFunc::kCount, "h.address", "n");
  ASSERT_TRUE(gp.ok()) << gp.status();
  const RelationSchema& out = (*gp)->output_schema();
  ASSERT_EQ(out.arity(), 2u);
  EXPECT_EQ(out.attribute(0).name, "h.city");
  EXPECT_EQ(out.attribute(1).name, "n");
  EXPECT_EQ(out.attribute(1).type, DataType::kInt64);
}

TEST_F(RaTest, GroupByAvgRequiresNumeric) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  EXPECT_FALSE(QueryNode::GroupBy(rel, {"h.city"}, AggFunc::kAvg, "h.type").ok());
  EXPECT_TRUE(QueryNode::GroupBy(rel, {"h.city"}, AggFunc::kAvg, "h.price").ok());
}

TEST_F(RaTest, NeededRelaxationEquality) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  const RelationSchema& s = rel->output_schema();
  Tuple t{Value(10.0), Value("hotel"), Value(int64_t{1}), Value(99.0)};
  Comparison price_eq{Operand::Attr("h.price"), CompareOp::kEq, Operand::Const(Value(95.0)),
                      0.0};
  EXPECT_DOUBLE_EQ(NeededRelaxation(s, t, price_eq), 4.0);
  Comparison type_eq{Operand::Attr("h.type"), CompareOp::kEq,
                     Operand::Const(Value("museum")), 0.0};
  EXPECT_TRUE(std::isinf(NeededRelaxation(s, t, type_eq)));
}

TEST_F(RaTest, NeededRelaxationInequalities) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  const RelationSchema& s = rel->output_schema();
  Tuple t{Value(10.0), Value("hotel"), Value(int64_t{1}), Value(99.0)};
  Comparison le{Operand::Attr("h.price"), CompareOp::kLe, Operand::Const(Value(95.0)), 0.0};
  EXPECT_DOUBLE_EQ(NeededRelaxation(s, t, le), 4.0);
  Comparison le_ok{Operand::Attr("h.price"), CompareOp::kLe, Operand::Const(Value(100.0)),
                   0.0};
  EXPECT_DOUBLE_EQ(NeededRelaxation(s, t, le_ok), 0.0);
  Comparison ge{Operand::Attr("h.price"), CompareOp::kGe, Operand::Const(Value(99.0)), 0.0};
  EXPECT_DOUBLE_EQ(NeededRelaxation(s, t, ge), 0.0);
  Comparison ne{Operand::Attr("h.price"), CompareOp::kNe, Operand::Const(Value(99.0)), 0.0};
  EXPECT_TRUE(std::isinf(NeededRelaxation(s, t, ne)));
}

TEST_F(RaTest, EvalComparisonWithSlack) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  const RelationSchema& s = rel->output_schema();
  Tuple t{Value(10.0), Value("hotel"), Value(int64_t{1}), Value(99.0)};
  Comparison cmp{Operand::Attr("h.price"), CompareOp::kEq, Operand::Const(Value(95.0)), 0.0};
  EXPECT_FALSE(EvalComparison(s, t, cmp));
  cmp.slack = 4.0;
  EXPECT_TRUE(EvalComparison(s, t, cmp));
  cmp.slack = 3.9;
  EXPECT_FALSE(EvalComparison(s, t, cmp));
}

TEST_F(RaTest, StrictInequalityAtTieNeedsPositiveRelaxation) {
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  const RelationSchema& s = rel->output_schema();
  Tuple t{Value(10.0), Value("hotel"), Value(int64_t{1}), Value(95.0)};
  Comparison lt{Operand::Attr("h.price"), CompareOp::kLt, Operand::Const(Value(95.0)), 0.0};
  EXPECT_FALSE(EvalComparison(s, t, lt));
  double needed = NeededRelaxation(s, t, lt);
  EXPECT_GT(needed, 0.0);
  EXPECT_LT(needed, 1e-100);  // the tie epsilon, not a real distance
}

// --- Parser ---

TEST_F(RaTest, ParsesExample1Query) {
  auto q = ParseSql(schema_,
                    "select h.address, h.price from poi as h, friend as f, person as p "
                    "where f.pid = 0 and f.fid = p.pid and p.city = h.city and "
                    "h.type = 'hotel' and h.price <= 95");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ClassifyQuery(*q), QueryClass::kSpc);
  const RelationSchema& out = (*q)->output_schema();
  ASSERT_EQ(out.arity(), 2u);
  EXPECT_EQ(out.attribute(0).name, "h.address");
  EXPECT_EQ(out.attribute(1).name, "h.price");
}

TEST_F(RaTest, ParsesAggregate) {
  auto q = ParseSql(schema_,
                    "select h.city, count(h.address) as n from poi as h "
                    "where h.type = 'hotel' group by h.city");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ClassifyQuery(*q), QueryClass::kAggSpc);
  EXPECT_EQ((*q)->agg(), AggFunc::kCount);
}

TEST_F(RaTest, ParsesExcept) {
  auto q = ParseSql(schema_,
                    "select p.city from person as p except "
                    "select h.city from poi as h where h.type = 'hotel'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ClassifyQuery(*q), QueryClass::kRa);
}

TEST_F(RaTest, ParsesUnion) {
  auto q = ParseSql(schema_,
                    "select p.city from person as p union select h.city from poi as h");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->kind(), QueryNode::Kind::kUnion);
}

TEST_F(RaTest, ParserResolvesUnqualified) {
  auto q = ParseSql(schema_, "select price from poi as h where type = 'hotel'");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST_F(RaTest, ParserRejectsAmbiguous) {
  auto q = ParseSql(schema_, "select city from person as p, poi as h");
  EXPECT_FALSE(q.ok());
}

TEST_F(RaTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseSql(schema_, "selek * from person p").ok());
  EXPECT_FALSE(ParseSql(schema_, "select p.pid from person p where").ok());
  EXPECT_FALSE(ParseSql(schema_, "select p.pid frm person p").ok());
  EXPECT_FALSE(ParseSql(schema_, "select p.pid from person p where p.pid = 'unterminated")
                   .ok());
}

TEST_F(RaTest, ParserNormalizesConstOnLeft) {
  auto q = ParseSql(schema_, "select p.pid from person as p where 3 >= p.pid");
  ASSERT_TRUE(q.ok()) << q.status();
  // The comparison should be attr <= const after normalization.
  Predicate preds = CollectComparisons(*q);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(preds[0].lhs.is_attr);
  EXPECT_EQ(preds[0].op, CompareOp::kLe);
}

// --- Analysis ---

TEST_F(RaTest, ClassifyQueryVariants) {
  auto spc = *ParseSql(schema_, "select p.pid from person as p");
  EXPECT_EQ(ClassifyQuery(spc), QueryClass::kSpc);
  auto ra = *ParseSql(schema_,
                      "select p.city from person as p except select h.city from poi as h");
  EXPECT_EQ(ClassifyQuery(ra), QueryClass::kRa);
  auto agg = *ParseSql(schema_, "select p.city, count(p.pid) from person as p group by "
                                "p.city");
  EXPECT_EQ(ClassifyQuery(agg), QueryClass::kAggSpc);
}

TEST_F(RaTest, NormalizeSpcCollectsAtomsAndComparisons) {
  auto q = *ParseSql(schema_,
                     "select h.address from poi as h, person as p "
                     "where p.city = h.city and h.price <= 95");
  auto nf = NormalizeSpc(q);
  ASSERT_TRUE(nf.ok()) << nf.status();
  EXPECT_EQ(nf->atoms.size(), 2u);
  EXPECT_EQ(nf->comparisons.size(), 2u);
  ASSERT_EQ(nf->output_attrs.size(), 1u);
  EXPECT_EQ(nf->output_attrs[0], "h.address");
}

TEST_F(RaTest, NormalizeSpcRejectsRa) {
  auto q = *ParseSql(schema_,
                     "select p.city from person as p except select h.city from poi as h");
  EXPECT_FALSE(NormalizeSpc(q).ok());
}

TEST_F(RaTest, MaxSpcSubqueriesOfDifference) {
  auto q = *ParseSql(schema_,
                     "select p.city from person as p except select h.city from poi as h");
  auto subs = MaxSpcSubqueries(q);
  EXPECT_EQ(subs.size(), 2u);
}

TEST_F(RaTest, MaximalInducedDropsNegation) {
  auto q = *ParseSql(schema_,
                     "select p.city from person as p except select h.city from poi as h");
  auto hat = MaximalInduced(q);
  ASSERT_TRUE(hat.ok());
  EXPECT_TRUE(IsSpc(*hat));
  EXPECT_EQ(ClassifyQuery(*hat), QueryClass::kSpc);
}

TEST_F(RaTest, MaximalInducedKeepsUnions) {
  auto q = *ParseSql(schema_,
                     "select p.city from person as p union select h.city from poi as h");
  auto hat = MaximalInduced(q);
  ASSERT_TRUE(hat.ok());
  EXPECT_EQ((*hat)->kind(), QueryNode::Kind::kUnion);
}

TEST_F(RaTest, OutputOriginsTracksRenames) {
  auto q = *ParseSql(schema_, "select p.city as c from person as p");
  auto origins = OutputOrigins(q);
  ASSERT_TRUE(origins.count("c") > 0);
  EXPECT_EQ(origins.at("c"), "p.city");
}

}  // namespace
}  // namespace beas
