#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace beas {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfBudget), "OutOfBudget");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    BEAS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto producer = []() -> Result<int> { return 7; };
  auto consumer = [&]() -> Result<int> {
    BEAS_ASSIGN_OR_RETURN(int v, producer());
    return v + 1;
  };
  auto r = consumer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto producer = []() -> Result<int> { return Status::Internal("boom"); };
  auto consumer = [&]() -> Result<int> {
    BEAS_ASSIGN_OR_RETURN(int v, producer());
    return v;
  };
  EXPECT_EQ(consumer().status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfWithinBoundsAndSkewed) {
  Rng rng(7);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Zipf(10, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
    ones += v == 1;
  }
  // Rank 1 should dominate any single high rank under s=1.2.
  EXPECT_GT(ones, 200);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.123456789, 3), "0.123");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("abc_123"), "abc_123");
}

}  // namespace
}  // namespace beas
