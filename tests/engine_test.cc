#include <gtest/gtest.h>

#include <cmath>

#include "engine/evaluator.h"
#include "engine/relaxed.h"
#include "ra/parser.h"
#include "testing/test_data.h"

namespace beas {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeSocialDb(2, 60, 4, 5, 150);
    schema_ = db_.Schema();
  }

  Table Eval(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    EXPECT_TRUE(q.ok()) << q.status();
    Evaluator ev(db_);
    auto t = ev.Eval(*q);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
  DatabaseSchema schema_;
};

TEST_F(EngineTest, ScanAndFilter) {
  Table all = Eval("select h.address from poi as h");
  Table hotels = Eval("select h.address from poi as h where h.type = 'hotel'");
  EXPECT_GT(all.size(), 0u);
  EXPECT_GT(hotels.size(), 0u);
  EXPECT_LT(hotels.size(), all.size());
}

TEST_F(EngineTest, SelectionMatchesManualCount) {
  Table cheap = Eval("select h.address, h.price from poi as h where h.price <= 50");
  const Table* poi = *db_.FindTable("poi");
  size_t expected = 0;
  for (const auto& row : poi->rows()) expected += row[3].numeric() <= 50 ? 1 : 0;
  EXPECT_EQ(cheap.size(), expected);
}

TEST_F(EngineTest, HashJoinMatchesNestedLoopSemantics) {
  Table joined = Eval(
      "select f.pid, p.city from friend as f, person as p where f.fid = p.pid");
  const Table* friends = *db_.FindTable("friend");
  const Table* people = *db_.FindTable("person");
  std::set<std::pair<int64_t, int64_t>> expected;
  for (const auto& f : friends->rows()) {
    for (const auto& p : people->rows()) {
      if (f[1] == p[0]) expected.insert({f[0].as_int64(), p[1].as_int64()});
    }
  }
  EXPECT_EQ(joined.size(), expected.size());
  for (const auto& row : joined.rows()) {
    EXPECT_TRUE(expected.count({row[0].as_int64(), row[1].as_int64()}) > 0);
  }
}

TEST_F(EngineTest, ProjectionDeduplicates) {
  Table cities = Eval("select p.city from person as p");
  EXPECT_LE(cities.size(), 4u);  // only 4 cities exist
  std::set<int64_t> seen;
  for (const auto& row : cities.rows()) {
    EXPECT_TRUE(seen.insert(row[0].as_int64()).second) << "duplicate city";
  }
}

TEST_F(EngineTest, UnionDeduplicates) {
  Table u = Eval(
      "select p.city from person as p union select p.city from person as p");
  Table single = Eval("select p.city from person as p");
  EXPECT_EQ(u.size(), single.size());
}

TEST_F(EngineTest, DifferenceSemantics) {
  Table diff = Eval(
      "select p.city from person as p except select h.city from poi as h "
      "where h.type = 'hotel'");
  Table hotel_cities = Eval("select h.city from poi as h where h.type = 'hotel'");
  for (const auto& row : diff.rows()) {
    EXPECT_FALSE(hotel_cities.Contains(row));
  }
}

TEST_F(EngineTest, GroupByCount) {
  Table counts = Eval(
      "select h.city, count(h.address) as n from poi as h group by h.city");
  const Table* poi = *db_.FindTable("poi");
  std::map<int64_t, int64_t> expected;
  for (const auto& row : poi->rows()) expected[row[2].as_int64()] += 1;
  ASSERT_EQ(counts.size(), expected.size());
  for (const auto& row : counts.rows()) {
    EXPECT_EQ(row[1].as_int64(), expected.at(row[0].as_int64()));
  }
}

TEST_F(EngineTest, GroupByMinMaxAvgSum) {
  Table mins = Eval("select h.city, min(h.price) from poi as h group by h.city");
  Table maxs = Eval("select h.city, max(h.price) from poi as h group by h.city");
  Table avgs = Eval("select h.city, avg(h.price) from poi as h group by h.city");
  Table sums = Eval("select h.city, sum(h.price) from poi as h group by h.city");
  ASSERT_EQ(mins.size(), maxs.size());
  ASSERT_EQ(mins.size(), avgs.size());
  ASSERT_EQ(mins.size(), sums.size());
  std::map<int64_t, std::pair<double, double>> minmax;
  for (const auto& r : mins.rows()) minmax[r[0].as_int64()].first = r[1].numeric();
  for (const auto& r : maxs.rows()) minmax[r[0].as_int64()].second = r[1].numeric();
  for (const auto& r : avgs.rows()) {
    auto [lo, hi] = minmax.at(r[0].as_int64());
    EXPECT_GE(r[1].numeric(), lo);
    EXPECT_LE(r[1].numeric(), hi);
  }
}

TEST_F(EngineTest, WeightedCountUsesWeightColumns) {
  // A table with a __w column: count should sum the weights.
  Database db;
  RelationSchema r("t", {{"g", DataType::kInt64},
                         {"v", DataType::kDouble, DistanceSpec::Numeric()},
                         {"__w", DataType::kInt64, DistanceSpec::Numeric()}});
  Table t(r);
  t.AppendUnchecked({Value(int64_t{1}), Value(10.0), Value(int64_t{3})});
  t.AppendUnchecked({Value(int64_t{1}), Value(20.0), Value(int64_t{2})});
  t.AppendUnchecked({Value(int64_t{2}), Value(5.0), Value(int64_t{1})});
  (void)db.AddTable(std::move(t));
  DatabaseSchema schema = db.Schema();
  // "t.__w" ends with ".__w" after aliasing, triggering weighted mode.
  auto q = *ParseSql(schema, "select a.g, count(a.v) as n from t as a group by a.g");
  Evaluator ev(db);
  auto out = ev.Eval(q);
  ASSERT_TRUE(out.ok()) << out.status();
  std::map<int64_t, int64_t> got;
  for (const auto& row : out->rows()) got[row[0].as_int64()] = row[1].as_int64();
  EXPECT_EQ(got.at(1), 5);  // 3 + 2
  EXPECT_EQ(got.at(2), 1);
  // Weighted sum: 3*10 + 2*20 = 70.
  auto qs = *ParseSql(schema, "select a.g, sum(a.v) as s from t as a group by a.g");
  auto sums = ev.Eval(qs);
  ASSERT_TRUE(sums.ok());
  for (const auto& row : sums->rows()) {
    if (row[0].as_int64() == 1) EXPECT_DOUBLE_EQ(row[1].numeric(), 70.0);
  }
}

TEST_F(EngineTest, CrossProductCapEnforced) {
  EvalOptions opts;
  opts.max_intermediate_rows = 100;
  Evaluator ev(db_, opts);
  auto q = *ParseSql(schema_, "select p.pid, q.pid from person as p, person as q");
  auto out = ev.Eval(q);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfBudget);
}

TEST_F(EngineTest, RelaxedSelectionWithSlack) {
  // price = 95 with slack 5 should admit prices in [90, 100].
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  Predicate pred{{Operand::Attr("h.price"), CompareOp::kEq, Operand::Const(Value(95.0)),
                  5.0}};
  auto sel = *QueryNode::Select(rel, pred);
  auto proj = *QueryNode::Project(sel, {"h.price"}, true);
  Evaluator ev(db_);
  auto out = ev.Eval(proj);
  ASSERT_TRUE(out.ok());
  for (const auto& row : out->rows()) {
    EXPECT_GE(row[0].numeric(), 90.0);
    EXPECT_LE(row[0].numeric(), 100.0);
  }
}

// --- Batched vs. scalar equivalence (vectorized executor work) ---
//
// The vectorized paths must produce *identical* tables to the
// tuple-at-a-time fallback: same rows, same order, same engine cost
// accounting (rows materialized), same failures.

class EngineEquivalenceTest : public EngineTest {
 protected:
  // Evaluates `sql` under both EvalOptions::vectorized settings and
  // asserts identical outcomes.
  void ExpectEquivalent(const std::string& sql) {
    auto q = ParseSql(schema_, sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status();
    EvalOptions scalar_opts;
    scalar_opts.vectorized = false;
    EvalOptions batched_opts;
    batched_opts.vectorized = true;
    Evaluator scalar(db_, scalar_opts);
    Evaluator batched(db_, batched_opts);
    auto a = scalar.Eval(*q);
    auto b = batched.Eval(*q);
    ASSERT_EQ(a.ok(), b.ok()) << sql << "\nscalar: " << a.status()
                              << "\nbatched: " << b.status();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << sql;
      return;
    }
    ASSERT_EQ(a->size(), b->size()) << sql;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->row(i), b->row(i)) << sql << " row " << i;
    }
    EXPECT_EQ(scalar.last_rows_materialized(), batched.last_rows_materialized()) << sql;
  }
};

TEST_F(EngineEquivalenceTest, FixedQueryShapes) {
  const std::vector<std::string> queries = {
      "select h.address from poi as h",
      "select h.address, h.price from poi as h where h.price <= 50",
      "select h.address from poi as h where h.type = 'hotel' and h.price > 80",
      "select h.address from poi as h where h.type <> 'hotel'",
      "select f.pid, p.city from friend as f, person as p where f.fid = p.pid",
      "select p.city from person as p union select h.city from poi as h",
      "select p.city from person as p except select h.city from poi as h "
      "where h.type = 'hotel'",
      "select h.city, count(h.address) as n from poi as h group by h.city",
      "select h.city, sum(h.price) as s from poi as h where h.price >= 40 "
      "group by h.city",
      "select h.city, avg(h.price) as a from poi as h group by h.city",
      "select h.city, min(h.price) from poi as h group by h.city",
      "select h.city, max(h.price) from poi as h group by h.city",
  };
  for (const auto& sql : queries) ExpectEquivalent(sql);
}

TEST_F(EngineEquivalenceTest, RandomizedSelections) {
  Rng rng(20260730);
  const std::vector<std::string> num_ops = {"<", "<=", ">", ">=", "="};
  const std::vector<std::string> types = {"hotel", "museum", "cafe", "park"};
  for (int i = 0; i < 40; ++i) {
    std::string sql = "select h.address, h.type, h.price from poi as h where ";
    int nsel = static_cast<int>(rng.Uniform(1, 3));
    for (int s = 0; s < nsel; ++s) {
      if (s > 0) sql += " and ";
      if (rng.Bernoulli(0.3)) {
        sql += "h.type = '" + types[static_cast<size_t>(rng.Uniform(0, 3))] + "'";
      } else {
        sql += "h.price " + num_ops[static_cast<size_t>(rng.Uniform(0, 4))] + " " +
               std::to_string(rng.Uniform(20, 200));
      }
    }
    ExpectEquivalent(sql);
  }
}

TEST_F(EngineEquivalenceTest, RandomizedJoins) {
  Rng rng(77);
  for (int i = 0; i < 15; ++i) {
    int64_t pid = rng.Uniform(0, 60);
    int64_t price = rng.Uniform(30, 150);
    std::string sql =
        "select h.address, h.price from poi as h, friend as f, person as p "
        "where f.pid = " + std::to_string(pid) +
        " and f.fid = p.pid and p.city = h.city and h.price <= " +
        std::to_string(price);
    ExpectEquivalent(sql);
  }
}

TEST_F(EngineEquivalenceTest, RelaxedPredicateWithSlack) {
  // Slack > 0 exercises the NeededRelaxationResolved (non-direct) batch
  // path.
  auto rel = *QueryNode::Relation(schema_, "poi", "h");
  Predicate pred{{Operand::Attr("h.price"), CompareOp::kEq, Operand::Const(Value(95.0)),
                  5.0}};
  auto sel = *QueryNode::Select(rel, pred);
  auto proj = *QueryNode::Project(sel, {"h.address", "h.price"}, true);
  EvalOptions scalar_opts;
  scalar_opts.vectorized = false;
  Evaluator scalar(db_, scalar_opts);
  Evaluator batched(db_);
  auto a = scalar.Eval(proj);
  auto b = batched.Eval(proj);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ(a->row(i), b->row(i));
}

TEST_F(EngineEquivalenceTest, IntermediateCapFailsIdentically) {
  EvalOptions scalar_opts;
  scalar_opts.vectorized = false;
  scalar_opts.max_intermediate_rows = 100;
  EvalOptions batched_opts;
  batched_opts.max_intermediate_rows = 100;
  Evaluator scalar(db_, scalar_opts);
  Evaluator batched(db_, batched_opts);
  auto q = *ParseSql(schema_, "select p.pid, q.pid from person as p, person as q");
  auto a = scalar.Eval(q);
  auto b = batched.Eval(q);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), b.status().code());
}

// --- Relaxed evaluator ---

TEST_F(EngineTest, RelaxedEvalTracksEntryRelaxation) {
  auto q = *ParseSql(schema_,
                     "select h.address, h.price from poi as h "
                     "where h.type = 'hotel' and h.price <= 50");
  RelaxedEvaluator relaxed(db_);
  auto rows = relaxed.Eval(q, /*r_cap=*/30.0);
  ASSERT_TRUE(rows.ok()) << rows.status();
  const Table* poi = *db_.FindTable("poi");
  size_t within_relaxation = 0;
  for (const auto& row : poi->rows()) {
    if (row[1] == Value("hotel") && row[3].numeric() <= 80.0) ++within_relaxation;
  }
  EXPECT_EQ(rows->size(), within_relaxation);
  for (const auto& r : *rows) {
    double price = r.tuple[1].numeric();
    if (price <= 50) {
      EXPECT_DOUBLE_EQ(r.r_enter, 0.0);
    } else {
      EXPECT_NEAR(r.r_enter, price - 50.0, 1e-9);
    }
    EXPECT_TRUE(std::isinf(r.r_exit));
  }
}

TEST_F(EngineTest, RelaxedEvalPrunesBeyondCap) {
  auto q = *ParseSql(schema_, "select h.price from poi as h where h.price <= 50");
  RelaxedEvaluator relaxed(db_);
  auto rows = relaxed.Eval(q, 10.0);
  ASSERT_TRUE(rows.ok());
  for (const auto& r : *rows) EXPECT_LE(r.tuple[0].numeric(), 60.0);
}

TEST_F(EngineTest, RelaxedEvalDifferenceProducesExitBounds) {
  auto q = *ParseSql(schema_,
                     "select h.price from poi as h where h.type = 'hotel' except "
                     "select h2.price from poi as h2 where h2.type = 'museum'");
  RelaxedEvaluator relaxed(db_);
  auto rows = relaxed.Eval(q, 5.0);
  ASSERT_TRUE(rows.ok()) << rows.status();
  for (const auto& r : *rows) {
    EXPECT_LT(r.r_enter, r.r_exit);
  }
}

TEST_F(EngineTest, RelaxedEvalRejectsGroupBy) {
  auto q = *ParseSql(schema_,
                     "select h.city, count(h.price) from poi as h group by h.city");
  RelaxedEvaluator relaxed(db_);
  EXPECT_EQ(relaxed.Eval(q, 1.0).status().code(), StatusCode::kUnimplemented);
}

TEST_F(EngineTest, RelaxedEvalAtZeroCapMatchesExact) {
  auto q = *ParseSql(schema_,
                     "select h.address, h.price from poi as h "
                     "where h.type = 'hotel' and h.price <= 60");
  RelaxedEvaluator relaxed(db_);
  auto rows = relaxed.Eval(q, 0.0);
  ASSERT_TRUE(rows.ok());
  Evaluator ev(db_);
  auto exact = ev.Eval(q);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(rows->size(), exact->size());
  for (const auto& r : *rows) {
    EXPECT_DOUBLE_EQ(r.r_enter, 0.0);
    EXPECT_TRUE(exact->Contains(r.tuple));
  }
}

}  // namespace
}  // namespace beas
