// ThreadPool unit tests, plus the AccessMeter deposit-protocol
// concurrency tests that back the parallel executor's determinism claim
// (docs/ARCHITECTURE.md "Parallel atom fetching").

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "index/index_store.h"

namespace beas {
namespace {

// A countdown the submitter blocks on; tasks never block, matching the
// executor's continuation-passing discipline.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;

  explicit Latch(size_t n) : remaining(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr int kTasks = 1000;
  std::atomic<int> counter{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  Latch latch(1);
  pool.Submit([&] { latch.CountDown(); });
  latch.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait: ~ThreadPool must run all 100 before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitContinuations) {
  // The executor's sub-batch fan-out submits from inside pool tasks;
  // a 1-thread pool must make progress (no blocking waits in tasks).
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  Latch latch(2);
  pool.Submit([&] {
    counter.fetch_add(1);
    latch.CountDown();
    pool.Submit([&] {
      counter.fetch_add(1);
      latch.CountDown();
    });
  });
  latch.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, NestedSubmitToSaturatedOwnPoolRunsInline) {
  // The nested-parallelism guard: a task submitting onto its own pool
  // while every worker is busy must run the task inline (in Submit, on
  // the submitting worker's thread) instead of enqueueing it — the
  // enqueue-and-wait pattern deadlocks a saturated pool. Regression
  // test for the morsel evaluator's units-inside-windows nesting.
  ThreadPool pool(1);
  Latch latch(1);
  std::thread::id worker_id;
  std::thread::id nested_id;
  bool ran_during_submit = false;
  pool.Submit([&] {
    worker_id = std::this_thread::get_id();
    bool ran = false;
    pool.Submit([&] {
      nested_id = std::this_thread::get_id();
      ran = true;
    });
    // The guard runs the nested task before Submit returns; without it
    // the task would still be queued here (and never run, were the
    // outer task to block on it).
    ran_during_submit = ran;
    latch.CountDown();
  });
  latch.Wait();
  EXPECT_TRUE(ran_during_submit);
  EXPECT_EQ(nested_id, worker_id) << "nested task left the submitting worker";
}

TEST(ThreadPoolTest, InlineGuardDoesNotApplyAcrossPools) {
  // Submitting to a *different* pool from inside a worker is ordinary
  // cross-pool handoff: the task must run on the other pool's worker,
  // not inline (the guard keys on the submitter's own pool identity).
  ThreadPool a(1);
  ThreadPool b(1);
  std::thread::id b_worker_id;
  {
    Latch probe(1);
    b.Submit([&] {
      b_worker_id = std::this_thread::get_id();
      probe.CountDown();
    });
    probe.Wait();
  }
  Latch latch(1);
  std::thread::id a_task_id;
  std::thread::id cross_task_id;
  a.Submit([&] {
    a_task_id = std::this_thread::get_id();
    b.Submit([&] {
      cross_task_id = std::this_thread::get_id();
      latch.CountDown();
    });
  });
  latch.Wait();
  EXPECT_EQ(cross_task_id, b_worker_id);
  EXPECT_NE(cross_task_id, a_task_id) << "cross-pool submit ran inline";
}

TEST(ThreadPoolTest, SaturatedSubmitFromOutsideStillEnqueues) {
  // The guard only fires for a pool's own workers: an external thread
  // submitting to a saturated pool must enqueue (never steal the work
  // into the caller), preserving Submit's asynchronous contract for the
  // executor's coordinator threads.
  ThreadPool pool(1);
  Latch gate_entered(1);
  Latch gate(1);
  pool.Submit([&] {
    gate_entered.CountDown();
    gate.Wait();  // hold the only worker busy
  });
  gate_entered.Wait();
  std::thread::id main_id = std::this_thread::get_id();
  std::thread::id task_id;
  Latch latch(1);
  pool.Submit([&] {
    task_id = std::this_thread::get_id();
    latch.CountDown();
  });  // must return immediately, task still queued
  gate.CountDown();
  latch.Wait();
  EXPECT_NE(task_id, main_id);
}

// --- AccessMeter deposit protocol under real concurrency ---

TEST(AccessMeterDepositTest, OutOfOrderDepositsCommitInSlotOrder) {
  AccessMeter meter;
  meter.StartQuery(10);
  meter.BeginDeposits(3);
  // Slot 2 arrives first; nothing commits until 0 and 1 are in.
  meter.Deposit(2, {4});
  EXPECT_EQ(meter.accessed(), 0u);
  meter.Deposit(0, {3});
  EXPECT_EQ(meter.accessed(), 3u);
  meter.Deposit(1, {2, 1});
  EXPECT_EQ(meter.accessed(), 10u);
  EXPECT_FALSE(meter.failed());
  EXPECT_TRUE(meter.FinishDeposits().ok());
}

TEST(AccessMeterDepositTest, FailurePointMatchesSequentialCharges) {
  // Sequential reference: charges 3, 5, 7 against budget 10 fail on the
  // third charge with accessed == 15 (the first total *exceeding* 10).
  AccessMeter seq;
  seq.StartQuery(10);
  EXPECT_TRUE(seq.Charge(3).ok());
  EXPECT_TRUE(seq.Charge(5).ok());
  Status failure = seq.Charge(7);
  EXPECT_EQ(failure.code(), StatusCode::kOutOfBudget);
  uint64_t seq_accessed = seq.accessed();

  // Deposits in the worst-case order: the failing slot lands last.
  AccessMeter par;
  par.StartQuery(10);
  par.BeginDeposits(3);
  par.Deposit(2, {7});
  par.Deposit(0, {3});
  EXPECT_FALSE(par.failed());
  par.Deposit(1, {5});
  EXPECT_TRUE(par.failed());
  Status got = par.FinishDeposits();
  EXPECT_EQ(got.code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(got.ToString(), failure.ToString());
  EXPECT_EQ(par.accessed(), seq_accessed);

  // Budget 7 moves the sequential failure to the second charge
  // (3 + 5 = 8 > 7): a later slot already deposited when the failure
  // commits must be discarded, freezing accessed at the failure value.
  AccessMeter seq7;
  seq7.StartQuery(7);
  EXPECT_TRUE(seq7.Charge(3).ok());
  Status failure7 = seq7.Charge(5);
  EXPECT_EQ(failure7.code(), StatusCode::kOutOfBudget);

  AccessMeter par7;
  par7.StartQuery(7);
  par7.BeginDeposits(3);
  par7.Deposit(2, {7});  // past the eventual failure point; discarded
  par7.Deposit(1, {5});
  par7.Deposit(0, {3});
  EXPECT_TRUE(par7.failed());
  EXPECT_EQ(par7.FinishDeposits().ToString(), failure7.ToString());
  EXPECT_EQ(par7.accessed(), seq7.accessed());
}

TEST(AccessMeterDepositTest, MissingSlotsAreACallerBug) {
  AccessMeter meter;
  meter.StartQuery(0);
  meter.BeginDeposits(2);
  meter.Deposit(0, {1});
  EXPECT_EQ(meter.FinishDeposits().code(), StatusCode::kInternal);
}

TEST(AccessMeterDepositTest, DeterministicUnderConcurrentDeposits) {
  // Many threads deposit disjoint slots in racing order; the total and
  // the failure point must equal the sequential charge stream's —
  // both on an in-budget run and on one that exhausts mid-stream.
  constexpr size_t kSlots = 64;
  std::vector<std::vector<uint64_t>> counts(kSlots);
  for (size_t s = 0; s < kSlots; ++s) counts[s] = {s % 7, (s * 13) % 11, 3};

  for (uint64_t budget : {uint64_t{100000}, uint64_t{200}}) {
    AccessMeter seq;
    seq.StartQuery(budget);
    Status seq_status = Status::OK();
    for (size_t s = 0; s < kSlots && seq_status.ok(); ++s) {
      for (uint64_t n : counts[s]) {
        seq_status = seq.Charge(n);
        if (!seq_status.ok()) break;
      }
    }
    EXPECT_EQ(seq_status.ok(), budget == 100000);

    for (int round = 0; round < 10; ++round) {
      AccessMeter par;
      par.StartQuery(budget);
      par.BeginDeposits(kSlots);
      {
        ThreadPool pool(8);
        Latch latch(kSlots);
        for (size_t s = 0; s < kSlots; ++s) {
          pool.Submit([&, s] {
            par.Deposit(s, counts[s]);
            latch.CountDown();
          });
        }
        latch.Wait();
      }
      Status par_status = par.FinishDeposits();
      EXPECT_EQ(par_status.ToString(), seq_status.ToString())
          << "budget " << budget << " round " << round;
      EXPECT_EQ(par.accessed(), seq.accessed())
          << "budget " << budget << " round " << round;
    }
  }
}

TEST(AccessMeterDepositTest, StartQueryResetsDepositState) {
  AccessMeter meter;
  meter.StartQuery(1);
  meter.BeginDeposits(1);
  meter.Deposit(0, {5});
  EXPECT_TRUE(meter.failed());
  meter.StartQuery(10);
  EXPECT_FALSE(meter.failed());
  EXPECT_EQ(meter.accessed(), 0u);
  meter.BeginDeposits(1);
  meter.Deposit(0, {5});
  EXPECT_TRUE(meter.FinishDeposits().ok());
  EXPECT_EQ(meter.accessed(), 5u);
}

}  // namespace
}  // namespace beas
