// Morsel-driven parallel evaluation (EvalOptions::eval_threads): the
// window-morsel vectorized filter path, the nested-parallelism guard at
// the engine layer, answer invariance of eval_threads on one instance,
// and the full differential sweep (thread matrix x backends x budgets x
// maintenance replays) through tests/testing/differential.h. Carries
// the ctest label `eval`; runs in the ASan and TSan CI jobs.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "beas/beas.h"
#include "common/thread_pool.h"
#include "engine/vectorized.h"
#include "storage/table.h"
#include "testing/differential.h"
#include "testing/test_data.h"
#include "types/column_chunk.h"

namespace beas {
namespace {

using ::beas::testing::DifferentialHarness;
using ::beas::testing::DifferentialOptions;
using ::beas::testing::MakeNumericDb;
using ::beas::testing::MakeSocialDb;
using ::beas::testing::SerializeAnswer;

std::vector<ConstraintSpec> SocialConstraints() {
  return {
      {"person", {"pid"}, {"city"}, 1},
      {"friend", {"pid"}, {"fid"}, 12},
  };
}

// A workload that exercises every morsel granularity: unions and a
// difference produce multi-unit plans (unit morsels), selections over
// multi-window tables drive the window morsels, joins and aggregates
// cover the rest of the evaluation tree.
std::vector<std::string> SweepQueries() {
  return {
      "select p.pid from person as p where p.city = 0 union "
      "select p.pid from person as p where p.city = 1",
      "select p.pid from person as p where p.city = 2 except "
      "select f.pid from friend as f where f.fid = 1",
      "select p.city from friend as f, person as p "
      "where f.pid = 7 and f.fid = p.pid",
      "select h.address, h.price from poi as h "
      "where h.type = 'hotel' and h.price <= 90",
      "select f.pid, count(f.fid) from friend as f group by f.pid",
      "select p.pid from person as p where p.city = 0 union "
      "select p.pid from person as p where p.city = 1 union "
      "select p.pid from person as p where p.city = 2",
  };
}

// --- Window morsels in the vectorized filter ---

class WindowFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeNumericDb(7, 5000);  // ~5 chunk windows of 1024 rows
    auto table = db_.FindTable("r");
    ASSERT_TRUE(table.ok());
    in_ = *table;
    cmps_ = {
        {Operand::Attr("a"), CompareOp::kLe, Operand::Const(Value(60.0)), 0.0},
        {Operand::Attr("b"), CompareOp::kGt, Operand::Const(Value(15.0)), 0.0},
        {Operand::Attr("c"), CompareOp::kEq, Operand::Const(Value(int64_t{2})), 0.0},
    };
  }

  std::vector<const Comparison*> CmpPtrs() const {
    std::vector<const Comparison*> ptrs;
    for (const Comparison& c : cmps_) ptrs.push_back(&c);
    return ptrs;
  }

  Table Sequential(const std::vector<const Comparison*>& cmps) const {
    Table out(in_->schema());
    Status st = FilterTableBatched(*in_, cmps, &out);
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  void ExpectSameRows(const Table& got, const Table& want, const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got.row(i), want.row(i)) << label << " row " << i;
    }
  }

  Database db_;
  const Table* in_ = nullptr;
  std::vector<Comparison> cmps_;
};

TEST_F(WindowFilterTest, ParallelWindowsMatchSequentialRowForRow) {
  ASSERT_GT(NumChunkWindows(in_->size()), 1u) << "fixture must span windows";
  Table want = Sequential(CmpPtrs());
  ASSERT_GT(want.size(), 0u);
  ASSERT_LT(want.size(), in_->size());
  ThreadPool pool(4);
  for (int threads : {2, 3, 8}) {
    Table got(in_->schema());
    ASSERT_TRUE(FilterTableBatched(*in_, CmpPtrs(), &got, &pool, threads).ok());
    ExpectSameRows(got, want, "cascade");
  }
}

TEST_F(WindowFilterTest, EmptyAndFullSelectionsSurviveParallelism) {
  ThreadPool pool(4);
  // No survivors: every window deposits an empty selection.
  std::vector<Comparison> none = {
      {Operand::Attr("a"), CompareOp::kLt, Operand::Const(Value(-1.0)), 0.0}};
  std::vector<const Comparison*> none_ptrs = {&none[0]};
  Table got_none(in_->schema());
  ASSERT_TRUE(FilterTableBatched(*in_, none_ptrs, &got_none, &pool, 4).ok());
  EXPECT_EQ(got_none.size(), 0u);

  // All survive: the ordered commit must reproduce the input verbatim.
  std::vector<Comparison> all = {
      {Operand::Attr("a"), CompareOp::kLe, Operand::Const(Value(1000.0)), 0.0}};
  std::vector<const Comparison*> all_ptrs = {&all[0]};
  Table got_all(in_->schema());
  ASSERT_TRUE(FilterTableBatched(*in_, all_ptrs, &got_all, &pool, 4).ok());
  ExpectSameRows(got_all, *in_, "identity");
}

TEST_F(WindowFilterTest, SubWindowInputTakesTheSequentialPath) {
  Database small_db = MakeNumericDb(9, 100);  // one window: no fan-out
  auto table = small_db.FindTable("r");
  ASSERT_TRUE(table.ok());
  std::vector<Comparison> cmp = {
      {Operand::Attr("c"), CompareOp::kEq, Operand::Const(Value(int64_t{1})), 0.0}};
  std::vector<const Comparison*> ptrs = {&cmp[0]};
  Table want((*table)->schema());
  ASSERT_TRUE(FilterTableBatched(**table, ptrs, &want).ok());
  ThreadPool pool(4);
  Table got((*table)->schema());
  ASSERT_TRUE(FilterTableBatched(**table, ptrs, &got, &pool, 8).ok());
  ExpectSameRows(got, want, "sub-window");
}

TEST_F(WindowFilterTest, NestedCallOnSaturatedPoolRunsInlineWithoutDeadlock) {
  // A unit morsel running on the pool evaluates its own predicate
  // cascades: the window fan-out then submits onto the already-saturated
  // pool. The nested-parallelism guard must run those morsels inline in
  // the submitting worker — this test deadlocks (and times out) if it
  // regresses to queue-and-wait.
  Table want = Sequential(CmpPtrs());
  ThreadPool pool(1);
  Table got(in_->schema());
  Status st = Status::Internal("nested filter never ran");
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.Submit([&] {
    Status nested = FilterTableBatched(*in_, CmpPtrs(), &got, &pool, 4);
    std::lock_guard<std::mutex> lock(mu);
    st = nested;
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  ASSERT_TRUE(st.ok()) << st;
  ExpectSameRows(got, want, "nested");
}

// --- eval_threads answer invariance on one instance ---

TEST(EvalThreadsTest, AnswersAreByteIdenticalOnOneInstance) {
  // xi_E never touches the meter or the store, so the *same* Beas
  // instance must produce byte-identical serializations when only
  // eval_threads varies call-by-call (the Answer overload the query
  // service's thread budgeting uses).
  Database db = MakeSocialDb(33, 80, 4, 6, 200);
  BeasOptions options;
  options.constraints = SocialConstraints();
  auto built = Beas::Build(&db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> beas = std::move(*built);

  int compared = 0;
  for (const std::string& sql : SweepQueries()) {
    auto q = beas->Parse(sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status();
    for (double alpha : {0.1, 0.4}) {
      EvalOptions seq;
      std::string want =
          SerializeAnswer(beas->Answer(*q, alpha, seq), /*with_cache_counters=*/true);
      for (int threads : {2, 4, 8}) {
        EvalOptions par;
        par.eval_threads = threads;
        std::string got = SerializeAnswer(beas->Answer(*q, alpha, par),
                                          /*with_cache_counters=*/true);
        EXPECT_EQ(got, want) << sql << " alpha " << alpha << " threads " << threads;
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 30);
}

// --- The full differential sweep ---

TEST(EvalDifferentialTest, SweepPinsMorselEvaluationBitIdentical) {
  DifferentialOptions options;
  options.constraints = SocialConstraints();
  options.eval_threads = {1, 2, 4};
  options.fetch_threads = {1, 2};
  options.temp_dir = ::testing::TempDir() + "eval_diff_";
  auto harness = DifferentialHarness::Create(
      [] { return MakeSocialDb(33, 60, 4, 6, 150); }, options);
  ASSERT_TRUE(harness.ok()) << harness.status();
  EXPECT_EQ((*harness)->instances(), 12u);  // 3 eval x 2 fetch x 2 backends

  int mismatches = 0;
  for (const std::string& sql : SweepQueries()) {
    mismatches += (*harness)->CheckQuery(sql, 0.25, "sweep");
  }
  // OutOfBudget cuts mid-evaluation: the cut point must not move.
  mismatches += (*harness)->CheckBudgetCuts(SweepQueries()[0], 0.25, "cut");
  mismatches += (*harness)->CheckBudgetCuts(SweepQueries()[2], 0.25, "cut");

  // Lockstep maintenance, then replay the sweep post-mutation.
  const Tuple kRow{Value(int64_t{5000}), Value(int64_t{2}), Value(500.0)};
  ASSERT_TRUE((*harness)->Insert("person", kRow).ok());
  for (const std::string& sql : SweepQueries()) {
    mismatches += (*harness)->CheckQuery(sql, 0.25, "post-insert");
  }
  ASSERT_TRUE((*harness)->Remove("person", kRow).ok());
  mismatches += (*harness)->CheckQuery(SweepQueries()[0], 0.25, "post-remove");

  EXPECT_EQ(mismatches, 0);
  EXPECT_GT((*harness)->checks(), 100);
}

}  // namespace
}  // namespace beas
