#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "index/index_store.h"
#include "ra/parser.h"
#include "workload/airca.h"
#include "workload/query_gen.h"
#include "workload/tfacc.h"
#include "workload/tpch.h"

namespace beas {
namespace {

TEST(TpchTest, TableShapesAndKeys) {
  Dataset ds = MakeTpch(0.001, 1);
  EXPECT_EQ(ds.db.tables().size(), 8u);
  EXPECT_EQ((*ds.db.FindTable("region"))->size(), 5u);
  EXPECT_EQ((*ds.db.FindTable("nation"))->size(), 25u);
  const Table* part = *ds.db.FindTable("part");
  const Table* partsupp = *ds.db.FindTable("partsupp");
  EXPECT_EQ(partsupp->size(), part->size() * 4);
  const Table* lineitem = *ds.db.FindTable("lineitem");
  const Table* orders = *ds.db.FindTable("orders");
  EXPECT_GE(lineitem->size(), orders->size());
  EXPECT_LE(lineitem->size(), orders->size() * 7);
}

TEST(TpchTest, DeterministicInSeed) {
  Dataset a = MakeTpch(0.001, 5);
  Dataset b = MakeTpch(0.001, 5);
  EXPECT_EQ(a.db.TotalTuples(), b.db.TotalTuples());
  const Table* la = *a.db.FindTable("lineitem");
  const Table* lb = *b.db.FindTable("lineitem");
  ASSERT_EQ(la->size(), lb->size());
  EXPECT_EQ(la->row(0), lb->row(0));
  EXPECT_EQ(la->row(la->size() - 1), lb->row(lb->size() - 1));
}

TEST(TpchTest, ScaleFactorScalesRows) {
  Dataset small = MakeTpch(0.001, 1);
  Dataset large = MakeTpch(0.004, 1);
  EXPECT_GT(large.db.TotalTuples(), 2 * small.db.TotalTuples());
}

TEST(TpchTest, DeclaredConstraintsHold) {
  Dataset ds = MakeTpch(0.002, 2);
  IndexStore store;
  Status st = store.Build(ds.db, {}, ds.constraints);
  EXPECT_TRUE(st.ok()) << st;
}

TEST(AircaTest, ConstraintsHoldAndJoinsResolve) {
  Dataset ds = MakeAirca(3000, 3);
  IndexStore store;
  Status st = store.Build(ds.db, {}, ds.constraints);
  EXPECT_TRUE(st.ok()) << st;
  // All join edges reference existing attributes.
  DatabaseSchema schema = ds.db.Schema();
  for (const auto& e : ds.spec.joins) {
    ASSERT_TRUE(schema.FindRelation(e.rel_a).ok());
    ASSERT_TRUE(schema.FindRelation(e.rel_b).ok());
    EXPECT_TRUE((*schema.FindRelation(e.rel_a))->FindAttribute(e.attr_a).has_value());
    EXPECT_TRUE((*schema.FindRelation(e.rel_b))->FindAttribute(e.attr_b).has_value());
  }
}

TEST(TfaccTest, ConstraintsHoldAndFanoutBounded) {
  Dataset ds = MakeTfacc(2000, 4);
  IndexStore store;
  Status st = store.Build(ds.db, {}, ds.constraints);
  EXPECT_TRUE(st.ok()) << st;
  const Table* accidents = *ds.db.FindTable("accidents");
  EXPECT_EQ(accidents->size(), 2000u);
}

class QueryGenTest : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = MakeTfacc(1500, 11); }
  Dataset ds_;
};

TEST_F(QueryGenTest, GeneratesRequestedCount) {
  auto queries = GenerateQueries(ds_, 30);
  EXPECT_EQ(queries.size(), 30u);
}

TEST_F(QueryGenTest, AllQueriesParse) {
  DatabaseSchema schema = ds_.db.Schema();
  auto queries = GenerateQueries(ds_, 40);
  for (const auto& gq : queries) {
    auto q = ParseSql(schema, gq.sql);
    EXPECT_TRUE(q.ok()) << gq.sql << "\n" << q.status();
  }
}

TEST_F(QueryGenTest, AllQueriesEvaluate) {
  DatabaseSchema schema = ds_.db.Schema();
  Evaluator ev(ds_.db);
  auto queries = GenerateQueries(ds_, 25);
  size_t nonempty = 0;
  for (const auto& gq : queries) {
    auto q = ParseSql(schema, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    auto t = ev.Eval(*q);
    ASSERT_TRUE(t.ok()) << gq.sql << "\n" << t.status();
    nonempty += t->size() > 0 ? 1 : 0;
  }
  // Constants are drawn from the data: a decent share must be non-empty.
  EXPECT_GT(nonempty, queries.size() / 3);
}

TEST_F(QueryGenTest, KnobsAreRespected) {
  QueryGenConfig cfg;
  cfg.min_sel = 4;
  cfg.max_sel = 4;
  cfg.min_prod = 1;
  cfg.max_prod = 1;
  cfg.frac_agg = 0.0;
  cfg.frac_diff = 0.0;
  auto queries = GenerateQueries(ds_, 15, cfg);
  for (const auto& gq : queries) {
    EXPECT_FALSE(gq.has_agg);
    EXPECT_EQ(gq.n_diff, 0);
    EXPECT_LE(gq.n_prod, 1);
    EXPECT_LE(gq.n_sel, 4);
  }
}

TEST_F(QueryGenTest, AggregateFractionRoughlyHonored) {
  QueryGenConfig cfg;
  cfg.frac_agg = 1.0;
  auto queries = GenerateQueries(ds_, 20, cfg);
  size_t aggs = 0;
  for (const auto& gq : queries) aggs += gq.has_agg ? 1 : 0;
  EXPECT_GT(aggs, 15u);  // some may fall back when no group attr available
}

TEST_F(QueryGenTest, DeterministicInSeed) {
  auto a = GenerateQueries(ds_, 10);
  auto b = GenerateQueries(ds_, 10);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sql, b[i].sql);
}

TEST_F(QueryGenTest, DifferencesGenerated) {
  QueryGenConfig cfg;
  cfg.frac_agg = 0.0;
  cfg.frac_diff = 1.0;
  auto queries = GenerateQueries(ds_, 15, cfg);
  size_t with_diff = 0;
  for (const auto& gq : queries) with_diff += gq.n_diff > 0 ? 1 : 0;
  EXPECT_GT(with_diff, 10u);
}

}  // namespace
}  // namespace beas
