// Golden plan-snapshot tests (ctest label: cache): plans the fig6 query
// families (TFACC and TPC-H paper mixes at fixed seeds/alphas), serializes
// the chosen plans — SPC decomposition, fetch families, chAT template
// levels, probe sources, tariff and eta — and diffs them against the
// checked-in snapshot, so chase/rewrite/chAT regressions fail loudly with
// a plan-level diff instead of a silent accuracy drift.
//
// To regenerate after an *intentional* planner change:
//   BEAS_UPDATE_SNAPSHOTS=1 ./build/tests/plan_snapshot_test
// and commit the rewritten tests/golden/plan_snapshots.txt.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "beas/beas.h"
#include "ra/parser.h"
#include "workload/query_gen.h"
#include "workload/tfacc.h"
#include "workload/tpch.h"

namespace beas {
namespace {

constexpr const char* kSnapshotPath =
    BEAS_SOURCE_DIR "/tests/golden/plan_snapshots.txt";

// The Section 8 paper mix (mirrors bench::PaperQueryMix; kept inline so
// the test does not depend on the bench harness).
QueryGenConfig PaperMix(uint64_t seed) {
  QueryGenConfig cfg;
  cfg.min_sel = 3;
  cfg.max_sel = 7;
  cfg.min_prod = 0;
  cfg.max_prod = 4;
  cfg.frac_agg = 0.3;
  cfg.frac_diff = 0.5;
  cfg.max_diff = 3;
  cfg.seed = seed;
  return cfg;
}

std::string SnapshotFor(const std::string& dataset_name, Dataset* ds,
                        const std::vector<GeneratedQuery>& queries, double alpha) {
  BeasOptions options;
  options.constraints = ds->constraints;
  auto built = Beas::Build(&ds->db, options);
  EXPECT_TRUE(built.ok()) << built.status();
  std::ostringstream out;
  out << "=== " << dataset_name << " |D|=" << ds->db.TotalTuples()
      << " alpha=" << alpha << " ===\n";
  for (const auto& gq : queries) {
    auto q = (*built)->Parse(gq.sql);
    if (!q.ok()) continue;
    out << "--- " << gq.sql << "\n";
    auto plan = (*built)->PlanOnly(*q, alpha);
    if (!plan.ok()) {
      out << "status: " << plan.status().ToString() << "\n";
      continue;
    }
    out << plan->ToString();
  }
  return out.str();
}

std::string BuildSnapshots() {
  std::string all;
  {
    Dataset tfacc = MakeTfacc(900, /*seed=*/107);
    auto queries = GenerateQueries(tfacc, 8, PaperMix(1007));
    all += SnapshotFor("tfacc", &tfacc, queries, 0.05);
  }
  {
    Dataset tpch = MakeTpch(0.001, /*seed=*/77);
    auto queries = GenerateQueries(tpch, 8, PaperMix(4242));
    all += SnapshotFor("tpch", &tpch, queries, 0.05);
  }
  return all;
}

TEST(PlanSnapshotTest, Fig6FamiliesMatchGolden) {
  std::string got = BuildSnapshots();

  if (const char* update = std::getenv("BEAS_UPDATE_SNAPSHOTS");
      update != nullptr && *update == '1') {
    std::ofstream out(kSnapshotPath, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kSnapshotPath;
    out << got;
    GTEST_SKIP() << "snapshot regenerated at " << kSnapshotPath;
  }

  std::ifstream in(kSnapshotPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kSnapshotPath
                         << " (run with BEAS_UPDATE_SNAPSHOTS=1 to create)";
  std::stringstream want;
  want << in.rdbuf();

  // Compare block by block so a regression names the query that moved.
  std::istringstream got_stream(got), want_stream(want.str());
  std::string got_line, want_line;
  size_t line_no = 0;
  while (true) {
    bool got_more = static_cast<bool>(std::getline(got_stream, got_line));
    bool want_more = static_cast<bool>(std::getline(want_stream, want_line));
    ++line_no;
    if (!got_more && !want_more) break;
    ASSERT_EQ(got_more, want_more)
        << "snapshot length changed at line " << line_no
        << " (BEAS_UPDATE_SNAPSHOTS=1 regenerates after intentional changes)";
    ASSERT_EQ(got_line, want_line)
        << "plan drift at line " << line_no
        << " (BEAS_UPDATE_SNAPSHOTS=1 regenerates after intentional changes)";
  }
}

// Cached instantiation must reproduce the snapshotted plans exactly: the
// serialized plan of a cache hit equals the fresh plan's serialization.
TEST(PlanSnapshotTest, CachedPlansSerializeIdentically) {
  Dataset tfacc = MakeTfacc(900, /*seed=*/107);
  auto queries = GenerateQueries(tfacc, 8, PaperMix(1007));

  BeasOptions options;
  options.constraints = tfacc.constraints;
  options.plan_cache.enabled = true;
  auto built = Beas::Build(&tfacc.db, options);
  ASSERT_TRUE(built.ok()) << built.status();

  for (const auto& gq : queries) {
    auto q = (*built)->Parse(gq.sql);
    if (!q.ok()) continue;
    auto fresh = (*built)->PlanOnly(*q, 0.05);
    if (!fresh.ok()) continue;
    auto hit = (*built)->PlanOnly(*q, 0.05);
    ASSERT_TRUE(hit.ok()) << gq.sql;
    EXPECT_TRUE(hit->from_cache) << gq.sql;
    EXPECT_EQ(fresh->ToString(), hit->ToString()) << gq.sql;
  }
}

}  // namespace
}  // namespace beas
