#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/csv.h"
#include "storage/database.h"
#include "storage/table.h"

namespace beas {
namespace {

RelationSchema TestSchema() {
  return RelationSchema("r", {{"id", DataType::kInt64},
                              {"x", DataType::kDouble, DistanceSpec::Numeric()},
                              {"name", DataType::kString}});
}

TEST(TableTest, AppendChecksArity) {
  Table t(TestSchema());
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value(1.5), Value("a")}).ok());
  EXPECT_FALSE(t.Append({Value(int64_t{1})}).ok());
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, DistinctRemovesDuplicatesPreservingOrder) {
  Table t(TestSchema());
  t.AppendUnchecked({Value(int64_t{2}), Value(1.0), Value("b")});
  t.AppendUnchecked({Value(int64_t{1}), Value(1.0), Value("a")});
  t.AppendUnchecked({Value(int64_t{2}), Value(1.0), Value("b")});
  t.Distinct();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.row(0)[0], Value(int64_t{2}));
  EXPECT_EQ(t.row(1)[0], Value(int64_t{1}));
}

TEST(TableTest, SortRowsIsLexicographic) {
  Table t(TestSchema());
  t.AppendUnchecked({Value(int64_t{2}), Value(1.0), Value("b")});
  t.AppendUnchecked({Value(int64_t{1}), Value(9.0), Value("z")});
  t.SortRows();
  EXPECT_EQ(t.row(0)[0], Value(int64_t{1}));
}

TEST(TableTest, Contains) {
  Table t(TestSchema());
  t.AppendUnchecked({Value(int64_t{1}), Value(1.0), Value("a")});
  EXPECT_TRUE(t.Contains({Value(int64_t{1}), Value(1.0), Value("a")}));
  EXPECT_FALSE(t.Contains({Value(int64_t{2}), Value(1.0), Value("a")}));
}

TEST(DatabaseTest, AddAndFind) {
  Database db;
  ASSERT_TRUE(db.AddTable(Table(TestSchema())).ok());
  EXPECT_FALSE(db.AddTable(Table(TestSchema())).ok());  // duplicate
  EXPECT_TRUE(db.FindTable("r").ok());
  EXPECT_FALSE(db.FindTable("missing").ok());
}

TEST(DatabaseTest, TotalTuplesSumsTables) {
  Database db;
  Table t1(TestSchema());
  t1.AppendUnchecked({Value(int64_t{1}), Value(1.0), Value("a")});
  t1.AppendUnchecked({Value(int64_t{2}), Value(2.0), Value("b")});
  (void)db.AddTable(std::move(t1));
  Table t2(RelationSchema("s", {{"y", DataType::kInt64}}));
  t2.AppendUnchecked({Value(int64_t{3})});
  (void)db.AddTable(std::move(t2));
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(DatabaseTest, SchemaReflectsTables) {
  Database db;
  (void)db.AddTable(Table(TestSchema()));
  DatabaseSchema schema = db.Schema();
  ASSERT_TRUE(schema.FindRelation("r").ok());
  EXPECT_EQ((*schema.FindRelation("r"))->arity(), 3u);
}

TEST(CsvTest, RoundTrip) {
  Table t(TestSchema());
  t.AppendUnchecked({Value(int64_t{1}), Value(1.5), Value("plain")});
  t.AppendUnchecked({Value(int64_t{2}), Value(-2.25), Value("with,comma")});
  t.AppendUnchecked({Value(int64_t{3}), Value(0.0), Value("quote\"inside")});

  std::string path =
      (std::filesystem::temp_directory_path() / "beas_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(TestSchema(), path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ(back->row(1)[2], Value("with,comma"));
  EXPECT_EQ(back->row(2)[2], Value("quote\"inside"));
  EXPECT_EQ(back->row(0)[1], Value(1.5));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingColumnFails) {
  Table t(RelationSchema("r", {{"only", DataType::kInt64}}));
  t.AppendUnchecked({Value(int64_t{1})});
  std::string path =
      (std::filesystem::temp_directory_path() / "beas_csv_test2.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(TestSchema(), path);
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

// --- Chunked scans (Table::FillBatch / Table::AppendBatch) ---

TEST(TableTest, FillBatchCoversTableInChunkOrder) {
  RelationSchema schema = TestSchema();
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    t.AppendUnchecked({Value(int64_t{i}), Value(i * 0.5), Value("n")});
  }
  RowBatch batch;
  batch.Reset(schema, /*capacity=*/4);
  std::vector<int64_t> seen;
  size_t batches = 0;
  for (size_t pos = 0, n; (n = t.FillBatch(pos, &batch)) > 0; pos += n) {
    ++batches;
    EXPECT_EQ(batch.live(), batch.chunk.size());  // scans select all rows
    EXPECT_LE(batch.chunk.size(), 4u);
    for (uint32_t r : batch.sel) seen.push_back(batch.chunk.at(r, 0).as_int64());
  }
  EXPECT_EQ(batches, 3u);  // 4 + 4 + 2
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  // Past-the-end fill transfers nothing.
  EXPECT_EQ(t.FillBatch(t.size(), &batch), 0u);
}

TEST(TableTest, AppendBatchHonorsSelectionOrder) {
  RelationSchema schema = TestSchema();
  Table t(schema);
  for (int i = 0; i < 6; ++i) {
    t.AppendUnchecked({Value(int64_t{i}), Value(1.0), Value("n")});
  }
  RowBatch batch;
  batch.Reset(schema);
  ASSERT_EQ(t.FillBatch(0, &batch), 6u);
  batch.sel = {1, 3, 4};  // a filter kept these rows
  Table out(schema);
  out.AppendBatch(batch);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.row(0)[0], Value(int64_t{1}));
  EXPECT_EQ(out.row(1)[0], Value(int64_t{3}));
  EXPECT_EQ(out.row(2)[0], Value(int64_t{4}));
}

}  // namespace
}  // namespace beas
