// The disk-backed index tier's storage layer: codec round trips, CRC
// verification, block-file layout and crash-safe reopen, and the bounded
// LRU block cache (including the degenerate budgets the ISSUE calls out:
// zero bytes, and a budget smaller than one block).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "index/block_cache.h"
#include "index/index_store.h"
#include "storage/block_io.h"
#include "storage/codec.h"
#include "testing/test_data.h"

namespace beas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "beas_blk_" + name;
}

// --- Codec ---

TEST(CodecTest, RoundTripsScalars) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutI64(&buf, -42);
  PutF64(&buf, 3.5);
  PutString(&buf, "hello");
  ByteReader r(buf);
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(*r.ReadF64(), 3.5);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, DoublesAreBitExact) {
  // Resolutions include +-inf (trivial metrics) and must survive exactly.
  const double cases[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min(), 1e308};
  for (double d : cases) {
    std::string buf;
    PutF64(&buf, d);
    ByteReader r(buf);
    double back = *r.ReadF64();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0) << d;
  }
}

TEST(CodecTest, RoundTripsValuesAndTuples) {
  Tuple t{Value(), Value(int64_t{-7}), Value(2.25), Value(std::string("x\0y", 3))};
  std::string buf;
  PutTuple(&buf, t);
  ByteReader r(buf);
  Result<Tuple> back = r.ReadTuple();
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, t);
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, TruncationIsDataLossNotUb) {
  std::string buf;
  PutString(&buf, "0123456789");
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader r(buf.data(), cut);
    EXPECT_EQ(r.ReadString().status().code(), StatusCode::kDataLoss) << cut;
  }
}

TEST(CodecTest, InvalidValueTagIsDataLoss) {
  std::string buf;
  PutU8(&buf, 9);  // no such tag
  ByteReader r(buf);
  EXPECT_EQ(r.ReadValue().status().code(), StatusCode::kDataLoss);
}

// --- CRC32 ---

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

// --- BlockFile ---

TEST(BlockFileTest, AppendSyncReopenRoundTrip) {
  const std::string path = TempPath("roundtrip");
  std::string rec_a(100, 'a');
  std::string rec_b(700, 'b');  // spans multiple 256-byte blocks
  uint64_t off_a = 0, off_b = 0;
  {
    auto file = BlockFile::Create(path, 256);
    ASSERT_TRUE(file.ok()) << file.status();
    off_a = *(*file)->Append(rec_a);
    off_b = *(*file)->Append(rec_b);
    ASSERT_TRUE((*file)->Sync("my directory payload").ok());
  }
  auto file = BlockFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ((*file)->dir_payload(), "my directory payload");
  EXPECT_EQ((*file)->block_bytes(), 256u);
  EXPECT_EQ((*file)->data_len(), 800u);
  // Reassemble both records from verified blocks.
  std::string data;
  for (uint64_t b = 0; b < (*file)->block_count(); ++b) {
    auto block = (*file)->ReadBlockVerified(b);
    ASSERT_TRUE(block.ok()) << block.status();
    data += *block;
  }
  EXPECT_EQ(data.substr(off_a, rec_a.size()), rec_a);
  EXPECT_EQ(data.substr(off_b, rec_b.size()), rec_b);
}

TEST(BlockFileTest, AppendAfterReopenKeepsChecksums) {
  const std::string path = TempPath("append_reopen");
  {
    auto file = BlockFile::Create(path, 128);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(100, 'x')).ok());
    ASSERT_TRUE((*file)->Sync("v1").ok());
  }
  {
    auto file = BlockFile::Open(path);
    ASSERT_TRUE(file.ok()) << file.status();
    // Append lands mid-block: the tail block's CRC must be refreshed.
    ASSERT_TRUE((*file)->Append(std::string(200, 'y')).ok());
    ASSERT_TRUE((*file)->Sync("v2").ok());
  }
  auto file = BlockFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ((*file)->dir_payload(), "v2");
  EXPECT_EQ((*file)->data_len(), 300u);
  for (uint64_t b = 0; b < (*file)->block_count(); ++b) {
    EXPECT_TRUE((*file)->ReadBlockVerified(b).ok()) << "block " << b;
  }
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(BlockFileTest, CorruptedDataBlockIsDataLoss) {
  const std::string path = TempPath("corrupt_data");
  {
    auto file = BlockFile::Create(path, 128);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(500, 'z')).ok());
    ASSERT_TRUE((*file)->Sync("dir").ok());
  }
  FlipByteAt(path, 130);  // inside block 1 of the data region
  auto file = BlockFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();  // directory is intact
  EXPECT_TRUE((*file)->ReadBlockVerified(0).ok());
  EXPECT_EQ((*file)->ReadBlockVerified(1).status().code(), StatusCode::kDataLoss);
}

TEST(BlockFileTest, CorruptedDirectoryFailsOpenCleanly) {
  const std::string path = TempPath("corrupt_dir");
  uint64_t data_end = 0;
  {
    auto file = BlockFile::Create(path, 128);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(64, 'q')).ok());
    ASSERT_TRUE((*file)->Sync("directory bytes here").ok());
    data_end = (*file)->data_len();
  }
  FlipByteAt(path, data_end + 4);  // inside the directory region
  auto file = BlockFile::Open(path);
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST(BlockFileTest, TruncatedFileFailsOpenCleanly) {
  const std::string path = TempPath("truncated");
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << "short";
  f.close();
  auto file = BlockFile::Open(path);
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

// --- BlockCache ---

BlockCache::Loader CountingLoader(std::atomic<int>* loads) {
  return [loads](uint64_t index) -> Result<std::string> {
    loads->fetch_add(1);
    return std::string(64, static_cast<char>('a' + index % 26));
  };
}

TEST(BlockCacheTest, HitsAvoidReloads) {
  BlockCache cache(/*capacity_bytes=*/1 << 20, /*shards=*/4);
  std::atomic<int> loads{0};
  CacheCounters counters;
  for (int i = 0; i < 3; ++i) {
    auto block = cache.Get(7, CountingLoader(&loads), &counters);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ((*block)->size(), 64u);
  }
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(counters.hits.load(), 2u);
  EXPECT_EQ(counters.misses.load(), 1u);
  BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(BlockCacheTest, ZeroBudgetIsPureReadThrough) {
  BlockCache cache(/*capacity_bytes=*/0, /*shards=*/4);
  std::atomic<int> loads{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.Get(7, CountingLoader(&loads), nullptr).ok());
  }
  EXPECT_EQ(loads.load(), 3);  // nothing is ever cached
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(BlockCacheTest, BudgetSmallerThanOneBlockNeverOvershoots) {
  // Each loaded block is 64 bytes + kEntryOverhead; a 16-byte budget can
  // hold nothing, so the cache must read through rather than overshoot.
  BlockCache cache(/*capacity_bytes=*/16, /*shards=*/1);
  std::atomic<int> loads{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.Get(3, CountingLoader(&loads), nullptr).ok());
  }
  EXPECT_EQ(loads.load(), 4);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedWithinBudget) {
  // Budget for about two 64-byte blocks (plus per-entry overhead).
  BlockCache cache(/*capacity_bytes=*/300, /*shards=*/1);
  std::atomic<int> loads{0};
  auto loader = CountingLoader(&loads);
  ASSERT_TRUE(cache.Get(1, loader, nullptr).ok());
  ASSERT_TRUE(cache.Get(2, loader, nullptr).ok());
  ASSERT_TRUE(cache.Get(1, loader, nullptr).ok());  // 1 is now MRU
  ASSERT_TRUE(cache.Get(3, loader, nullptr).ok());  // evicts 2
  ASSERT_TRUE(cache.Get(1, loader, nullptr).ok());  // still a hit
  EXPECT_EQ(loads.load(), 3);
  ASSERT_TRUE(cache.Get(2, loader, nullptr).ok());  // reload after eviction
  EXPECT_EQ(loads.load(), 4);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().resident_bytes, 300u);
}

TEST(BlockCacheTest, EvictedBlockStaysAliveForHolders) {
  BlockCache cache(/*capacity_bytes=*/300, /*shards=*/1);
  std::atomic<int> loads{0};
  auto loader = CountingLoader(&loads);
  auto held = cache.Get(1, loader, nullptr);
  ASSERT_TRUE(held.ok());
  for (uint64_t i = 2; i < 10; ++i) {
    ASSERT_TRUE(cache.Get(i, loader, nullptr).ok());  // push 1 out
  }
  // The shared_ptr pin keeps the evicted bytes valid.
  EXPECT_EQ(**held, std::string(64, 'b'));
}

TEST(BlockCacheTest, InvalidateFromDropsTailBlocks) {
  BlockCache cache(/*capacity_bytes=*/1 << 20, /*shards=*/4);
  std::atomic<int> loads{0};
  auto loader = CountingLoader(&loads);
  for (uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(cache.Get(i, loader, nullptr).ok());
  EXPECT_EQ(loads.load(), 6);
  cache.InvalidateFrom(3);
  for (uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(cache.Get(i, loader, nullptr).ok());
  EXPECT_EQ(loads.load(), 9);  // blocks 3..5 reloaded, 0..2 still cached
}

TEST(BlockCacheTest, LoaderFailurePropagatesAndCachesNothing) {
  BlockCache cache(/*capacity_bytes=*/1 << 20, /*shards=*/1);
  int calls = 0;
  BlockCache::Loader failing = [&calls](uint64_t) -> Result<std::string> {
    ++calls;
    return Status::DataLoss("bad block");
  };
  EXPECT_EQ(cache.Get(0, failing, nullptr).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(cache.Get(0, failing, nullptr).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 2);  // failures are not cached
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

// TSan target: concurrent readers against a cache small enough that
// every Get is also an eviction. Exercises the load-outside-lock path
// and the shared_ptr handoff under constant churn.
TEST(BlockCacheTest, ConcurrentFetchesUnderConstantEviction) {
  BlockCache cache(/*capacity_bytes=*/400, /*shards=*/2);
  std::atomic<int> loads{0};
  auto loader = CountingLoader(&loads);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      CacheCounters counters;
      for (int i = 0; i < kIters; ++i) {
        uint64_t index = static_cast<uint64_t>((i * 7 + t * 13) % 16);
        auto block = cache.Get(index, loader, &counters);
        if (!block.ok() ||
            **block != std::string(64, static_cast<char>('a' + index % 26))) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, uint64_t{kThreads} * kIters);
  EXPECT_LE(stats.resident_bytes, 400u);
}

// --- IndexStore on the block backend: crash-safety end to end ---

IndexStoreOptions BlockOptions(const std::string& name) {
  IndexStoreOptions opts;
  opts.backend = IndexBackendKind::kBlockFile;
  opts.path = TempPath(name);
  opts.block_bytes = 512;
  opts.cache_bytes = 8 * 1024;
  return opts;
}

TEST(BlockBackedStoreTest, ReopenColdServesIdenticalEntries) {
  Database db = testing::MakeSocialDb(6, 40, 4, 5, 100);
  IndexStoreOptions opts = BlockOptions("reopen.blk");
  IndexStore built;
  ASSERT_TRUE(built.Build(db, UniversalFamilies(db.Schema()),
                          {{"person", {"pid"}, {"city"}, 1}}, opts)
                  .ok());
  IndexStore reopened;
  opts.open_existing = true;
  ASSERT_TRUE(reopened.Open(opts).ok());
  ASSERT_EQ(reopened.schema().families().size(), built.schema().families().size());
  for (const auto& family : built.schema().families()) {
    const BoundFamily* other = *reopened.schema().FindFamily(family.id);
    EXPECT_EQ(other->max_level, family.max_level) << family.id;
    EXPECT_EQ(other->level_resolution, family.level_resolution) << family.id;
    EXPECT_EQ(other->level_fanout, family.level_fanout) << family.id;
    for (int level = 0; level <= family.max_level; ++level) {
      std::vector<std::vector<FetchEntry>> a, b;
      FetchPins pins_a, pins_b;
      Tuple key(family.x_attrs.size(), Value());
      if (family.is_constraint) key = Tuple{Value(int64_t{1})};
      std::vector<const Tuple*> probe{&key};
      ASSERT_TRUE(built
                      .FetchBatchUnmetered(family.id, level, probe, &a, &pins_a)
                      .ok());
      ASSERT_TRUE(reopened
                      .FetchBatchUnmetered(family.id, level, probe, &b, &pins_b)
                      .ok());
      ASSERT_EQ(a[0].size(), b[0].size()) << family.id << " level " << level;
      for (size_t i = 0; i < a[0].size(); ++i) {
        EXPECT_EQ(*a[0][i].y, *b[0][i].y);
        EXPECT_EQ(a[0][i].count, b[0][i].count);
      }
    }
  }
  EXPECT_EQ(reopened.TotalEntries(), built.TotalEntries());
  EXPECT_EQ(reopened.ConstraintEntries(), built.ConstraintEntries());
}

TEST(BlockBackedStoreTest, CorruptedBlockSurfacesAsCleanStatus) {
  Database db = testing::MakeSocialDb(6, 40, 4, 5, 100);
  IndexStoreOptions opts = BlockOptions("corrupt_store.blk");
  {
    IndexStore built;
    ASSERT_TRUE(built.Build(db, UniversalFamilies(db.Schema()), {}, opts).ok());
  }
  // Flip a byte in the first data block: the directory still opens, but
  // fetches touching that block must fail with DataLoss, not crash.
  FlipByteAt(opts.path, 10);
  IndexStore reopened;
  opts.open_existing = true;
  ASSERT_TRUE(reopened.Open(opts).ok());
  bool saw_data_loss = false;
  for (const auto& family : reopened.schema().families()) {
    for (int level = 0; level <= family.max_level; ++level) {
      std::vector<std::vector<FetchEntry>> out;
      FetchPins pins;
      Tuple key(family.x_attrs.size(), Value());
      std::vector<const Tuple*> probe{&key};
      Status st =
          reopened.FetchBatchUnmetered(family.id, level, probe, &out, &pins);
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st;
        saw_data_loss = true;
      }
    }
  }
  EXPECT_TRUE(saw_data_loss);
}

TEST(BlockBackedStoreTest, CacheBudgetNeverChangesEntries) {
  // The same store read at budget 0 (read-through), sub-block budget, and
  // a roomy budget returns identical entries — the cache is invisible.
  Database db = testing::MakeSocialDb(6, 40, 4, 5, 100);
  IndexStoreOptions base = BlockOptions("budget_sweep.blk");
  {
    IndexStore built;
    ASSERT_TRUE(built.Build(db, UniversalFamilies(db.Schema()), {}, base).ok());
  }
  std::vector<uint64_t> budgets{0, 100, 1 << 20};
  std::vector<std::vector<std::string>> dumps;
  for (uint64_t budget : budgets) {
    IndexStoreOptions opts = base;
    opts.open_existing = true;
    opts.cache_bytes = budget;
    IndexStore store;
    ASSERT_TRUE(store.Open(opts).ok());
    std::vector<std::string> dump;
    for (const auto& family : store.schema().families()) {
      for (int level = 0; level <= family.max_level; ++level) {
        std::vector<std::vector<FetchEntry>> out;
        FetchPins pins;
        Tuple key(family.x_attrs.size(), Value());
        std::vector<const Tuple*> probe{&key};
        ASSERT_TRUE(
            store.FetchBatchUnmetered(family.id, level, probe, &out, &pins).ok());
        for (const auto& e : out[0]) {
          dump.push_back(TupleToString(*e.y) + "#" + std::to_string(e.count));
        }
      }
    }
    dumps.push_back(std::move(dump));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

}  // namespace
}  // namespace beas
