// Property-based tests of the paper's central guarantees over random
// workloads (parameterized across datasets and resource ratios):
//
//   P1 (Theorems 5/6): eta <= measured RC accuracy, for SPC, RA and
//       min/max aggregate queries. (Additive aggregates carry a count
//       drift the static bound does not cover; see DESIGN.md.)
//   P2 (alpha-boundedness): tuples accessed <= alpha * |D|.
//   P3 (Theorem 1): eta is monotone non-decreasing in alpha.
//   P4 (Theorem 6(5)): set-difference answers never contain an exact
//       answer of the negated side.
//   P5 (plan-cache equivalence): with BeasOptions::plan_cache enabled,
//       cached plans produce answers byte-identical to fresh plans —
//       same rows, same eta, same accessed counts — across repeated
//       random workloads, alpha sweeps, and Insert/Remove invalidation.
//   P6 (parallel-fetch equivalence): with EvalOptions::fetch_threads > 1,
//       answers are byte-identical to sequential execution — same rows,
//       eta, accessed, d' — and plans that run out of budget mid-fetch
//       fail at the same point with the same status, for any thread
//       count (docs/ARCHITECTURE.md "Parallel atom fetching").
//   P7 (cross-query determinism): N threads answering concurrently
//       against one Beas instance each get answers byte-identical to a
//       solo sequential run — per-query meters never interfere
//       (docs/ARCHITECTURE.md "Concurrent query service").
//   P8 (warm-survivor equivalence): after maintenance churn confined to
//       one relation, plan-cache entries of untouched relations survive
//       and still answer byte-identically to a fresh instance.
//   P9 (storage-tier equivalence): the disk-backed block-file backend,
//       reopened cold under a cache budget of <= 25% of the on-disk
//       index size, answers byte-identically to the in-memory backend —
//       same rows, eta, accessed counts, and the same OutOfBudget
//       failure point — across the alpha sweep and after Insert/Remove
//       (docs/ARCHITECTURE.md "Disk-backed index tier").
//   P10 (morsel-evaluation equivalence): with EvalOptions::eval_threads
//       > 1, answers are byte-identical to sequential evaluation across
//       the full knob matrix — eval_threads {1,2,8} x fetch_threads
//       {1,4} x both storage backends (disk at a 25% cache budget) —
//       including mid-evaluation OutOfBudget cuts and replays after
//       Insert/Remove, via the differential harness in
//       tests/testing/differential.h (docs/ARCHITECTURE.md
//       "Morsel-driven evaluation").

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "accuracy/measures.h"
#include "beas/beas.h"
#include "engine/evaluator.h"
#include "ra/analysis.h"
#include "ra/parser.h"
#include "testing/differential.h"
#include "workload/query_gen.h"
#include "workload/tfacc.h"
#include "workload/tpch.h"

namespace beas {
namespace {

struct PropertyCase {
  const char* dataset;
  double alpha;
};

class BeasPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    if (std::string(p.dataset) == "tpch") {
      ds_ = MakeTpch(0.001, 77);
    } else {
      ds_ = MakeTfacc(1200, 77);
    }
    BeasOptions options;
    options.constraints = ds_.constraints;
    auto built = Beas::Build(&ds_.db, options);
    ASSERT_TRUE(built.ok()) << built.status();
    beas_ = std::move(*built);

    QueryGenConfig cfg;
    cfg.seed = 4242;
    queries_ = GenerateQueries(ds_, 16, cfg);
    schema_ = ds_.db.Schema();
  }

  bool IsAdditiveAgg(const QueryPtr& q) {
    return q->kind() == QueryNode::Kind::kGroupBy && q->agg() != AggFunc::kMin &&
           q->agg() != AggFunc::kMax;
  }

  Dataset ds_;
  DatabaseSchema schema_;
  std::unique_ptr<Beas> beas_;
  std::vector<GeneratedQuery> queries_;
};

TEST_P(BeasPropertyTest, EtaLowerBoundsAccuracyAndBudgetHolds) {
  double alpha = GetParam().alpha;
  Evaluator exact_engine(ds_.db);
  RcOptions rc;
  rc.max_relaxation = 64;
  int checked = 0;
  for (const auto& gq : queries_) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    auto answer = beas_->Answer(*q, alpha);
    if (!answer.ok()) continue;  // budget too small for this plan
    // P2: budget compliance.
    uint64_t budget = static_cast<uint64_t>(alpha * static_cast<double>(beas_->db_size()));
    EXPECT_LE(answer->accessed, budget) << gq.sql;
    // P1: eta validity (skip additive aggregates, see header comment).
    if (IsAdditiveAgg(*q)) continue;
    auto exact = exact_engine.Eval(*q);
    if (!exact.ok()) continue;
    auto rep = RcMeasureWithExact(ds_.db, *q, answer->table, *exact, rc);
    if (!rep.ok()) continue;
    EXPECT_GE(rep->accuracy + 1e-9, answer->eta)
        << gq.sql << "\n acc=" << rep->accuracy << " eta=" << answer->eta;
    ++checked;
  }
  EXPECT_GT(checked, 5) << "too few queries exercised the eta property";
}

TEST_P(BeasPropertyTest, EtaMonotoneInAlpha) {
  double alpha = GetParam().alpha;
  for (const auto& gq : queries_) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok());
    auto lo = beas_->PlanOnly(*q, alpha);
    auto hi = beas_->PlanOnly(*q, std::min(1.0, alpha * 4));
    if (!lo.ok() || !hi.ok()) continue;
    EXPECT_GE(hi->eta + 1e-12, lo->eta) << gq.sql;
  }
}

TEST_P(BeasPropertyTest, DifferenceAnswersExcludeNegatedSide) {
  double alpha = GetParam().alpha;
  Evaluator exact_engine(ds_.db);
  QueryGenConfig cfg;
  cfg.seed = 999;
  cfg.frac_agg = 0;
  cfg.frac_diff = 1.0;
  auto diff_queries = GenerateQueries(ds_, 10, cfg);
  for (const auto& gq : diff_queries) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    if ((*q)->kind() != QueryNode::Kind::kDifference) continue;
    auto answer = beas_->Answer(*q, alpha);
    if (!answer.ok()) continue;
    auto negated = exact_engine.Eval((*q)->right());
    if (!negated.ok()) continue;
    for (const auto& row : answer->table.rows()) {
      EXPECT_FALSE(negated->Contains(row)) << gq.sql;
    }
  }
}

TEST_P(BeasPropertyTest, ExactPlansMatchEngine) {
  // Whenever the plan claims exactness, the answers must equal Q(D).
  double alpha = GetParam().alpha;
  Evaluator exact_engine(ds_.db);
  for (const auto& gq : queries_) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok());
    auto answer = beas_->Answer(*q, alpha);
    if (!answer.ok() || !answer->exact) continue;
    auto exact = exact_engine.Eval(*q);
    ASSERT_TRUE(exact.ok());
    Table got = answer->table;
    Table want = *exact;
    got.SortRows();
    want.SortRows();
    ASSERT_EQ(got.size(), want.size()) << gq.sql;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got.row(i), want.row(i)) << gq.sql;
    }
  }
}

TEST_P(BeasPropertyTest, CachedAnswersAreByteIdenticalToFresh) {
  double alpha = GetParam().alpha;
  BeasOptions options;
  options.constraints = ds_.constraints;
  options.plan_cache.enabled = true;
  auto built = Beas::Build(&ds_.db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> cached = std::move(*built);

  // Two passes over the workload at two alphas: the first run of each
  // (query, alpha) is a fresh plan that populates the cache, the second
  // must hit and be indistinguishable. `beas_` (cache off, same data) is
  // the external reference for both.
  int hits_checked = 0;
  for (double a : {alpha, std::min(1.0, alpha * 4)}) {
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& gq : queries_) {
        auto q = ParseSql(schema_, gq.sql);
        ASSERT_TRUE(q.ok()) << gq.sql;
        auto got = cached->Answer(*q, a);
        auto want = beas_->Answer(*q, a);
        ASSERT_EQ(got.ok(), want.ok()) << gq.sql;
        if (!got.ok()) continue;
        if (pass == 1) {
          EXPECT_TRUE(got->plan_cached) << gq.sql;
          ++hits_checked;
        }
        EXPECT_EQ(got->eta, want->eta) << gq.sql;
        EXPECT_EQ(got->accessed, want->accessed) << gq.sql;
        EXPECT_EQ(got->exact, want->exact) << gq.sql;
        ASSERT_EQ(got->table.size(), want->table.size()) << gq.sql;
        for (size_t i = 0; i < got->table.size(); ++i) {
          EXPECT_EQ(got->table.row(i), want->table.row(i)) << gq.sql << " row " << i;
        }
      }
    }
  }
  EXPECT_GT(hits_checked, 5) << "too few queries exercised the cache-hit path";
  EXPECT_GT(cached->plan_cache_stats().hits, 0u);
}

TEST_P(BeasPropertyTest, CachedAnswersMatchFreshAfterInsertRemove) {
  double alpha = GetParam().alpha;
  // A private dataset copy: this test mutates the database.
  Dataset ds = std::string(GetParam().dataset) == "tpch" ? MakeTpch(0.001, 77)
                                                         : MakeTfacc(1200, 77);
  BeasOptions options;
  options.constraints = ds.constraints;
  options.plan_cache.enabled = true;
  auto built = Beas::Build(&ds.db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> cached = std::move(*built);

  DatabaseSchema ds_schema = ds.db.Schema();
  // Warm the cache on the workload.
  for (const auto& gq : queries_) {
    auto q = ParseSql(ds_schema, gq.sql);
    ASSERT_TRUE(q.ok());
    (void)cached->Answer(*q, alpha);
  }
  ASSERT_GT(cached->plan_cache_stats().entries, 0u);

  // Remove one row from every base relation, then re-insert it: the
  // cache must invalidate on each maintenance step, never serving plans
  // computed against the old |D|.
  for (const auto& rel : ds_schema.relations()) {
    auto table = ds.db.FindTable(rel.name());
    ASSERT_TRUE(table.ok());
    if ((*table)->size() == 0) continue;
    Tuple row = (*table)->row((*table)->size() / 2);
    ASSERT_TRUE(cached->Remove(rel.name(), row).ok()) << rel.name();
    ASSERT_TRUE(cached->Insert(rel.name(), row).ok()) << rel.name();
  }
  EXPECT_GT(cached->plan_cache_stats().invalidations, 0u);

  // Reference instance built fresh over the (net-unchanged) database.
  BeasOptions fresh_options;
  fresh_options.constraints = ds.constraints;
  auto fresh_built = Beas::Build(&ds.db, fresh_options);
  ASSERT_TRUE(fresh_built.ok());
  std::unique_ptr<Beas> fresh = std::move(*fresh_built);

  for (int pass = 0; pass < 2; ++pass) {  // second pass re-exercises hits
    for (const auto& gq : queries_) {
      auto q = ParseSql(ds.db.Schema(), gq.sql);
      ASSERT_TRUE(q.ok());
      auto got = cached->Answer(*q, alpha);
      auto want = fresh->Answer(*q, alpha);
      ASSERT_EQ(got.ok(), want.ok()) << gq.sql;
      if (!got.ok()) continue;
      EXPECT_EQ(got->eta, want->eta) << gq.sql;
      EXPECT_EQ(got->accessed, want->accessed) << gq.sql;
      ASSERT_EQ(got->table.size(), want->table.size()) << gq.sql;
      for (size_t i = 0; i < got->table.size(); ++i) {
        EXPECT_EQ(got->table.row(i), want->table.row(i)) << gq.sql << " row " << i;
      }
    }
  }
}

TEST_P(BeasPropertyTest, ParallelFetchMatchesSequentialByteForByte) {
  double alpha = GetParam().alpha;
  // Multi-atom fig6-family workload: force products (joins) so plans
  // carry several fetch atoms with external probe edges, plus the
  // default mix for difference/aggregate coverage.
  QueryGenConfig join_cfg;
  join_cfg.seed = 20260730;
  join_cfg.min_prod = 1;
  std::vector<GeneratedQuery> workload = queries_;
  for (auto& gq : GenerateQueries(ds_, 12, join_cfg)) workload.push_back(gq);

  for (int threads : {2, 8}) {
    BeasOptions options;
    options.constraints = ds_.constraints;
    options.eval.fetch_threads = threads;
    auto built = Beas::Build(&ds_.db, options);
    ASSERT_TRUE(built.ok()) << built.status();
    std::unique_ptr<Beas> parallel = std::move(*built);

    for (const auto& gq : workload) {
      auto q = ParseSql(schema_, gq.sql);
      ASSERT_TRUE(q.ok()) << gq.sql;
      auto want = beas_->Answer(*q, alpha);      // fetch_threads = 1
      auto got = parallel->Answer(*q, alpha);
      ASSERT_EQ(got.ok(), want.ok())
          << gq.sql << "\n seq: " << want.status() << "\n par: " << got.status();
      if (!got.ok()) {
        // The failure point must match bit-exactly: same code, same
        // accessed/budget rendered into the message. (The dedicated
        // OutOfBudget test below guarantees this path gets exercised.)
        EXPECT_EQ(got.status().ToString(), want.status().ToString()) << gq.sql;
        continue;
      }
      EXPECT_EQ(got->eta, want->eta) << gq.sql;
      EXPECT_EQ(got->accessed, want->accessed) << gq.sql;
      EXPECT_EQ(got->d_prime, want->d_prime) << gq.sql;
      EXPECT_EQ(got->exact, want->exact) << gq.sql;
      ASSERT_EQ(got->table.size(), want->table.size()) << gq.sql;
      for (size_t i = 0; i < got->table.size(); ++i) {
        EXPECT_EQ(got->table.row(i), want->table.row(i)) << gq.sql << " row " << i;
      }
    }
  }
}

TEST_P(BeasPropertyTest, ParallelFetchOutOfBudgetPointMatchesSequential) {
  // Directly drive the executor at budgets below the plan's tariff so
  // the meter exhausts mid-fetch, and compare the failure byte-for-byte
  // across thread counts.
  double alpha = GetParam().alpha;
  int compared = 0;
  for (const auto& gq : queries_) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    auto plan = beas_->PlanOnly(*q, alpha);
    if (!plan.ok()) continue;
    // Budgets deliberately below what the plan needs: 1 exhausts on the
    // first multi-entry fetch, the others part-way through the DAG.
    uint64_t full = static_cast<uint64_t>(alpha * static_cast<double>(beas_->db_size()));
    for (uint64_t budget : {uint64_t{1}, full / 7 + 1, full / 2 + 1}) {
      PlanExecutor seq(&beas_->store(), EvalOptions{});
      auto want = seq.Execute(*plan, budget);
      for (int threads : {2, 8}) {
        EvalOptions opts;
        opts.fetch_threads = threads;
        PlanExecutor par(&beas_->store(), opts);
        auto got = par.Execute(*plan, budget);
        ASSERT_EQ(got.ok(), want.ok()) << gq.sql << " budget " << budget;
        if (!want.ok()) {
          EXPECT_EQ(got.status().ToString(), want.status().ToString())
              << gq.sql << " budget " << budget;
          ++compared;
        } else {
          EXPECT_EQ(got->accessed, want->accessed) << gq.sql;
        }
      }
    }
  }
  EXPECT_GT(compared, 0) << "no query exhausted its budget mid-fetch";
}

TEST_P(BeasPropertyTest, ConcurrentAnswersMatchSoloByteForByte) {
  double alpha = GetParam().alpha;
  // Solo reference answers (or failure statuses) per query.
  std::vector<QueryPtr> parsed;
  std::vector<Result<BeasAnswer>> solo;
  for (const auto& gq : queries_) {
    auto q = ParseSql(schema_, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    parsed.push_back(*q);
    solo.push_back(beas_->Answer(*q, alpha));
  }
  // 4 sessions replay the whole workload concurrently against the same
  // instance; every answer must be bit-identical to the solo run.
  std::vector<std::thread> sessions;
  for (int s = 0; s < 4; ++s) {
    sessions.emplace_back([&, s] {
      for (size_t i = 0; i < parsed.size(); ++i) {
        // Stagger the per-session order so different queries overlap.
        size_t j = (i + static_cast<size_t>(s) * 5) % parsed.size();
        auto got = beas_->Answer(parsed[j], alpha);
        ASSERT_EQ(got.ok(), solo[j].ok()) << queries_[j].sql;
        if (!got.ok()) {
          EXPECT_EQ(got.status().ToString(), solo[j].status().ToString())
              << queries_[j].sql;
          continue;
        }
        EXPECT_EQ(got->eta, solo[j]->eta) << queries_[j].sql;
        EXPECT_EQ(got->accessed, solo[j]->accessed) << queries_[j].sql;
        EXPECT_EQ(got->d_prime, solo[j]->d_prime) << queries_[j].sql;
        ASSERT_EQ(got->table.size(), solo[j]->table.size()) << queries_[j].sql;
        for (size_t r = 0; r < got->table.size(); ++r) {
          EXPECT_EQ(got->table.row(r), solo[j]->table.row(r))
              << queries_[j].sql << " row " << r;
        }
      }
    });
  }
  for (auto& t : sessions) t.join();
}

TEST_P(BeasPropertyTest, WarmCacheEntriesSurviveUnrelatedChurn) {
  double alpha = GetParam().alpha;
  // A private dataset copy: this test mutates the database.
  Dataset ds = std::string(GetParam().dataset) == "tpch" ? MakeTpch(0.001, 78)
                                                         : MakeTfacc(1200, 78);
  BeasOptions options;
  options.constraints = ds.constraints;
  options.plan_cache.enabled = true;
  auto built = Beas::Build(&ds.db, options);
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<Beas> cached = std::move(*built);

  DatabaseSchema ds_schema = ds.db.Schema();
  std::vector<QueryPtr> parsed;
  for (const auto& gq : queries_) {
    auto q = ParseSql(ds_schema, gq.sql);
    ASSERT_TRUE(q.ok()) << gq.sql;
    parsed.push_back(*q);
    (void)cached->Answer(*q, alpha);  // warm the cache
  }

  // Churn exactly one relation (remove + re-insert: |D| net unchanged,
  // so surviving templates are still byte-equivalent to fresh planning).
  const std::string churned = ds_schema.relations().front().name();
  auto table = ds.db.FindTable(churned);
  ASSERT_TRUE(table.ok());
  ASSERT_GT((*table)->size(), 0u);
  for (int round = 0; round < 3; ++round) {
    Tuple row = (*table)->row((*table)->size() / 2);
    ASSERT_TRUE(cached->Remove(churned, row).ok());
    ASSERT_TRUE(cached->Insert(churned, row).ok());
  }

  BeasOptions fresh_options;
  fresh_options.constraints = ds.constraints;
  auto fresh_built = Beas::Build(&ds.db, fresh_options);
  ASSERT_TRUE(fresh_built.ok());
  std::unique_ptr<Beas> fresh = std::move(*fresh_built);

  int survivors = 0;
  int untouched = 0;
  for (size_t i = 0; i < parsed.size(); ++i) {
    std::vector<std::string> rels = QueryRelations(parsed[i]);
    bool touches_churned =
        std::find(rels.begin(), rels.end(), churned) != rels.end();
    auto got = cached->Answer(parsed[i], alpha);
    auto want = fresh->Answer(parsed[i], alpha);
    ASSERT_EQ(got.ok(), want.ok()) << queries_[i].sql;
    if (got.ok()) {
      EXPECT_EQ(got->eta, want->eta) << queries_[i].sql;
      EXPECT_EQ(got->accessed, want->accessed) << queries_[i].sql;
      ASSERT_EQ(got->table.size(), want->table.size()) << queries_[i].sql;
      for (size_t r = 0; r < got->table.size(); ++r) {
        EXPECT_EQ(got->table.row(r), want->table.row(r)) << queries_[i].sql;
      }
      if (!touches_churned) {
        ++untouched;
        survivors += got->plan_cached ? 1 : 0;
      }
    }
  }
  // Entries of untouched relations must (by and large) have survived the
  // churn. Not every untouched query is guaranteed a hit — a fingerprint
  // shared with a constant-conflicting twin re-plans — so the assertion
  // is on the population, not per query.
  if (untouched > 0) {
    EXPECT_GT(survivors, 0) << "every warm entry was invalidated by unrelated churn";
  }
}

TEST_P(BeasPropertyTest, DiskBackedAnswersMatchInMemoryByteForByte) {
  double alpha = GetParam().alpha;
  // Two identical dataset copies (same generator seed), so each instance
  // can run its own maintenance below without desynchronizing the other.
  const bool tpch = std::string(GetParam().dataset) == "tpch";
  Dataset ds_disk = tpch ? MakeTpch(0.001, 77) : MakeTfacc(1200, 77);

  const std::string path =
      ::testing::TempDir() + "beas_p9_" + GetParam().dataset + "_a" +
      std::to_string(static_cast<int>(alpha * 100)) + ".blk";
  BeasOptions disk_options;
  disk_options.constraints = ds_disk.constraints;
  disk_options.index.backend = IndexBackendKind::kBlockFile;
  disk_options.index.path = path;
  disk_options.index.block_bytes = 512;
  // Phase 1: build the index on disk and measure its footprint.
  uint64_t disk_bytes = 0;
  {
    auto builder = Beas::Build(&ds_disk.db, disk_options);
    ASSERT_TRUE(builder.ok()) << builder.status();
    disk_bytes = (*builder)->store().disk_bytes();
    ASSERT_GT(disk_bytes, 0u);
  }
  // Phase 2: reopen cold under a hard cache budget of 25% of the on-disk
  // index size — the acceptance point of the disk-backed tier.
  disk_options.index.open_existing = true;
  disk_options.index.cache_bytes = disk_bytes / 4;
  auto reopened = Beas::Build(&ds_disk.db, disk_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::unique_ptr<Beas> disk = std::move(*reopened);

  auto compare_all = [&](const char* stage) {
    uint64_t traffic = 0;
    for (const auto& gq : queries_) {
      auto q_mem = ParseSql(schema_, gq.sql);
      auto q_disk = ParseSql(ds_disk.db.Schema(), gq.sql);
      ASSERT_TRUE(q_mem.ok() && q_disk.ok()) << gq.sql;
      auto want = beas_->Answer(*q_mem, alpha);
      auto got = disk->Answer(*q_disk, alpha);
      ASSERT_EQ(got.ok(), want.ok())
          << stage << " " << gq.sql << "\n mem: " << want.status()
          << "\n disk: " << got.status();
      if (!got.ok()) {
        // Same OutOfBudget point, same rendered counters.
        EXPECT_EQ(got.status().ToString(), want.status().ToString())
            << stage << " " << gq.sql;
        continue;
      }
      EXPECT_EQ(got->eta, want->eta) << stage << " " << gq.sql;
      EXPECT_EQ(got->accessed, want->accessed) << stage << " " << gq.sql;
      EXPECT_EQ(got->d_prime, want->d_prime) << stage << " " << gq.sql;
      EXPECT_EQ(got->exact, want->exact) << stage << " " << gq.sql;
      ASSERT_EQ(got->table.size(), want->table.size()) << stage << " " << gq.sql;
      for (size_t i = 0; i < got->table.size(); ++i) {
        EXPECT_EQ(got->table.row(i), want->table.row(i))
            << stage << " " << gq.sql << " row " << i;
      }
      traffic += got->cache_hits + got->cache_misses;
      EXPECT_EQ(want->cache_hits + want->cache_misses, 0u) << gq.sql;
    }
    // The disk tier actually went through the block cache.
    EXPECT_GT(traffic, 0u) << stage;
  };
  compare_all("cold");

  // The bounded cache holds at most a quarter of the index.
  BlockCacheStats cache = disk->store().cache_stats();
  EXPECT_GT(cache.misses, 0u);
  EXPECT_LE(cache.resident_bytes, disk_bytes / 4);

  // Maintenance on both instances (remove + re-insert one row of every
  // relation), then the equivalence must still hold block-for-block.
  DatabaseSchema mem_schema = ds_.db.Schema();
  for (const auto& rel : mem_schema.relations()) {
    auto table = ds_.db.FindTable(rel.name());
    ASSERT_TRUE(table.ok());
    if ((*table)->size() == 0) continue;
    Tuple row = (*table)->row((*table)->size() / 2);
    ASSERT_TRUE(beas_->Remove(rel.name(), row).ok()) << rel.name();
    ASSERT_TRUE(beas_->Insert(rel.name(), row).ok()) << rel.name();
    ASSERT_TRUE(disk->Remove(rel.name(), row).ok()) << rel.name();
    ASSERT_TRUE(disk->Insert(rel.name(), row).ok()) << rel.name();
  }
  compare_all("after-maintenance");
}

TEST_P(BeasPropertyTest, MorselEvaluationIsByteIdenticalAcrossTheKnobMatrix) {
  // P10: the randomized workload swept over the full morsel-evaluation
  // knob matrix through the differential harness — every combination
  // must serialize byte-identically to the sequential reference of its
  // backend, at full budgets, at starvation budgets (OutOfBudget cuts
  // mid-evaluation), and after maintenance.
  double alpha = GetParam().alpha;
  const bool tpch = std::string(GetParam().dataset) == "tpch";
  ::beas::testing::DifferentialOptions options;
  options.constraints = ds_.constraints;
  options.eval_threads = {1, 2, 8};
  options.fetch_threads = {1, 4};
  options.temp_dir = ::testing::TempDir() + "beas_p10_" + GetParam().dataset +
                     "_a" + std::to_string(static_cast<int>(alpha * 100)) + "_";
  auto harness = ::beas::testing::DifferentialHarness::Create(
      [tpch] {
        return tpch ? MakeTpch(0.001, 77).db : MakeTfacc(1200, 77).db;
      },
      options);
  ASSERT_TRUE(harness.ok()) << harness.status();
  ASSERT_EQ((*harness)->instances(), 12u);  // 3 eval x 2 fetch x 2 backends

  int mismatches = 0;
  size_t swept = std::min<size_t>(queries_.size(), 10);
  for (size_t i = 0; i < swept; ++i) {
    mismatches += (*harness)->CheckQuery(queries_[i].sql, alpha, "P10 sweep");
  }
  // Starvation budgets: the meter must exhaust at the same point with
  // the same rendered status on every instance.
  for (size_t i = 0; i < std::min<size_t>(queries_.size(), 3); ++i) {
    mismatches += (*harness)->CheckBudgetCuts(queries_[i].sql, alpha, "P10 cut");
  }
  // Lockstep remove + re-insert of one row per relation, then replay.
  Dataset ds = tpch ? MakeTpch(0.001, 77) : MakeTfacc(1200, 77);
  DatabaseSchema ds_schema = ds.db.Schema();
  for (const auto& rel : ds_schema.relations()) {
    auto table = ds.db.FindTable(rel.name());
    ASSERT_TRUE(table.ok());
    if ((*table)->size() == 0) continue;
    Tuple row = (*table)->row((*table)->size() / 2);
    ASSERT_TRUE((*harness)->Remove(rel.name(), row).ok()) << rel.name();
    ASSERT_TRUE((*harness)->Insert(rel.name(), row).ok()) << rel.name();
  }
  for (size_t i = 0; i < std::min<size_t>(queries_.size(), 5); ++i) {
    mismatches +=
        (*harness)->CheckQuery(queries_[i].sql, alpha, "P10 post-maintenance");
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT((*harness)->checks(), 100);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BeasPropertyTest,
    ::testing::Values(PropertyCase{"tpch", 0.02}, PropertyCase{"tpch", 0.1},
                      PropertyCase{"tpch", 0.5}, PropertyCase{"tfacc", 0.02},
                      PropertyCase{"tfacc", 0.1}, PropertyCase{"tfacc", 0.5}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = info.param.dataset;
      name += "_a";
      name += std::to_string(static_cast<int>(info.param.alpha * 100));
      return name;
    });

}  // namespace
}  // namespace beas
