// Tests for the unified metrics registry (src/common/metrics.h) and the
// per-query trace (src/common/trace.h): log-bucket relative-error bounds
// on histogram percentiles, empty/one-sample edges, concurrent-record
// merge determinism, agreement with the ceil nearest-rank convention the
// service used to compute directly, and the JSON/text expositions. The
// suite carries the ctest label `obs` and runs in the ASan and TSan CI
// jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "service/query_service.h"

namespace beas {
namespace {

// --- Counter / Gauge ---

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.value(), -8);
}

// --- Histogram bucketing ---

TEST(HistogramTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundsCoverAndStayWithinRelativeError) {
  // The documented contract: a sample's bucket upper bound is >= the
  // sample and overstates it by at most 12.5% (v/8 for v >= 8).
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng() >> (rng() % 40);  // spread across octaves
    size_t idx = Histogram::BucketIndex(v);
    uint64_t ub = Histogram::BucketUpperBound(idx);
    ASSERT_GE(ub, v) << "bucket bound below its own sample, v=" << v;
    if (v >= 8) {
      // Subtraction form: v + v/8 would overflow in the top octave.
      ASSERT_LE(ub - v, v / 8) << "bucket bound overstates >12.5%, v=" << v;
    }
  }
  // Bucket indexing is monotone at octave boundaries.
  for (int o = 3; o < 20; ++o) {
    uint64_t lo = uint64_t{1} << o;
    EXPECT_LT(Histogram::BucketIndex(lo - 1), Histogram::BucketIndex(lo));
  }
}

TEST(HistogramTest, EmptyAndOneSampleEdges) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(95.0), 0.0);
  h.Record(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 5u);
  // One sample < 8: every percentile is exactly that sample.
  EXPECT_EQ(h.Percentile(0.0), 5.0);
  EXPECT_EQ(h.Percentile(50.0), 5.0);
  EXPECT_EQ(h.Percentile(100.0), 5.0);
}

TEST(HistogramTest, PercentileMatchesNearestRankWithinBucketError) {
  // Pin the histogram's percentiles against the reference ceil
  // nearest-rank selection on a known multiset: exact for samples < 8,
  // within the 12.5% bucket rounding above.
  const std::vector<uint64_t> samples = {1, 2, 3, 4, 5, 6, 7,
                                         100, 1000, 10000, 123456};
  Histogram h;
  std::vector<double> window;
  for (uint64_t s : samples) {
    h.Record(s);
    window.push_back(static_cast<double>(s));
  }
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    double exact = NearestRankPercentile(window, p / 100.0);
    double bucketed = h.Percentile(p);
    EXPECT_GE(bucketed, exact) << "p=" << p;
    EXPECT_LE(bucketed, exact * 1.125 + 1e-9) << "p=" << p;
    if (exact < 8.0) {
      EXPECT_EQ(bucketed, exact) << "small samples must be exact, p=" << p;
    }
  }
}

TEST(HistogramTest, ConcurrentRecordingIsMergeDeterministic) {
  // The same sample multiset recorded (a) sequentially and (b) sliced
  // across 8 threads must produce identical bucket counts, sums, and
  // percentiles — stripe assignment must never leak into reads.
  std::mt19937_64 rng(11);
  std::vector<uint64_t> samples(80000);
  for (auto& s : samples) s = rng() % 1000000;

  Histogram sequential;
  for (uint64_t s : samples) sequential.Record(s);

  Histogram threaded;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  size_t chunk = samples.size() / kThreads;
  for (int t = 0; t < kThreads; ++t) {
    size_t begin = t * chunk;
    size_t end = t == kThreads - 1 ? samples.size() : begin + chunk;
    threads.emplace_back([&threaded, &samples, begin, end] {
      for (size_t i = begin; i < end; ++i) threaded.Record(samples[i]);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(threaded.count(), sequential.count());
  EXPECT_EQ(threaded.sum(), sequential.sum());
  EXPECT_EQ(threaded.bucket_counts(), sequential.bucket_counts());
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    EXPECT_EQ(threaded.Percentile(p), sequential.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, MergeFromIsAdditive) {
  Histogram a, b, both;
  for (uint64_t v : {1, 5, 100, 1000}) {
    a.Record(v);
    both.Record(v);
  }
  for (uint64_t v : {2, 50, 5000}) {
    b.Record(v);
    both.Record(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.bucket_counts(), both.bucket_counts());
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x_total");
  Counter* c2 = reg.GetCounter("x_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("y_total"), c1);
  EXPECT_EQ(reg.GetHistogram("h_us"), reg.GetHistogram("h_us"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
}

TEST(MetricsRegistryTest, JsonExpositionCarriesAllKinds) {
  MetricsRegistry reg;
  reg.GetCounter("req_total")->Increment(3);
  reg.GetGauge("depth")->Set(-4);
  Histogram* h = reg.GetHistogram("lat_us");
  for (uint64_t v : {1, 2, 3, 4}) h->Record(v);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"req_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":10"), std::string::npos);
  // Sorted keys => deterministic exposition for equal contents.
  EXPECT_EQ(json, reg.ToJson());
}

TEST(MetricsRegistryTest, TextExpositionIsPrometheusShaped) {
  MetricsRegistry reg;
  reg.GetCounter("req_total")->Increment();
  reg.GetGauge("depth")->Set(7);
  reg.GetHistogram("lat_us")->Record(5);
  std::string text = reg.ToText();
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
}

// --- QueryTrace ---

TEST(QueryTraceTest, TimingsOffDropsSpansButKeepsAttrs) {
  QueryTrace trace(/*timings=*/false);
  trace.AddSpan("plan", 0, 100);
  { ScopedSpan span(&trace, "fetch"); }
  trace.IncrAttr("fetch_ops", 3);
  trace.IncrAttr("fetch_ops", 2);
  trace.SetAttr("plan_cache_hit", 1);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.Attr("fetch_ops"), 5);
  EXPECT_EQ(trace.Attr("plan_cache_hit"), 1);
  EXPECT_EQ(trace.SpanMicros("plan"), 0u);
}

TEST(QueryTraceTest, TimingsOnRecordsSpans) {
  QueryTrace trace(/*timings=*/true);
  trace.AddSpan("plan", 10, 100);
  trace.AddSpan("fetch", 110, 50);
  trace.AddSpan("fetch", 160, 25);
  EXPECT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.SpanMicros("plan"), 100u);
  EXPECT_EQ(trace.SpanMicros("fetch"), 75u);
  std::string summary = trace.Summary();
  EXPECT_NE(summary.find("plan"), std::string::npos);
  EXPECT_NE(summary.find("fetch"), std::string::npos);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"dur_us\":100"), std::string::npos);
}

TEST(QueryTraceTest, ScopedSpanIsInertOnNullTrace) {
  // Must not crash and must not dereference anything.
  ScopedSpan span(nullptr, "whatever");
}

}  // namespace
}  // namespace beas
