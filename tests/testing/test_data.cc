#include "testing/test_data.h"

#include <cmath>

namespace beas {
namespace testing {

Database MakeSocialDb(uint64_t seed, int num_people, int num_cities, int max_friends,
                      int num_pois) {
  Rng rng(seed);
  Database db;

  RelationSchema person("person", {
                                      {"pid", DataType::kInt64, DistanceSpec::Trivial()},
                                      {"city", DataType::kInt64, DistanceSpec::Trivial()},
                                      {"address", DataType::kDouble, DistanceSpec::Numeric()},
                                  });
  Table person_t(person);
  std::vector<int64_t> city_of(static_cast<size_t>(num_people));
  for (int p = 0; p < num_people; ++p) {
    int64_t city = rng.Uniform(0, num_cities - 1);
    city_of[static_cast<size_t>(p)] = city;
    person_t.AppendUnchecked({Value(static_cast<int64_t>(p)), Value(city),
                              Value(rng.UniformReal(0, 1000))});
  }
  (void)db.AddTable(std::move(person_t));

  RelationSchema friend_rel("friend", {
                                          {"pid", DataType::kInt64, DistanceSpec::Trivial()},
                                          {"fid", DataType::kInt64, DistanceSpec::Trivial()},
                                      });
  Table friend_t(friend_rel);
  for (int p = 0; p < num_people; ++p) {
    int n = static_cast<int>(rng.Uniform(0, max_friends));
    std::vector<int64_t> friends;
    for (int i = 0; i < n; ++i) {
      int64_t f = rng.Uniform(0, num_people - 1);
      if (f == p) continue;
      bool dup = false;
      for (int64_t existing : friends) dup |= existing == f;
      if (!dup) friends.push_back(f);
    }
    for (int64_t f : friends) {
      friend_t.AppendUnchecked({Value(static_cast<int64_t>(p)), Value(f)});
    }
  }
  (void)db.AddTable(std::move(friend_t));

  RelationSchema poi("poi", {
                                {"address", DataType::kDouble, DistanceSpec::Numeric()},
                                {"type", DataType::kString, DistanceSpec::Trivial()},
                                {"city", DataType::kInt64, DistanceSpec::Trivial()},
                                {"price", DataType::kDouble, DistanceSpec::Numeric()},
                            });
  Table poi_t(poi);
  const char* kTypes[] = {"hotel", "restaurant", "museum"};
  for (int i = 0; i < num_pois; ++i) {
    poi_t.AppendUnchecked({Value(rng.UniformReal(0, 1000)),
                           Value(kTypes[rng.Uniform(0, 2)]),
                           Value(rng.Uniform(0, num_cities - 1)),
                           Value(std::floor(rng.UniformReal(20, 200)))});
  }
  (void)db.AddTable(std::move(poi_t));
  return db;
}

Database MakeNumericDb(uint64_t seed, int rows) {
  Rng rng(seed);
  Database db;
  RelationSchema r("r", {
                            {"k", DataType::kInt64, DistanceSpec::Trivial()},
                            {"a", DataType::kDouble, DistanceSpec::Numeric()},
                            {"b", DataType::kDouble, DistanceSpec::Numeric()},
                            {"c", DataType::kInt64, DistanceSpec::Trivial()},
                        });
  Table t(r);
  for (int i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(static_cast<int64_t>(i)), Value(rng.UniformReal(0, 100)),
                       Value(rng.UniformReal(0, 100)), Value(rng.Uniform(0, 5))});
  }
  (void)db.AddTable(std::move(t));
  return db;
}

}  // namespace testing
}  // namespace beas
