// Shared test fixtures: the paper's Example 1 social/POI database and a
// small numeric dataset for index and accuracy tests.

#ifndef BEAS_TESTS_TESTING_TEST_DATA_H_
#define BEAS_TESTS_TESTING_TEST_DATA_H_

#include "common/rng.h"
#include "storage/database.h"

namespace beas {
namespace testing {

/// The Example 1 schema:
///   person(pid, city, address)   -- pid/city trivial, address numeric
///   friend(pid, fid)
///   poi(address, type, city, price)  -- price/address numeric distances
/// Each pid lives in one city (constraint phi2), has at most
/// `max_friends` friends (phi1). POI prices are uniform in [20, 200].
Database MakeSocialDb(uint64_t seed, int num_people, int num_cities, int max_friends,
                      int num_pois);

/// A single-relation database r(k, a, b, c): k a trivial-metric key,
/// a/b numeric uniform, c a categorical code (trivial metric) in [0,5].
Database MakeNumericDb(uint64_t seed, int rows);

}  // namespace testing
}  // namespace beas

#endif  // BEAS_TESTS_TESTING_TEST_DATA_H_
