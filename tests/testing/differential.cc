#include "testing/differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "beas/answer_sink.h"

namespace beas {
namespace testing {

namespace {

// Returns the thread list with 1 guaranteed first and duplicates dropped
// (the (1,1) combo is the sequential reference every sweep needs).
std::vector<int> NormalizeThreads(const std::vector<int>& in) {
  std::vector<int> out = {1};
  for (int t : in) {
    if (t > 1 && std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

std::string SerializeAnswer(const Result<BeasAnswer>& answer,
                            bool with_cache_counters) {
  std::ostringstream os;
  if (!answer.ok()) {
    os << "status=" << answer.status().ToString() << "\n";
    return os.str();
  }
  const BeasAnswer& a = *answer;
  os << "status=ok\nrows=" << a.table.size() << "\n";
  for (const Tuple& row : a.table.rows()) {
    for (const Value& v : row) os << v.ToString() << "|";
    os << "\n";
  }
  // hexfloat: equal strings <=> bit-equal doubles, no rounding slack.
  os << std::hexfloat << "eta=" << a.eta << "\nd_prime=" << a.d_prime << "\n"
     << std::defaultfloat;
  os << "accessed=" << a.accessed << "\nexact=" << (a.exact ? 1 : 0) << "\n";
  if (with_cache_counters) {
    os << "cache_hits=" << a.cache_hits << "\ncache_misses=" << a.cache_misses
       << "\n";
  }
  return os.str();
}

/// One cell of the sweep matrix: a private database copy and a Beas
/// instance configured with this cell's thread counts and backend.
struct DifferentialHarness::Instance {
  std::string name;
  bool disk = false;
  int eval_threads = 1;
  int fetch_threads = 1;
  std::unique_ptr<Database> db;
  std::unique_ptr<Beas> beas;
};

DifferentialHarness::~DifferentialHarness() = default;

Result<std::unique_ptr<DifferentialHarness>> DifferentialHarness::Create(
    std::function<Database()> make_db, DifferentialOptions options) {
  options.eval_threads = NormalizeThreads(options.eval_threads);
  options.fetch_threads = NormalizeThreads(options.fetch_threads);
  if (options.disk_backend && options.temp_dir.empty()) {
    return Status::InvalidArgument(
        "DifferentialOptions::temp_dir is required when disk_backend is set");
  }
  auto harness = std::unique_ptr<DifferentialHarness>(new DifferentialHarness());
  std::vector<bool> backends = {false};
  if (options.disk_backend) backends.push_back(true);
  for (bool disk : backends) {
    for (int f : options.fetch_threads) {
      for (int e : options.eval_threads) {
        auto inst = std::make_unique<Instance>();
        inst->disk = disk;
        inst->eval_threads = e;
        inst->fetch_threads = f;
        inst->name = std::string(disk ? "disk" : "mem") + "_e" +
                     std::to_string(e) + "_f" + std::to_string(f);
        inst->db = std::make_unique<Database>(make_db());
        BeasOptions bo;
        bo.constraints = options.constraints;
        bo.eval.eval_threads = e;
        bo.eval.fetch_threads = f;
        if (disk) {
          bo.index.backend = IndexBackendKind::kBlockFile;
          bo.index.path = options.temp_dir + "diff_" + inst->name + ".blk";
          bo.index.block_bytes = options.block_bytes;
          // Build the block file, then reopen it cold under the 25%
          // cache budget (the P9 acceptance point for the disk tier).
          uint64_t disk_bytes = 0;
          {
            BEAS_ASSIGN_OR_RETURN(std::unique_ptr<Beas> builder,
                                  Beas::Build(inst->db.get(), bo));
            disk_bytes = builder->store().disk_bytes();
          }
          bo.index.open_existing = true;
          bo.index.cache_bytes = disk_bytes / 4;
        }
        BEAS_ASSIGN_OR_RETURN(inst->beas, Beas::Build(inst->db.get(), bo));
        harness->instances_.push_back(std::move(inst));
      }
    }
  }
  harness->options_ = std::move(options);
  return harness;
}

size_t DifferentialHarness::ReferenceIndex(bool disk) const {
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = *instances_[i];
    if (inst.disk == disk && inst.eval_threads == 1 && inst.fetch_threads == 1) {
      return i;
    }
  }
  return 0;  // unreachable: Create always builds the (1,1) combo
}

int DifferentialHarness::CheckQuery(const std::string& sql, double alpha,
                                    const std::string& label) {
  int mismatches = 0;
  std::vector<std::string> core(instances_.size());
  std::vector<std::string> full(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    Instance& inst = *instances_[i];
    auto q = inst.beas->Parse(sql);
    if (!q.ok()) {
      ADD_FAILURE() << label << " [" << inst.name << "] parse failed: "
                    << q.status() << "\n  sql: " << sql;
      ++mismatches;
      continue;
    }
    Result<BeasAnswer> answer = inst.beas->Answer(*q, alpha);
    core[i] = SerializeAnswer(answer, /*with_cache_counters=*/false);
    full[i] = SerializeAnswer(answer, /*with_cache_counters=*/true);
  }
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = *instances_[i];
    size_t ref = ReferenceIndex(inst.disk);
    if (i == ref) continue;
    // Cache counters are only deterministic when the fetch stream is
    // (fetch_threads == 1); see the header comment.
    bool with_cache = inst.fetch_threads == 1;
    const std::string& got = with_cache ? full[i] : core[i];
    const std::string& want = with_cache ? full[ref] : core[ref];
    ++checks_;
    if (got != want) {
      ADD_FAILURE() << label << " [" << inst.name << "] diverged from ["
                    << instances_[ref]->name << "]\n  sql: " << sql
                    << "\n  alpha: " << alpha << "\n--- reference ---\n"
                    << want << "--- got ---\n" << got;
      ++mismatches;
    }
  }
  return mismatches;
}

int DifferentialHarness::CheckStreaming(const std::string& sql, double alpha,
                                        const std::string& label) {
  int mismatches = 0;
  std::vector<std::string> streamed(instances_.size());
  std::vector<std::string> direct(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    Instance& inst = *instances_[i];
    auto q = inst.beas->Parse(sql);
    if (!q.ok()) {
      ADD_FAILURE() << label << " [" << inst.name << "] parse failed: "
                    << q.status() << "\n  sql: " << sql;
      ++mismatches;
      continue;
    }
    Result<BeasAnswer> materialized = inst.beas->Answer(*q, alpha);
    CollectingAnswerSink sink;
    Result<BeasAnswer> outcome =
        inst.beas->Answer(*q, alpha, inst.beas->eval_options(), &sink);
    Result<BeasAnswer> rebuilt = Status::Internal("stream outcome not rebuilt");
    if (outcome.ok()) {
      if (!sink.finished() || sink.failed()) {
        ADD_FAILURE() << label << " [" << inst.name
                      << "] successful stream broke the sink protocol "
                      << "(finished=" << sink.finished()
                      << " failed=" << sink.failed() << ")";
        ++mismatches;
      }
      if (sink.trailer().total_rows != sink.table().size() ||
          outcome->streamed_rows != sink.table().size()) {
        ADD_FAILURE() << label << " [" << inst.name << "] trailer announced "
                      << sink.trailer().total_rows << " rows, streamed_rows "
                      << outcome->streamed_rows << ", sink holds "
                      << sink.table().size();
        ++mismatches;
      }
      BeasAnswer a = std::move(*outcome);
      a.table = sink.table();
      rebuilt = std::move(a);
    } else {
      if (!sink.failed() || sink.finished()) {
        ADD_FAILURE() << label << " [" << inst.name
                      << "] failed stream broke the sink protocol "
                      << "(finished=" << sink.finished()
                      << " failed=" << sink.failed() << ")";
        ++mismatches;
      }
      rebuilt = outcome.status();
    }
    // Cache counters are excluded: the streamed run replays the fetch
    // after the materialized one, so LRU recency differs by design.
    streamed[i] = SerializeAnswer(rebuilt, /*with_cache_counters=*/false);
    direct[i] = SerializeAnswer(materialized, /*with_cache_counters=*/false);
  }
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = *instances_[i];
    ++checks_;
    if (streamed[i] != direct[i]) {
      ADD_FAILURE() << label << " [" << inst.name
                    << "] streamed answer diverged from its own materialized "
                    << "answer\n  sql: " << sql << "\n--- materialized ---\n"
                    << direct[i] << "--- streamed ---\n" << streamed[i];
      ++mismatches;
      continue;
    }
    size_t ref = ReferenceIndex(inst.disk);
    if (i == ref) continue;
    ++checks_;
    if (streamed[i] != streamed[ref]) {
      ADD_FAILURE() << label << " [" << inst.name
                    << "] streamed answer diverged from ["
                    << instances_[ref]->name << "]\n  sql: " << sql
                    << "\n--- reference ---\n" << streamed[ref]
                    << "--- got ---\n" << streamed[i];
      ++mismatches;
    }
  }
  return mismatches;
}

int DifferentialHarness::CheckBudgetCuts(const std::string& sql, double alpha,
                                         const std::string& label) {
  int mismatches = 0;
  uint64_t full_budget = static_cast<uint64_t>(
      std::floor(alpha * static_cast<double>(db_size())));
  for (uint64_t budget :
       {uint64_t{1}, full_budget / 7 + 1, full_budget / 2 + 1}) {
    std::vector<std::string> core(instances_.size());
    std::vector<std::string> cache(instances_.size());
    for (size_t i = 0; i < instances_.size(); ++i) {
      Instance& inst = *instances_[i];
      auto q = inst.beas->Parse(sql);
      if (!q.ok()) {
        ADD_FAILURE() << label << " [" << inst.name << "] parse failed: "
                      << q.status() << "\n  sql: " << sql;
        ++mismatches;
        continue;
      }
      Result<BeasAnswer> outcome = Status::Internal("outcome not computed");
      auto plan = inst.beas->PlanOnly(*q, alpha);
      if (!plan.ok()) {
        outcome = plan.status();  // planning cut: compared like any other
      } else {
        EvalOptions opts;
        opts.eval_threads = inst.eval_threads;
        opts.fetch_threads = inst.fetch_threads;
        PlanExecutor executor(&inst.beas->store(), opts);
        outcome = executor.Execute(*plan, budget);
      }
      core[i] = SerializeAnswer(outcome, /*with_cache_counters=*/false);
      cache[i] = SerializeAnswer(outcome, /*with_cache_counters=*/true);
    }
    for (size_t i = 0; i < instances_.size(); ++i) {
      const Instance& inst = *instances_[i];
      size_t ref = ReferenceIndex(inst.disk);
      if (i == ref) continue;
      bool with_cache = inst.fetch_threads == 1;
      const std::string& got = with_cache ? cache[i] : core[i];
      const std::string& want = with_cache ? cache[ref] : core[ref];
      ++checks_;
      if (got != want) {
        ADD_FAILURE() << label << " [" << inst.name << "] budget " << budget
                      << " cut diverged from [" << instances_[ref]->name
                      << "]\n  sql: " << sql << "\n--- reference ---\n"
                      << want << "--- got ---\n" << got;
        ++mismatches;
      }
    }
  }
  return mismatches;
}

Status DifferentialHarness::Insert(const std::string& relation, const Tuple& row) {
  Status first = Status::OK();
  for (size_t i = 0; i < instances_.size(); ++i) {
    Status st = instances_[i]->beas->Insert(relation, row);
    if (i == 0) {
      first = st;
    } else if (st.ToString() != first.ToString()) {
      ADD_FAILURE() << "Insert(" << relation << ") diverged on ["
                    << instances_[i]->name << "]: " << st
                    << " vs reference " << first;
    }
  }
  return first;
}

Status DifferentialHarness::Remove(const std::string& relation, const Tuple& row) {
  Status first = Status::OK();
  for (size_t i = 0; i < instances_.size(); ++i) {
    Status st = instances_[i]->beas->Remove(relation, row);
    if (i == 0) {
      first = st;
    } else if (st.ToString() != first.ToString()) {
      ADD_FAILURE() << "Remove(" << relation << ") diverged on ["
                    << instances_[i]->name << "]: " << st
                    << " vs reference " << first;
    }
  }
  return first;
}

size_t DifferentialHarness::instances() const { return instances_.size(); }

size_t DifferentialHarness::db_size() const {
  return instances_.empty() ? 0 : instances_.front()->beas->db_size();
}

}  // namespace testing
}  // namespace beas
