// The differential-testing harness behind property P10 and the eval
// suite: it pins morsel-driven evaluation (EvalOptions::eval_threads)
// and parallel fetching (fetch_threads) bit-identical to sequential
// execution across the full knob matrix — thread combos x storage
// backends x budgets — by running the same query stream on one Beas
// instance per combination and byte-comparing canonical serializations
// of every outcome (rows, eta, accessed, exactness, d', failure
// statuses, and — where the fetch stream is deterministic — the block
// cache counters).
//
// Comparison discipline:
//   - Core answer state (rows / eta / accessed / d' / exact / status)
//     is compared against the (eval_threads=1, fetch_threads=1)
//     reference of the same backend. The deposit protocol makes these
//     identical at ANY thread count, so equality is asserted across the
//     whole matrix.
//   - Block-cache hit/miss counters are recency-dependent observables of
//     the LRU tier: they are pinned bit-exactly whenever the physical
//     fetch stream is deterministic, i.e. for every (eval_threads,
//     fetch_threads=1) combo against the sequential reference — which is
//     exactly the morsel-evaluation claim (xi_E never touches the
//     store). With fetch_threads > 1 the block access *order* races by
//     design, so cache counters are excluded from those comparisons
//     (answers are still compared in full).
//
// Every instance owns a private Database copy (and, on the disk
// backend, a private block file reopened cold under a 25% cache
// budget), so maintenance replays (Insert/Remove through the harness)
// keep all instances in lockstep without sharing mutable state.

#ifndef BEAS_TESTS_TESTING_DIFFERENTIAL_H_
#define BEAS_TESTS_TESTING_DIFFERENTIAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "beas/beas.h"
#include "storage/database.h"

namespace beas {
namespace testing {

/// Canonical byte-exact rendering of one Answer/Execute outcome. Floats
/// (eta, d') print as hexfloat so equality means bit equality; failures
/// render their full Status (code + message, which embeds the
/// accessed/budget counters at the cut point). Cache counters are
/// appended only when \p with_cache_counters is set (see the header
/// comment for when they are comparable).
std::string SerializeAnswer(const Result<BeasAnswer>& answer,
                            bool with_cache_counters);

/// Configuration of a DifferentialHarness sweep.
struct DifferentialOptions {
  /// Access constraints handed to every instance's Beas::Build.
  std::vector<ConstraintSpec> constraints;
  /// Thread matrix: every eval_threads x fetch_threads combination gets
  /// its own instance. 1 is prepended to either list if missing — the
  /// (1,1) combo is the sequential reference and always present.
  std::vector<int> eval_threads = {1, 2, 8};
  std::vector<int> fetch_threads = {1, 4};
  /// Mirror the whole thread matrix on the disk-backed block-file
  /// backend, each instance reopened cold under a cache budget of 25%
  /// of its on-disk index size (the P9 acceptance point).
  bool disk_backend = true;
  /// Block size of the disk instances (small, so multi-block traffic and
  /// evictions happen even on test-sized indices).
  uint64_t block_bytes = 512;
  /// Path prefix for the disk instances' block files (the instance name
  /// and extension are appended verbatim); must be writable and unique
  /// per harness (e.g. ::testing::TempDir() + test name). Required when
  /// disk_backend is set.
  std::string temp_dir;
};

/// \brief One-stop differential sweep over the thread/backend matrix.
///
/// Typical use (see property P10 and tests/eval_parallel_test.cc):
///
///   auto harness = DifferentialHarness::Create(
///       [] { return MakeDataset().db; }, options);
///   harness->CheckQuery(sql, alpha, "label");       // full-budget sweep
///   harness->CheckBudgetCuts(sql, alpha, "label");  // OutOfBudget cuts
///   harness->Insert("person", row);                  // lockstep mutation
///   harness->CheckQuery(sql, alpha, "post-insert");  // replay
///
/// Check* methods register gtest failures (ADD_FAILURE with the label
/// and both serializations) for every divergent instance and return the
/// mismatch count; checks() counts comparisons performed so callers can
/// assert the sweep actually covered ground.
class DifferentialHarness {
 public:
  /// Builds one instance per (backend x eval_threads x fetch_threads)
  /// from private Database copies produced by \p make_db (which must be
  /// deterministic: every call returns identical data).
  static Result<std::unique_ptr<DifferentialHarness>> Create(
      std::function<Database()> make_db, DifferentialOptions options);

  /// Answers \p sql at \p alpha on every instance and byte-compares all
  /// outcomes against the sequential reference of the same backend.
  /// Returns the number of mismatching instances (0 == identical).
  int CheckQuery(const std::string& sql, double alpha, const std::string& label);

  /// Answers \p sql twice on every instance — materialized, and streamed
  /// through a CollectingAnswerSink — and byte-compares the
  /// reconstructed streamed answer (sink rows + trailer) against the
  /// instance's own materialized answer and the sequential reference:
  /// the push-based pipeline must not move a single byte (rows, order,
  /// eta, accessed, failure cut) at any thread count or backend. Also
  /// asserts the sink protocol (Open before rows, exactly one
  /// Finish/Fail, trailer total matching the streamed rows).
  int CheckStreaming(const std::string& sql, double alpha,
                     const std::string& label);

  /// Drives each instance's executor directly at starvation budgets
  /// (1, full/7+1, full/2+1 where full = alpha*|D|) so the meter
  /// exhausts mid-execution, and byte-compares the cut outcomes — the
  /// OutOfBudget point must not move at any thread count or backend.
  int CheckBudgetCuts(const std::string& sql, double alpha,
                      const std::string& label);

  /// Lockstep maintenance: applies the mutation to every instance (all
  /// must agree on the resulting status).
  Status Insert(const std::string& relation, const Tuple& row);
  Status Remove(const std::string& relation, const Tuple& row);

  /// Total byte-comparisons performed so far (coverage assertion hook).
  int checks() const { return checks_; }
  /// Number of instances in the sweep.
  size_t instances() const;
  /// |D| of the (identical) databases, for budget math in tests.
  size_t db_size() const;

  ~DifferentialHarness();

 private:
  struct Instance;

  DifferentialHarness() = default;

  /// Index of the (eval_threads=1, fetch_threads=1) sequential
  /// reference instance of \p disk backend.
  size_t ReferenceIndex(bool disk) const;

  DifferentialOptions options_;
  std::vector<std::unique_ptr<Instance>> instances_;
  int checks_ = 0;
};

}  // namespace testing
}  // namespace beas

#endif  // BEAS_TESTS_TESTING_DIFFERENTIAL_H_
