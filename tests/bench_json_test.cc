// Unit tests for the bench harness's machine-readable JSON emission
// (SeriesToJson): quote/backslash/control-character escaping in titles,
// labels and series names, and null serialization of non-finite values.
// The parser side (scripts/bench_diff.py) has a matching quote-bearing
// fixture case in scripts/bench_diff_test.py.

#include "harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace beas {
namespace bench {
namespace {

TEST(SeriesToJsonTest, PlainSeriesRoundTrips) {
  std::string json = SeriesToJson("Fig6x", "alpha", {"0.1", "0.2"}, {"BEAS", "Sampl"},
                                  {{0.5, 0.25}, {0.75, 0.5}});
  EXPECT_EQ(json,
            "{\"type\":\"series\",\"title\":\"Fig6x\",\"x_label\":\"alpha\","
            "\"series\":[\"BEAS\",\"Sampl\"],"
            "\"points\":[{\"x\":\"0.1\",\"values\":{\"BEAS\":0.5,\"Sampl\":0.25}},"
            "{\"x\":\"0.2\",\"values\":{\"BEAS\":0.75,\"Sampl\":0.5}}]}");
}

TEST(SeriesToJsonTest, EscapesQuotesAndBackslashes) {
  // A quote-bearing config string (e.g. a label built from a SQL
  // fragment or a Windows-style path) must stay valid JSON.
  std::string json = SeriesToJson("title with \"quotes\"", "x\\label",
                                  {"x=\"a\""}, {"ser\"ies\\1"}, {{1.0}});
  EXPECT_EQ(json,
            "{\"type\":\"series\",\"title\":\"title with \\\"quotes\\\"\","
            "\"x_label\":\"x\\\\label\","
            "\"series\":[\"ser\\\"ies\\\\1\"],"
            "\"points\":[{\"x\":\"x=\\\"a\\\"\",\"values\":{\"ser\\\"ies\\\\1\":1}}]}");
  // No unescaped payload quote may survive in the emitted object.
  EXPECT_EQ(json.find("ser\"i"), std::string::npos);
}

TEST(SeriesToJsonTest, EscapesControlCharacters) {
  std::string json =
      SeriesToJson("line\nbreak\ttab\x01", "x", {"a"}, {"s"}, {{2.0}});
  EXPECT_NE(json.find("line\\nbreak\\ttab\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(SeriesToJsonTest, MaxRssOverloadAppendsTopLevelField) {
  std::string base = SeriesToJson("Fig6x", "alpha", {"0.1"}, {"BEAS"}, {{0.5}});
  std::string with_rss =
      SeriesToJson("Fig6x", "alpha", {"0.1"}, {"BEAS"}, {{0.5}}, 51200);
  // The footprint field splices in before the closing brace; everything
  // else is byte-identical to the base rendering.
  EXPECT_EQ(with_rss,
            base.substr(0, base.size() - 1) + ",\"max_rss_kb\":51200}");
}

TEST(SeriesToJsonTest, MaxRssIsPositiveOnThisPlatform) {
  // PrintSeries feeds CurrentMaxRssKb into the JSON sink; a zero reading
  // would make the bench_diff RSS gate vacuous.
  EXPECT_GT(CurrentMaxRssKb(), 0u);
}

TEST(SeriesToJsonTest, MaxRssIsPlausiblyKilobytes) {
  // ru_maxrss is kilobytes on Linux but BYTES on macOS; CurrentMaxRssKb
  // normalizes per platform. An un-normalized bytes reading for this
  // small test binary would land in the gigabytes-of-"KB" range, so a
  // sanity band catches a 1024x unit slip on either platform: above the
  // floor any real process needs, below a cap (64 GB in KB) that a
  // bytes-mislabeled reading of even this binary would overshoot.
  uint64_t kb = CurrentMaxRssKb();
  EXPECT_GE(kb, 256u);
  EXPECT_LT(kb, 64u * 1024 * 1024);
}

TEST(SeriesToJsonTest, NonFiniteValuesSerializeAsNull) {
  std::string json = SeriesToJson("t", "x", {"a"}, {"nanv", "infv"},
                                  {{std::nan(""), INFINITY}});
  EXPECT_NE(json.find("\"nanv\":null"), std::string::npos);
  EXPECT_NE(json.find("\"infv\":null"), std::string::npos);
}

}  // namespace
}  // namespace bench
}  // namespace beas
