#!/usr/bin/env python3
"""Unit tests for bench_diff.py on the fixture logs in scripts/testdata/.

Run directly (python3 scripts/bench_diff_test.py) or via ctest
(test name: bench_diff_unit).
"""

import io
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")
BASE = os.path.join(TESTDATA, "bench_base.jsonl")
DRIFT = os.path.join(TESTDATA, "bench_drift.jsonl")


def run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = bench_diff.main(argv)
    return code, out.getvalue()


class LoadCellsTest(unittest.TestCase):
    def test_loads_all_cells_keyed_on_title_x_series(self):
        cells = bench_diff.load_cells(BASE)
        self.assertEqual(
            cells[("Fig6g RC accuracy vs #-sel (TFACC)", "3", "BEAS")], 0.82)
        self.assertEqual(
            cells[("PlanCache planning time, repeated fig6g families (TFACC)",
                   "3", "speedup")], 76.0)
        # null (non-finite) cells load as None, not as a number.
        self.assertIsNone(cells[("Unmeasurable panel", "1", "score")])
        self.assertEqual(len(cells), 14)

    def test_rejects_malformed_jsonl(self):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
            f.write("{not json\n")
            path = f.name
        try:
            with self.assertRaises(ValueError):
                bench_diff.load_cells(path)
        finally:
            os.unlink(path)


class QuoteBearingLabelTest(unittest.TestCase):
    """Labels with quotes/backslashes survive the harness -> diff pipeline.

    The line below is byte-for-byte what the harness's SeriesToJson emits
    for a quote-bearing title/series (kept in sync with the C++ unit test
    tests/bench_json_test.cc): the escaper must produce JSON that
    load_cells parses back to the original strings.
    """

    ESCAPED_LINE = ('{"type":"series","title":"title with \\"quotes\\"",'
                    '"x_label":"x\\\\label",'
                    '"series":["ser\\"ies\\\\1"],'
                    '"points":[{"x":"x=\\"a\\"","values":{"ser\\"ies\\\\1":1}}]}')

    def _write(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            f.write(text + "\n")
            return f.name

    def test_escaped_labels_parse_back_to_originals(self):
        path = self._write(self.ESCAPED_LINE)
        try:
            cells = bench_diff.load_cells(path)
        finally:
            os.unlink(path)
        self.assertEqual(
            cells[('title with "quotes"', 'x="a"', 'ser"ies\\1')], 1)

    def test_quote_bearing_logs_diff_cleanly(self):
        path = self._write(self.ESCAPED_LINE)
        try:
            code, out = run([path, path])
        finally:
            os.unlink(path)
        self.assertEqual(code, 0)
        self.assertNotIn("DRIFT", out)


class RssCellTest(unittest.TestCase):
    """max_rss_kb cells: lower-is-better with their own tolerance."""

    def _write(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            f.write(text + "\n")
            return f.name

    @staticmethod
    def _series(rss_field=None, rss_point=None):
        points = '{"x":"25","values":{"hit_rate":0.9'
        if rss_point is not None:
            points += f',"max_rss_kb":{rss_point}'
        points += '}}'
        obj = ('{"type":"series","title":"BlockCache sweep","x_label":"pct",'
               f'"series":["hit_rate"],"points":[{points}]')
        if rss_field is not None:
            obj += f',"max_rss_kb":{rss_field}'
        return obj + '}'

    def test_top_level_field_loads_as_run_pseudo_cell(self):
        path = self._write(self._series(rss_field=50000))
        try:
            cells = bench_diff.load_cells(path)
        finally:
            os.unlink(path)
        self.assertEqual(cells[("BlockCache sweep", "__run__", "max_rss_kb")],
                         50000)

    def test_rss_growth_beyond_tolerance_is_drift(self):
        base = self._write(self._series(rss_field=50000, rss_point=40000))
        cur = self._write(self._series(rss_field=90000, rss_point=40000))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 1)
        self.assertIn("peak RSS grew 50000 -> 90000 KB", out)
        # The unchanged per-point cell stays quiet.
        self.assertNotIn("x=25 max_rss_kb", out)

    def test_per_point_rss_uses_same_rule(self):
        base = self._write(self._series(rss_point=40000))
        cur = self._write(self._series(rss_point=90000))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 1)
        self.assertIn("peak RSS grew 40000 -> 90000 KB", out)

    def test_rss_shrink_and_small_growth_are_info(self):
        base = self._write(self._series(rss_field=50000))
        for cur_val in (30000, 60000):  # shrink, and growth within 50%
            cur = self._write(self._series(rss_field=cur_val))
            try:
                code, out = run([base, cur])
            finally:
                os.unlink(cur)
            self.assertEqual(code, 0, out)
            self.assertIn(f"peak RSS 50000 -> {cur_val} KB", out)
        os.unlink(base)

    def test_rss_rel_tol_is_independent_of_rel_tol(self):
        base = self._write(self._series(rss_field=50000))
        cur = self._write(self._series(rss_field=90000))
        try:
            # Loosening the perf tolerance does not loosen the RSS gate...
            code, _ = run([base, cur, "--rel-tol", "100"])
            self.assertEqual(code, 1)
            # ...and --rss-rel-tol alone lets it through.
            code, _ = run([base, cur, "--rss-rel-tol", "2.0"])
            self.assertEqual(code, 0)
        finally:
            os.unlink(base)
            os.unlink(cur)

    def test_rss_floor_absorbs_small_absolute_noise(self):
        # 2 MB -> 5 MB is a 150% jump but only 3 MB absolute; a floor of
        # 8192 KB keeps tiny-process noise out of the gate.
        base = self._write(self._series(rss_field=2048))
        cur = self._write(self._series(rss_field=5120))
        try:
            code, _ = run([base, cur, "--rss-floor", "8192"])
            self.assertEqual(code, 0)
            code, _ = run([base, cur, "--rss-floor", "1"])
            self.assertEqual(code, 1)
        finally:
            os.unlink(base)
            os.unlink(cur)


class TtfpCellTest(unittest.TestCase):
    """Time-to-first-page cells are perf (lower-is-better) by default,
    even without a _ms suffix, and route to the perf branch rather than
    the latency-percentile one."""

    def _write(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            f.write(text + "\n")
            return f.name

    @staticmethod
    def _series(ttfp, bare=4.0):
        return ('{"type":"series","title":"Net streaming large answer",'
                '"x_label":"page_rows","series":["ttfp_ms","ttfp"],"points":'
                f'[{{"x":"64","values":{{"ttfp_ms":{ttfp},"ttfp":{bare}}}}}]}}')

    def test_ttfp_growth_beyond_tolerance_is_drift(self):
        base = self._write(self._series(ttfp=10.0, bare=10.0))
        cur = self._write(self._series(ttfp=40.0, bare=40.0))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 1)
        # Both spellings gate through the perf branch ("slower"), not the
        # latency-percentile one ("latency grew").
        self.assertIn("ttfp_ms: slower 10 -> 40", out)
        self.assertIn("x=64 ttfp: slower 10 -> 40", out)
        self.assertNotIn("latency grew", out)

    def test_ttfp_shrink_is_info(self):
        base = self._write(self._series(ttfp=40.0))
        cur = self._write(self._series(ttfp=10.0))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 0)
        self.assertIn("ttfp_ms: perf 40 -> 10", out)


class KbSuffixCellTest(unittest.TestCase):
    """Any *_kb series (e.g. the net bench's peak_cursor_kb) shares the
    memory rule: lower-is-better under --rss-rel-tol / --rss-floor,
    independent of the perf tolerance."""

    def _write(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            f.write(text + "\n")
            return f.name

    @staticmethod
    def _series(kb):
        return ('{"type":"series","title":"Net streaming large answer",'
                '"x_label":"page_rows","series":["peak_cursor_kb"],"points":'
                f'[{{"x":"64","values":{{"peak_cursor_kb":{kb}}}}}]}}')

    def test_kb_growth_beyond_tolerance_is_drift(self):
        base = self._write(self._series(50000))
        cur = self._write(self._series(90000))
        try:
            # Gated by --rss-rel-tol, not --rel-tol: a loose perf
            # tolerance must not unfence cursor-memory growth.
            code, out = run([base, cur, "--rel-tol", "100"])
            self.assertEqual(code, 1)
            self.assertIn("peak_cursor_kb: peak RSS grew 50000 -> 90000", out)
            code, _ = run([base, cur, "--rss-rel-tol", "2.0"])
            self.assertEqual(code, 0)
        finally:
            os.unlink(base)
            os.unlink(cur)

    def test_kb_shrink_and_floor_noise_are_info(self):
        base = self._write(self._series(50000))
        shrink = self._write(self._series(20000))
        try:
            code, out = run([base, shrink])
            self.assertEqual(code, 0)
            self.assertIn("peak_cursor_kb: peak RSS 50000 -> 20000 KB", out)
        finally:
            os.unlink(base)
            os.unlink(shrink)
        # 1 MB -> 3 MB is a 200% jump but tiny absolutely; the default
        # 4096 KB floor absorbs it.
        tiny = self._write(self._series(1024))
        grown = self._write(self._series(3072))
        try:
            code, _ = run([tiny, grown])
            self.assertEqual(code, 0)
            code, _ = run([tiny, grown, "--rss-floor", "1"])
            self.assertEqual(code, 1)
        finally:
            os.unlink(tiny)
            os.unlink(grown)


class LatencyCellTest(unittest.TestCase):
    """Percentile-tail cells (p50_ms, p95_ms, request_p95_ms, latency):
    lower-is-better like perf, but gated by --latency-rel-tol /
    --latency-floor so CI can tune tails separately from mean timings."""

    def _write(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            f.write(text + "\n")
            return f.name

    @staticmethod
    def _series(p95, elapsed=7.0):
        return ('{"type":"series","title":"Net panel","x_label":"sessions",'
                '"series":["request_p95_ms","elapsed_ms"],"points":'
                '[{"x":"4","values":'
                f'{{"request_p95_ms":{p95},"elapsed_ms":{elapsed}}}}}]}}')

    def test_latency_growth_beyond_tolerance_is_drift(self):
        base = self._write(self._series(p95=10.0))
        cur = self._write(self._series(p95=40.0))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 1)
        self.assertIn("request_p95_ms: latency grew 10 -> 40", out)

    def test_latency_routes_to_its_own_class_not_perf(self):
        # The same growth on a plain *_ms cell reports through the perf
        # branch ("slower"), percentile tails through the latency branch.
        base = self._write(self._series(p95=10.0, elapsed=10.0))
        cur = self._write(self._series(p95=40.0, elapsed=40.0))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 1)
        self.assertIn("request_p95_ms: latency grew", out)
        self.assertIn("elapsed_ms: slower", out)

    def test_latency_rel_tol_overrides_rel_tol_both_ways(self):
        base = self._write(self._series(p95=10.0))
        cur = self._write(self._series(p95=40.0))
        try:
            # Default: latency inherits --rel-tol, so loosening it also
            # loosens the tail gate...
            code, _ = run([base, cur, "--rel-tol", "100"])
            self.assertEqual(code, 0)
            # ...unless --latency-rel-tol keeps the tail canary tight...
            code, out = run([base, cur, "--rel-tol", "100",
                             "--latency-rel-tol", "0.5"])
            self.assertEqual(code, 1)
            self.assertIn("latency grew", out)
            # ...or loosens only the tails while perf stays strict.
            code, _ = run([base, cur, "--latency-rel-tol", "10"])
            self.assertEqual(code, 0)
        finally:
            os.unlink(base)
            os.unlink(cur)

    def test_latency_floor_absorbs_small_absolute_noise(self):
        # 0.2ms -> 0.6ms is a 200% jump but tiny absolutely; the floor
        # defaults to --perf-floor (1.0) and can be set on its own.
        base = self._write(self._series(p95=0.2))
        cur = self._write(self._series(p95=0.6))
        try:
            code, _ = run([base, cur])
            self.assertEqual(code, 0)
            code, _ = run([base, cur, "--latency-floor", "0.1"])
            self.assertEqual(code, 1)
        finally:
            os.unlink(base)
            os.unlink(cur)

    def test_latency_shrink_is_info(self):
        base = self._write(self._series(p95=40.0))
        cur = self._write(self._series(p95=10.0))
        try:
            code, out = run([base, cur])
        finally:
            os.unlink(base)
            os.unlink(cur)
        self.assertEqual(code, 0)
        self.assertIn("request_p95_ms: latency 40 -> 10", out)


class CompareTest(unittest.TestCase):
    def test_identical_logs_pass(self):
        code, out = run([BASE, BASE])
        self.assertEqual(code, 0)
        self.assertNotIn("DRIFT", out)

    def test_drift_log_flags_expected_cells(self):
        code, out = run([BASE, DRIFT])
        self.assertEqual(code, 1)
        drifts = [l for l in out.splitlines() if l.startswith("DRIFT")]
        self.assertEqual(len(drifts), 6, out)
        joined = "\n".join(drifts)
        # Accuracy drop beyond abs-tol.
        self.assertIn("BEAS: accuracy dropped 0.82 -> 0.7", joined)
        # Throughput collapse (higher is better, relative tolerance).
        self.assertIn("qps: throughput dropped 5000 -> 1000", joined)
        # Cell missing from the current log.
        self.assertIn("Sampl: missing from current log", joined)
        # Perf regression beyond rel-tol (lower is better).
        self.assertIn("off_ms: slower 4.6 -> 9.8", joined)
        # Speedup collapse (higher is better).
        self.assertIn("speedup dropped 76 -> 21", joined)
        # null -> finite measurement regime change.
        self.assertIn("finiteness changed", joined)
        # Small moves stay informational.
        self.assertNotIn("hit_ms: slower", joined)
        self.assertIn("BEAS(eta): accuracy 0.61 -> 0.62", out)
        self.assertIn("qps: throughput 12000 -> 11500", out)

    def test_allow_missing_downgrades_missing_cells(self):
        code, out = run([BASE, DRIFT, "--allow-missing"])
        self.assertEqual(code, 1)
        drifts = [l for l in out.splitlines() if l.startswith("DRIFT")]
        self.assertEqual(len(drifts), 5, out)
        self.assertNotIn("missing from current log",
                         "\n".join(drifts))

    def test_throughput_rel_tol_keeps_collapse_canary_alive(self):
        # A loosened --rel-tol >= 1 can never flag higher-is-better cells
        # (their relative drop is bounded by 1.0); --throughput-rel-tol
        # restores the collapse canary, as the CI service gate relies on.
        code, out = run([BASE, DRIFT, "--rel-tol", "9", "--allow-missing",
                         "--abs-tol", "1.0", "--quiet"])
        self.assertEqual(code, 1)  # only the finiteness change
        self.assertNotIn("qps", out)
        code, out = run([BASE, DRIFT, "--rel-tol", "9", "--allow-missing",
                         "--abs-tol", "1.0", "--throughput-rel-tol", "0.5",
                         "--quiet"])
        self.assertEqual(code, 1)
        self.assertIn("qps: throughput dropped 5000 -> 1000", out)
        self.assertIn("speedup dropped 76 -> 21", out)

    def test_loose_tolerances_pass(self):
        code, _ = run([BASE, DRIFT, "--abs-tol", "1.0", "--rel-tol", "100",
                       "--allow-missing", "--quiet"])
        # Only the finiteness change remains: it ignores tolerances.
        self.assertEqual(code, 1)
        code, _ = run([BASE, BASE, "--abs-tol", "0", "--rel-tol", "0"])
        self.assertEqual(code, 0)

    def test_empty_baseline_is_usage_error(self):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
            path = f.name
        try:
            code, _ = run([path, BASE])
            self.assertEqual(code, 2)
        finally:
            os.unlink(path)


class MissingAndEmptySeriesTest(unittest.TestCase):
    """A baseline must gate every cell the bench emits: series objects
    without data are load errors, and cells only the current log carries
    (a stale baseline) are drift unless explicitly allowed."""

    GOOD = ('{"type":"series","title":"Panel","x_label":"x",'
            '"series":["a_ms"],"points":[{"x":"1","values":{"a_ms":2.0}}]}')
    EXTRA = ('{"type":"series","title":"Panel","x_label":"x",'
             '"series":["a_ms","b_ms"],"points":'
             '[{"x":"1","values":{"a_ms":2.0,"b_ms":3.0}}]}')
    NO_POINTS = ('{"type":"series","title":"Truncated","x_label":"x",'
                 '"series":["a_ms"],"points":[]}')
    EMPTY_VALUES = ('{"type":"series","title":"Hollow","x_label":"x",'
                    '"series":["a_ms"],"points":[{"x":"1","values":{}}]}')

    def _write(self, *lines):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False) as f:
            for line in lines:
                f.write(line + "\n")
            return f.name

    def test_series_without_points_fails_loading(self):
        path = self._write(self.GOOD, self.NO_POINTS)
        try:
            with self.assertRaises(ValueError) as ctx:
                bench_diff.load_cells(path)
        finally:
            os.unlink(path)
        self.assertIn("Truncated", str(ctx.exception))
        self.assertIn("no data cells", str(ctx.exception))

    def test_series_with_empty_value_maps_fails_loading(self):
        path = self._write(self.EMPTY_VALUES)
        try:
            with self.assertRaises(ValueError):
                bench_diff.load_cells(path)
        finally:
            os.unlink(path)

    def test_empty_series_in_either_log_is_usage_error(self):
        empty = self._write(self.GOOD, self.NO_POINTS)
        good = self._write(self.GOOD)
        try:
            code, _ = run([empty, good])
            self.assertEqual(code, 2)  # baseline side
            code, _ = run([good, empty])
            self.assertEqual(code, 2)  # current side
        finally:
            os.unlink(empty)
            os.unlink(good)

    def test_cells_only_in_current_log_are_drift(self):
        base = self._write(self.GOOD)
        cur = self._write(self.EXTRA)
        try:
            code, out = run([base, cur])
            self.assertEqual(code, 1)
            self.assertIn("b_ms: new cell absent from the baseline", out)
            self.assertIn("DRIFT", out)
            # ...even when every tolerance is wide open: a missing gate
            # is staleness, not a measured regression.
            code, _ = run([base, cur, "--rel-tol", "100", "--abs-tol", "1.0",
                           "--allow-missing", "--quiet"])
            self.assertEqual(code, 1)
        finally:
            os.unlink(base)
            os.unlink(cur)

    def test_allow_new_series_downgrades_to_info(self):
        base = self._write(self.GOOD)
        cur = self._write(self.EXTRA)
        try:
            code, out = run([base, cur, "--allow-new-series"])
            self.assertEqual(code, 0)
            self.assertIn("INFO", out)
            self.assertIn("b_ms: new cell absent from the baseline", out)
        finally:
            os.unlink(base)
            os.unlink(cur)


if __name__ == "__main__":
    unittest.main()
