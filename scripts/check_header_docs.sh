#!/usr/bin/env bash
# Docs-presence check: every public header under src/ must open with a
# file-level comment (what the file is for), and headers in the
# batching-contract directories must carry doxygen (///) API comments.
# Run from the repo root; exits non-zero listing offenders.

set -u

fail=0

# 1) File-level comment: the first line of every src/**/*.h must be a
#    comment line.
while IFS= read -r header; do
  first_line=$(head -n 1 "$header")
  case "$first_line" in
    //*) ;;
    *)
      echo "MISSING FILE-LEVEL COMMENT: $header"
      fail=1
      ;;
  esac
done < <(find src -name '*.h' | sort)

# 2) Doxygen coverage in the directories the batch/chunk contract spans:
#    each header there must contain at least one '///' doc comment.
for dir in src/types src/storage src/engine src/beas src/index; do
  while IFS= read -r header; do
    if ! grep -q '///' "$header"; then
      echo "MISSING DOXYGEN COMMENTS (no /// found): $header"
      fail=1
    fi
  done < <(find "$dir" -name '*.h' | sort)
done

if [ "$fail" -ne 0 ]; then
  echo "Header documentation check FAILED (see offenders above)."
  exit 1
fi
echo "Header documentation check passed."
