#!/usr/bin/env python3
"""Unit tests for trace_summarize.py.

The primary fixture, scripts/testdata/slow_query_sample.jsonl, is a
real line emitted by QueryService's slow-query log (captured from
examples/traced_query), so these tests pin the round-trip between the
C++ JSONL writer and this summarizer.

Run directly (python3 scripts/trace_summarize_test.py) or via ctest
(test name: trace_summarize_unit).
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_summarize  # noqa: E402

SAMPLE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "testdata", "slow_query_sample.jsonl")


def run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = trace_summarize.main(argv)
    return code, out.getvalue()


def make_entry(latency_ms, spans, status="ok", alpha=0.2, epoch=0):
    return {
        "latency_ms": latency_ms, "alpha": alpha, "status": status,
        "epoch": epoch,
        "trace": {
            "spans": [{"name": n, "start_us": s, "dur_us": d}
                      for n, s, d in spans],
            "attrs": {"keys_charged": 16},
        },
    }


class LoadEntriesTest(unittest.TestCase):
    def test_round_trips_a_real_service_log_line(self):
        with open(SAMPLE, encoding="utf-8") as f:
            entries = trace_summarize.load_entries(f)
        self.assertEqual(len(entries), 1)
        entry = entries[0]
        self.assertEqual(entry["status"], "ok")
        self.assertGreater(entry["latency_ms"], 0)
        names = {s["name"] for s in entry["trace"]["spans"]}
        # The span catalog the service writes must survive the parse.
        for required in ("queue_wait", "plan", "fetch", "eval"):
            self.assertIn(required, names)
        self.assertEqual(entry["trace"]["attrs"]["keys_charged"], 16)

    def test_skips_blank_lines(self):
        lines = ["\n", json.dumps(make_entry(1.0, [("plan", 0, 10)])) + "\n",
                 "   \n"]
        self.assertEqual(len(trace_summarize.load_entries(lines)), 1)

    def test_rejects_non_json(self):
        with self.assertRaises(ValueError):
            trace_summarize.load_entries(["{not json\n"])

    def test_rejects_non_object_lines(self):
        with self.assertRaises(ValueError):
            trace_summarize.load_entries(["[1, 2]\n"])

    def test_rejects_missing_trace(self):
        with self.assertRaises(ValueError):
            trace_summarize.load_entries(['{"latency_ms": 1.0}\n'])


class SummarizeTest(unittest.TestCase):
    def test_aggregates_per_span_across_entries(self):
        entries = [
            make_entry(1.0, [("plan", 0, 100), ("eval", 100, 400)]),
            make_entry(2.0, [("plan", 0, 300), ("eval", 300, 700),
                             ("eval", 1000, 500)], status="deadline exceeded"),
        ]
        spans, totals = trace_summarize.summarize(entries)
        self.assertEqual(totals["entries"], 2)
        self.assertAlmostEqual(totals["latency_ms"], 3.0)
        self.assertAlmostEqual(totals["max_latency_ms"], 2.0)
        self.assertEqual(totals["statuses"],
                         {"ok": 1, "deadline exceeded": 1})
        self.assertEqual(spans["plan"],
                         {"queries": 2, "spans": 2, "total_us": 400})
        # eval appears 3 times across 2 queries.
        self.assertEqual(spans["eval"],
                         {"queries": 2, "spans": 3, "total_us": 1600})

    def test_entry_breakdown_shares_are_against_wall_latency(self):
        entry = make_entry(1.0, [("plan", 0, 250), ("eval", 250, 500)])
        rows = trace_summarize.entry_breakdown(entry)
        self.assertEqual(rows[0], ("plan", 0, 250, 0.25))
        self.assertEqual(rows[1], ("eval", 250, 500, 0.5))


class MainTest(unittest.TestCase):
    def test_renders_the_real_sample(self):
        code, out = run([SAMPLE, "--slowest", "1"])
        self.assertEqual(code, 0)
        self.assertIn("1 slow query", out)
        # Aggregate table header and the per-entry breakdown.
        self.assertIn("total_ms", out)
        self.assertIn("of_wall", out)
        self.assertIn("#1:", out)
        for span in ("queue_wait", "plan", "fetch", "eval"):
            self.assertIn(span, out)

    def test_orders_spans_by_total_time(self):
        entries = [make_entry(1.0, [("small", 0, 10), ("big", 10, 900)])]
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            for e in entries:
                f.write(json.dumps(e) + "\n")
            path = f.name
        try:
            code, out = run([path])
            self.assertEqual(code, 0)
            self.assertLess(out.index("big"), out.index("small"))
        finally:
            os.unlink(path)

    def test_empty_log_is_a_usage_error(self):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            path = f.name
        try:
            err = io.StringIO()
            out = io.StringIO()
            with redirect_stdout(out):
                sys.stderr, saved = err, sys.stderr
                try:
                    code = trace_summarize.main([path])
                finally:
                    sys.stderr = saved
            self.assertEqual(code, 2)
            self.assertIn("no slow-query entries", err.getvalue())
        finally:
            os.unlink(path)

    def test_unreadable_file_is_a_usage_error(self):
        err = io.StringIO()
        sys.stderr, saved = err, sys.stderr
        try:
            code = trace_summarize.main(["/nonexistent/slow.jsonl"])
        finally:
            sys.stderr = saved
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()
