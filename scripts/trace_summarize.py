#!/usr/bin/env python3
"""Render a BEAS slow-query JSONL log as a per-span time breakdown.

Input is the file QueryService appends to when ServiceOptions::
slow_query_ms is set (or "-" for stdin): one JSON object per line,

  {"latency_ms": 12.3, "alpha": 0.2, "status": "ok", "epoch": 4,
   "trace": {"spans": [{"name": "plan", "start_us": 10, "dur_us": 200},
                       ...],
             "attrs": {"keys_charged": 57, ...}}}

The summary aggregates every entry: per span name it reports how many
queries hit the span, the total and mean time spent in it, and its
share of the summed wall latency; a header line reports the entry
count, the latency total/mean/max, and the status mix. With --slowest N
the N highest-latency entries are additionally broken down one by one.

Dotted span names (plan.chase, plan.chat) nest inside their parent
phase, and the stream span overlaps execution, so shares are reported
against wall latency without expecting them to sum to 100%.

Exit status: 0 on success, 2 on usage errors (unreadable input, a line
that is not a JSON object, no entries).

Example:

  python3 scripts/trace_summarize.py /var/log/beas/slow_queries.jsonl
"""

import argparse
import json
import sys


def load_entries(stream):
    """Parses slow-query JSONL from an iterable of lines.

    Returns a list of dict entries. Raises ValueError on a line that is
    not a JSON object or an entry missing latency_ms/trace.
    """
    entries = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"line {lineno}: not JSON: {e}") from e
        if not isinstance(entry, dict):
            raise ValueError(f"line {lineno}: expected a JSON object")
        if "latency_ms" not in entry or "trace" not in entry:
            raise ValueError(
                f"line {lineno}: missing latency_ms/trace "
                "(not a slow-query log line?)")
        entries.append(entry)
    return entries


def summarize(entries):
    """Aggregates entries into the per-span table model.

    Returns (spans, totals) where spans maps span name ->
    {"queries", "spans", "total_us"} and totals carries entry-level
    aggregates (count, latency sum/max in ms, status -> count).
    """
    spans = {}
    totals = {"entries": 0, "latency_ms": 0.0, "max_latency_ms": 0.0,
              "statuses": {}}
    for entry in entries:
        totals["entries"] += 1
        latency = float(entry.get("latency_ms", 0.0))
        totals["latency_ms"] += latency
        totals["max_latency_ms"] = max(totals["max_latency_ms"], latency)
        status = str(entry.get("status", "?"))
        totals["statuses"][status] = totals["statuses"].get(status, 0) + 1
        seen_here = set()
        for span in entry.get("trace", {}).get("spans", []):
            name = span.get("name", "?")
            agg = spans.setdefault(
                name, {"queries": 0, "spans": 0, "total_us": 0})
            agg["spans"] += 1
            agg["total_us"] += int(span.get("dur_us", 0))
            if name not in seen_here:
                agg["queries"] += 1
                seen_here.add(name)
    return spans, totals


def entry_breakdown(entry):
    """One entry's spans as (name, start_us, dur_us, share-of-wall) rows."""
    wall_us = float(entry.get("latency_ms", 0.0)) * 1000.0
    rows = []
    for span in entry.get("trace", {}).get("spans", []):
        dur = int(span.get("dur_us", 0))
        share = dur / wall_us if wall_us > 0 else 0.0
        rows.append((span.get("name", "?"), int(span.get("start_us", 0)),
                     dur, share))
    return rows


def _table(rows, header):
    """Left-aligns the first column, right-aligns the rest."""
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    lines = []
    for r in [header] + rows:
        cells = [str(r[0]).ljust(widths[0])]
        cells += [str(c).rjust(w) for c, w in zip(r[1:], widths[1:])]
        lines.append("  ".join(cells).rstrip())
    return lines


def render(spans, totals, slowest=()):
    """Formats the aggregate (and optional per-entry) breakdown."""
    out = []
    statuses = ", ".join(f"{k}: {v}"
                         for k, v in sorted(totals["statuses"].items()))
    n = totals["entries"]
    mean = totals["latency_ms"] / n if n else 0.0
    out.append(f"{n} slow quer{'y' if n == 1 else 'ies'}; latency total "
               f"{totals['latency_ms']:.3f} ms, mean {mean:.3f} ms, max "
               f"{totals['max_latency_ms']:.3f} ms ({statuses})")
    out.append("")
    rows = []
    wall_us = totals["latency_ms"] * 1000.0
    for name in sorted(spans, key=lambda k: -spans[k]["total_us"]):
        agg = spans[name]
        share = agg["total_us"] / wall_us if wall_us > 0 else 0.0
        rows.append((name, agg["queries"], agg["spans"],
                     f"{agg['total_us'] / 1000.0:.3f}",
                     f"{agg['total_us'] / 1000.0 / agg['spans']:.3f}",
                     f"{100.0 * share:.1f}%"))
    out.extend(_table(rows, ("span", "queries", "spans", "total_ms",
                             "mean_ms", "of_wall")))
    for rank, entry in enumerate(slowest, start=1):
        out.append("")
        out.append(f"#{rank}: {float(entry.get('latency_ms', 0.0)):.3f} ms, "
                   f"alpha {entry.get('alpha')}, "
                   f"status {entry.get('status')}, "
                   f"epoch {entry.get('epoch')}")
        rows = [(name, start, dur, f"{100.0 * share:.1f}%")
                for name, start, dur, share in entry_breakdown(entry)]
        out.extend(_table(rows, ("span", "start_us", "dur_us", "of_wall")))
    return "\n".join(out)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Summarize a BEAS slow-query JSONL log per span.")
    parser.add_argument("log", help="slow-query JSONL file, or - for stdin")
    parser.add_argument("--slowest", type=int, default=0, metavar="N",
                        help="also break down the N slowest entries")
    args = parser.parse_args(argv)

    try:
        if args.log == "-":
            entries = load_entries(sys.stdin)
        else:
            with open(args.log, encoding="utf-8") as f:
                entries = load_entries(f)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if not entries:
        print("error: no slow-query entries", file=sys.stderr)
        return 2

    spans, totals = summarize(entries)
    slowest = sorted(entries, key=lambda e: -float(e.get("latency_ms", 0.0)))
    print(render(spans, totals, slowest[:max(0, args.slowest)]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
