#!/usr/bin/env python3
"""Diff two BEAS_BENCH_JSON JSONL run logs and flag accuracy/perf drift.

Each input is a JSONL file of ``{"type": "series", ...}`` objects as
emitted by the bench harness (schema in bench/README.md). The two logs
are joined on (title, x, series) cells and every shared cell is compared:

  * accuracy cells (the default): a *drop* beyond --abs-tol flags drift
    (improvements are reported as info only — accuracy series are
    "higher is better" scores in [0, 1]);
  * perf cells (series or title matching --perf-pattern, e.g. "_ms",
    "time", "latency", "ttfp"): an *increase* beyond --rel-tol
    (relative, over a --perf-floor absolute noise floor) flags drift —
    lower is better;
  * latency cells (series matching --latency-pattern: percentile tails
    like "p50_ms"/"p95_ms"/"request_p95_ms" and anything named
    "latency"): lower-is-better like perf cells, but gated by their own
    --latency-rel-tol / --latency-floor (defaulting to --rel-tol /
    --perf-floor). Tail percentiles are noisier than means, so CI gates
    can loosen them without loosening every timing cell — or tighten
    them on a quiet runner (the net smoke gate sets these);
  * "speedup" cells are higher-is-better perf: a relative drop beyond
    --rel-tol flags drift;
  * throughput cells (series matching --throughput-pattern, e.g. "qps",
    "_per_s"): higher-is-better perf like speedups — a relative drop
    beyond --throughput-rel-tol (which defaults to --rel-tol) flags
    drift (service_throughput_bench emits these). Note a relative drop
    of a non-negative cell is bounded by 1.0, so tolerances >= 1 make
    higher-is-better drift unflaggable — pass --throughput-rel-tol < 1
    when --rel-tol is loosened for machine-dependent lower-is-better
    cells (the CI service smoke gate does);
  * memory cells ("max_rss_kb" or any series with a "_kb" suffix, e.g.
    the net bench's "peak_cursor_kb" — whether a per-point series or the
    top-level max_rss_kb field every harness JSON object carries):
    lower-is-better with its own tolerance — an increase beyond
    --rss-rel-tol (relative, over a --rss-floor absolute noise floor in
    KB) flags drift. Top-level fields load as pseudo-cells with
    x="__run__";
  * cells present in the baseline but missing from the current log flag
    drift unless --allow-missing is given;
  * cells present only in the current log mean the baseline is stale —
    a bench gained a series (or a whole panel) the baseline never
    recorded, so nothing gates it. They flag drift unless
    --allow-new-series is given (regenerating the baseline is the fix);
  * a baseline (or current) series object that carries no data cells at
    all — no points, or points with empty value maps, and no
    max_rss_kb field — is a truncated or empty run, not a comparable
    log: loading fails with a usage error (exit 2), as does a baseline
    file with no series objects whatsoever.

Exit status: 0 when no drift is flagged, 1 on drift, 2 on usage errors.

Example (the CI smoke gate — these parameters must match the ones the
committed baseline was generated with, see .github/workflows/ci.yml and
bench/README.md):

  BEAS_BENCH_JSON=/tmp/run.jsonl ./build/bench/fig6g_rc_nsel_tfacc rows=1500 queries=12
  python3 scripts/bench_diff.py bench/baselines/fig6g_smoke.jsonl /tmp/run.jsonl
"""

import argparse
import json
import re
import sys


def load_cells(path):
    """Returns {(title, x, series): value} for every finite cell in a JSONL log.

    Non-finite values (serialized as null) are kept as None so that a
    measurement that *became* unmeasurable still shows up as drift.
    """
    cells = {}
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: not valid JSON: {e}") from e
            if obj.get("type") != "series":
                continue
            title = obj.get("title", "")
            added = 0
            for point in obj.get("points", []):
                x = point.get("x", "")
                for series, value in point.get("values", {}).items():
                    cells[(title, x, series)] = value
                    added += 1
            # The per-series peak-RSS field (one value per JSON object,
            # not per point) joins the cell space under a reserved x.
            if "max_rss_kb" in obj:
                cells[(title, "__run__", "max_rss_kb")] = obj["max_rss_kb"]
                added += 1
            if added == 0:
                raise ValueError(
                    f"{path}:{line_no}: series object '{title}' carries no "
                    f"data cells (empty or truncated run?)")
    return cells


def is_perf(title, series, perf_re):
    return bool(perf_re.search(series)) or bool(perf_re.search(title))


def is_speedup(series):
    return "speedup" in series.lower()


def is_throughput(series, throughput_re):
    return bool(throughput_re.search(series))


def is_latency(series, latency_re):
    return bool(latency_re.search(series))


def is_rss(series):
    # Any KB-denominated gauge (peak RSS, peak cursor residency, ...)
    # shares the memory rule: lower is better, gated by --rss-rel-tol
    # over the --rss-floor.
    return series == "max_rss_kb" or series.endswith("_kb")


def compare(base_cells, cur_cells, args):
    """Returns (drifts, infos): lists of human-readable findings."""
    perf_re = re.compile(args.perf_pattern, re.IGNORECASE)
    throughput_re = re.compile(args.throughput_pattern, re.IGNORECASE)
    latency_re = re.compile(args.latency_pattern, re.IGNORECASE)
    drifts, infos = [], []
    for key in sorted(base_cells):
        title, x, series = key
        base = base_cells[key]
        label = f"[{title}] x={x} {series}"
        if key not in cur_cells:
            (infos if args.allow_missing else drifts).append(
                f"{label}: missing from current log (baseline {base})")
            continue
        cur = cur_cells[key]
        if base is None and cur is None:
            continue
        if base is None or cur is None:
            drifts.append(f"{label}: finiteness changed ({base} -> {cur})")
            continue
        if is_rss(series):
            floor = max(abs(base), args.rss_floor)
            if (cur - base) / floor > args.rss_rel_tol:
                drifts.append(
                    f"{label}: peak RSS grew {base:.6g} -> {cur:.6g} KB "
                    f"(> {args.rss_rel_tol:.0%} relative over floor "
                    f"{args.rss_floor} KB)")
            elif cur != base:
                infos.append(f"{label}: peak RSS {base:.6g} -> {cur:.6g} KB")
        elif is_speedup(series) or is_throughput(series, throughput_re):
            kind = "speedup" if is_speedup(series) else "throughput"
            tol = args.rel_tol if args.throughput_rel_tol is None \
                else args.throughput_rel_tol
            floor = max(abs(base), 1e-12)
            if (base - cur) / floor > tol:
                drifts.append(
                    f"{label}: {kind} dropped {base:.6g} -> {cur:.6g} "
                    f"(> {tol:.0%} relative)")
            elif cur != base:
                infos.append(f"{label}: {kind} {base:.6g} -> {cur:.6g}")
        elif is_latency(series, latency_re):
            # Lower-is-better like perf, but a percentile tail gets its
            # own tolerance (checked before the broader perf pattern,
            # which also matches *_ms names).
            tol = args.rel_tol if args.latency_rel_tol is None \
                else args.latency_rel_tol
            lat_floor = args.perf_floor if args.latency_floor is None \
                else args.latency_floor
            floor = max(abs(base), lat_floor)
            if (cur - base) / floor > tol:
                drifts.append(
                    f"{label}: latency grew {base:.6g} -> {cur:.6g} "
                    f"(> {tol:.0%} relative over floor {lat_floor})")
            elif cur != base:
                infos.append(f"{label}: latency {base:.6g} -> {cur:.6g}")
        elif is_perf(title, series, perf_re):
            floor = max(abs(base), args.perf_floor)
            if (cur - base) / floor > args.rel_tol:
                drifts.append(
                    f"{label}: slower {base:.6g} -> {cur:.6g} "
                    f"(> {args.rel_tol:.0%} relative over floor {args.perf_floor})")
            elif cur != base:
                infos.append(f"{label}: perf {base:.6g} -> {cur:.6g}")
        else:
            delta = cur - base
            if -delta > args.abs_tol:
                drifts.append(
                    f"{label}: accuracy dropped {base:.6g} -> {cur:.6g} "
                    f"(> {args.abs_tol} absolute)")
            elif delta > args.abs_tol:
                infos.append(f"{label}: accuracy improved {base:.6g} -> {cur:.6g}")
            elif cur != base:
                infos.append(f"{label}: accuracy {base:.6g} -> {cur:.6g}")
    for key in sorted(set(cur_cells) - set(base_cells)):
        title, x, series = key
        msg = (f"[{title}] x={x} {series}: new cell absent from the baseline "
               f"(stale baseline — regenerate it, or pass --allow-new-series)")
        (infos if args.allow_new_series else drifts).append(msg)
    return drifts, infos


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline JSONL run log")
    parser.add_argument("current", help="current JSONL run log")
    parser.add_argument("--abs-tol", type=float, default=0.05,
                        help="max tolerated accuracy drop per cell (default 0.05)")
    parser.add_argument("--rel-tol", type=float, default=0.5,
                        help="max tolerated relative perf regression (default 0.5)")
    parser.add_argument("--perf-floor", type=float, default=1.0,
                        help="absolute perf noise floor, same unit as the series "
                             "(default 1.0, i.e. 1ms for *_ms series)")
    parser.add_argument("--perf-pattern",
                        default=r"_ms\b|_s\b|\btime\b|latency|ttfp",
                        help="regex marking perf (lower-is-better) cells; "
                             "ttfp (time to first page) is one by default")
    parser.add_argument("--throughput-pattern", default=r"qps|throughput|_per_s\b",
                        help="regex marking throughput (higher-is-better) cells")
    parser.add_argument("--latency-pattern",
                        default=r"(^|_)p\d+(_ms)?$|latency",
                        help="regex marking latency-percentile "
                             "(lower-is-better) cells, e.g. p50_ms / "
                             "request_p95_ms")
    parser.add_argument("--latency-rel-tol", type=float, default=None,
                        help="max tolerated relative latency growth for "
                             "latency cells (default: --rel-tol)")
    parser.add_argument("--latency-floor", type=float, default=None,
                        help="absolute latency noise floor, same unit as the "
                             "series (default: --perf-floor)")
    parser.add_argument("--throughput-rel-tol", type=float, default=None,
                        help="max tolerated relative drop for speedup/throughput "
                             "cells (default: --rel-tol; must be < 1 to be able "
                             "to flag anything, since a non-negative cell cannot "
                             "drop by more than 100%%)")
    parser.add_argument("--rss-rel-tol", type=float, default=0.5,
                        help="max tolerated relative peak-RSS growth for "
                             "max_rss_kb cells (default 0.5)")
    parser.add_argument("--rss-floor", type=float, default=4096.0,
                        help="absolute RSS noise floor in KB (default 4096): "
                             "growth is measured relative to "
                             "max(baseline, floor)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="cells missing from the current log are info, not drift")
    parser.add_argument("--allow-new-series", action="store_true",
                        help="cells only in the current log (stale baseline) "
                             "are info, not drift")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the info lines")
    args = parser.parse_args(argv)

    try:
        base_cells = load_cells(args.baseline)
        cur_cells = load_cells(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    if not base_cells:
        print(f"bench_diff: no series cells in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    drifts, infos = compare(base_cells, cur_cells, args)
    if not args.quiet:
        for line in infos:
            print(f"INFO  {line}")
    for line in drifts:
        print(f"DRIFT {line}")
    print(f"bench_diff: {len(base_cells)} baseline cells, "
          f"{len(drifts)} drift(s), {len(infos)} info line(s)")
    return 1 if drifts else 0


if __name__ == "__main__":
    sys.exit(main())
