// The drain-then-mutate gate of the concurrent query service: queries
// run under shared read locks, maintenance (Insert/Remove) under an
// exclusive write lock that first blocks new readers, then waits for the
// in-flight ones to drain. Every completed write bumps a monotonically
// increasing epoch, so each query can report which database version it
// observed — the observable that makes "no torn reads" testable
// (docs/ARCHITECTURE.md "Concurrent query service").

#ifndef BEAS_SERVICE_EPOCH_GUARD_H_
#define BEAS_SERVICE_EPOCH_GUARD_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace beas {

/// \brief A writer-preferring read/write gate with an epoch counter.
///
/// Readers (queries) enter concurrently; a writer (maintenance step)
/// excludes everyone. Writers are preferred: once one is waiting, new
/// readers block until it finishes, so a steady stream of queries cannot
/// starve maintenance. Epochs count *completed* writes; a reader holding
/// the guard is guaranteed the epoch it observed at entry stays valid —
/// the state cannot change under it — until it releases.
///
/// Not recursive: a thread must not re-enter the guard while holding it
/// (a reader taking the write lock would deadlock against itself).
class EpochGuard {
 public:
  /// RAII shared (reader) hold. Movable, not copyable.
  class ReadLock {
   public:
    ReadLock(ReadLock&& other) noexcept : guard_(other.guard_), epoch_(other.epoch_) {
      other.guard_ = nullptr;
    }
    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;
    ReadLock& operator=(ReadLock&&) = delete;
    ~ReadLock();

    /// The epoch observed at entry; stable for the lifetime of the hold.
    uint64_t epoch() const { return epoch_; }

   private:
    friend class EpochGuard;
    ReadLock(EpochGuard* guard, uint64_t epoch) : guard_(guard), epoch_(epoch) {}
    EpochGuard* guard_;
    uint64_t epoch_;
  };

  /// RAII exclusive (writer) hold. Movable, not copyable. Release bumps
  /// the epoch (the write is assumed to have changed the guarded state)
  /// unless the hold was marked unchanged.
  class WriteLock {
   public:
    WriteLock(WriteLock&& other) noexcept
        : guard_(other.guard_), changed_(other.changed_) {
      other.guard_ = nullptr;
    }
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;
    WriteLock& operator=(WriteLock&&) = delete;
    ~WriteLock();

    /// Declares that the guarded state was NOT mutated (the write failed
    /// before changing anything): release keeps the epoch, so readers'
    /// "database version observed" stays truthful across failed
    /// maintenance attempts.
    void MarkUnchanged() { changed_ = false; }

   private:
    friend class EpochGuard;
    explicit WriteLock(EpochGuard* guard) : guard_(guard) {}
    EpochGuard* guard_;
    bool changed_ = true;
  };

  /// Blocks while a writer is active or waiting, then enters shared.
  ReadLock LockRead();

  /// Blocks new readers, drains active ones, then enters exclusive.
  WriteLock LockWrite();

  /// Completed writes so far (the current database version).
  uint64_t epoch() const;

  /// Readers currently inside the guard (diagnostic; racy by nature).
  int active_readers() const;

  /// Writers currently blocked in LockWrite (diagnostic; lets tests and
  /// monitors detect a pending drain deterministically).
  int waiting_writers() const;

 private:
  void UnlockRead();
  void UnlockWrite(bool bump_epoch);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
  uint64_t epoch_ = 0;
};

}  // namespace beas

#endif  // BEAS_SERVICE_EPOCH_GUARD_H_
