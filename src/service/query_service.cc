#include "service/query_service.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace beas {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One submitted query's result slot. Shared between the worker job and
/// the (at most one) waiter; owned past service shutdown by whichever
/// side still holds it.
struct QueryService::Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<ServiceAnswer> result = Status::Internal("query still pending");
};

QueryService::QueryService(Beas* beas, ServiceOptions options)
    : beas_(beas), options_(options) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.latency_window = std::max<size_t>(1, options_.latency_window);
  latency_ring_.assign(options_.latency_window, 0.0);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
}

QueryService::~QueryService() {
  // ThreadPool's destructor drains the queue: every admitted query runs
  // to completion (unredeemed tickets resolve into their slots and are
  // dropped with the pending_ map).
  pool_.reset();
}

Result<QueryTicket> QueryService::Submit(QueryPtr q, double alpha) {
  return Submit(std::move(q), alpha, SubmitOptions{});
}

Result<QueryTicket> QueryService::Submit(QueryPtr q, double alpha,
                                         const SubmitOptions& opts) {
  if (q == nullptr) return Status::InvalidArgument("query must not be null");
  auto submitted_at = std::chrono::steady_clock::now();
  std::shared_ptr<Pending> slot = std::make_shared<Pending>();
  QueryTicket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Normal priority stops short of the reserved headroom; high
    // priority may fill the queue to the hard cap. The clamp keeps at
    // least one normal slot even if reserved_slots >= max_queue.
    size_t cap = options_.max_queue;
    if (opts.priority == QueryPriority::kNormal && options_.reserved_slots > 0) {
      cap -= std::min(options_.reserved_slots, options_.max_queue - 1);
    }
    if (counters_.queued >= cap) {
      ++counters_.rejected;
      return Status::Unavailable(
          StrCat("admission queue full (", counters_.queued, " queued, cap ",
                 cap, "); retry later"));
    }
    ++counters_.queued;
    ++counters_.submitted;
    ticket.id = next_ticket_++;
    pending_[ticket.id] = slot;
  }
  pool_->Submit(
      [this, slot = std::move(slot), q = std::move(q), alpha, opts, submitted_at] {
        RunQuery(slot, q, alpha, opts, submitted_at);
      });
  return ticket;
}

Result<QueryTicket> QueryService::SubmitSql(const std::string& sql, double alpha) {
  return SubmitSql(sql, alpha, SubmitOptions{});
}

Result<QueryTicket> QueryService::SubmitSql(const std::string& sql, double alpha,
                                            const SubmitOptions& opts) {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, beas_->Parse(sql));
  return Submit(std::move(q), alpha, opts);
}

Result<ServiceAnswer> QueryService::Wait(QueryTicket ticket) {
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("unknown or already-redeemed ticket ", ticket.id));
    }
    slot = std::move(it->second);
    pending_.erase(it);
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&slot] { return slot->done; });
  return std::move(slot->result);
}

Result<ServiceAnswer> QueryService::WaitFor(QueryTicket ticket,
                                            std::chrono::milliseconds timeout) {
  // Unlike Wait, the slot is looked up but NOT erased before blocking: a
  // timeout must leave the ticket redeemable, so only the path that
  // returns a result consumes it.
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("unknown or already-redeemed ticket ", ticket.id));
    }
    slot = it->second;
  }
  {
    std::unique_lock<std::mutex> lock(slot->mu);
    if (!slot->cv.wait_for(lock, timeout, [&slot] { return slot->done; })) {
      return Status::DeadlineExceeded(
          StrCat("ticket ", ticket.id, " not done after ", timeout.count(),
                 " ms; it stays redeemable"));
    }
  }
  // Consume the ticket. A concurrent Wait may have raced us to it (the
  // single-waiter contract makes that caller error); the eraser wins.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("ticket ", ticket.id, " already redeemed"));
    }
    pending_.erase(it);
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  return std::move(slot->result);
}

Result<ServiceAnswer> QueryService::Answer(QueryPtr q, double alpha) {
  BEAS_ASSIGN_OR_RETURN(QueryTicket ticket, Submit(std::move(q), alpha));
  return Wait(ticket);
}

void QueryService::RunQuery(std::shared_ptr<Pending> slot, QueryPtr q, double alpha,
                            SubmitOptions opts,
                            std::chrono::steady_clock::time_point submitted_at) {
  uint64_t in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.queued;
    in_flight = ++counters_.in_flight;
  }
  // Per-query thread budgeting: split the configured intra-query thread
  // budget over the queries in flight right now, so cross-query
  // parallelism (the worker pool) and intra-query parallelism
  // (fetch/eval threads) never multiply past the budget. Thread-count
  // clamping is answer-invariant, so the instantaneous (racy) in_flight
  // read only affects scheduling, never results.
  EvalOptions eval = beas_->eval_options();
  if (options_.eval_thread_budget > 0) {
    int allowed = static_cast<int>(std::max<uint64_t>(
        1, options_.eval_thread_budget / std::max<uint64_t>(1, in_flight)));
    eval.eval_threads = std::min(eval.eval_threads, allowed);
    eval.fetch_threads = std::min(eval.fetch_threads, allowed);
  }
  // The submission's deadline rides into the executor through the
  // per-query EvalOptions; Beas::Answer fast-fails a deadline that
  // expired while the query sat in the queue (no planning, no fetching),
  // and cancels mid-flight work at the next morsel boundary otherwise.
  eval.deadline = opts.deadline;
  Result<ServiceAnswer> out = Status::Internal("query did not run");
  {
    // The read hold spans the whole execution: plan (the cache must not
    // be invalidated between lookup and insert of one query), fetch, and
    // evaluate all see one epoch's database.
    EpochGuard::ReadLock read = guard_.LockRead();
    Result<BeasAnswer> answer = beas_->Answer(q, alpha, eval);
    if (answer.ok()) {
      ServiceAnswer sa;
      sa.answer = std::move(*answer);
      sa.epoch = read.epoch();
      out = std::move(sa);
    } else {
      out = answer.status();
    }
  }
  double latency_ms = MsBetween(submitted_at, std::chrono::steady_clock::now());
  if (out.ok()) out->latency_ms = latency_ms;
  RecordDone(latency_ms, out.ok() ? Status::OK() : out.status());
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(out);
    slot->done = true;
  }
  slot->cv.notify_all();
}

void QueryService::RecordDone(double latency_ms, const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  --counters_.in_flight;
  if (status.ok()) {
    ++counters_.completed;
  } else {
    ++counters_.failed;
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++counters_.deadline_exceeded;
    }
  }
  latency_ring_[latency_next_] = latency_ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  ++latency_count_;
}

namespace {

// A NotFound failure (unknown relation, row not in the table) is raised
// before any mutation: the database version did not change, so the
// epoch must not advance and readers keep correlating answers with
// actual mutations. Any other failure may have mutated partially (index
// maintenance is not atomic across families), so the epoch bumps
// conservatively.
bool MaintenanceLeftStateUnchanged(const Status& st) {
  return !st.ok() && st.code() == StatusCode::kNotFound;
}

}  // namespace

Status QueryService::Insert(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Insert(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

Status QueryService::Remove(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Remove(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(latency_count_, latency_ring_.size()));
    window.assign(latency_ring_.begin(), latency_ring_.begin() + n);
  }
  out.epoch = guard_.epoch();
  BlockCacheStats cache = beas_->store().cache_stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  uint64_t traffic = cache.hits + cache.misses;
  if (traffic > 0) {
    out.cache_hit_rate =
        static_cast<double>(cache.hits) / static_cast<double>(traffic);
  }
  out.cache_resident_bytes = cache.resident_bytes;
  if (!window.empty()) {
    out.p50_ms = NearestRankPercentile(window, 0.50);
    out.p95_ms = NearestRankPercentile(std::move(window), 0.95);
  }
  return out;
}

double NearestRankPercentile(std::vector<double> window, double p) {
  if (window.empty()) return 0;
  const size_t n = window.size();
  // Ceil-based nearest rank (1-based): the previous floor(p * (n - 1))
  // index under-reported the tail on small windows — with n=10 it put
  // p95 at the 9th smallest sample instead of the 10th.
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  std::nth_element(window.begin(), window.begin() + (rank - 1), window.end());
  return window[rank - 1];
}

}  // namespace beas
