#include "service/query_service.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <iterator>
#include <mutex>
#include <optional>
#include <utility>

#include "beas/answer_sink.h"
#include "common/string_util.h"

namespace beas {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

size_t ApproxTupleBytes(const Tuple& t) {
  size_t bytes = sizeof(Tuple) + t.size() * sizeof(Value);
  for (const Value& v : t) {
    if (v.is_string()) bytes += v.as_string().size();
  }
  return bytes;
}

/// The shared state of one streaming query: the producer side is the
/// AnswerSink the engine pushes committed rows into; the consumer side
/// is what StreamingTicket wraps. One mutex guards the page queue and
/// the terminal flags; the producer's partial page and the epoch read
/// lock are producer-thread-only. The resident-bytes hook always fires
/// outside the mutex.
class StreamState final : public AnswerSink {
 public:
  StreamState(uint32_t page_rows, size_t max_queued_pages,
              std::function<void(int64_t)> hook,
              std::chrono::steady_clock::time_point deadline,
              std::shared_ptr<QueryTrace> trace = nullptr)
      : page_rows_(std::max<uint32_t>(1, page_rows)),
        // The consumer holds one page back (to resolve `last`
        // deterministically), so the producer must be able to buffer at
        // least two.
        max_queued_(std::max<size_t>(2, max_queued_pages)),
        hook_(std::move(hook)),
        deadline_(deadline),
        trace_(std::move(trace)) {}

  // --- Producer side (the engine's AnswerSink). ---

  Status Open(const RelationSchema& schema) override {
    if (trace_ != nullptr && trace_->timings()) {
      stream_open_us_ = trace_->NowMicros();
      stream_opened_ = true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_) return Status::Unavailable("stream cancelled by consumer");
      schema_ = schema;
    }
    cv_consumer_.notify_all();
    return Status::OK();
  }

  Status Append(std::vector<Tuple> rows) override {
    for (Tuple& row : rows) partial_.push_back(std::move(row));
    while (partial_.size() >= page_rows_) {
      std::vector<Tuple> page(
          std::make_move_iterator(partial_.begin()),
          std::make_move_iterator(partial_.begin() + page_rows_));
      partial_.erase(partial_.begin(), partial_.begin() + page_rows_);
      BEAS_RETURN_IF_ERROR(EnqueuePage(std::move(page)));
    }
    return Status::OK();
  }

  void OnSharedReadsDone() override { read_lock_.reset(); }

  Status Finish(const AnswerTrailer&) override {
    // Flush the tail partial page; this can hit backpressure like any
    // other page, so it can fail on cancel or deadline — that status
    // becomes the query's terminal status (via Beas::Answer).
    if (!partial_.empty()) {
      std::vector<Tuple> page(std::make_move_iterator(partial_.begin()),
                              std::make_move_iterator(partial_.end()));
      partial_.clear();
      BEAS_RETURN_IF_ERROR(EnqueuePage(std::move(page)));
    }
    return Status::OK();
  }

  void Fail(const Status&) override {
    // Rows already appended are void: drop everything buffered. The
    // terminal status itself arrives via Complete (the worker owns the
    // service-level bookkeeping).
    partial_.clear();
    DropQueuedPages();
  }

  /// Producer-thread-only: pins the epoch until OnSharedReadsDone.
  void AdoptReadLock(EpochGuard::ReadLock lock) { read_lock_.emplace(std::move(lock)); }

  /// Producer-thread-only: drops the pin if the engine never reached
  /// OnSharedReadsDone (fetch-phase failure).
  void ReleaseReadLock() { read_lock_.reset(); }

  /// Terminal step, called exactly once by the worker after RecordDone:
  /// publishes the final ServiceAnswer (or the failure) and wakes the
  /// consumer. On failure, queued pages are dropped.
  void Complete(Result<ServiceAnswer> result) {
    // The stream span covers Open (schema published) to terminal: the
    // window during which pages could flow. It overlaps fetch/eval by
    // design — streaming is concurrent with evaluation — so it is
    // excluded from disjoint-span accounting.
    if (stream_opened_) {
      trace_->AddSpan("stream", stream_open_us_,
                      trace_->NowMicros() - stream_open_us_);
    }
    if (!result.ok()) DropQueuedPages();
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_ = std::move(result);
      terminal_ = true;
    }
    cv_consumer_.notify_all();
    cv_producer_.notify_all();
  }

  // --- Consumer side (wrapped by StreamingTicket). ---

  Result<RelationSchema> WaitSchema() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_consumer_.wait(lock, [this] { return schema_.has_value() || terminal_; });
    if (schema_.has_value()) return *schema_;
    return result_.status();
  }

  Result<StreamPage> NextPage() {
    StreamPage page;
    size_t bytes = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Hold one page back: a page is only served once a successor (or
      // the terminal state) proves whether it is the last, so `last` is
      // deterministic at any producer/consumer interleaving.
      cv_consumer_.wait(lock, [this] { return pages_.size() >= 2 || terminal_; });
      if (pages_.empty()) {
        if (!result_.ok()) return result_.status();
        // Exhausted (or empty) successful stream: an idempotent empty
        // last page.
        page.last = true;
        page.final = *result_;
        return page;
      }
      page.rows = std::move(pages_.front());
      pages_.pop_front();
      bytes = page_bytes_.front();
      page_bytes_.pop_front();
      if (terminal_ && result_.ok() && pages_.empty()) {
        page.last = true;
        page.final = *result_;
      }
    }
    cv_producer_.notify_all();
    if (hook_) hook_(-static_cast<int64_t>(bytes));
    return page;
  }

  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_) return;
      cancelled_ = true;
    }
    DropQueuedPages();
    cv_consumer_.notify_all();
    cv_producer_.notify_all();
  }

 private:
  Status EnqueuePage(std::vector<Tuple> page) {
    size_t bytes = 0;
    for (const Tuple& t : page) bytes += ApproxTupleBytes(t);
    // Charge BEFORE the page becomes consumer-visible (and refund on the
    // failure paths below): a page's decrement — NextPage after popping
    // it, or DropQueuedPages — must never observably precede its
    // increment, or the gauge transiently dips below the bytes actually
    // buffered. The in-hand page is real memory while the producer waits
    // out backpressure, so counting it from here is also the honest
    // reading: residency peaks at (max_queued_pages + 1) pages.
    if (hook_) hook_(static_cast<int64_t>(bytes));
    if (trace_ != nullptr) trace_->IncrAttr("stream_pages", 1);
    // Backpressure accounting: how long the producer sat blocked on the
    // full page queue (a slow consumer), timed only when timings are on.
    const bool timed = trace_ != nullptr && trace_->timings();
    const uint64_t wait_start = timed ? trace_->NowMicros() : 0;
    auto charge_wait = [&] {
      if (timed) {
        trace_->IncrAttr("stream_backpressure_us",
                         static_cast<int64_t>(trace_->NowMicros() - wait_start));
      }
    };
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto ready = [this] { return cancelled_ || pages_.size() < max_queued_; };
      bool timed_out = false;
      if (deadline_ == std::chrono::steady_clock::time_point::max()) {
        cv_producer_.wait(lock, ready);
      } else {
        timed_out = !cv_producer_.wait_until(lock, deadline_, ready);
      }
      charge_wait();
      if (timed_out) {
        lock.unlock();
        if (hook_) hook_(-static_cast<int64_t>(bytes));
        return Status::DeadlineExceeded(
            "query deadline expired while stream backpressured");
      }
      if (cancelled_) {
        lock.unlock();
        if (hook_) hook_(-static_cast<int64_t>(bytes));
        return Status::Unavailable("stream cancelled by consumer");
      }
      pages_.push_back(std::move(page));
      page_bytes_.push_back(bytes);
    }
    cv_consumer_.notify_all();
    return Status::OK();
  }

  void DropQueuedPages() {
    size_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t b : page_bytes_) dropped += b;
      pages_.clear();
      page_bytes_.clear();
    }
    if (dropped > 0 && hook_) hook_(-static_cast<int64_t>(dropped));
  }

  const uint32_t page_rows_;
  const size_t max_queued_;
  const std::function<void(int64_t)> hook_;
  const std::chrono::steady_clock::time_point deadline_;
  /// The query's trace (shared with the worker and the ServiceAnswer);
  /// null for untraced embedders constructing StreamStates directly.
  const std::shared_ptr<QueryTrace> trace_;
  // Worker-thread-only stream-span bookkeeping (Open and Complete both
  // run on the producing worker).
  uint64_t stream_open_us_ = 0;
  bool stream_opened_ = false;

  // Producer-thread-only state (no lock): the fill page and the epoch
  // pin (released as soon as the engine's shared reads are done, so
  // backpressure below never blocks a writer).
  std::vector<Tuple> partial_;
  std::optional<EpochGuard::ReadLock> read_lock_;

  std::mutex mu_;
  std::condition_variable cv_consumer_;
  std::condition_variable cv_producer_;
  std::optional<RelationSchema> schema_;
  std::deque<std::vector<Tuple>> pages_;
  std::deque<size_t> page_bytes_;  ///< parallel to pages_
  bool terminal_ = false;
  bool cancelled_ = false;
  Result<ServiceAnswer> result_ = Status::Internal("stream still running");
};

StreamingTicket::StreamingTicket(uint64_t id, std::shared_ptr<StreamState> state)
    : id_(id), state_(std::move(state)) {}

StreamingTicket::StreamingTicket(StreamingTicket&& other) noexcept
    : id_(other.id_), state_(std::move(other.state_)) {
  other.id_ = 0;
}

StreamingTicket& StreamingTicket::operator=(StreamingTicket&& other) noexcept {
  if (this != &other) {
    if (state_) state_->Cancel();
    id_ = other.id_;
    state_ = std::move(other.state_);
    other.id_ = 0;
  }
  return *this;
}

StreamingTicket::~StreamingTicket() {
  if (state_) state_->Cancel();
}

Result<RelationSchema> StreamingTicket::WaitSchema() {
  if (!state_) return Status::NotFound("empty streaming ticket");
  return state_->WaitSchema();
}

Result<StreamPage> StreamingTicket::NextPage() {
  if (!state_) return Status::NotFound("empty streaming ticket");
  return state_->NextPage();
}

void StreamingTicket::Cancel() {
  if (state_) state_->Cancel();
}

/// One submitted query's result slot. Shared between the worker job and
/// the (at most one) waiter; owned past service shutdown by whichever
/// side still holds it.
struct QueryService::Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<ServiceAnswer> result = Status::Internal("query still pending");
};

QueryService::QueryService(Beas* beas, ServiceOptions options)
    : beas_(beas), options_(std::move(options)) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  latency_hist_ = metrics_->GetHistogram("beas_service_query_latency_us");
  queue_wait_hist_ = metrics_->GetHistogram("beas_service_queue_wait_us");
  queries_total_ = metrics_->GetCounter("beas_service_queries_total");
  slow_queries_ = metrics_->GetCounter("beas_service_slow_queries_total");
  pool_ = std::make_unique<ThreadPool>(options_.workers);
}

QueryService::~QueryService() {
  // ThreadPool's destructor drains the queue: every admitted query runs
  // to completion (unredeemed tickets resolve into their slots and are
  // dropped with the pending_ map).
  pool_.reset();
}

Result<QueryTicket> QueryService::Submit(QueryPtr q, double alpha) {
  return Submit(std::move(q), alpha, SubmitOptions{});
}

Result<QueryTicket> QueryService::Submit(QueryPtr q, double alpha,
                                         const SubmitOptions& opts) {
  if (q == nullptr) return Status::InvalidArgument("query must not be null");
  auto submitted_at = std::chrono::steady_clock::now();
  std::shared_ptr<Pending> slot = std::make_shared<Pending>();
  QueryTicket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Normal priority stops short of the reserved headroom; high
    // priority may fill the queue to the hard cap. The clamp keeps at
    // least one normal slot even if reserved_slots >= max_queue.
    size_t cap = options_.max_queue;
    if (opts.priority == QueryPriority::kNormal && options_.reserved_slots > 0) {
      cap -= std::min(options_.reserved_slots, options_.max_queue - 1);
    }
    if (counters_.queued >= cap) {
      ++counters_.rejected;
      return Status::Unavailable(
          StrCat("admission queue full (", counters_.queued, " queued, cap ",
                 cap, "); retry later"));
    }
    ++counters_.queued;
    ++counters_.submitted;
    ticket.id = next_ticket_++;
    pending_[ticket.id] = slot;
  }
  // The trace epoch starts at admission, so span start offsets line up
  // with the submit-to-completion latency the service reports.
  auto trace = std::make_shared<QueryTrace>(TraceTimings(opts.trace));
  pool_->Submit([this, slot = std::move(slot), q = std::move(q), alpha, opts,
                 submitted_at, trace = std::move(trace)] {
    RunQuery(slot, q, alpha, opts, submitted_at, trace);
  });
  return ticket;
}

Result<QueryTicket> QueryService::SubmitSql(const std::string& sql, double alpha) {
  return SubmitSql(sql, alpha, SubmitOptions{});
}

Result<QueryTicket> QueryService::SubmitSql(const std::string& sql, double alpha,
                                            const SubmitOptions& opts) {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, beas_->Parse(sql));
  return Submit(std::move(q), alpha, opts);
}

Result<ServiceAnswer> QueryService::Wait(QueryTicket ticket) {
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("unknown or already-redeemed ticket ", ticket.id));
    }
    slot = std::move(it->second);
    pending_.erase(it);
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&slot] { return slot->done; });
  return std::move(slot->result);
}

Result<ServiceAnswer> QueryService::WaitFor(QueryTicket ticket,
                                            std::chrono::milliseconds timeout) {
  // Unlike Wait, the slot is looked up but NOT erased before blocking: a
  // timeout must leave the ticket redeemable, so only the path that
  // returns a result consumes it.
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("unknown or already-redeemed ticket ", ticket.id));
    }
    slot = it->second;
  }
  {
    std::unique_lock<std::mutex> lock(slot->mu);
    if (!slot->cv.wait_for(lock, timeout, [&slot] { return slot->done; })) {
      return Status::DeadlineExceeded(
          StrCat("ticket ", ticket.id, " not done after ", timeout.count(),
                 " ms; it stays redeemable"));
    }
  }
  // Consume the ticket. A concurrent Wait may have raced us to it (the
  // single-waiter contract makes that caller error); the eraser wins.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("ticket ", ticket.id, " already redeemed"));
    }
    pending_.erase(it);
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  return std::move(slot->result);
}

Result<ServiceAnswer> QueryService::Answer(QueryPtr q, double alpha) {
  BEAS_ASSIGN_OR_RETURN(QueryTicket ticket, Submit(std::move(q), alpha));
  return Wait(ticket);
}

Result<StreamingTicket> QueryService::SubmitStreaming(QueryPtr q, double alpha,
                                                      const StreamOptions& opts) {
  if (q == nullptr) return Status::InvalidArgument("query must not be null");
  auto submitted_at = std::chrono::steady_clock::now();
  auto trace = std::make_shared<QueryTrace>(TraceTimings(opts.submit.trace));
  std::shared_ptr<StreamState> state = std::make_shared<StreamState>(
      opts.page_rows, opts.max_queued_pages, opts.on_resident_delta,
      opts.submit.deadline, trace);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Same admission policy as Submit: streaming queries compete for the
    // same queue slots (a stream is one query in flight).
    size_t cap = options_.max_queue;
    if (opts.submit.priority == QueryPriority::kNormal && options_.reserved_slots > 0) {
      cap -= std::min(options_.reserved_slots, options_.max_queue - 1);
    }
    if (counters_.queued >= cap) {
      ++counters_.rejected;
      return Status::Unavailable(
          StrCat("admission queue full (", counters_.queued, " queued, cap ",
                 cap, "); retry later"));
    }
    ++counters_.queued;
    ++counters_.submitted;
    id = next_ticket_++;
  }
  pool_->Submit([this, state, q = std::move(q), alpha, opts, submitted_at,
                 trace = std::move(trace)] {
    RunStreaming(state, q, alpha, opts, submitted_at, trace);
  });
  return StreamingTicket(id, std::move(state));
}

Result<StreamingTicket> QueryService::SubmitStreamingSql(const std::string& sql,
                                                         double alpha,
                                                         const StreamOptions& opts) {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, beas_->Parse(sql));
  return SubmitStreaming(std::move(q), alpha, opts);
}

void QueryService::RunQuery(std::shared_ptr<Pending> slot, QueryPtr q, double alpha,
                            SubmitOptions opts,
                            std::chrono::steady_clock::time_point submitted_at,
                            std::shared_ptr<QueryTrace> trace) {
  uint64_t in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.queued;
    in_flight = ++counters_.in_flight;
  }
  QueryTrace* tr = trace.get();
  // Queue wait: the trace epoch is the admission instant, so "now" on
  // the worker is exactly the time spent queued.
  const uint64_t run_start_us = tr->NowMicros();
  queue_wait_hist_->Record(run_start_us);
  if (tr->timings()) tr->AddSpan("queue_wait", 0, run_start_us);
  // Per-query thread budgeting: split the configured intra-query thread
  // budget over the queries in flight right now, so cross-query
  // parallelism (the worker pool) and intra-query parallelism
  // (fetch/eval threads) never multiply past the budget. Thread-count
  // clamping is answer-invariant, so the instantaneous (racy) in_flight
  // read only affects scheduling, never results.
  EvalOptions eval = beas_->eval_options();
  if (options_.eval_thread_budget > 0) {
    int allowed = static_cast<int>(std::max<uint64_t>(
        1, options_.eval_thread_budget / std::max<uint64_t>(1, in_flight)));
    eval.eval_threads = std::min(eval.eval_threads, allowed);
    eval.fetch_threads = std::min(eval.fetch_threads, allowed);
  }
  // The submission's deadline rides into the executor through the
  // per-query EvalOptions; Beas::Answer fast-fails a deadline that
  // expired while the query sat in the queue (no planning, no fetching),
  // and cancels mid-flight work at the next morsel boundary otherwise.
  eval.deadline = opts.deadline;
  eval.trace = tr;
  Result<ServiceAnswer> out = Status::Internal("query did not run");
  uint64_t epoch = 0;
  {
    // The read hold spans the whole execution: plan (the cache must not
    // be invalidated between lookup and insert of one query), fetch, and
    // evaluate all see one epoch's database.
    const uint64_t epoch_wait_start = tr->timings() ? tr->NowMicros() : 0;
    EpochGuard::ReadLock read = guard_.LockRead();
    if (tr->timings()) {
      tr->AddSpan("epoch_wait", epoch_wait_start,
                  tr->NowMicros() - epoch_wait_start);
    }
    epoch = read.epoch();
    Result<BeasAnswer> answer = beas_->Answer(q, alpha, eval);
    if (answer.ok()) {
      ServiceAnswer sa;
      sa.answer = std::move(*answer);
      sa.epoch = epoch;
      out = std::move(sa);
    } else {
      out = answer.status();
    }
  }
  double latency_ms = MsBetween(submitted_at, std::chrono::steady_clock::now());
  const Status status = out.ok() ? Status::OK() : out.status();
  if (out.ok()) {
    out->latency_ms = latency_ms;
    out->trace = trace;
  }
  RecordDone(latency_ms, status);
  MaybeLogSlowQuery(*tr, latency_ms, alpha, status, epoch);
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(out);
    slot->done = true;
  }
  slot->cv.notify_all();
}

void QueryService::RunStreaming(std::shared_ptr<StreamState> state, QueryPtr q,
                                double alpha, StreamOptions opts,
                                std::chrono::steady_clock::time_point submitted_at,
                                std::shared_ptr<QueryTrace> trace) {
  uint64_t in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.queued;
    in_flight = ++counters_.in_flight;
  }
  QueryTrace* tr = trace.get();
  const uint64_t run_start_us = tr->NowMicros();
  queue_wait_hist_->Record(run_start_us);
  if (tr->timings()) tr->AddSpan("queue_wait", 0, run_start_us);
  // Identical thread-budget and deadline discipline to RunQuery: the
  // streamed rows must be the rows a materialized run would return.
  EvalOptions eval = beas_->eval_options();
  if (options_.eval_thread_budget > 0) {
    int allowed = static_cast<int>(std::max<uint64_t>(
        1, options_.eval_thread_budget / std::max<uint64_t>(1, in_flight)));
    eval.eval_threads = std::min(eval.eval_threads, allowed);
    eval.fetch_threads = std::min(eval.fetch_threads, allowed);
  }
  eval.deadline = opts.submit.deadline;
  eval.trace = tr;
  Result<ServiceAnswer> out = Status::Internal("query did not run");
  uint64_t epoch;
  {
    // The epoch pin moves into the sink, which releases it as soon as the
    // engine's shared reads are done (OnSharedReadsDone, fired right
    // after D_Q is privately copied). From then on the stream can stall
    // on a slow consumer indefinitely without blocking maintenance
    // writers behind the guard's writer preference.
    const uint64_t epoch_wait_start = tr->timings() ? tr->NowMicros() : 0;
    EpochGuard::ReadLock read = guard_.LockRead();
    if (tr->timings()) {
      tr->AddSpan("epoch_wait", epoch_wait_start,
                  tr->NowMicros() - epoch_wait_start);
    }
    epoch = read.epoch();
    state->AdoptReadLock(std::move(read));
    Result<BeasAnswer> answer = beas_->Answer(q, alpha, eval, state.get());
    state->ReleaseReadLock();
    if (answer.ok()) {
      ServiceAnswer sa;
      sa.answer = std::move(*answer);
      sa.epoch = epoch;
      out = std::move(sa);
    } else {
      out = answer.status();
    }
  }
  double latency_ms = MsBetween(submitted_at, std::chrono::steady_clock::now());
  const Status status = out.ok() ? Status::OK() : out.status();
  if (out.ok()) {
    out->latency_ms = latency_ms;
    out->trace = trace;
  }
  RecordDone(latency_ms, status);
  // Publish terminal state last: by the time the consumer sees a `last`
  // page (or the failure), latency/epoch/counters are all settled.
  state->Complete(std::move(out));
  // After Complete, so the slow-log entry includes the stream span the
  // sink records there.
  MaybeLogSlowQuery(*tr, latency_ms, alpha, status, epoch);
}

void QueryService::RecordDone(double latency_ms, const Status& status) {
  // The registry records are lock-free; only the counter block needs mu_.
  latency_hist_->Record(
      static_cast<uint64_t>(std::max(0.0, latency_ms) * 1000.0));
  queries_total_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  --counters_.in_flight;
  if (status.ok()) {
    ++counters_.completed;
  } else {
    ++counters_.failed;
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++counters_.deadline_exceeded;
    }
  }
}

void QueryService::MaybeLogSlowQuery(const QueryTrace& trace, double latency_ms,
                                     double alpha, const Status& status,
                                     uint64_t epoch) {
  if (options_.slow_query_ms <= 0 || latency_ms < options_.slow_query_ms) return;
  slow_queries_->Increment();
  // One JSON object per line (JSONL): flat query facts plus the full
  // trace, the format scripts/trace_summarize.py consumes.
  const std::string line = StrCat(
      "{\"latency_ms\":", FormatDouble(latency_ms, 3),
      ",\"alpha\":", FormatDouble(alpha, 6), ",\"status\":\"",
      JsonEscape(status.ok() ? "ok" : status.ToString()), "\",\"epoch\":", epoch,
      ",\"trace\":", trace.ToJson(), "}");
  if (!options_.slow_query_log_path.empty()) {
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    if (slow_log_ == nullptr) {
      slow_log_ = std::make_unique<std::ofstream>(options_.slow_query_log_path,
                                                  std::ios::app);
    }
    if (slow_log_->good()) {
      (*slow_log_) << line << "\n";
      slow_log_->flush();
    }
  }
  if (options_.slow_query_hook) options_.slow_query_hook(line);
}

namespace {

// A NotFound failure (unknown relation, row not in the table) is raised
// before any mutation: the database version did not change, so the
// epoch must not advance and readers keep correlating answers with
// actual mutations. Any other failure may have mutated partially (index
// maintenance is not atomic across families), so the epoch bumps
// conservatively.
bool MaintenanceLeftStateUnchanged(const Status& st) {
  return !st.ok() && st.code() == StatusCode::kNotFound;
}

}  // namespace

Status QueryService::Insert(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Insert(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

Status QueryService::Remove(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Remove(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    // One acquisition for every counter field: the snapshot is coherent,
    // so cross-field invariants (submitted == queued + in_flight +
    // completed + failed) hold in any concurrently-taken snapshot.
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
  }
  out.epoch = guard_.epoch();
  BlockCacheStats cache = beas_->store().cache_stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  uint64_t traffic = cache.hits + cache.misses;
  if (traffic > 0) {
    out.cache_hit_rate =
        static_cast<double>(cache.hits) / static_cast<double>(traffic);
  }
  out.cache_resident_bytes = cache.resident_bytes;
  // Percentiles from the shared latency histogram (microseconds), so
  // stats(), the JSON exposition, and the text exposition all agree.
  if (latency_hist_->count() > 0) {
    out.p50_ms = latency_hist_->Percentile(50.0) / 1000.0;
    out.p95_ms = latency_hist_->Percentile(95.0) / 1000.0;
  }
  PublishGauges();
  return out;
}

void QueryService::PublishGauges() const {
  ServiceStats snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = counters_;
  }
  metrics_->GetGauge("beas_service_queued")
      ->Set(static_cast<int64_t>(snap.queued));
  metrics_->GetGauge("beas_service_in_flight")
      ->Set(static_cast<int64_t>(snap.in_flight));
  metrics_->GetGauge("beas_service_epoch")
      ->Set(static_cast<int64_t>(guard_.epoch()));
  BlockCacheStats cache = beas_->store().cache_stats();
  metrics_->GetGauge("beas_service_cache_hits")
      ->Set(static_cast<int64_t>(cache.hits));
  metrics_->GetGauge("beas_service_cache_misses")
      ->Set(static_cast<int64_t>(cache.misses));
  metrics_->GetGauge("beas_service_cache_resident_bytes")
      ->Set(static_cast<int64_t>(cache.resident_bytes));
}

double NearestRankPercentile(std::vector<double> window, double p) {
  if (window.empty()) return 0;
  const size_t n = window.size();
  // Ceil-based nearest rank (1-based): the previous floor(p * (n - 1))
  // index under-reported the tail on small windows — with n=10 it put
  // p95 at the 9th smallest sample instead of the 10th.
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  std::nth_element(window.begin(), window.begin() + (rank - 1), window.end());
  return window[rank - 1];
}

}  // namespace beas
