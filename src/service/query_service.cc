#include "service/query_service.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace beas {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One submitted query's result slot. Shared between the worker job and
/// the (at most one) waiter; owned past service shutdown by whichever
/// side still holds it.
struct QueryService::Pending {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<ServiceAnswer> result = Status::Internal("query still pending");
};

QueryService::QueryService(Beas* beas, ServiceOptions options)
    : beas_(beas), options_(options) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.latency_window = std::max<size_t>(1, options_.latency_window);
  latency_ring_.assign(options_.latency_window, 0.0);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
}

QueryService::~QueryService() {
  // ThreadPool's destructor drains the queue: every admitted query runs
  // to completion (unredeemed tickets resolve into their slots and are
  // dropped with the pending_ map).
  pool_.reset();
}

Result<QueryTicket> QueryService::Submit(QueryPtr q, double alpha) {
  if (q == nullptr) return Status::InvalidArgument("query must not be null");
  auto submitted_at = std::chrono::steady_clock::now();
  std::shared_ptr<Pending> slot = std::make_shared<Pending>();
  QueryTicket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.queued >= options_.max_queue) {
      ++counters_.rejected;
      return Status::Unavailable(
          StrCat("admission queue full (", counters_.queued, " queued, cap ",
                 options_.max_queue, "); retry later"));
    }
    ++counters_.queued;
    ++counters_.submitted;
    ticket.id = next_ticket_++;
    pending_[ticket.id] = slot;
  }
  pool_->Submit([this, slot = std::move(slot), q = std::move(q), alpha, submitted_at] {
    RunQuery(slot, q, alpha, submitted_at);
  });
  return ticket;
}

Result<QueryTicket> QueryService::SubmitSql(const std::string& sql, double alpha) {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, beas_->Parse(sql));
  return Submit(std::move(q), alpha);
}

Result<ServiceAnswer> QueryService::Wait(QueryTicket ticket) {
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(ticket.id);
    if (it == pending_.end()) {
      return Status::NotFound(StrCat("unknown or already-redeemed ticket ", ticket.id));
    }
    slot = std::move(it->second);
    pending_.erase(it);
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&slot] { return slot->done; });
  return std::move(slot->result);
}

Result<ServiceAnswer> QueryService::Answer(QueryPtr q, double alpha) {
  BEAS_ASSIGN_OR_RETURN(QueryTicket ticket, Submit(std::move(q), alpha));
  return Wait(ticket);
}

void QueryService::RunQuery(std::shared_ptr<Pending> slot, QueryPtr q, double alpha,
                            std::chrono::steady_clock::time_point submitted_at) {
  uint64_t in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.queued;
    in_flight = ++counters_.in_flight;
  }
  // Per-query thread budgeting: split the configured intra-query thread
  // budget over the queries in flight right now, so cross-query
  // parallelism (the worker pool) and intra-query parallelism
  // (fetch/eval threads) never multiply past the budget. Thread-count
  // clamping is answer-invariant, so the instantaneous (racy) in_flight
  // read only affects scheduling, never results.
  EvalOptions eval = beas_->eval_options();
  if (options_.eval_thread_budget > 0) {
    int allowed = static_cast<int>(std::max<uint64_t>(
        1, options_.eval_thread_budget / std::max<uint64_t>(1, in_flight)));
    eval.eval_threads = std::min(eval.eval_threads, allowed);
    eval.fetch_threads = std::min(eval.fetch_threads, allowed);
  }
  Result<ServiceAnswer> out = Status::Internal("query did not run");
  {
    // The read hold spans the whole execution: plan (the cache must not
    // be invalidated between lookup and insert of one query), fetch, and
    // evaluate all see one epoch's database.
    EpochGuard::ReadLock read = guard_.LockRead();
    Result<BeasAnswer> answer = beas_->Answer(q, alpha, eval);
    if (answer.ok()) {
      ServiceAnswer sa;
      sa.answer = std::move(*answer);
      sa.epoch = read.epoch();
      out = std::move(sa);
    } else {
      out = answer.status();
    }
  }
  double latency_ms = MsBetween(submitted_at, std::chrono::steady_clock::now());
  if (out.ok()) out->latency_ms = latency_ms;
  RecordDone(latency_ms, out.ok());
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(out);
    slot->done = true;
  }
  slot->cv.notify_all();
}

void QueryService::RecordDone(double latency_ms, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  --counters_.in_flight;
  if (ok) {
    ++counters_.completed;
  } else {
    ++counters_.failed;
  }
  latency_ring_[latency_next_] = latency_ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  ++latency_count_;
}

namespace {

// A NotFound failure (unknown relation, row not in the table) is raised
// before any mutation: the database version did not change, so the
// epoch must not advance and readers keep correlating answers with
// actual mutations. Any other failure may have mutated partially (index
// maintenance is not atomic across families), so the epoch bumps
// conservatively.
bool MaintenanceLeftStateUnchanged(const Status& st) {
  return !st.ok() && st.code() == StatusCode::kNotFound;
}

}  // namespace

Status QueryService::Insert(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Insert(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

Status QueryService::Remove(const std::string& relation, const Tuple& row) {
  EpochGuard::WriteLock write = guard_.LockWrite();
  Status st = beas_->Remove(relation, row);
  if (MaintenanceLeftStateUnchanged(st)) write.MarkUnchanged();
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) ++counters_.maintenance_ops;
  return st;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(latency_count_, latency_ring_.size()));
    window.assign(latency_ring_.begin(), latency_ring_.begin() + n);
  }
  out.epoch = guard_.epoch();
  BlockCacheStats cache = beas_->store().cache_stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  uint64_t traffic = cache.hits + cache.misses;
  if (traffic > 0) {
    out.cache_hit_rate =
        static_cast<double>(cache.hits) / static_cast<double>(traffic);
  }
  out.cache_resident_bytes = cache.resident_bytes;
  if (!window.empty()) {
    auto percentile = [&window](double p) {
      size_t idx = static_cast<size_t>(p * static_cast<double>(window.size() - 1));
      std::nth_element(window.begin(), window.begin() + idx, window.end());
      return window[idx];
    };
    out.p50_ms = percentile(0.50);
    out.p95_ms = percentile(0.95);
  }
  return out;
}

}  // namespace beas
