// The concurrent query service: a multi-session server layer over one
// Beas instance. Sessions Submit() queries and Wait() on tickets; a
// bounded admission queue feeds a fixed worker pool, every query runs in
// its own QueryContext (meter + eval options) against the shared
// read-only indices, and maintenance (Insert/Remove) goes through the
// EpochGuard: drain in-flight queries, apply the mutation (database +
// indices + plan-cache invalidation), bump the epoch, resume. Per-query
// answers are bit-identical to solo sequential runs — concurrency never
// changes rows, eta, or accessed counts (docs/ARCHITECTURE.md
// "Concurrent query service").

#ifndef BEAS_SERVICE_QUERY_SERVICE_H_
#define BEAS_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "beas/beas.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "service/epoch_guard.h"

namespace beas {

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Worker threads executing queries (clamped to at least 1). This is
  /// the cross-query parallelism knob; each worker may additionally fan
  /// its fetch phase out when BeasOptions::eval.fetch_threads > 1 and
  /// its evaluation phase when eval.eval_threads > 1 (capped by
  /// eval_thread_budget below).
  size_t workers = 4;
  /// Admission bound: maximum queries admitted but not yet started
  /// (clamped to at least 1). Submit rejects with Unavailable beyond it,
  /// so a traffic spike degrades into fast rejections instead of an
  /// unbounded backlog.
  size_t max_queue = 256;
  /// Obsolete: p50/p95 now derive from the service's latency histogram
  /// (see `metrics` below), which is unwindowed — the field is kept so
  /// existing configurations still compile, but it no longer affects
  /// the stats.
  size_t latency_window = 512;
  /// Per-query thread budgeting: the total number of intra-query worker
  /// threads (EvalOptions::eval_threads / fetch_threads) the service
  /// hands out across all in-flight queries. Each query runs with the
  /// engine's configured thread counts clamped to budget / in_flight
  /// (at least 1), so a loaded service degrades to one thread per query
  /// instead of oversubscribing workers * threads cores. 0 (the
  /// default) disables budgeting: every query keeps the engine's
  /// configured EvalOptions verbatim. Clamping never changes answers —
  /// parallel fetch and morsel evaluation are answer-invariant at any
  /// thread count.
  size_t eval_thread_budget = 0;
  /// Admission slots held back for high-priority submissions: normal
  /// priority is rejected once queued >= max_queue - reserved_slots
  /// (clamped so at least one normal slot survives), while high priority
  /// may fill the queue to max_queue. 0 (the default) disables the
  /// reservation — priorities then only matter to front-ends that map
  /// them onto deadlines or quotas.
  size_t reserved_slots = 0;
  /// Slow-query threshold in milliseconds; 0 (the default) disables the
  /// slow-query log. When set, span timings are force-enabled for every
  /// query (so a query that turns out slow has a full trace to dump),
  /// and any query whose submit-to-completion latency reaches the
  /// threshold is appended to the log as one JSON line carrying
  /// latency_ms, alpha, status, epoch, and the full trace
  /// (QueryTrace::ToJson()). scripts/trace_summarize.py renders the log
  /// as a per-span time breakdown.
  double slow_query_ms = 0;
  /// File the slow-query JSONL log appends to (opened lazily on the
  /// first slow query). May be empty when a hook below consumes the
  /// entries instead.
  std::string slow_query_log_path;
  /// Optional consumer of each slow-query JSON line (tests, embedders
  /// shipping entries elsewhere). Called outside the service mutex, on
  /// the worker thread that ran the query; must be thread-safe.
  std::function<void(const std::string&)> slow_query_hook;
  /// Metrics registry the service records into: the query-latency and
  /// queue-wait histograms (the source ServiceStats p50/p95 derive
  /// from) plus lifetime counters. Non-owning; null (the default) gives
  /// the service a private registry, reachable via
  /// QueryService::metrics(), so two services in one process never mix
  /// their latency distributions. Pass &MetricsRegistry::Global() to
  /// fold a service into the process-wide exposition.
  MetricsRegistry* metrics = nullptr;
};

/// Admission priority of one submission (see ServiceOptions::reserved_slots).
enum class QueryPriority {
  kNormal = 0,
  kHigh = 1,
};

/// Per-submission options; the {} default reproduces plain Submit.
struct SubmitOptions {
  /// Absolute wall-clock deadline; time_point::max() (the default) means
  /// none. Propagated into the query's EvalOptions (QueryContext::eval),
  /// so the executor cancels in-flight fetch/eval work with
  /// kDeadlineExceeded at the next morsel boundary; a query whose
  /// deadline expired while queued fails fast without executing at all.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Admission priority (may use the reserved_slots headroom).
  QueryPriority priority = QueryPriority::kNormal;
  /// Collect span timings for this query (EXPLAIN ANALYZE). Counters
  /// and attributes are recorded for every query regardless; this flag
  /// only adds the timed spans, whose trace rides back on
  /// ServiceAnswer::trace. Tracing never changes answers.
  bool trace = false;
};

/// Handle of one submitted query; redeemed (once) by Wait.
struct QueryTicket {
  uint64_t id = 0;
};

/// A served answer with its service-level observables.
struct ServiceAnswer {
  BeasAnswer answer;
  /// The maintenance epoch the query ran under: the database version it
  /// observed. Queries never straddle epochs (no torn reads) — the
  /// epoch guard holds mutations off until in-flight queries drain.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait + execution).
  double latency_ms = 0;
  /// The query's trace: always carries the layer counters/attributes;
  /// timed spans additionally when SubmitOptions::trace was set (or the
  /// service's slow-query log forced timings on). Shared with the
  /// service's slow-query logging — treat as read-only.
  std::shared_ptr<const QueryTrace> trace;

  /// EXPLAIN ANALYZE: the trace's span/attribute summary ("" untraced).
  std::string ExplainAnalyze() const {
    return trace != nullptr ? trace->Summary() : std::string();
  }
};

/// Service counters; snapshot via QueryService::stats().
struct ServiceStats {
  uint64_t submitted = 0;    ///< admitted queries (excludes rejections)
  uint64_t rejected = 0;     ///< Submit calls bounced off the full queue
  uint64_t completed = 0;    ///< queries finished with an answer
  uint64_t failed = 0;       ///< queries finished with a non-OK status
  uint64_t queued = 0;       ///< admitted, not yet started (instantaneous)
  uint64_t in_flight = 0;    ///< currently executing (instantaneous)
  uint64_t maintenance_ops = 0;  ///< successful Insert/Remove mutations
  /// Queries that finished with kDeadlineExceeded — whether they expired
  /// while queued (never executed) or were cancelled mid-flight at a
  /// morsel boundary. A subset of `failed`.
  uint64_t deadline_exceeded = 0;
  /// Database versions: bumps on every completed mutation (and,
  /// conservatively, on partially-failed ones; never on a NotFound that
  /// touched nothing).
  uint64_t epoch = 0;
  double p50_ms = 0;         ///< median latency over the recent window
  double p95_ms = 0;         ///< 95th-percentile latency over the window
  /// Block-cache counters of the disk-backed index tier (all zeros on the
  /// in-memory backend). Observational only: hit rate never changes
  /// answers, only latency.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;           ///< hits / (hits + misses); 0 if idle
  uint64_t cache_resident_bytes = 0;   ///< bytes currently held by the cache
};

/// Options of one streaming submission (SubmitStreaming).
struct StreamOptions {
  /// Admission priority and deadline, exactly as for Submit.
  SubmitOptions submit;
  /// Rows per page handed to NextPage (clamped to at least 1). The
  /// stream's peak resident memory is O(page_rows * (max_queued_pages
  /// + 1)): the queued pages plus the producer's in-hand page waiting
  /// out backpressure.
  uint32_t page_rows = 1024;
  /// Backpressure bound: full pages buffered ahead of the consumer
  /// before the producer blocks (clamped to at least 2 — the consumer
  /// holds one page back to resolve `last` deterministically, so a
  /// 1-page queue would deadlock). A slow consumer stalls only its own
  /// query's worker; a stalled producer still honors the deadline and
  /// cancellation.
  size_t max_queued_pages = 4;
  /// Optional accounting hook: called with +bytes when the producer cuts
  /// a page (before it enters the queue, so a drain never observably
  /// precedes its charge) and -bytes as pages drain (or drop on
  /// failure/cancel), outside all stream locks. Must be thread-safe;
  /// deltas sum to zero over the stream's lifetime. The net front-end's
  /// cursor_resident_bytes telemetry plugs in here.
  std::function<void(int64_t)> on_resident_delta;
};

/// One page of a streamed answer (StreamingTicket::NextPage).
struct StreamPage {
  std::vector<Tuple> rows;  ///< next page_rows rows (fewer on the last page)
  /// True on the stream's final page: `final` is valid and no further
  /// pages exist. An empty answer yields exactly one empty last page.
  bool last = false;
  /// The full ServiceAnswer (empty table; BeasAnswer::streamed_rows
  /// carries the row total) — only meaningful when `last`.
  ServiceAnswer final;
};

/// Approximate resident size of one queued tuple (container + Value
/// payloads + string bytes): the unit of StreamOptions::on_resident_delta,
/// exposed so telemetry and tests bound memory in the same currency.
size_t ApproxTupleBytes(const Tuple& t);

class StreamState;

/// \brief Handle of one streaming query: pages become available as
/// morsels commit, long before evaluation finishes.
///
/// Move-only. Dropping the ticket cancels the stream (the producer
/// unblocks and the query terminates with Unavailable), so an abandoned
/// consumer can never wedge a service worker. At most one thread may use
/// a ticket at a time.
class StreamingTicket {
 public:
  StreamingTicket() = default;
  StreamingTicket(StreamingTicket&&) noexcept;
  StreamingTicket& operator=(StreamingTicket&&) noexcept;
  StreamingTicket(const StreamingTicket&) = delete;
  StreamingTicket& operator=(const StreamingTicket&) = delete;
  /// Cancels the stream if it is still live.
  ~StreamingTicket();

  /// Blocks until the answer schema is known (the plan is built, before
  /// any fetch work) or the query failed at plan time; the first page
  /// may still be minutes away. Idempotent.
  Result<RelationSchema> WaitSchema();

  /// Blocks until the next page is available and returns it; after the
  /// `last` page the stream is exhausted. A query that fails mid-stream
  /// delivers the pages committed before the failure, then the terminal
  /// status (e.g. kDeadlineExceeded, kOutOfBudget) — the same status the
  /// materialized Answer() would have returned.
  Result<StreamPage> NextPage();

  /// Cancels the stream: queued pages are dropped, the producer
  /// unblocks, and the query terminates with Unavailable. Idempotent;
  /// NextPage afterwards returns the cancellation status.
  void Cancel();

  /// Ticket id (0 for a default-constructed, empty ticket).
  uint64_t id() const { return id_; }

 private:
  friend class QueryService;
  StreamingTicket(uint64_t id, std::shared_ptr<StreamState> state);

  uint64_t id_ = 0;
  std::shared_ptr<StreamState> state_;
};

/// Nearest-rank percentile with the ceil convention: the smallest value
/// v such that at least ceil(p * n) of the n samples are <= v. Unlike
/// the floor(p * (n-1)) index this never under-reports the tail on
/// small windows (n=10, p=0.95 selects the 10th smallest, not the 9th).
/// \p window is taken by value (the selection is destructive); returns 0
/// for an empty window. The reference convention the metrics
/// Histogram's percentile approximation is tested against; service and
/// net percentiles now derive from shared histograms.
double NearestRankPercentile(std::vector<double> window, double p);

/// \brief A multi-session query server over one Beas instance.
///
/// All public methods are thread-safe. Queries admitted by Submit run
/// concurrently on the worker pool; Insert/Remove serialize against all
/// queries through the epoch guard. The destructor drains every admitted
/// query (their tickets become unredeemable). The Beas instance and its
/// database must outlive the service, and must not be mutated behind its
/// back — route all maintenance through the service.
class QueryService {
 public:
  explicit QueryService(Beas* beas, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits \p q at resource ratio \p alpha. Returns Unavailable when
  /// the admission queue is full (the caller may retry later).
  Result<QueryTicket> Submit(QueryPtr q, double alpha);

  /// Submit with per-query options: a deadline the executor enforces at
  /// morsel boundaries, and an admission priority.
  Result<QueryTicket> Submit(QueryPtr q, double alpha, const SubmitOptions& opts);

  /// Parses \p sql (in the caller's thread) and admits it.
  Result<QueryTicket> SubmitSql(const std::string& sql, double alpha);

  /// SubmitSql with per-query options (see Submit above).
  Result<QueryTicket> SubmitSql(const std::string& sql, double alpha,
                                const SubmitOptions& opts);

  /// Admits \p q as a streaming query: the returned ticket's pages
  /// become available as the engine commits morsels, with a bounded
  /// page queue (StreamOptions::max_queued_pages) backpressuring the
  /// producer so a slow consumer stalls its own query, never the
  /// service. Admission rules and counters are identical to Submit.
  /// The streamed rows plus the last page's trailer are byte-identical
  /// to the materialized Answer() — same rows and order, same
  /// eta/accessed/d', same OutOfBudget or deadline cut point.
  Result<StreamingTicket> SubmitStreaming(QueryPtr q, double alpha,
                                          const StreamOptions& opts = {});

  /// Parses \p sql (in the caller's thread) and admits it streaming.
  Result<StreamingTicket> SubmitStreamingSql(const std::string& sql, double alpha,
                                             const StreamOptions& opts = {});

  /// Blocks until \p ticket's query finishes and returns its answer (or
  /// its failure). Each ticket can be redeemed once; a second Wait — or
  /// a ticket this service never issued — returns NotFound.
  Result<ServiceAnswer> Wait(QueryTicket ticket);

  /// Wait with a timeout: blocks at most \p timeout, then returns
  /// kDeadlineExceeded *without* consuming the ticket — the query keeps
  /// running and the ticket stays redeemable by a later Wait/WaitFor, so
  /// a timed-out caller never leaks the slot. At most one thread may
  /// wait on a given ticket at a time.
  Result<ServiceAnswer> WaitFor(QueryTicket ticket, std::chrono::milliseconds timeout);

  /// Submit + Wait in one call: the synchronous session API.
  Result<ServiceAnswer> Answer(QueryPtr q, double alpha);

  /// Epoch-guarded maintenance: drains in-flight queries, applies the
  /// mutation to the database and every index, invalidates the affected
  /// plan-cache entries, bumps the epoch, and resumes admission.
  Status Insert(const std::string& relation, const Tuple& row);
  Status Remove(const std::string& relation, const Tuple& row);

  /// Snapshot of the service counters. Coherent: all counter fields
  /// are read under one lock acquisition, so derived invariants hold
  /// (submitted == queued + in_flight + completed + failed at every
  /// instant). p50/p95 derive from the registry's latency histogram.
  ServiceStats stats() const;

  /// The registry this service records into (ServiceOptions::metrics,
  /// or the service-owned default). Histograms:
  /// beas_service_query_latency_us, beas_service_queue_wait_us;
  /// counters: beas_service_queries_total, beas_service_slow_queries_total.
  /// Gauges (queued/in_flight/epoch/cache) are published on stats() and
  /// before exposition via PublishGauges().
  MetricsRegistry* metrics() const { return metrics_; }

  /// Refreshes the registry's gauges from the live counters (queued,
  /// in_flight, epoch, block-cache residency). Call before ToJson/ToText
  /// when reading gauges matters; stats() does it implicitly.
  void PublishGauges() const;

  /// The maintenance gate. Exposed for coordination of external bulk
  /// maintenance (hold LockWrite while rebuilding offline) and for
  /// deterministic scheduling in tests; routine callers never need it.
  EpochGuard& epoch_guard() { return guard_; }

 private:
  struct Pending;

  void RunQuery(std::shared_ptr<Pending> slot, QueryPtr q, double alpha,
                SubmitOptions opts,
                std::chrono::steady_clock::time_point submitted_at,
                std::shared_ptr<QueryTrace> trace);
  void RunStreaming(std::shared_ptr<StreamState> state, QueryPtr q, double alpha,
                    StreamOptions opts,
                    std::chrono::steady_clock::time_point submitted_at,
                    std::shared_ptr<QueryTrace> trace);
  /// Whether the per-query traces must collect span timings: an explicit
  /// trace request, or the slow-query log (a slow query must already
  /// have its timings by the time it proves slow).
  bool TraceTimings(bool requested) const {
    return requested || options_.slow_query_ms > 0;
  }
  void RecordDone(double latency_ms, const Status& status);
  /// Appends the slow-query JSONL entry when \p latency_ms reaches the
  /// threshold. Runs on the worker thread, outside mu_.
  void MaybeLogSlowQuery(const QueryTrace& trace, double latency_ms,
                         double alpha, const Status& status, uint64_t epoch);

  Beas* beas_;
  ServiceOptions options_;
  EpochGuard guard_;

  /// Owned fallback when ServiceOptions::metrics is null; metrics_ is
  /// the registry actually used either way.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Histogram* latency_hist_ = nullptr;     ///< query latency, microseconds
  Histogram* queue_wait_hist_ = nullptr;  ///< admission-to-start, microseconds
  Counter* queries_total_ = nullptr;
  Counter* slow_queries_ = nullptr;

  std::mutex slow_log_mu_;
  /// Lazily-opened append handle of slow_query_log_path (null until the
  /// first slow query; stays null when the path is empty).
  std::unique_ptr<std::ofstream> slow_log_;

  mutable std::mutex mu_;
  uint64_t next_ticket_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> pending_;
  ServiceStats counters_;            ///< p50/p95 fields unused here

  /// Declared last: destroyed first, so the pool drains (running every
  /// admitted query to completion) while the rest of the service state
  /// is still alive for the jobs to use.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace beas

#endif  // BEAS_SERVICE_QUERY_SERVICE_H_
