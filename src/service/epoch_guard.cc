#include "service/epoch_guard.h"

namespace beas {

EpochGuard::ReadLock::~ReadLock() {
  if (guard_ != nullptr) guard_->UnlockRead();
}

EpochGuard::WriteLock::~WriteLock() {
  if (guard_ != nullptr) guard_->UnlockWrite(changed_);
}

EpochGuard::ReadLock EpochGuard::LockRead() {
  std::unique_lock<std::mutex> lock(mu_);
  // Writer preference: a waiting writer gates new readers so maintenance
  // cannot be starved by a steady query stream.
  cv_.wait(lock, [this] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
  return ReadLock(this, epoch_);
}

void EpochGuard::UnlockRead() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--active_readers_ == 0) cv_.notify_all();
}

EpochGuard::WriteLock EpochGuard::LockWrite() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  cv_.wait(lock, [this] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  return WriteLock(this);
}

void EpochGuard::UnlockWrite(bool bump_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_active_ = false;
  if (bump_epoch) ++epoch_;
  cv_.notify_all();
}

uint64_t EpochGuard::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int EpochGuard::active_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_readers_;
}

int EpochGuard::waiting_writers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_writers_;
}

}  // namespace beas
