// Blocking client of the BEAS network front-end: one TCP connection =
// one session. Connect() performs the kHello handshake; Query() submits
// SQL with an optional page size and per-query deadline and returns a
// cursor handle as soon as the server knows the answer schema (the
// query is still evaluating); Fetch() streams one page of rows at a
// time as the engine commits them, the last page carrying the answer's
// scalar trailer; QueryAll() drains a whole cursor into a RemoteAnswer
// whose fields reconstruct the in-process BeasAnswer bit-for-bit
// (asserted by the net differential test). Used by examples, tests, and
// bench/net_throughput_bench.

#ifndef BEAS_NET_CLIENT_H_
#define BEAS_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "beas/executor.h"
#include "net/protocol.h"
#include "service/query_service.h"
#include "storage/table.h"

namespace beas {

/// Handle of a server-side streaming cursor. Only the id and the answer
/// schema are known at Query() time — the scalar observables (row
/// count, eta, accessed, ...) arrive in the final page's trailer, since
/// the query is still running when the cursor opens.
struct RemoteCursor {
  uint64_t id = 0;
  RelationSchema schema;
};

/// One page of a cursor's rows. A done page additionally carries the
/// answer trailer (the fields below rows are valid only when done).
struct RemotePage {
  std::vector<Tuple> rows;
  bool done = false;  ///< the cursor is exhausted and released server-side
  uint64_t total_rows = 0;  ///< rows streamed over the cursor's lifetime
  double eta = 0;
  double d_prime = 0;
  uint64_t accessed = 0;
  bool exact = false;
  uint64_t epoch = 0;       ///< maintenance epoch the query ran under
  double latency_ms = 0;    ///< service-side submit-to-completion latency
  /// True when the done page carried the trace block (the kQuery asked
  /// for tracing); spans/attrs below are then the server-side trace.
  bool has_trace = false;
  std::vector<TraceSpan> trace_spans;
  std::vector<std::pair<std::string, int64_t>> trace_attrs;
};

/// A fully drained answer, reassembled client-side from pages.
struct RemoteAnswer {
  Table table;
  double eta = 0;
  double d_prime = 0;
  uint64_t accessed = 0;
  bool exact = false;
  uint64_t epoch = 0;
  double latency_ms = 0;
  uint64_t pages = 0;  ///< kPage frames it took to drain the cursor
  /// Server-side trace (wire-level EXPLAIN ANALYZE) when the query was
  /// submitted with NetQueryOptions::trace; empty otherwise.
  bool has_trace = false;
  std::vector<TraceSpan> trace_spans;
  std::vector<std::pair<std::string, int64_t>> trace_attrs;

  /// The in-process view of this answer: rows plus the accuracy/access
  /// observables SerializeAnswer covers. Wire values are bit-exact
  /// (doubles travel as IEEE-754 bit patterns), so this compares
  /// byte-identical to a local Beas::Answer of the same query.
  BeasAnswer ToBeasAnswer() const {
    BeasAnswer a;
    a.table = table;
    a.eta = eta;
    a.d_prime = d_prime;
    a.accessed = accessed;
    a.exact = exact;
    return a;
  }
};

/// Per-query options for NetClient::Query/QueryAll. (Namespace-scoped —
/// not nested — so it is complete where the member declarations default
/// it.)
struct NetQueryOptions {
  /// Rows per page; 0 (the default) uses the server's default page
  /// size (one engine ColumnChunk window).
  uint32_t page_rows = 0;
  /// Relative per-query deadline; zero (the default) means none. The
  /// server enforces it inside the engine, so an expired query returns
  /// kDeadlineExceeded after cancelling at the next morsel boundary.
  std::chrono::milliseconds deadline{0};
  /// Request span timings server-side: the done page's trailer then
  /// carries the query's trace (RemotePage/RemoteAnswer trace fields) —
  /// EXPLAIN ANALYZE over the wire. Never changes rows or observables.
  bool trace = false;
};

/// The server's metrics registry, fetched via NetClient::Stats(): the
/// same contents in both exposition forms.
struct RemoteStats {
  std::string json;  ///< MetricsRegistry::ToJson()
  std::string text;  ///< MetricsRegistry::ToText() (Prometheus-style)
};

/// \brief A blocking session with a NetServer.
///
/// Not thread-safe: one NetClient serves one caller thread (open one
/// client per concurrent session, as the throughput bench does). Any
/// transport-level failure closes the connection; server-reported errors
/// (error frames) leave the session usable.
class NetClient {
 public:
  using QueryOptions = NetQueryOptions;

  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  ~NetClient();

  /// Connects to \p host:\p port and completes the kHello handshake at
  /// \p priority.
  static Result<NetClient> Connect(
      const std::string& host, uint16_t port,
      QueryPriority priority = QueryPriority::kNormal);

  /// Submits \p sql at resource ratio \p alpha; returns as soon as the
  /// server knows the answer schema — evaluation continues server-side
  /// and rows page through Fetch as they commit.
  Result<RemoteCursor> Query(const std::string& sql, double alpha,
                             const QueryOptions& opts = QueryOptions());

  /// Next page of \p cursor_id; blocks until the stream commits one.
  /// After a page with done=true (which carries the answer trailer) the
  /// cursor is gone server-side; further fetches return NotFound. A
  /// query failing mid-stream answers the fetch that reaches the
  /// failure with that error (pages before it were real committed
  /// rows).
  Result<RemotePage> Fetch(uint64_t cursor_id);

  /// Releases an unfinished cursor (cancelling its stream).
  Status CloseCursor(uint64_t cursor_id);

  /// Fetches the server's metrics registry (kStatsRequest): counters,
  /// gauges, and histograms of the whole serving stack, in JSON and
  /// Prometheus-style text form.
  Result<RemoteStats> Stats();

  /// Query + drain all pages into one RemoteAnswer, page by page (at
  /// most one page is in client memory beyond the accumulated rows).
  /// opts.page_rows sizes the pages; the trailer of the last page fills
  /// the scalar fields and must match the streamed row count.
  Result<RemoteAnswer> QueryAll(const std::string& sql, double alpha,
                                const QueryOptions& opts = QueryOptions());

  /// The server-assigned session id.
  uint64_t session_id() const { return session_id_; }

  /// Closes the connection (also run by the destructor). Idempotent.
  void Close();

 private:
  NetClient() = default;

  /// Sends \p request and decodes the response frame, translating error
  /// frames into their carried Status.
  Result<std::string> RoundTrip(const std::string& request);

  int fd_ = -1;
  uint64_t session_id_ = 0;
};

}  // namespace beas

#endif  // BEAS_NET_CLIENT_H_
