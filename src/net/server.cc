#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "storage/codec.h"

namespace beas {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

// One live query stream: a cursor wraps the service's StreamingTicket,
// whose bounded page queue is the only server-side copy of the answer
// — pages become available as morsels commit and are dropped as kFetch
// drains them. Destroying the cursor (close, teardown, error) cancels
// the stream, which unblocks a backpressured producer.
struct Cursor {
  StreamingTicket ticket;
  /// The client's kQuery trace flag: the done page then carries the
  /// trace block (wire-level EXPLAIN ANALYZE).
  bool trace_requested = false;
  /// kQuery receipt, the ttfp (time-to-first-page) epoch.
  std::chrono::steady_clock::time_point opened_at;
  bool first_page_served = false;
};

// Server-wide cursor-residency counters. Held by shared_ptr in both the
// server and every stream's on_resident_delta hook: a worker thread
// draining a stream after the server object is gone still writes
// somewhere valid.
struct NetServer::ResidentAccounting {
  std::mutex mu;
  int64_t current = 0;
  uint64_t peak = 0;
  uint64_t session_peak = 0;  ///< max over all sessions' per-session peaks
};

// One session's residency slice, likewise hook-shared (it must not
// reference the Session itself, or session -> cursor -> hook -> session
// would cycle).
struct NetServer::SessionResident {
  int64_t current = 0;  ///< guarded by the global ResidentAccounting::mu
  uint64_t peak = 0;
};

// One connection's state. Owned jointly by the accept loop (for Stop's
// socket shutdown) and the session thread; all fields except `fd` are
// touched only by the session thread, so they need no lock.
struct NetServer::Session {
  std::atomic<int> fd{-1};
  uint64_t id = 0;
  QueryPriority priority = QueryPriority::kNormal;
  bool hello_done = false;
  uint64_t queries_used = 0;
  uint64_t next_cursor_id = 1;
  std::unordered_map<uint64_t, Cursor> cursors;
  std::shared_ptr<SessionResident> resident = std::make_shared<SessionResident>();
};

NetServer::NetServer(QueryService* service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  options_.max_sessions = std::max<size_t>(1, options_.max_sessions);
  options_.max_cursors_per_session =
      std::max<size_t>(1, options_.max_cursors_per_session);
  options_.default_page_rows = std::max<uint32_t>(1, options_.default_page_rows);
  options_.max_page_rows =
      std::max(options_.max_page_rows, options_.default_page_rows);
  options_.cursor_queue_pages = std::max<size_t>(2, options_.cursor_queue_pages);
  metrics_ = options_.metrics != nullptr ? options_.metrics : service_->metrics();
  request_hist_ = metrics_->GetHistogram("beas_net_request_us");
  ttfp_hist_ = metrics_->GetHistogram("beas_net_ttfp_us");
  page_serve_hist_ = metrics_->GetHistogram("beas_net_page_serve_us");
  resident_ = std::make_shared<ResidentAccounting>();
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (listen_fd_ >= 0) return Status::Internal("server already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket failed: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad listen address ", options_.host));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable(
        StrCat("bind to ", options_.host, ":", options_.port, " failed: ",
               std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st =
        Status::Unavailable(StrCat("listen failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st =
        Status::Unavailable(StrCat("getsockname failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Shutting the listener down unblocks accept(); shutting session
  // sockets down unblocks their recv() loops. Threads then drain and
  // join below — after Stop returns, no server thread is live.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& session : sessions_) {
      int fd = session->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Session threads are only spawned by the accept loop, so the vector
  // is final once it is joined.
  for (std::thread& t : session_threads_) {
    if (t.joinable()) t.join();
  }
  session_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void NetServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal: the loop ends
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    // Frames are single sends; TCP_NODELAY keeps a response from ever
    // waiting on the client's delayed ACK.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd.store(fd, std::memory_order_relaxed);
    bool refused = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (counters_.sessions_active >= options_.max_sessions) {
        ++counters_.sessions_refused;
        refused = true;
      } else {
        session->id = next_session_id_++;
        ++counters_.sessions_opened;
        ++counters_.sessions_active;
        sessions_.push_back(session);
      }
    }
    if (refused) {
      std::string err = EncodeErrorFrame(Status::Unavailable(
          StrCat("session limit of ", options_.max_sessions, " reached")));
      SendFrame(fd, err);
      ::close(fd);
      continue;
    }
    session_threads_.emplace_back(
        [this, session = std::move(session)] { ServeSession(session); });
  }
}

void NetServer::ServeSession(std::shared_ptr<Session> session) {
  const int fd = session->fd.load(std::memory_order_relaxed);
  for (;;) {
    Result<std::string> payload = RecvFrame(fd, options_.max_frame_bytes);
    if (!payload.ok()) break;  // disconnect, shutdown, or oversized frame
    std::string response = HandleRequest(session.get(), *payload);
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.bytes_received += payload->size();
      counters_.bytes_sent += response.size();
    }
    if (!SendFrame(fd, response).ok()) break;
  }
  // Teardown cancels every open cursor: each ticket's destructor cancels
  // its stream, so backpressured producers unblock and the queued pages
  // (with their residency bytes) are dropped immediately.
  session->cursors.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.sessions_active;
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
  }
  ::close(fd);
  session->fd.store(-1, std::memory_order_relaxed);
}

std::string NetServer::HandleRequest(Session* session, const std::string& payload) {
  ByteReader reader(payload);
  Result<uint8_t> type = reader.ReadU8();
  if (!type.ok()) return ErrorResponse(type.status());
  NetMessage msg = static_cast<NetMessage>(*type);
  if (!session->hello_done && msg != NetMessage::kHello) {
    return ErrorResponse(
        Status::InvalidArgument("first frame of a session must be kHello"));
  }
  switch (msg) {
    case NetMessage::kHello: {
      Result<uint8_t> prio = reader.ReadU8();
      if (!prio.ok()) return ErrorResponse(prio.status());
      if (*prio > static_cast<uint8_t>(QueryPriority::kHigh)) {
        return ErrorResponse(
            Status::InvalidArgument(StrCat("bad priority ", *prio)));
      }
      session->priority = static_cast<QueryPriority>(*prio);
      session->hello_done = true;
      std::string out;
      PutU8(&out, static_cast<uint8_t>(NetMessage::kHelloOk));
      PutU64(&out, session->id);
      return out;
    }
    case NetMessage::kQuery:
      return HandleQuery(session, payload);
    case NetMessage::kFetch:
      return HandleFetch(session, payload);
    case NetMessage::kClose:
      return HandleClose(session, payload);
    case NetMessage::kStatsRequest:
      return HandleStats();
    default:
      return ErrorResponse(Status::InvalidArgument(
          StrCat("unexpected message type ", *type)));
  }
}

std::string NetServer::HandleQuery(Session* session, const std::string& payload) {
  auto received_at = std::chrono::steady_clock::now();
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<double> alpha = reader.ReadF64();
  if (!alpha.ok()) return ErrorResponse(alpha.status());
  Result<uint32_t> page_rows = reader.ReadU32();
  if (!page_rows.ok()) return ErrorResponse(page_rows.status());
  Result<int64_t> deadline_ms = reader.ReadI64();
  if (!deadline_ms.ok()) return ErrorResponse(deadline_ms.status());
  Result<uint8_t> trace_flag = reader.ReadU8();
  if (!trace_flag.ok()) return ErrorResponse(trace_flag.status());
  Result<std::string> sql = reader.ReadString();
  if (!sql.ok()) return ErrorResponse(sql.status());

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.queries;
  }
  // The auth-style session quota: queries beyond it bounce with
  // Unavailable; existing cursors keep streaming.
  if (options_.session_query_quota > 0 &&
      session->queries_used >= options_.session_query_quota) {
    {
      // Released before ErrorResponse re-acquires mu_ for its counter.
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.quota_rejections;
    }
    return ErrorResponse(Status::Unavailable(
        StrCat("session quota of ", options_.session_query_quota,
               " queries exhausted")));
  }
  if (session->cursors.size() >= options_.max_cursors_per_session) {
    return ErrorResponse(Status::Unavailable(
        StrCat("cursor limit of ", options_.max_cursors_per_session,
               " reached; fetch or close an open cursor")));
  }
  ++session->queries_used;

  StreamOptions stream;
  stream.submit.priority = session->priority;
  stream.submit.trace = *trace_flag != 0;
  if (*deadline_ms > 0) {
    stream.submit.deadline = received_at + std::chrono::milliseconds(*deadline_ms);
  }
  stream.page_rows = *page_rows == 0
                         ? options_.default_page_rows
                         : std::min(*page_rows, options_.max_page_rows);
  stream.max_queued_pages = options_.cursor_queue_pages;
  // The residency hook references only the shared accounting structs,
  // never the server or the session: a stream outliving either still
  // balances its bytes to zero.
  stream.on_resident_delta = [global = resident_,
                              local = session->resident](int64_t delta) {
    std::lock_guard<std::mutex> lock(global->mu);
    global->current += delta;
    if (global->current > 0 &&
        static_cast<uint64_t>(global->current) > global->peak) {
      global->peak = static_cast<uint64_t>(global->current);
    }
    local->current += delta;
    if (local->current > 0 &&
        static_cast<uint64_t>(local->current) > local->peak) {
      local->peak = static_cast<uint64_t>(local->current);
      global->session_peak = std::max(global->session_peak, local->peak);
    }
  };
  Result<StreamingTicket> ticket =
      service_->SubmitStreamingSql(*sql, *alpha, stream);
  if (!ticket.ok()) {
    RecordRequestLatency(
        MsBetween(received_at, std::chrono::steady_clock::now()));
    return ErrorResponse(ticket.status());
  }
  // kQueryOk ships as soon as the schema is known — the query is still
  // evaluating, and its rows reach this session through the cursor as
  // morsels commit. A plan-time failure (bad SQL was caught at submit;
  // OutOfBudget planning, pre-plan deadline expiry) surfaces here.
  Result<RelationSchema> schema = ticket->WaitSchema();
  double latency_ms = MsBetween(received_at, std::chrono::steady_clock::now());
  RecordRequestLatency(latency_ms);
  if (!schema.ok()) {
    if (schema.status().code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_exceeded;
    }
    return ErrorResponse(schema.status());
  }

  uint64_t cursor_id = session->next_cursor_id++;
  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kQueryOk));
  PutU64(&out, cursor_id);
  PutSchema(&out, *schema);
  Cursor cursor{std::move(*ticket)};
  cursor.trace_requested = *trace_flag != 0;
  cursor.opened_at = received_at;
  session->cursors.emplace(cursor_id, std::move(cursor));
  return out;
}

std::string NetServer::HandleFetch(Session* session, const std::string& payload) {
  auto received_at = std::chrono::steady_clock::now();
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<uint64_t> cursor_id = reader.ReadU64();
  if (!cursor_id.ok()) return ErrorResponse(cursor_id.status());
  auto it = session->cursors.find(*cursor_id);
  if (it == session->cursors.end()) {
    return ErrorResponse(
        Status::NotFound(StrCat("unknown or exhausted cursor ", *cursor_id)));
  }
  Cursor& cursor = it->second;
  // Blocks until the stream has a page to serve (or is terminal). A
  // mid-stream failure — OutOfBudget past the cut point, a deadline
  // expiring after pages already shipped — surfaces here as the error
  // answer to the kFetch that reaches the failure point; the committed
  // prefix was already delivered.
  Result<StreamPage> page = cursor.ticket.NextPage();
  auto page_ready_at = std::chrono::steady_clock::now();
  page_serve_hist_->Record(
      static_cast<uint64_t>(MsBetween(received_at, page_ready_at) * 1000.0));
  if (!page.ok()) {
    session->cursors.erase(it);
    if (page.status().code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_exceeded;
    }
    return ErrorResponse(page.status());
  }
  if (!cursor.first_page_served) {
    cursor.first_page_served = true;
    ttfp_hist_->Record(static_cast<uint64_t>(
        MsBetween(cursor.opened_at, page_ready_at) * 1000.0));
  }

  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kPage));
  PutU64(&out, *cursor_id);
  PutU8(&out, page->last ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(page->rows.size()));
  for (const Tuple& row : page->rows) PutTuple(&out, row);
  if (page->last) {
    // The answer trailer: the scalars a materialized kQueryOk used to
    // carry, now known only once evaluation finished.
    const ServiceAnswer& sa = page->final;
    PutU64(&out, sa.answer.streamed_rows);
    PutF64(&out, sa.answer.eta);
    PutF64(&out, sa.answer.d_prime);
    PutU64(&out, sa.answer.accessed);
    PutU8(&out, sa.answer.exact ? 1 : 0);
    PutU64(&out, sa.epoch);
    PutF64(&out, sa.latency_ms);
    // Wire-level EXPLAIN ANALYZE: the trace block rides the done page
    // when the kQuery asked for it.
    const bool has_trace = cursor.trace_requested && sa.trace != nullptr;
    PutU8(&out, has_trace ? 1 : 0);
    if (has_trace) PutTrace(&out, *sa.trace);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.pages_sent;
    counters_.rows_sent += page->rows.size();
  }
  // A drained cursor releases its stream immediately; the final page
  // carries the `done` flag so the client knows not to ask again.
  if (page->last) session->cursors.erase(it);
  return out;
}

std::string NetServer::HandleClose(Session* session, const std::string& payload) {
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<uint64_t> cursor_id = reader.ReadU64();
  if (!cursor_id.ok()) return ErrorResponse(cursor_id.status());
  if (session->cursors.erase(*cursor_id) == 0) {
    return ErrorResponse(
        Status::NotFound(StrCat("unknown or exhausted cursor ", *cursor_id)));
  }
  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kClosed));
  PutU64(&out, *cursor_id);
  return out;
}

std::string NetServer::HandleStats() {
  // Refresh the gauges, then take both expositions back-to-back so the
  // JSON and text forms describe (nearly) the same instant.
  PublishGauges();
  service_->PublishGauges();
  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kStats));
  PutString(&out, metrics_->ToJson());
  PutString(&out, metrics_->ToText());
  return out;
}

std::string NetServer::ErrorResponse(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.errors_sent;
  return EncodeErrorFrame(st);
}

void NetServer::RecordRequestLatency(double ms) {
  request_hist_->Record(static_cast<uint64_t>(std::max(0.0, ms) * 1000.0));
}

void NetServer::PublishGauges() const {
  uint64_t active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = counters_.sessions_active;
  }
  metrics_->GetGauge("beas_net_sessions_active")
      ->Set(static_cast<int64_t>(active));
  std::lock_guard<std::mutex> lock(resident_->mu);
  metrics_->GetGauge("beas_net_cursor_resident_bytes")
      ->Set(resident_->current > 0 ? resident_->current : 0);
}

NetStats NetServer::stats() const {
  NetStats out;
  {
    // One combined acquisition: the counter block and the residency
    // gauges are snapshot together, so a concurrent page commit can
    // never tear the view (e.g. pages_sent advanced but residency not
    // yet charged). std::scoped_lock orders the two mutexes safely.
    std::scoped_lock lock(mu_, resident_->mu);
    out = counters_;
    out.cursor_resident_bytes =
        resident_->current > 0 ? static_cast<uint64_t>(resident_->current) : 0;
    out.cursor_resident_peak_bytes = resident_->peak;
    out.session_peak_resident_bytes = resident_->session_peak;
  }
  // Percentiles from the shared registry histogram (microseconds), so
  // stats() and the kStats expositions agree.
  if (request_hist_->count() > 0) {
    out.request_p50_ms = request_hist_->Percentile(50.0) / 1000.0;
    out.request_p95_ms = request_hist_->Percentile(95.0) / 1000.0;
  }
  out.service = service_->stats();
  return out;
}

}  // namespace beas
