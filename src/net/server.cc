#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "storage/codec.h"

namespace beas {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

// One streaming result: the materialized answer (a private copy — safe
// against concurrent epoch-guarded maintenance by construction) plus the
// paging cursor over its rows.
struct Cursor {
  ServiceAnswer answer;
  uint32_t page_rows = 0;
  size_t next_row = 0;
};

// One connection's state. Owned jointly by the accept loop (for Stop's
// socket shutdown) and the session thread; all fields except `fd` are
// touched only by the session thread, so they need no lock.
struct NetServer::Session {
  std::atomic<int> fd{-1};
  uint64_t id = 0;
  QueryPriority priority = QueryPriority::kNormal;
  bool hello_done = false;
  uint64_t queries_used = 0;
  uint64_t next_cursor_id = 1;
  std::unordered_map<uint64_t, Cursor> cursors;
};

NetServer::NetServer(QueryService* service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  options_.max_sessions = std::max<size_t>(1, options_.max_sessions);
  options_.max_cursors_per_session =
      std::max<size_t>(1, options_.max_cursors_per_session);
  options_.default_page_rows = std::max<uint32_t>(1, options_.default_page_rows);
  options_.max_page_rows =
      std::max(options_.max_page_rows, options_.default_page_rows);
  options_.latency_window = std::max<size_t>(1, options_.latency_window);
  latency_ring_.assign(options_.latency_window, 0.0);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (listen_fd_ >= 0) return Status::Internal("server already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket failed: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad listen address ", options_.host));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable(
        StrCat("bind to ", options_.host, ":", options_.port, " failed: ",
               std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st =
        Status::Unavailable(StrCat("listen failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st =
        Status::Unavailable(StrCat("getsockname failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Shutting the listener down unblocks accept(); shutting session
  // sockets down unblocks their recv() loops. Threads then drain and
  // join below — after Stop returns, no server thread is live.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& session : sessions_) {
      int fd = session->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Session threads are only spawned by the accept loop, so the vector
  // is final once it is joined.
  for (std::thread& t : session_threads_) {
    if (t.joinable()) t.join();
  }
  session_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void NetServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal: the loop ends
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    // Frames are single sends; TCP_NODELAY keeps a response from ever
    // waiting on the client's delayed ACK.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd.store(fd, std::memory_order_relaxed);
    bool refused = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (counters_.sessions_active >= options_.max_sessions) {
        ++counters_.sessions_refused;
        refused = true;
      } else {
        session->id = next_session_id_++;
        ++counters_.sessions_opened;
        ++counters_.sessions_active;
        sessions_.push_back(session);
      }
    }
    if (refused) {
      std::string err = EncodeErrorFrame(Status::Unavailable(
          StrCat("session limit of ", options_.max_sessions, " reached")));
      SendFrame(fd, err);
      ::close(fd);
      continue;
    }
    session_threads_.emplace_back(
        [this, session = std::move(session)] { ServeSession(session); });
  }
}

void NetServer::ServeSession(std::shared_ptr<Session> session) {
  const int fd = session->fd.load(std::memory_order_relaxed);
  for (;;) {
    Result<std::string> payload = RecvFrame(fd, options_.max_frame_bytes);
    if (!payload.ok()) break;  // disconnect, shutdown, or oversized frame
    std::string response = HandleRequest(session.get(), *payload);
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.bytes_received += payload->size();
      counters_.bytes_sent += response.size();
    }
    if (!SendFrame(fd, response).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --counters_.sessions_active;
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
  }
  ::close(fd);
  session->fd.store(-1, std::memory_order_relaxed);
}

std::string NetServer::HandleRequest(Session* session, const std::string& payload) {
  ByteReader reader(payload);
  Result<uint8_t> type = reader.ReadU8();
  if (!type.ok()) return ErrorResponse(type.status());
  NetMessage msg = static_cast<NetMessage>(*type);
  if (!session->hello_done && msg != NetMessage::kHello) {
    return ErrorResponse(
        Status::InvalidArgument("first frame of a session must be kHello"));
  }
  switch (msg) {
    case NetMessage::kHello: {
      Result<uint8_t> prio = reader.ReadU8();
      if (!prio.ok()) return ErrorResponse(prio.status());
      if (*prio > static_cast<uint8_t>(QueryPriority::kHigh)) {
        return ErrorResponse(
            Status::InvalidArgument(StrCat("bad priority ", *prio)));
      }
      session->priority = static_cast<QueryPriority>(*prio);
      session->hello_done = true;
      std::string out;
      PutU8(&out, static_cast<uint8_t>(NetMessage::kHelloOk));
      PutU64(&out, session->id);
      return out;
    }
    case NetMessage::kQuery:
      return HandleQuery(session, payload);
    case NetMessage::kFetch:
      return HandleFetch(session, payload);
    case NetMessage::kClose:
      return HandleClose(session, payload);
    default:
      return ErrorResponse(Status::InvalidArgument(
          StrCat("unexpected message type ", *type)));
  }
}

std::string NetServer::HandleQuery(Session* session, const std::string& payload) {
  auto received_at = std::chrono::steady_clock::now();
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<double> alpha = reader.ReadF64();
  if (!alpha.ok()) return ErrorResponse(alpha.status());
  Result<uint32_t> page_rows = reader.ReadU32();
  if (!page_rows.ok()) return ErrorResponse(page_rows.status());
  Result<int64_t> deadline_ms = reader.ReadI64();
  if (!deadline_ms.ok()) return ErrorResponse(deadline_ms.status());
  Result<std::string> sql = reader.ReadString();
  if (!sql.ok()) return ErrorResponse(sql.status());

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.queries;
  }
  // The auth-style session quota: queries beyond it bounce with
  // Unavailable; existing cursors keep streaming.
  if (options_.session_query_quota > 0 &&
      session->queries_used >= options_.session_query_quota) {
    {
      // Released before ErrorResponse re-acquires mu_ for its counter.
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.quota_rejections;
    }
    return ErrorResponse(Status::Unavailable(
        StrCat("session quota of ", options_.session_query_quota,
               " queries exhausted")));
  }
  if (session->cursors.size() >= options_.max_cursors_per_session) {
    return ErrorResponse(Status::Unavailable(
        StrCat("cursor limit of ", options_.max_cursors_per_session,
               " reached; fetch or close an open cursor")));
  }
  ++session->queries_used;

  SubmitOptions submit;
  submit.priority = session->priority;
  const bool has_deadline = *deadline_ms > 0;
  if (has_deadline) {
    submit.deadline = received_at + std::chrono::milliseconds(*deadline_ms);
  }
  Result<QueryTicket> ticket = service_->SubmitSql(*sql, *alpha, submit);
  if (!ticket.ok()) {
    RecordRequestLatency(
        MsBetween(received_at, std::chrono::steady_clock::now()));
    return ErrorResponse(ticket.status());
  }
  Result<ServiceAnswer> answer = Status::Internal("query did not run");
  if (has_deadline) {
    // The engine cancels at the next morsel boundary after the deadline,
    // so the ticket resolves within one morsel of it; wait_slack covers
    // that lag. The blocking Wait is a backstop (e.g. a long queue wait
    // ahead of a fast-failing expired query), not the expected path —
    // either way the ticket is always redeemed, never leaked.
    answer = service_->WaitFor(
        *ticket, std::chrono::milliseconds(*deadline_ms) + options_.wait_slack);
    if (!answer.ok() &&
        answer.status().code() == StatusCode::kDeadlineExceeded) {
      // Ambiguous: either the wait timed out (ticket still pending) or
      // the query itself finished kDeadlineExceeded (ticket consumed).
      // Redeem the pending case with a blocking Wait; NotFound here
      // means WaitFor already delivered the query's own outcome, which
      // must not be clobbered.
      Result<ServiceAnswer> redeemed = service_->Wait(*ticket);
      if (redeemed.status().code() != StatusCode::kNotFound) {
        answer = std::move(redeemed);
      }
    }
  } else {
    answer = service_->Wait(*ticket);
  }
  double latency_ms = MsBetween(received_at, std::chrono::steady_clock::now());
  RecordRequestLatency(latency_ms);
  if (!answer.ok()) {
    if (answer.status().code() == StatusCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_exceeded;
    }
    return ErrorResponse(answer.status());
  }

  Cursor cursor;
  cursor.answer = std::move(*answer);
  cursor.page_rows = *page_rows == 0
                         ? options_.default_page_rows
                         : std::min(*page_rows, options_.max_page_rows);
  uint64_t cursor_id = session->next_cursor_id++;
  const ServiceAnswer& sa = cursor.answer;

  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kQueryOk));
  PutU64(&out, cursor_id);
  PutU64(&out, sa.answer.table.size());
  PutF64(&out, sa.answer.eta);
  PutF64(&out, sa.answer.d_prime);
  PutU64(&out, sa.answer.accessed);
  PutU8(&out, sa.answer.exact ? 1 : 0);
  PutU64(&out, sa.epoch);
  PutF64(&out, sa.latency_ms);
  PutSchema(&out, sa.answer.table.schema());
  session->cursors.emplace(cursor_id, std::move(cursor));
  return out;
}

std::string NetServer::HandleFetch(Session* session, const std::string& payload) {
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<uint64_t> cursor_id = reader.ReadU64();
  if (!cursor_id.ok()) return ErrorResponse(cursor_id.status());
  auto it = session->cursors.find(*cursor_id);
  if (it == session->cursors.end()) {
    return ErrorResponse(
        Status::NotFound(StrCat("unknown or exhausted cursor ", *cursor_id)));
  }
  Cursor& cursor = it->second;
  const Table& table = cursor.answer.answer.table;
  size_t n = std::min<size_t>(cursor.page_rows, table.size() - cursor.next_row);
  bool done = cursor.next_row + n >= table.size();

  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kPage));
  PutU64(&out, *cursor_id);
  PutU8(&out, done ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) PutTuple(&out, table.row(cursor.next_row + i));
  cursor.next_row += n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.pages_sent;
    counters_.rows_sent += n;
  }
  // A drained cursor releases its materialized answer immediately; the
  // final page carries the `done` flag so the client knows not to ask
  // again.
  if (done) session->cursors.erase(it);
  return out;
}

std::string NetServer::HandleClose(Session* session, const std::string& payload) {
  ByteReader reader(payload.data() + 1, payload.size() - 1);
  Result<uint64_t> cursor_id = reader.ReadU64();
  if (!cursor_id.ok()) return ErrorResponse(cursor_id.status());
  if (session->cursors.erase(*cursor_id) == 0) {
    return ErrorResponse(
        Status::NotFound(StrCat("unknown or exhausted cursor ", *cursor_id)));
  }
  std::string out;
  PutU8(&out, static_cast<uint8_t>(NetMessage::kClosed));
  PutU64(&out, *cursor_id);
  return out;
}

std::string NetServer::ErrorResponse(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.errors_sent;
  return EncodeErrorFrame(st);
}

void NetServer::RecordRequestLatency(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  ++latency_count_;
}

NetStats NetServer::stats() const {
  NetStats out;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(latency_count_, latency_ring_.size()));
    window.assign(latency_ring_.begin(), latency_ring_.begin() + n);
  }
  if (!window.empty()) {
    out.request_p50_ms = NearestRankPercentile(window, 0.50);
    out.request_p95_ms = NearestRankPercentile(std::move(window), 0.95);
  }
  out.service = service_->stats();
  return out;
}

}  // namespace beas
