// The TCP front-end of the query service: NetServer accepts sessions on
// a listening socket, speaks the length-prefixed protocol of
// net/protocol.h, and serves each connection from its own thread. Every
// session carries an id, an admission priority, and an auth-style query
// quota; answers stream: a cursor wraps a StreamingTicket whose pages
// become available as the engine commits morsels, so the first page
// ships while evaluation is still running and server residency stays
// bounded by the ticket's page queue instead of the answer size.
// Per-query deadlines propagate into the engine
// (QueryContext::eval.deadline), so an expired caller cancels in-flight
// fetch/eval work at the next morsel boundary instead of holding a
// worker hostage. See docs/ARCHITECTURE.md "Network front-end" and
// "Streaming answer pipeline".

#ifndef BEAS_NET_SERVER_H_
#define BEAS_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "service/query_service.h"
#include "types/column_chunk.h"

namespace beas {

/// Configuration of a NetServer.
struct NetServerOptions {
  /// Listen address. The default binds loopback only — the front-end has
  /// no transport security, so exposing it beyond the host is opt-in.
  std::string host = "127.0.0.1";
  /// Listen port; 0 (the default) picks an ephemeral port, readable via
  /// NetServer::port() after Start().
  uint16_t port = 0;
  /// Concurrent session cap; further connects are refused with an error
  /// frame. Each session holds a thread, so this bounds the front-end's
  /// thread count.
  size_t max_sessions = 64;
  /// Queries admitted per session before kUnavailable rejections (the
  /// auth-style quota; fetches on existing cursors stay allowed). 0 (the
  /// default) means unlimited.
  uint64_t session_query_quota = 0;
  /// Open cursors allowed per session; a query beyond it is rejected
  /// until the client drains or closes one.
  size_t max_cursors_per_session = 32;
  /// Rows per kPage frame when the client's kQuery asks for 0. Defaults
  /// to the engine's ColumnChunk window so one page matches one
  /// vectorized execution window.
  uint32_t default_page_rows = static_cast<uint32_t>(kDefaultChunkCapacity);
  /// Hard cap a client page request is clamped to.
  uint32_t max_page_rows = 65536;
  /// Incoming frames above this are rejected as DataLoss (a query frame
  /// only carries SQL text, so the default is generous).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Pages a cursor's stream may buffer ahead of the client (the
  /// StreamOptions::max_queued_pages backpressure bound): peak cursor
  /// residency is O(page_rows * (cursor_queue_pages + 1)) per stream —
  /// queued pages plus the producer's in-hand page — however large the
  /// answer. Clamped to >= 2 (the cursor holds one page back to mark the
  /// last one deterministically).
  size_t cursor_queue_pages = 4;
  /// Obsolete: request p50/p95 now derive from the registry's
  /// unwindowed request-latency histogram. Kept so existing
  /// configurations still compile; has no effect.
  size_t latency_window = 512;
  /// Registry the front-end records into (request latency, ttfp, page
  /// serve histograms) and kStatsRequest exposes. Non-owning; null (the
  /// default) uses the QueryService's registry, so one kStats frame
  /// shows the whole serving stack.
  MetricsRegistry* metrics = nullptr;
};

/// Front-end counters; snapshot via NetServer::stats(). The embedded
/// ServiceStats snapshot folds the per-session/request telemetry into
/// the service-level view, so one stats() call shows the whole serving
/// stack.
struct NetStats {
  uint64_t sessions_opened = 0;   ///< accepted sessions, lifetime
  uint64_t sessions_active = 0;   ///< currently connected (instantaneous)
  uint64_t sessions_refused = 0;  ///< bounced off max_sessions
  uint64_t queries = 0;           ///< kQuery frames received
  uint64_t pages_sent = 0;        ///< kPage frames sent
  uint64_t rows_sent = 0;         ///< tuples streamed in pages
  uint64_t bytes_sent = 0;        ///< payload bytes sent (all frames)
  uint64_t bytes_received = 0;    ///< payload bytes received
  uint64_t quota_rejections = 0;  ///< queries bounced off the session quota
  uint64_t deadline_exceeded = 0; ///< queries answered kDeadlineExceeded
  uint64_t errors_sent = 0;       ///< kError frames sent
  /// Bytes currently buffered in cursor page queues across all sessions;
  /// incremented as the engine commits pages, decremented as kFetch
  /// drains (or a cancel/failure drops) them. Bounded per cursor by
  /// page_rows * cursor_queue_pages, never by the answer size.
  uint64_t cursor_resident_bytes = 0;
  uint64_t cursor_resident_peak_bytes = 0;  ///< lifetime peak of the above
  /// Largest peak any single session's cursors reached, lifetime.
  uint64_t session_peak_resident_bytes = 0;
  /// Request latency is kQuery receipt -> kQueryOk ready (time-to-schema
  /// for a streaming cursor, not time-to-completion); derived from the
  /// shared registry histogram, so stats() and kStats agree.
  double request_p50_ms = 0;
  double request_p95_ms = 0;
  ServiceStats service;           ///< service snapshot at stats() time
};

/// \brief A TCP server exposing one QueryService.
///
/// Start() binds, listens, and spawns the accept loop; every accepted
/// connection is served by a dedicated thread until the peer disconnects
/// or Stop() shuts the socket down. Stop() (idempotent, also run by the
/// destructor) joins every session thread, so after it returns no
/// server thread touches the QueryService. The service must outlive the
/// server.
class NetServer {
 public:
  explicit NetServer(QueryService* service, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and starts accepting. Fails if the address is unavailable.
  Status Start();

  /// Shuts the listener and every session socket down and joins all
  /// server threads. Idempotent.
  void Stop();

  /// The bound port (the chosen one when options.port was 0). Only valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  /// Snapshot of the front-end counters plus the service's stats.
  /// Coherent: the front-end counters and the residency gauges are read
  /// under one combined lock acquisition, never interleaved with
  /// updates.
  NetStats stats() const;

  /// The registry the front-end records into (NetServerOptions::metrics,
  /// or the service's). Histograms: beas_net_request_us,
  /// beas_net_ttfp_us, beas_net_page_serve_us.
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Session;
  struct ResidentAccounting;
  struct SessionResident;

  void AcceptLoop();
  void ServeSession(std::shared_ptr<Session> session);
  /// Dispatches one decoded request frame; returns the response payload.
  std::string HandleRequest(Session* session, const std::string& payload);
  std::string HandleQuery(Session* session, const std::string& payload);
  std::string HandleFetch(Session* session, const std::string& payload);
  std::string HandleClose(Session* session, const std::string& payload);
  std::string HandleStats();
  std::string ErrorResponse(const Status& st);
  void RecordRequestLatency(double ms);
  /// Publishes the front-end's instantaneous counters as registry
  /// gauges (sessions, residency), so expositions carry them.
  void PublishGauges() const;

  QueryService* service_;  ///< non-owning; must outlive the server
  NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  /// Resolved registry (options_.metrics, else the service's) and the
  /// front-end's pre-resolved instruments.
  MetricsRegistry* metrics_ = nullptr;
  Histogram* request_hist_ = nullptr;     ///< kQuery -> kQueryOk, microseconds
  Histogram* ttfp_hist_ = nullptr;        ///< cursor open -> first page served
  Histogram* page_serve_hist_ = nullptr;  ///< kFetch receipt -> page ready

  mutable std::mutex mu_;
  NetStats counters_;                ///< request p50/p95 fields unused here
  /// Cursor-residency counters, shared (by shared_ptr) with every
  /// stream's on_resident_delta hook so a worker finishing a stream
  /// after the server is gone still has somewhere safe to write.
  std::shared_ptr<ResidentAccounting> resident_;
  uint64_t next_session_id_ = 1;
  std::vector<std::shared_ptr<Session>> sessions_;  ///< for Stop() shutdown
  std::thread accept_thread_;
  std::vector<std::thread> session_threads_;
};

}  // namespace beas

#endif  // BEAS_NET_SERVER_H_
