// Wire protocol of the BEAS network front-end: length-prefixed binary
// frames over a TCP stream, encoded with the storage codec (little-endian
// fixed-width integers, bit-exact doubles, length-prefixed strings and
// tagged tuples — storage/codec.h), so every payload is a byte-
// deterministic function of its contents. One frame = u32 payload length
// + payload; a payload = one message-type byte + the message body. The
// full frame layout per message is documented in docs/ARCHITECTURE.md
// ("Network front-end").

#ifndef BEAS_NET_PROTOCOL_H_
#define BEAS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/trace.h"
#include "types/schema.h"

namespace beas {

/// Message types carried in the first payload byte of every frame.
enum class NetMessage : uint8_t {
  /// client -> server, once per connection: u8 priority (0 normal, 1
  /// high). Must be the first frame of a session.
  kHello = 1,
  /// server -> client: u64 session_id. Acknowledges kHello.
  kHelloOk = 2,
  /// client -> server: f64 alpha, u32 page_rows (0 = server default),
  /// i64 deadline_ms (0 = none, relative to receipt), u8 trace (1 =
  /// collect span timings; the done page's trailer then carries the
  /// trace block — wire-level EXPLAIN ANALYZE), string sql.
  kQuery = 3,
  /// server -> client: u64 cursor_id, u32 arity, then per attribute
  /// {string name, u8 DataType}. Sent as soon as the query's output
  /// schema is known (evaluation still running): rows stream via kFetch
  /// as the engine commits them, and the answer's scalar observables
  /// ride the final page's trailer.
  kQueryOk = 4,
  /// client -> server: u64 cursor_id. Requests the next page (blocks
  /// server-side until the stream has committed one).
  kFetch = 5,
  /// server -> client: u64 cursor_id, u8 done, u32 nrows, then nrows
  /// codec-encoded tuples. `done` means the cursor is exhausted and has
  /// been released server-side (no kClose needed); a done page appends
  /// the answer trailer {u64 total_rows, f64 eta, f64 d_prime,
  /// u64 accessed, u8 exact, u64 epoch, f64 latency_ms, u8 has_trace}
  /// and, when has_trace is 1, the trace block (PutTrace below). A query
  /// that fails mid-stream (OutOfBudget, deadline) answers a kFetch with
  /// kError instead, after delivering every page committed before the
  /// failure point was reached.
  kPage = 6,
  /// client -> server: u64 cursor_id. Releases an unfinished cursor.
  kClose = 7,
  /// server -> client: u64 cursor_id. Acknowledges kClose.
  kClosed = 8,
  /// server -> client: u8 StatusCode, string message. Any request may be
  /// answered with an error frame; the session stays usable.
  kError = 9,
  /// client -> server: no body. Requests the server's metrics registry.
  kStatsRequest = 10,
  /// server -> client: string json, string text — the registry's JSON
  /// and Prometheus-style text expositions (common/metrics.h), taken at
  /// the same instant. Answers kStatsRequest.
  kStats = 11,
};

/// Hard cap on a single frame's payload (default NetServerOptions value;
/// both sides reject bigger frames as DataLoss rather than allocating).
constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Writes one frame (u32 length prefix + \p payload) to \p fd, looping
/// over partial writes. Fails with Unavailable when the peer is gone.
Status SendFrame(int fd, const std::string& payload);

/// Reads one complete frame payload from \p fd. Fails with Unavailable
/// on a cleanly closed or broken connection and DataLoss on a frame
/// bigger than \p max_frame_bytes.
Result<std::string> RecvFrame(int fd, uint32_t max_frame_bytes);

/// Convenience: encodes an error frame for \p st (non-OK).
std::string EncodeErrorFrame(const Status& st);

/// Decodes the StatusCode byte of an error frame body back into a
/// Status; out-of-range codes collapse to Internal.
Status DecodeErrorFrame(uint8_t code, std::string message);

/// Appends {string name, u8 type} per attribute (after a u32 arity) —
/// the schema block of kQueryOk. Distance specs are not carried: a
/// cursor only streams materialized rows, it never re-evaluates
/// predicates client-side.
void PutSchema(std::string* dst, const RelationSchema& schema);

/// Appends the trace block of a done page: u32 nspans, per span {string
/// name, u64 start_us, u64 dur_us}, then u32 nattrs, per attribute
/// {string key, i64 value}. Spans ship in recording order; attributes in
/// the trace's (sorted) map order, so equal traces encode identically.
void PutTrace(std::string* dst, const QueryTrace& trace);

}  // namespace beas

#endif  // BEAS_NET_PROTOCOL_H_
