#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "storage/codec.h"

namespace beas {

namespace {

// The client accepts frames up to the protocol default; a page of
// max_page_rows wide tuples stays far below it.
constexpr uint32_t kClientMaxFrameBytes = kDefaultMaxFrameBytes;

Result<RelationSchema> ReadSchema(ByteReader* reader) {
  BEAS_ASSIGN_OR_RETURN(uint32_t arity, reader->ReadU32());
  std::vector<AttributeDef> attrs;
  attrs.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    BEAS_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    BEAS_ASSIGN_OR_RETURN(uint8_t type, reader->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::DataLoss(StrCat("bad attribute type tag ", type));
    }
    attrs.emplace_back(std::move(name), static_cast<DataType>(type));
  }
  return RelationSchema("answer", std::move(attrs));
}

}  // namespace

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(other.fd_), session_id_(other.session_id_) {
  other.fd_ = -1;
}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    session_id_ = other.session_id_;
    other.fd_ = -1;
  }
  return *this;
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     QueryPriority priority) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(StrCat("socket failed: ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad server address ", host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable(StrCat("connect to ", host, ":", port,
                                           " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  // Request/response framing: never let Nagle batch a frame against the
  // peer's delayed ACK.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NetClient client;
  client.fd_ = fd;
  std::string hello;
  PutU8(&hello, static_cast<uint8_t>(NetMessage::kHello));
  PutU8(&hello, static_cast<uint8_t>(priority));
  BEAS_ASSIGN_OR_RETURN(std::string response, client.RoundTrip(hello));
  ByteReader reader(response.data() + 1, response.size() - 1);
  if (static_cast<NetMessage>(response[0]) != NetMessage::kHelloOk) {
    return Status::Internal("handshake: unexpected response type");
  }
  BEAS_ASSIGN_OR_RETURN(client.session_id_, reader.ReadU64());
  return client;
}

Result<std::string> NetClient::RoundTrip(const std::string& request) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  Status sent = SendFrame(fd_, request);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  Result<std::string> response = RecvFrame(fd_, kClientMaxFrameBytes);
  if (!response.ok()) {
    Close();
    return response.status();
  }
  if (response->empty()) {
    Close();
    return Status::DataLoss("empty response frame");
  }
  // A server-reported error frame translates back into its Status; the
  // connection stays healthy (the server keeps serving the session).
  if (static_cast<NetMessage>((*response)[0]) == NetMessage::kError) {
    ByteReader reader(response->data() + 1, response->size() - 1);
    BEAS_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
    BEAS_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
    return DecodeErrorFrame(code, std::move(message));
  }
  return response;
}

Result<RemoteCursor> NetClient::Query(const std::string& sql, double alpha,
                                      const QueryOptions& opts) {
  std::string request;
  PutU8(&request, static_cast<uint8_t>(NetMessage::kQuery));
  PutF64(&request, alpha);
  PutU32(&request, opts.page_rows);
  PutI64(&request, opts.deadline.count());
  PutU8(&request, opts.trace ? 1 : 0);
  PutString(&request, sql);
  BEAS_ASSIGN_OR_RETURN(std::string response, RoundTrip(request));
  if (static_cast<NetMessage>(response[0]) != NetMessage::kQueryOk) {
    return Status::Internal("query: unexpected response type");
  }
  ByteReader reader(response.data() + 1, response.size() - 1);
  RemoteCursor cursor;
  BEAS_ASSIGN_OR_RETURN(cursor.id, reader.ReadU64());
  BEAS_ASSIGN_OR_RETURN(cursor.schema, ReadSchema(&reader));
  return cursor;
}

Result<RemotePage> NetClient::Fetch(uint64_t cursor_id) {
  std::string request;
  PutU8(&request, static_cast<uint8_t>(NetMessage::kFetch));
  PutU64(&request, cursor_id);
  BEAS_ASSIGN_OR_RETURN(std::string response, RoundTrip(request));
  if (static_cast<NetMessage>(response[0]) != NetMessage::kPage) {
    return Status::Internal("fetch: unexpected response type");
  }
  ByteReader reader(response.data() + 1, response.size() - 1);
  BEAS_ASSIGN_OR_RETURN(uint64_t id, reader.ReadU64());
  if (id != cursor_id) {
    return Status::Internal(
        StrCat("fetch: page for cursor ", id, ", expected ", cursor_id));
  }
  RemotePage page;
  BEAS_ASSIGN_OR_RETURN(uint8_t done, reader.ReadU8());
  page.done = done != 0;
  BEAS_ASSIGN_OR_RETURN(uint32_t nrows, reader.ReadU32());
  page.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    BEAS_ASSIGN_OR_RETURN(Tuple row, reader.ReadTuple());
    page.rows.push_back(std::move(row));
  }
  if (page.done) {
    BEAS_ASSIGN_OR_RETURN(page.total_rows, reader.ReadU64());
    BEAS_ASSIGN_OR_RETURN(page.eta, reader.ReadF64());
    BEAS_ASSIGN_OR_RETURN(page.d_prime, reader.ReadF64());
    BEAS_ASSIGN_OR_RETURN(page.accessed, reader.ReadU64());
    BEAS_ASSIGN_OR_RETURN(uint8_t exact, reader.ReadU8());
    page.exact = exact != 0;
    BEAS_ASSIGN_OR_RETURN(page.epoch, reader.ReadU64());
    BEAS_ASSIGN_OR_RETURN(page.latency_ms, reader.ReadF64());
    BEAS_ASSIGN_OR_RETURN(uint8_t has_trace, reader.ReadU8());
    page.has_trace = has_trace != 0;
    if (page.has_trace) {
      BEAS_ASSIGN_OR_RETURN(uint32_t nspans, reader.ReadU32());
      page.trace_spans.reserve(nspans);
      for (uint32_t i = 0; i < nspans; ++i) {
        TraceSpan span;
        BEAS_ASSIGN_OR_RETURN(span.name, reader.ReadString());
        BEAS_ASSIGN_OR_RETURN(span.start_us, reader.ReadU64());
        BEAS_ASSIGN_OR_RETURN(span.dur_us, reader.ReadU64());
        page.trace_spans.push_back(std::move(span));
      }
      BEAS_ASSIGN_OR_RETURN(uint32_t nattrs, reader.ReadU32());
      page.trace_attrs.reserve(nattrs);
      for (uint32_t i = 0; i < nattrs; ++i) {
        BEAS_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
        BEAS_ASSIGN_OR_RETURN(int64_t value, reader.ReadI64());
        page.trace_attrs.emplace_back(std::move(key), value);
      }
    }
  }
  return page;
}

Result<RemoteStats> NetClient::Stats() {
  std::string request;
  PutU8(&request, static_cast<uint8_t>(NetMessage::kStatsRequest));
  BEAS_ASSIGN_OR_RETURN(std::string response, RoundTrip(request));
  if (static_cast<NetMessage>(response[0]) != NetMessage::kStats) {
    return Status::Internal("stats: unexpected response type");
  }
  ByteReader reader(response.data() + 1, response.size() - 1);
  RemoteStats stats;
  BEAS_ASSIGN_OR_RETURN(stats.json, reader.ReadString());
  BEAS_ASSIGN_OR_RETURN(stats.text, reader.ReadString());
  return stats;
}

Status NetClient::CloseCursor(uint64_t cursor_id) {
  std::string request;
  PutU8(&request, static_cast<uint8_t>(NetMessage::kClose));
  PutU64(&request, cursor_id);
  BEAS_ASSIGN_OR_RETURN(std::string response, RoundTrip(request));
  if (static_cast<NetMessage>(response[0]) != NetMessage::kClosed) {
    return Status::Internal("close: unexpected response type");
  }
  return Status::OK();
}

Result<RemoteAnswer> NetClient::QueryAll(const std::string& sql, double alpha,
                                         const QueryOptions& opts) {
  BEAS_ASSIGN_OR_RETURN(RemoteCursor cursor, Query(sql, alpha, opts));
  RemoteAnswer out;
  out.table = Table(cursor.schema);
  // An empty answer still takes one Fetch: the cursor only releases
  // server-side once a done page has been served. The scalar fields fill
  // from the done page's trailer — the row total is only known once the
  // stream finished.
  uint64_t announced = 0;
  for (;;) {
    BEAS_ASSIGN_OR_RETURN(RemotePage page, Fetch(cursor.id));
    ++out.pages;
    for (Tuple& row : page.rows) out.table.AppendUnchecked(std::move(row));
    if (page.done) {
      announced = page.total_rows;
      out.eta = page.eta;
      out.d_prime = page.d_prime;
      out.accessed = page.accessed;
      out.exact = page.exact;
      out.epoch = page.epoch;
      out.latency_ms = page.latency_ms;
      out.has_trace = page.has_trace;
      out.trace_spans = std::move(page.trace_spans);
      out.trace_attrs = std::move(page.trace_attrs);
      break;
    }
  }
  if (out.table.size() != announced) {
    return Status::DataLoss(StrCat("cursor ", cursor.id, " streamed ",
                                   out.table.size(), " rows, trailer announced ",
                                   announced));
  }
  return out;
}

}  // namespace beas
