#include "net/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "storage/codec.h"

// macOS has no MSG_NOSIGNAL; SIGPIPE suppression there would go through
// SO_NOSIGPIPE. The flag only suppresses a signal we handle as an error
// return anyway.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace beas {

namespace {

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrCat("send failed: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return Status::Unavailable("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrCat("recv failed: ", std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const std::string& payload) {
  // One send per frame: a separate header send leaves a tiny trailing
  // segment for Nagle to hold back against the peer's delayed ACK,
  // which turns every request/response into a ~40-200ms stall on
  // loopback (the copy is cheap next to that).
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return SendAll(fd, frame.data(), frame.size());
}

Result<std::string> RecvFrame(int fd, uint32_t max_frame_bytes) {
  char header[4];
  BEAS_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header)));
  ByteReader reader(header, sizeof(header));
  BEAS_ASSIGN_OR_RETURN(uint32_t len, reader.ReadU32());
  if (len > max_frame_bytes) {
    return Status::DataLoss(
        StrCat("frame of ", len, " bytes exceeds the ", max_frame_bytes,
               "-byte cap"));
  }
  std::string payload(len, '\0');
  if (len > 0) BEAS_RETURN_IF_ERROR(RecvAll(fd, &payload[0], len));
  return payload;
}

std::string EncodeErrorFrame(const Status& st) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(NetMessage::kError));
  PutU8(&payload, static_cast<uint8_t>(st.code()));
  PutString(&payload, st.message());
  return payload;
}

Status DecodeErrorFrame(uint8_t code, std::string message) {
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal(
        StrCat("error frame with invalid status code ", code, ": ", message));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

void PutSchema(std::string* dst, const RelationSchema& schema) {
  PutU32(dst, static_cast<uint32_t>(schema.arity()));
  for (const AttributeDef& attr : schema.attributes()) {
    PutString(dst, attr.name);
    PutU8(dst, static_cast<uint8_t>(attr.type));
  }
}

void PutTrace(std::string* dst, const QueryTrace& trace) {
  const std::vector<TraceSpan> spans = trace.spans();
  PutU32(dst, static_cast<uint32_t>(spans.size()));
  for (const TraceSpan& span : spans) {
    PutString(dst, span.name);
    PutU64(dst, span.start_us);
    PutU64(dst, span.dur_us);
  }
  const std::map<std::string, int64_t> attrs = trace.attrs();
  PutU32(dst, static_cast<uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    PutString(dst, key);
    PutI64(dst, value);
  }
}

}  // namespace beas
