// Sharded LRU block cache with a hard byte budget: the bounded-memory
// read path of the disk-backed index tier. Caches raw block bytes keyed
// by block index; entries are handed out as shared_ptrs, so an evicted
// block stays alive for readers that already hold it (no dangling reads
// under eviction). Capacity 0 degenerates to pure read-through, as does
// any block larger than a shard's budget — the budget is a ceiling, never
// a target the cache is allowed to overshoot.

#ifndef BEAS_INDEX_BLOCK_CACHE_H_
#define BEAS_INDEX_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace beas {

/// Per-query block-cache observables, threaded from the executor's fetch
/// paths through the query's AccessMeter (like the access counter itself).
/// Atomic: the parallel fetch scheduler bumps them from worker threads.
struct CacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};

  void Reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
  }
};

/// Store-wide cache counters; snapshot via BlockCache::stats() (all zero
/// for the in-memory backend, which has no cache).
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;   ///< bytes currently cached (<= capacity)
  uint64_t capacity_bytes = 0;   ///< the hard budget (0 = read-through)
};

/// \brief Sharded LRU cache over block bytes.
///
/// Thread-safe: Get may be called from any number of fetch threads; each
/// shard is guarded by its own mutex and the loader runs outside it (two
/// racing misses on one block may both load; the winner's copy is cached).
/// Invalidate* requires no external exclusion but is only called under
/// the store's drain-then-mutate protocol anyway.
class BlockCache {
 public:
  using Loader = std::function<Result<std::string>(uint64_t)>;

  BlockCache(uint64_t capacity_bytes, size_t shards);

  /// Returns block \p index, loading it via \p loader on a miss. Counts
  /// the hit/miss into \p counters when non-null (and always into the
  /// store-wide stats).
  Result<std::shared_ptr<const std::string>> Get(uint64_t index, const Loader& loader,
                                                 CacheCounters* counters);

  /// Drops every cached block with index >= \p first_block (mutations are
  /// append-only, so only tail blocks can change content).
  void InvalidateFrom(uint64_t first_block);

  /// Drops everything.
  void Clear();

  BlockCacheStats stats() const;

  uint64_t capacity_bytes() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<uint64_t> lru;
    struct Entry {
      std::shared_ptr<const std::string> data;
      std::list<uint64_t>::iterator pos;
      uint64_t charge = 0;
    };
    std::unordered_map<uint64_t, Entry> map;
    uint64_t bytes = 0;
  };

  Shard& ShardFor(uint64_t index) { return shards_[index % shards_.size()]; }

  uint64_t capacity_ = 0;
  uint64_t shard_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace beas

#endif  // BEAS_INDEX_BLOCK_CACHE_H_
