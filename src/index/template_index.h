// Physical index of one access-template family R(X -> Y, 2^k, d_k):
// a K-D tree per X-group over the group's Y-values (paper Section 4.1).

#ifndef BEAS_INDEX_TEMPLATE_INDEX_H_
#define BEAS_INDEX_TEMPLATE_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/kd_tree.h"
#include "storage/table.h"

namespace beas {

/// One representative returned by a fetch: the Y-tuple and the number of
/// base tuples it stands for (occurrence counts, paper Section 7).
struct FetchEntry {
  const Tuple* y = nullptr;
  int64_t count = 0;
};

/// Keep-alive handles for fetched entries. Backends that materialize
/// groups on demand (the block-file backend decodes them out of cached
/// blocks) hand the decoded storage back as pins: the FetchEntry pointers
/// of a fetch stay valid exactly as long as its pins are held, even if
/// the cache evicts the underlying blocks meanwhile. The in-memory
/// backend's entries point into the store itself and add no pins.
using FetchPin = std::shared_ptr<const void>;
using FetchPins = std::vector<FetchPin>;

/// Recomputes a template family's level metadata — max_level, per-level
/// resolutions d_k and fanout — from its per-group K-D trees. Every
/// aggregate is an order-independent max, so any backend iterating its
/// groups in any order lands on identical metadata (the block-file
/// backend relies on this after incremental maintenance).
void RefreshFamilyLevels(const std::vector<const KdTree*>& trees, size_t y_arity,
                         BoundFamily* family);

/// \brief Index for one template family over one relation instance.
///
/// Build() groups the table by the X-attributes and builds a K-D tree per
/// group over the Y-projections; level metadata (resolutions d_k, maximum
/// fanout) is computed across groups so that a single BoundFamily entry
/// describes every group, as the access-schema formalism requires.
class TemplateIndex {
 public:
  /// Builds the index for \p spec over \p table and returns the bound
  /// family metadata for the access schema.
  Result<BoundFamily> Build(const FamilySpec& spec, const Table& table);

  /// Appends the level-\p level representatives for X-value \p xkey to
  /// \p out; an unknown X-value yields no entries (D_Y(X=a) is empty).
  void Fetch(const Tuple& xkey, int level, std::vector<FetchEntry>* out) const;

  /// Number of representatives a fetch at (\p xkey, \p level) returns.
  size_t FetchSize(const Tuple& xkey, int level) const;

  /// Total number of stored index entries (tree nodes), the unit of the
  /// index-size accounting in Fig 6(k).
  size_t TotalEntries() const;

  /// Re-inserts \p row (a full tuple of the base relation) into the index
  /// (incremental maintenance, paper Fig 2 component C2). Rebuilds the
  /// affected group and refreshes the family metadata in \p family.
  Status ApplyInsert(const Tuple& row, BoundFamily* family);

  /// Removes one occurrence of \p row; NotFound if absent.
  Status ApplyRemove(const Tuple& row, BoundFamily* family);

  int max_level() const { return max_level_; }

  /// Structural accessors for the block-file backend, which serializes
  /// the freshly built in-memory structures block by block.
  const std::vector<size_t>& x_idx() const { return x_idx_; }
  const std::vector<size_t>& y_idx() const { return y_idx_; }
  const std::vector<AttributeDef>& y_attrs() const { return y_attrs_; }
  const std::unordered_map<Tuple, KdTree, TupleHasher>& groups() const { return groups_; }
  const std::unordered_map<Tuple, std::vector<Tuple>, TupleHasher>& group_rows() const {
    return group_rows_;
  }

 private:
  Status RefreshMetadata(BoundFamily* family);

  std::vector<size_t> x_idx_;  // attribute positions of X in the base schema
  std::vector<size_t> y_idx_;  // attribute positions of Y
  std::vector<AttributeDef> y_attrs_;
  std::unordered_map<Tuple, KdTree, TupleHasher> groups_;
  // Raw Y-bags per group, kept for incremental rebuilds.
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHasher> group_rows_;
  int max_level_ = 0;
};

}  // namespace beas

#endif  // BEAS_INDEX_TEMPLATE_INDEX_H_
