// IndexStore: all physical access-schema indices of a database, with
// metered fetches that enforce the resource budget alpha * |D|.

#ifndef BEAS_INDEX_INDEX_STORE_H_
#define BEAS_INDEX_INDEX_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/template_index.h"
#include "storage/database.h"

namespace beas {

/// \brief Counts every tuple that crosses the index boundary and enforces
/// an optional budget B = alpha * |D| (paper Section 4).
class AccessMeter {
 public:
  /// Resets the counter and sets the budget; 0 disables enforcement.
  void StartQuery(uint64_t budget) {
    budget_ = budget;
    accessed_ = 0;
  }

  /// Charges \p n fetched tuples; OutOfBudget once the total exceeds the
  /// budget (when enforcement is enabled).
  Status Charge(uint64_t n);

  /// Tuples fetched since StartQuery.
  uint64_t accessed() const { return accessed_; }
  uint64_t budget() const { return budget_; }

 private:
  uint64_t budget_ = 0;
  uint64_t accessed_ = 0;
};

/// \brief Owns the physical indices for template families and declared
/// access constraints over one database instance.
///
/// Build() validates declared constraints against the data (D |= A) and
/// produces the bound AccessSchema the planner consumes. All data access
/// during query execution goes through Fetch(), which meters tuples.
class IndexStore {
 public:
  /// Builds indices for \p template_families and \p constraints over
  /// \p db. Fails if a declared constraint's cardinality bound is violated.
  Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
               const std::vector<ConstraintSpec>& constraints);

  /// The bound access schema (metadata only).
  const AccessSchema& schema() const { return schema_; }

  /// Fetches representatives for (\p family_id, \p level, \p xkey),
  /// charging the meter one unit per returned entry. For constraint
  /// families \p level is ignored (the fetch is exact).
  Result<std::vector<FetchEntry>> Fetch(const std::string& family_id, int level,
                                        const Tuple& xkey);

  /// Batched Fetch for the vectorized executor: fetches representatives
  /// for every key in \p xkeys (non-null, borrowed) from one family,
  /// filling \p out with one entry vector per key (parallel to xkeys).
  /// The family lookup — the dominant per-probe overhead — is resolved
  /// once per batch; the meter is still charged per key, so accessed
  /// counts and the OutOfBudget failure point are identical to issuing
  /// the fetches one by one (the alpha bound stays tight).
  Status FetchBatch(const std::string& family_id, int level,
                    const std::vector<const Tuple*>& xkeys,
                    std::vector<std::vector<FetchEntry>>* out);

  AccessMeter& meter() { return meter_; }

  /// Total index entries across all families (Fig 6(k) "total").
  size_t TotalEntries() const;
  /// Index entries of constraint families only (Fig 6(k) "constraints").
  size_t ConstraintEntries() const;
  /// Index entries of one family; NotFound for unknown ids.
  Result<size_t> FamilyEntries(const std::string& family_id) const;

  /// Incremental maintenance (paper Fig 2, C2): updates every index over
  /// \p relation for an inserted/removed base tuple \p row. The caller
  /// updates the Database itself.
  Status ApplyInsert(const std::string& relation, const Tuple& row);
  Status ApplyRemove(const std::string& relation, const Tuple& row);

 private:
  struct ConstraintIndex {
    ConstraintSpec spec;
    std::vector<size_t> x_idx;
    std::vector<size_t> y_idx;
    // Distinct Y-tuples with multiplicities, per X-key.
    std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHasher> groups;
    size_t total_entries = 0;
  };

  Result<BoundFamily> BuildConstraint(const ConstraintSpec& spec, const Table& table,
                                      ConstraintIndex* out);

  AccessSchema schema_;
  std::map<std::string, TemplateIndex> template_indices_;  // by family id
  std::map<std::string, ConstraintIndex> constraint_indices_;
  AccessMeter meter_;
};

}  // namespace beas

#endif  // BEAS_INDEX_INDEX_STORE_H_
