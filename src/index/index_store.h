// IndexStore: all physical access-schema indices of a database, with
// metered fetches that enforce the resource budget alpha * |D|.
//
// The physical storage is pluggable (storage_backend.h): the store owns a
// StorageBackend — in-memory maps and K-D trees, or a disk-backed block
// file read through a bounded LRU cache — while the metering loop that
// defines accessed counts and the OutOfBudget failure point lives here,
// shared verbatim by every backend. Because the meter charges per key
// (never per block or per cache event), answers are bit-identical across
// backends and across any cache budget.

#ifndef BEAS_INDEX_INDEX_STORE_H_
#define BEAS_INDEX_INDEX_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/block_cache.h"
#include "index/template_index.h"
#include "storage/database.h"

namespace beas {

class StorageBackend;

/// \brief Counts every tuple that crosses the index boundary and enforces
/// an optional budget B = alpha * |D| (paper Section 4).
///
/// Thread-safe: all methods may be called concurrently. Two charging
/// protocols share one counter:
///
///  - Charge(n): the sequential protocol. Adds n and fails with
///    OutOfBudget once the total exceeds the budget. The charge order is
///    the caller's call order.
///  - Deposit/commit: the parallel executor's protocol
///    (docs/ARCHITECTURE.md "Parallel atom fetching"). The caller
///    enumerates its charge stream as `slots` 0..n-1 in *sequential
///    execution order* (one slot per fetch op), fetches unmetered and in
///    any interleaving, then deposits each slot's per-key entry counts
///    exactly once. The meter commits deposits in slot order as the
///    contiguous prefix becomes available, so the running total, the
///    OutOfBudget failure point, and the failure message are bit-exactly
///    those of a sequential Charge loop — regardless of the actual
///    thread interleaving. After a failing commit the counter freezes
///    (later deposits are discarded) and failed()/failure() report the
///    sticky outcome.
///
/// Both protocols clamp on arithmetic overflow: a charge that would wrap
/// the uint64 counter pins it to UINT64_MAX and fails with OutOfBudget
/// even when enforcement is disabled (a wrapped count could otherwise
/// silently pass the budget check).
class AccessMeter {
 public:
  /// Resets the counter, the deposit sequence, the cache counters, and
  /// sets the budget; budget 0 disables enforcement (but not the
  /// overflow clamp).
  void StartQuery(uint64_t budget);

  /// Charges \p n fetched tuples; OutOfBudget once the total exceeds the
  /// budget (when enforcement is enabled) or on counter overflow.
  Status Charge(uint64_t n);

  /// Arms the deposit protocol for \p n_slots fetch ops. Must be called
  /// after StartQuery and before the first Deposit.
  void BeginDeposits(size_t n_slots);

  /// Deposits slot \p slot's per-key entry counts (in probe order). Each
  /// slot must be deposited exactly once; commits happen in slot order.
  void Deposit(size_t slot, std::vector<uint64_t> per_key_counts);

  /// True once a committed charge went over budget (or overflowed);
  /// sticky until the next StartQuery. Cheap enough to poll from workers.
  bool failed() const;

  /// Resolves the deposit protocol: the sticky failure if one committed,
  /// OK when every armed slot was deposited and committed within budget,
  /// Internal if slots are missing (caller bug).
  Status FinishDeposits();

  /// Tuples fetched since StartQuery.
  uint64_t accessed() const;
  uint64_t budget() const;

  /// This query's block-cache hit/miss counters (zero for in-memory
  /// backends). Reset by StartQuery; safe to bump from fetch workers
  /// (atomic), observational only — never part of the budget.
  CacheCounters* cache_counters() const { return &cache_counters_; }

 private:
  /// Shared charge path; both protocols funnel through it.
  Status ChargeLocked(uint64_t n);

  mutable std::mutex mu_;
  uint64_t budget_ = 0;
  uint64_t accessed_ = 0;
  // Deposit protocol state: pending[slot] holds not-yet-committed counts;
  // slots below commit_slot_ are committed.
  std::vector<std::vector<uint64_t>> pending_;
  std::vector<bool> deposited_;
  size_t commit_slot_ = 0;
  bool failed_ = false;
  Status failure_ = Status::OK();
  mutable CacheCounters cache_counters_;
};

/// Which StorageBackend an IndexStore builds on.
enum class IndexBackendKind {
  kMemory = 0,     ///< resident maps + K-D trees (the original store)
  kBlockFile = 1,  ///< one checksummed block file + bounded LRU cache
};

/// Build/open options for the storage tier. All knobs except `backend`
/// apply to kBlockFile only.
struct IndexStoreOptions {
  IndexBackendKind backend = IndexBackendKind::kMemory;
  /// Path of the block file (created by Build, reused by Open).
  std::string path;
  /// Fixed block size of the data region.
  uint32_t block_bytes = 4096;
  /// Hard byte budget of the block cache; 0 = pure read-through. Answers
  /// are bit-identical at every setting — this knob trades only speed
  /// for memory.
  uint64_t cache_bytes = 256 * 1024;
  size_t cache_shards = 8;
  /// Reopen an existing file instead of building (Beas::Build routes to
  /// IndexStore::Open; the original database is not touched).
  bool open_existing = false;
};

/// \brief One scalar fetch's entries plus the pins keeping them alive.
///
/// Entries may point into backend-owned pinned storage (the block-file
/// backend decodes groups out of cached blocks); they stay valid while
/// this object lives. Container sugar keeps call sites reading like the
/// plain vector the in-memory path used to return.
struct FetchResult {
  std::vector<FetchEntry> entries;
  FetchPins pins;

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }
  const FetchEntry& operator[](size_t i) const { return entries[i]; }
  std::vector<FetchEntry>::const_iterator begin() const { return entries.begin(); }
  std::vector<FetchEntry>::const_iterator end() const { return entries.end(); }
};

/// \brief Owns the physical indices for template families and declared
/// access constraints over one database instance.
///
/// Build() validates declared constraints against the data (D |= A) and
/// produces the bound AccessSchema the planner consumes. All data access
/// during query execution goes through Fetch(), which meters tuples.
///
/// Thread-safety: the fetch paths (Fetch / FetchBatch / FetchBatch-
/// Unmetered, including the const overloads charging per-query meters)
/// only read the index structures (the block cache synchronizes itself),
/// so any number of queries may fetch concurrently. Build / Open /
/// ApplyInsert / ApplyRemove mutate them and require exclusive access —
/// no fetch may be in flight. The query service's epoch guard enforces
/// this drain-then-mutate protocol (docs/ARCHITECTURE.md "Concurrent
/// query service"); single-session callers get it for free.
class IndexStore {
 public:
  IndexStore();
  ~IndexStore();

  /// Builds indices for \p template_families and \p constraints over
  /// \p db on the in-memory backend. Fails if a declared constraint's
  /// cardinality bound is violated.
  Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
               const std::vector<ConstraintSpec>& constraints);

  /// Build on an explicit backend (IndexStoreOptions::backend).
  Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
               const std::vector<ConstraintSpec>& constraints,
               const IndexStoreOptions& options);

  /// Cold-reopens a block file built earlier (kBlockFile only): restores
  /// the access schema and group maps from the file's directory without
  /// touching any database.
  Status Open(const IndexStoreOptions& options);

  /// The bound access schema (metadata only).
  const AccessSchema& schema() const { return schema_; }

  /// Fetches representatives for (\p family_id, \p level, \p xkey),
  /// charging the store's legacy meter one unit per returned entry. For
  /// constraint families \p level is ignored (the fetch is exact).
  Result<FetchResult> Fetch(const std::string& family_id, int level, const Tuple& xkey);

  /// Fetch charging \p meter (a per-query AccessMeter) instead of the
  /// store's legacy meter. Const: this is the concurrent read path — any
  /// number of queries may fetch at once, each against its own meter, as
  /// long as no maintenance runs concurrently (see class comment).
  Result<FetchResult> Fetch(const std::string& family_id, int level, const Tuple& xkey,
                            AccessMeter* meter) const;

  /// Batched Fetch for the vectorized executor: fetches representatives
  /// for every key in \p xkeys (non-null, borrowed) from one family,
  /// filling \p out with one entry vector per key (parallel to xkeys)
  /// and appending keep-alive pins to \p pins — entries stay valid while
  /// the pins are held. The family lookup — the dominant per-probe
  /// overhead — is resolved once per batch; the meter is still charged
  /// per key, so accessed counts and the OutOfBudget failure point are
  /// identical to issuing the fetches one by one (the alpha bound stays
  /// tight). Charges the store's legacy meter.
  Status FetchBatch(const std::string& family_id, int level,
                    const std::vector<const Tuple*>& xkeys,
                    std::vector<std::vector<FetchEntry>>* out, FetchPins* pins);

  /// FetchBatch charging \p meter (a per-query AccessMeter). Const and
  /// safe concurrently with other reads; the per-query metered path of
  /// the executor. Cache hits/misses land in meter->cache_counters().
  Status FetchBatch(const std::string& family_id, int level,
                    const std::vector<const Tuple*>& xkeys,
                    std::vector<std::vector<FetchEntry>>* out, FetchPins* pins,
                    AccessMeter* meter) const;

  /// FetchBatch minus the metering: identical entries in identical order,
  /// but no meter is touched — the caller charges through an
  /// AccessMeter's deposit protocol to keep the OutOfBudget failure point
  /// deterministic under parallel fetching. \p counters (nullable)
  /// receives the cache hit/miss counts. Const and safe to call
  /// concurrently with other (unmetered) reads; must not run concurrently
  /// with Build/ApplyInsert/ApplyRemove.
  Status FetchBatchUnmetered(const std::string& family_id, int level,
                             const std::vector<const Tuple*>& xkeys,
                             std::vector<std::vector<FetchEntry>>* out, FetchPins* pins,
                             CacheCounters* counters = nullptr) const;

  /// The legacy store-wide meter. Kept for single-session callers and
  /// tests; the executor now meters each query through its QueryContext,
  /// so concurrent sessions never contend on (or corrupt) this counter.
  AccessMeter& meter() { return meter_; }

  /// Total index entries across all families (Fig 6(k) "total").
  size_t TotalEntries() const;
  /// Index entries of constraint families only (Fig 6(k) "constraints").
  size_t ConstraintEntries() const;
  /// Index entries of one family; NotFound for unknown ids.
  Result<size_t> FamilyEntries(const std::string& family_id) const;

  /// Incremental maintenance (paper Fig 2, C2): updates every index over
  /// \p relation for an inserted/removed base tuple \p row. The caller
  /// updates the Database itself. On the block-file backend this also
  /// invalidates the cached blocks the mutation rewrote.
  Status ApplyInsert(const std::string& relation, const Tuple& row);
  Status ApplyRemove(const std::string& relation, const Tuple& row);

  /// Store-wide block-cache counters since build/open; all zero on the
  /// in-memory backend.
  BlockCacheStats cache_stats() const;

  /// On-disk footprint in bytes; 0 on the in-memory backend. The basis
  /// for "cache_bytes as a fraction of index size" budgets.
  uint64_t disk_bytes() const;

 private:
  /// Shared body of FetchBatch / FetchBatchUnmetered: one family
  /// resolution, then per-key fetches in key order, charging \p meter
  /// per key when non-null. Keeping both public entry points on one
  /// implementation is what guarantees byte-identical entries across
  /// the metered and deposit-protocol paths.
  Status FetchBatchImpl(const std::string& family_id, int level,
                        const std::vector<const Tuple*>& xkeys,
                        std::vector<std::vector<FetchEntry>>* out, FetchPins* pins,
                        AccessMeter* meter, CacheCounters* counters) const;

  AccessSchema schema_;
  std::unique_ptr<StorageBackend> backend_;
  AccessMeter meter_;
};

}  // namespace beas

#endif  // BEAS_INDEX_INDEX_STORE_H_
