// Conformance checking: does D |= A hold for the built indices?
// (Paper Section 2.1.) Used by tests and by the offline pipeline to
// validate discovered/declared schemas.
//
// The suite is backend-agnostic — every check goes through IndexStore's
// public fetch paths, so running it against a store built on the
// in-memory and the block-file backend (tests do both) certifies that the
// backends serve identical, schema-conforming answers.

#ifndef BEAS_INDEX_CONFORMANCE_H_
#define BEAS_INDEX_CONFORMANCE_H_

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/index_store.h"
#include "storage/database.h"

namespace beas {

/// Verifies by brute force that \p store's index for \p family conforms to
/// the access-template semantics on \p db: for every X-value a and every
/// level k, (1) at most 2^k (or N) distinct representatives are returned,
/// and (2) every tuple of D_Y(X=a) is within resolution d_k of some
/// representative, attribute-wise. Returns InvalidArgument with a
/// counterexample description on violation.
Status CheckConformance(const Database& db, IndexStore* store, const BoundFamily& family);

/// Verifies the batch fetch contract for \p family at every level: both
/// FetchBatch (per-query metered) and FetchBatchUnmetered return exactly
/// the scalar Fetch loop's entries, key by key in key order, and the
/// metered batch lands on the scalar loop's accessed count.
Status CheckBatchConformance(const Database& db, const IndexStore& store,
                             const BoundFamily& family);

/// Verifies the AccessMeter deposit/commit protocol for \p family under
/// \p fetch_threads concurrent workers depositing slots out of order:
/// the final accessed count and the failure outcome (none / OutOfBudget)
/// must equal a sequential Charge loop's, both unbudgeted and at a budget
/// of half the family's total entries (which forces an OutOfBudget point
/// mid-stream whenever the family is non-trivial).
Status CheckMeterProtocolConformance(const Database& db, const IndexStore& store,
                                     const BoundFamily& family, int fetch_threads);

/// Runs all three checks on every family of \p store's schema.
Status CheckAllConformance(const Database& db, IndexStore* store, int fetch_threads = 4);

}  // namespace beas

#endif  // BEAS_INDEX_CONFORMANCE_H_
