// Conformance checking: does D |= A hold for the built indices?
// (Paper Section 2.1.) Used by tests and by the offline pipeline to
// validate discovered/declared schemas.

#ifndef BEAS_INDEX_CONFORMANCE_H_
#define BEAS_INDEX_CONFORMANCE_H_

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/index_store.h"
#include "storage/database.h"

namespace beas {

/// Verifies by brute force that \p store's index for \p family conforms to
/// the access-template semantics on \p db: for every X-value a and every
/// level k, (1) at most 2^k (or N) distinct representatives are returned,
/// and (2) every tuple of D_Y(X=a) is within resolution d_k of some
/// representative, attribute-wise. Returns InvalidArgument with a
/// counterexample description on violation.
Status CheckConformance(const Database& db, IndexStore* store, const BoundFamily& family);

/// Checks every family of \p store's schema.
Status CheckAllConformance(const Database& db, IndexStore* store);

}  // namespace beas

#endif  // BEAS_INDEX_CONFORMANCE_H_
