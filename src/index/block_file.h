// The disk-backed index backend: every index family serialized into a
// single block-structured file (storage/block_io.h), fetched back through
// a bounded sharded LRU block cache (block_cache.h).
//
// File contents per family group:
//   - template families: one K-D-tree record (the fetch structure) plus
//     one raw Y-row-bag record (kept for incremental rebuilds, mirroring
//     TemplateIndex::group_rows_),
//   - constraint families: one ordered (y, multiplicity) list record.
// The directory payload holds the bound AccessSchema and the per-family
// group maps (xkey -> record offsets), so a file reopens cold with no
// access to the original database (IndexStore::Open / open_existing).
//
// Proof obligation (property test P9, conformance suite): because Build
// serializes the structures the in-memory backend would have served —
// same trees, same list orders — and fetches decode them back losslessly,
// every fetch returns byte-identical entries in identical order at ANY
// cache budget, and the metering loop above this layer charges per key,
// so accessed counts and the OutOfBudget point are unchanged too.
//
// Mutations (ApplyInsert/ApplyRemove) are append-only: the affected
// group's records are rewritten at the tail, the directory is re-synced,
// and cached blocks from the first dirty (tail) block onward are
// invalidated. They require the same exclusive access as the in-memory
// backend (the query service's epoch guard).

#ifndef BEAS_INDEX_BLOCK_FILE_H_
#define BEAS_INDEX_BLOCK_FILE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/storage_backend.h"
#include "storage/block_io.h"

namespace beas {

/// Block-file backend knobs (IndexStore translates IndexStoreOptions).
struct BlockFileOptions {
  std::string path;
  uint32_t block_bytes = 4096;
  /// Hard byte budget of the block cache; 0 = pure read-through.
  uint64_t cache_bytes = 0;
  size_t cache_shards = 8;
};

/// \brief StorageBackend over one checksummed block file.
class BlockFileBackend : public StorageBackend {
 public:
  explicit BlockFileBackend(BlockFileOptions options);

  /// Builds the indices in memory (identical structures and validation to
  /// InMemoryBackend), serializes them to options.path, and serves all
  /// subsequent fetches from disk through the cache.
  Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
               const std::vector<ConstraintSpec>& constraints, AccessSchema* schema) override;

  /// Cold reopen: restores the schema and group maps from options.path's
  /// directory without touching the original database.
  Status Open(AccessSchema* schema);

  Result<std::unique_ptr<FamilyCursor>> OpenFamily(const std::string& family_id,
                                                   CacheCounters* counters) const override;
  size_t TotalEntries() const override;
  size_t ConstraintEntries() const override;
  Result<size_t> FamilyEntries(const std::string& family_id) const override;
  Status ApplyInsert(const std::string& relation, const Tuple& row,
                     AccessSchema* schema) override;
  Status ApplyRemove(const std::string& relation, const Tuple& row,
                     AccessSchema* schema) override;
  BlockCacheStats cache_stats() const override { return cache_.stats(); }
  uint64_t disk_bytes() const override { return file_ ? file_->file_bytes() : 0; }

 private:
  friend class BlockCursor;

  /// Where one group's records live in the data region.
  struct GroupRef {
    uint64_t data_off = 0;  ///< tree record (template) / list record (constraint)
    uint64_t data_len = 0;
    uint64_t rows_off = 0;  ///< raw Y-bag record (template families only)
    uint64_t rows_len = 0;
    uint64_t entries = 0;   ///< tree node count / list size (index-size unit)
  };

  /// Resident metadata of one family; the data itself stays on disk.
  struct FamilyMeta {
    std::string id;
    std::string relation;
    bool is_constraint = false;
    uint64_t constraint_n = 0;
    std::vector<uint32_t> x_idx;
    std::vector<uint32_t> y_idx;
    std::vector<AttributeDef> y_attrs;  ///< for tree rebuilds on mutation
    std::unordered_map<Tuple, GroupRef, TupleHasher> groups;
    uint64_t total_entries = 0;
  };

  /// Reads record bytes [off, off+len) through the block cache, CRC-
  /// verified per block. Thread-safe (const read path).
  Result<std::string> ReadRecord(uint64_t off, uint64_t len, CacheCounters* counters) const;

  Result<std::vector<Tuple>> DecodeRows(const GroupRef& ref) const;
  /// Rebuilds \p xkey's tree from \p rows, appends fresh records, and
  /// updates the group ref and entry totals (empty rows erase the group).
  Status WriteTemplateGroup(FamilyMeta* meta, const Tuple& xkey, std::vector<Tuple> rows);
  /// Appends a fresh constraint-list record and updates the group ref
  /// (an empty list erases the group; entry totals are the caller's).
  Status WriteConstraintGroup(FamilyMeta* meta, const Tuple& xkey,
                              const std::vector<std::pair<Tuple, int64_t>>& list);
  /// Decodes every tree of \p meta and recomputes the family's level
  /// metadata (order-independent maxes — identical to the in-memory
  /// backend's refresh).
  Status RefreshTemplateFamily(const FamilyMeta& meta, BoundFamily* family) const;
  Status SyncDirectory(const AccessSchema& schema);

  BlockFileOptions options_;
  std::unique_ptr<BlockFile> file_;
  mutable BlockCache cache_;
  std::map<std::string, FamilyMeta> families_;  ///< by family id
};

}  // namespace beas

#endif  // BEAS_INDEX_BLOCK_FILE_H_
