#include "index/conformance.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "types/distance.h"

namespace beas {

namespace {

/// Resolves the X-attribute positions of \p family in its base relation.
Result<std::vector<size_t>> ResolveXIdx(const Database& db, const BoundFamily& family) {
  BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(family.relation));
  const RelationSchema& schema = table->schema();
  std::vector<size_t> x_idx;
  for (const auto& x : family.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    x_idx.push_back(i);
  }
  return x_idx;
}

/// Distinct X-values of \p family's relation, in first-occurrence row
/// order (deterministic for a given table), plus one all-null probe key —
/// exercising the unknown-X path on every backend.
Result<std::vector<Tuple>> CollectXKeys(const Database& db, const BoundFamily& family) {
  BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(family.relation));
  BEAS_ASSIGN_OR_RETURN(std::vector<size_t> x_idx, ResolveXIdx(db, family));
  std::vector<Tuple> keys;
  std::unordered_set<Tuple, TupleHasher> seen;
  for (const auto& row : table->rows()) {
    Tuple xkey;
    xkey.reserve(x_idx.size());
    for (size_t i : x_idx) xkey.push_back(row[i]);
    if (seen.insert(xkey).second) keys.push_back(std::move(xkey));
  }
  keys.push_back(Tuple(x_idx.size(), Value()));
  return keys;
}

/// Entries materialized by value, so results survive their pins.
using OwnedEntries = std::vector<std::pair<Tuple, int64_t>>;

OwnedEntries Materialize(const std::vector<FetchEntry>& entries) {
  OwnedEntries owned;
  owned.reserve(entries.size());
  for (const auto& e : entries) owned.emplace_back(*e.y, e.count);
  return owned;
}

Status CompareEntries(const BoundFamily& family, int level, const Tuple& xkey,
                      const OwnedEntries& expected, const OwnedEntries& got,
                      const char* path) {
  if (expected == got) return Status::OK();
  return Status::InvalidArgument(
      StrCat(family.id, " level ", level, ": ", path, " returned ", got.size(),
             " entries for X = ", TupleToString(xkey), " where the scalar fetch returned ",
             expected.size(), " (or a different order/content)"));
}

}  // namespace

Status CheckConformance(const Database& db, IndexStore* store, const BoundFamily& family) {
  BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(family.relation));
  const RelationSchema& schema = table->schema();

  std::vector<size_t> x_idx, y_idx;
  for (const auto& x : family.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    x_idx.push_back(i);
  }
  std::vector<DistanceSpec> y_specs;
  for (const auto& y : family.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(y));
    y_idx.push_back(i);
    y_specs.push_back(schema.attribute(i).distance);
  }

  // Ground truth: D_Y(X=a) per X-value.
  std::unordered_map<Tuple, std::unordered_set<Tuple, TupleHasher>, TupleHasher> truth;
  for (const auto& row : table->rows()) {
    Tuple xkey;
    for (size_t i : x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : y_idx) y.push_back(row[i]);
    truth[std::move(xkey)].insert(std::move(y));
  }

  int max_level = family.is_constraint ? 0 : family.max_level;
  for (int k = 0; k <= max_level; ++k) {
    uint64_t bound = family.is_constraint ? family.constraint_n : (uint64_t{1} << k);
    for (const auto& [xkey, ys] : truth) {
      store->meter().StartQuery(0);  // unmetered
      BEAS_ASSIGN_OR_RETURN(FetchResult reps, store->Fetch(family.id, k, xkey));
      if (reps.size() > bound) {
        return Status::InvalidArgument(
            StrCat(family.id, " level ", k, ": X-value ", TupleToString(xkey), " returned ",
                   reps.size(), " > ", bound, " representatives"));
      }
      // Distinctness of representatives.
      std::unordered_set<Tuple, TupleHasher> seen;
      for (const auto& r : reps) {
        if (!seen.insert(*r.y).second) {
          return Status::InvalidArgument(
              StrCat(family.id, " level ", k, ": duplicate representative ",
                     TupleToString(*r.y)));
        }
      }
      // Coverage within the level's resolution.
      for (const auto& t : ys) {
        bool covered = false;
        for (const auto& r : reps) {
          bool within = true;
          for (size_t a = 0; a < y_idx.size(); ++a) {
            double d = AttributeDistance(y_specs[a], t[a], (*r.y)[a]);
            double allowed = family.is_constraint
                                 ? 0.0
                                 : family.level_resolution[static_cast<size_t>(k)][a];
            if (d > allowed) {
              within = false;
              break;
            }
          }
          if (within) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          return Status::InvalidArgument(
              StrCat(family.id, " level ", k, ": tuple ", TupleToString(t),
                     " not covered within resolution for X = ", TupleToString(xkey)));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckBatchConformance(const Database& db, const IndexStore& store,
                             const BoundFamily& family) {
  BEAS_ASSIGN_OR_RETURN(std::vector<Tuple> keys, CollectXKeys(db, family));
  std::vector<const Tuple*> key_ptrs;
  key_ptrs.reserve(keys.size());
  for (const Tuple& k : keys) key_ptrs.push_back(&k);

  int max_level = family.is_constraint ? 0 : family.max_level;
  for (int level = 0; level <= max_level; ++level) {
    // Scalar metered loop: the reference for entries, order, and accessed.
    AccessMeter ref_meter;
    ref_meter.StartQuery(0);
    std::vector<OwnedEntries> reference;
    reference.reserve(keys.size());
    for (const Tuple& key : keys) {
      BEAS_ASSIGN_OR_RETURN(FetchResult r, store.Fetch(family.id, level, key, &ref_meter));
      reference.push_back(Materialize(r.entries));
    }
    const uint64_t ref_accessed = ref_meter.accessed();

    AccessMeter batch_meter;
    batch_meter.StartQuery(0);
    std::vector<std::vector<FetchEntry>> metered;
    FetchPins metered_pins;
    BEAS_RETURN_IF_ERROR(store.FetchBatch(family.id, level, key_ptrs, &metered,
                                          &metered_pins, &batch_meter));
    std::vector<std::vector<FetchEntry>> unmetered;
    FetchPins unmetered_pins;
    BEAS_RETURN_IF_ERROR(
        store.FetchBatchUnmetered(family.id, level, key_ptrs, &unmetered, &unmetered_pins));

    if (metered.size() != keys.size() || unmetered.size() != keys.size()) {
      return Status::InvalidArgument(
          StrCat(family.id, " level ", level, ": batch output size mismatch"));
    }
    for (size_t k = 0; k < keys.size(); ++k) {
      BEAS_RETURN_IF_ERROR(CompareEntries(family, level, keys[k], reference[k],
                                          Materialize(metered[k]), "FetchBatch"));
      BEAS_RETURN_IF_ERROR(CompareEntries(family, level, keys[k], reference[k],
                                          Materialize(unmetered[k]), "FetchBatchUnmetered"));
    }
    if (batch_meter.accessed() != ref_accessed) {
      return Status::InvalidArgument(
          StrCat(family.id, " level ", level, ": FetchBatch accessed ",
                 batch_meter.accessed(), " != scalar loop's ", ref_accessed));
    }
  }
  return Status::OK();
}

Status CheckMeterProtocolConformance(const Database& db, const IndexStore& store,
                                     const BoundFamily& family, int fetch_threads) {
  if (fetch_threads < 1) {
    return Status::InvalidArgument("fetch_threads must be >= 1");
  }
  BEAS_ASSIGN_OR_RETURN(std::vector<Tuple> keys, CollectXKeys(db, family));
  const int level = family.is_constraint ? 0 : family.max_level;

  // Per-key entry counts — the charge stream both protocols must replay.
  std::vector<const Tuple*> key_ptrs;
  for (const Tuple& k : keys) key_ptrs.push_back(&k);
  std::vector<std::vector<FetchEntry>> all;
  FetchPins all_pins;
  BEAS_RETURN_IF_ERROR(
      store.FetchBatchUnmetered(family.id, level, key_ptrs, &all, &all_pins));
  std::vector<uint64_t> counts;
  uint64_t total = 0;
  for (const auto& entries : all) {
    counts.push_back(entries.size());
    total += entries.size();
  }

  for (uint64_t budget : {uint64_t{0}, total / 2}) {
    // Sequential reference: a plain Charge loop, stopping at the first
    // failure exactly as the sequential executor does.
    AccessMeter seq;
    seq.StartQuery(budget);
    Status seq_status = Status::OK();
    for (uint64_t n : counts) {
      seq_status = seq.Charge(n);
      if (!seq_status.ok()) break;
    }

    // Parallel deposit protocol: one slot per key, deposited by
    // fetch_threads workers claiming slots in reverse order (plus
    // thread-racing), each slot re-fetching its key unmetered — the
    // executor's exact shape under a worst-case deposit schedule.
    AccessMeter par;
    par.StartQuery(budget);
    par.BeginDeposits(counts.size());
    std::atomic<size_t> next{0};
    std::atomic<bool> fetch_failed{false};
    const size_t n_slots = counts.size();
    std::vector<std::thread> workers;
    for (int t = 0; t < fetch_threads; ++t) {
      workers.emplace_back([&]() {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= n_slots) return;
          // Claim slots in reverse, so the commit prefix only unblocks at
          // the very end — the maximally out-of-order deposit schedule.
          const size_t slot = n_slots - 1 - i;
          std::vector<std::vector<FetchEntry>> out;
          FetchPins pins;
          std::vector<const Tuple*> one{&keys[slot]};
          if (!store.FetchBatchUnmetered(family.id, level, one, &out, &pins).ok()) {
            fetch_failed.store(true);
            par.Deposit(slot, {0});
            continue;
          }
          par.Deposit(slot, {static_cast<uint64_t>(out[0].size())});
        }
      });
    }
    for (auto& w : workers) w.join();
    if (fetch_failed.load()) {
      return Status::Internal(
          StrCat(family.id, ": unmetered fetch failed during meter protocol check"));
    }
    Status par_status = par.FinishDeposits();

    if (par_status.code() != seq_status.code()) {
      return Status::InvalidArgument(
          StrCat(family.id, " budget ", budget, ": deposit protocol outcome '",
                 StatusCodeToString(par_status.code()), "' != sequential '",
                 StatusCodeToString(seq_status.code()), "'"));
    }
    if (par.accessed() != seq.accessed()) {
      return Status::InvalidArgument(
          StrCat(family.id, " budget ", budget, ": deposit protocol accessed ",
                 par.accessed(), " != sequential ", seq.accessed()));
    }
  }
  return Status::OK();
}

Status CheckAllConformance(const Database& db, IndexStore* store, int fetch_threads) {
  for (const auto& family : store->schema().families()) {
    BEAS_RETURN_IF_ERROR(CheckConformance(db, store, family));
    BEAS_RETURN_IF_ERROR(CheckBatchConformance(db, *store, family));
    BEAS_RETURN_IF_ERROR(CheckMeterProtocolConformance(db, *store, family, fetch_threads));
  }
  return Status::OK();
}

}  // namespace beas
