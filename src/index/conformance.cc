#include "index/conformance.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "types/distance.h"

namespace beas {

Status CheckConformance(const Database& db, IndexStore* store, const BoundFamily& family) {
  BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(family.relation));
  const RelationSchema& schema = table->schema();

  std::vector<size_t> x_idx, y_idx;
  for (const auto& x : family.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    x_idx.push_back(i);
  }
  std::vector<DistanceSpec> y_specs;
  for (const auto& y : family.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(y));
    y_idx.push_back(i);
    y_specs.push_back(schema.attribute(i).distance);
  }

  // Ground truth: D_Y(X=a) per X-value.
  std::unordered_map<Tuple, std::unordered_set<Tuple, TupleHasher>, TupleHasher> truth;
  for (const auto& row : table->rows()) {
    Tuple xkey;
    for (size_t i : x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : y_idx) y.push_back(row[i]);
    truth[std::move(xkey)].insert(std::move(y));
  }

  int max_level = family.is_constraint ? 0 : family.max_level;
  for (int k = 0; k <= max_level; ++k) {
    uint64_t bound = family.is_constraint ? family.constraint_n : (uint64_t{1} << k);
    for (const auto& [xkey, ys] : truth) {
      store->meter().StartQuery(0);  // unmetered
      BEAS_ASSIGN_OR_RETURN(std::vector<FetchEntry> reps, store->Fetch(family.id, k, xkey));
      if (reps.size() > bound) {
        return Status::InvalidArgument(
            StrCat(family.id, " level ", k, ": X-value ", TupleToString(xkey), " returned ",
                   reps.size(), " > ", bound, " representatives"));
      }
      // Distinctness of representatives.
      std::unordered_set<Tuple, TupleHasher> seen;
      for (const auto& r : reps) {
        if (!seen.insert(*r.y).second) {
          return Status::InvalidArgument(
              StrCat(family.id, " level ", k, ": duplicate representative ",
                     TupleToString(*r.y)));
        }
      }
      // Coverage within the level's resolution.
      for (const auto& t : ys) {
        bool covered = false;
        for (const auto& r : reps) {
          bool within = true;
          for (size_t a = 0; a < y_idx.size(); ++a) {
            double d = AttributeDistance(y_specs[a], t[a], (*r.y)[a]);
            double allowed = family.is_constraint
                                 ? 0.0
                                 : family.level_resolution[static_cast<size_t>(k)][a];
            if (d > allowed) {
              within = false;
              break;
            }
          }
          if (within) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          return Status::InvalidArgument(
              StrCat(family.id, " level ", k, ": tuple ", TupleToString(t),
                     " not covered within resolution for X = ", TupleToString(xkey)));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckAllConformance(const Database& db, IndexStore* store) {
  for (const auto& family : store->schema().families()) {
    BEAS_RETURN_IF_ERROR(CheckConformance(db, store, family));
  }
  return Status::OK();
}

}  // namespace beas
