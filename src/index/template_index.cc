#include "index/template_index.h"

#include <algorithm>

#include "common/string_util.h"

namespace beas {

Result<BoundFamily> TemplateIndex::Build(const FamilySpec& spec, const Table& table) {
  const RelationSchema& schema = table.schema();
  x_idx_.clear();
  y_idx_.clear();
  y_attrs_.clear();
  for (const auto& x : spec.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    x_idx_.push_back(i);
  }
  for (const auto& y : spec.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(y));
    y_idx_.push_back(i);
    y_attrs_.push_back(schema.attribute(i));
  }

  group_rows_.clear();
  groups_.clear();
  for (const auto& row : table.rows()) {
    Tuple xkey;
    xkey.reserve(x_idx_.size());
    for (size_t i : x_idx_) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(y_idx_.size());
    for (size_t i : y_idx_) y.push_back(row[i]);
    group_rows_[std::move(xkey)].push_back(std::move(y));
  }
  for (const auto& [xkey, rows] : group_rows_) {
    groups_[xkey].Build(y_attrs_, rows);
  }

  BoundFamily family;
  family.id = spec.Id();
  family.relation = spec.relation;
  family.x_attrs = spec.x_attrs;
  family.y_attrs = spec.y_attrs;
  BEAS_RETURN_IF_ERROR(RefreshMetadata(&family));
  return family;
}

void RefreshFamilyLevels(const std::vector<const KdTree*>& trees, size_t y_arity,
                         BoundFamily* family) {
  int max_level = 0;
  for (const KdTree* tree : trees) max_level = std::max(max_level, tree->depth());
  family->is_constraint = false;
  family->max_level = max_level;
  family->level_resolution.assign(static_cast<size_t>(max_level) + 1,
                                  std::vector<double>(y_arity, 0.0));
  family->level_fanout.assign(static_cast<size_t>(max_level) + 1, 0);
  for (int k = 0; k <= max_level; ++k) {
    auto& res = family->level_resolution[static_cast<size_t>(k)];
    uint64_t fanout = 0;
    for (const KdTree* tree : trees) {
      std::vector<double> r = tree->FrontierResolution(k);
      for (size_t a = 0; a < r.size(); ++a) res[a] = std::max(res[a], r[a]);
      fanout = std::max<uint64_t>(fanout, tree->FrontierSize(k));
    }
    family->level_fanout[static_cast<size_t>(k)] = std::max<uint64_t>(fanout, 1);
  }
}

Status TemplateIndex::RefreshMetadata(BoundFamily* family) {
  std::vector<const KdTree*> trees;
  trees.reserve(groups_.size());
  for (const auto& [xkey, tree] : groups_) trees.push_back(&tree);
  RefreshFamilyLevels(trees, y_attrs_.size(), family);
  max_level_ = family->max_level;
  return Status::OK();
}

void TemplateIndex::Fetch(const Tuple& xkey, int level, std::vector<FetchEntry>* out) const {
  auto it = groups_.find(xkey);
  if (it == groups_.end()) return;
  std::vector<KdTree::FrontierEntry> entries;
  it->second.Frontier(level, &entries);
  for (const auto& e : entries) out->push_back(FetchEntry{e.representative, e.count});
}

size_t TemplateIndex::FetchSize(const Tuple& xkey, int level) const {
  auto it = groups_.find(xkey);
  if (it == groups_.end()) return 0;
  return it->second.FrontierSize(level);
}

size_t TemplateIndex::TotalEntries() const {
  size_t n = 0;
  for (const auto& [xkey, tree] : groups_) n += tree.node_count();
  return n;
}

Status TemplateIndex::ApplyInsert(const Tuple& row, BoundFamily* family) {
  Tuple xkey;
  for (size_t i : x_idx_) xkey.push_back(row[i]);
  Tuple y;
  for (size_t i : y_idx_) y.push_back(row[i]);
  auto& rows = group_rows_[xkey];
  rows.push_back(std::move(y));
  groups_[xkey].Build(y_attrs_, rows);
  return RefreshMetadata(family);
}

Status TemplateIndex::ApplyRemove(const Tuple& row, BoundFamily* family) {
  Tuple xkey;
  for (size_t i : x_idx_) xkey.push_back(row[i]);
  Tuple y;
  for (size_t i : y_idx_) y.push_back(row[i]);
  auto it = group_rows_.find(xkey);
  if (it == group_rows_.end()) {
    return Status::NotFound("ApplyRemove: no such group");
  }
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), y);
  if (pos == rows.end()) {
    return Status::NotFound("ApplyRemove: tuple not present in group");
  }
  rows.erase(pos);
  if (rows.empty()) {
    group_rows_.erase(it);
    groups_.erase(xkey);
  } else {
    groups_[xkey].Build(y_attrs_, rows);
  }
  return RefreshMetadata(family);
}

}  // namespace beas
