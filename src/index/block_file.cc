#include "index/block_file.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace beas {

namespace {

constexpr uint32_t kDirVersion = 1;

using ConstraintList = std::vector<std::pair<Tuple, int64_t>>;

/// Constraint group record: u32 count + (Tuple y, i64 multiplicity) pairs,
/// in list order — the order the in-memory backend serves them in.
std::string EncodeConstraintList(const std::vector<std::pair<Tuple, int64_t>>& list) {
  std::string rec;
  PutU32(&rec, static_cast<uint32_t>(list.size()));
  for (const auto& [y, m] : list) {
    PutTuple(&rec, y);
    PutI64(&rec, m);
  }
  return rec;
}

/// Raw Y-bag record: u32 count + tuples in group_rows order, so a rebuild
/// from disk feeds KdTree::Build the exact sequence the in-memory backend
/// would (duplicate collapse and node layout are insertion-order functions).
std::string EncodeRows(const std::vector<Tuple>& rows) {
  std::string rec;
  PutU32(&rec, static_cast<uint32_t>(rows.size()));
  for (const Tuple& t : rows) PutTuple(&rec, t);
  return rec;
}

/// A decoded constraint group, handed to callers as a fetch pin.
struct DecodedConstraintGroup {
  std::vector<std::pair<Tuple, int64_t>> list;
};

Result<std::vector<std::pair<Tuple, int64_t>>> DecodeConstraintList(const std::string& rec) {
  ByteReader reader(rec);
  BEAS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  std::vector<std::pair<Tuple, int64_t>> list;
  list.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BEAS_ASSIGN_OR_RETURN(Tuple y, reader.ReadTuple());
    BEAS_ASSIGN_OR_RETURN(int64_t m, reader.ReadI64());
    list.emplace_back(std::move(y), m);
  }
  return list;
}

void EncodeAttributeDef(std::string* dst, const AttributeDef& attr) {
  PutString(dst, attr.name);
  PutU8(dst, static_cast<uint8_t>(attr.type));
  PutU8(dst, static_cast<uint8_t>(attr.distance.kind));
  PutF64(dst, attr.distance.scale);
}

Result<AttributeDef> DecodeAttributeDef(ByteReader* reader) {
  AttributeDef attr;
  BEAS_ASSIGN_OR_RETURN(attr.name, reader->ReadString());
  BEAS_ASSIGN_OR_RETURN(uint8_t type, reader->ReadU8());
  if (type > static_cast<uint8_t>(DataType::kString)) {
    return Status::DataLoss(StrCat("attribute record: invalid data type ", type));
  }
  attr.type = static_cast<DataType>(type);
  BEAS_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind > static_cast<uint8_t>(DistanceKind::kNumeric)) {
    return Status::DataLoss(StrCat("attribute record: invalid distance kind ", kind));
  }
  attr.distance.kind = static_cast<DistanceKind>(kind);
  BEAS_ASSIGN_OR_RETURN(attr.distance.scale, reader->ReadF64());
  return attr;
}

void EncodeStringList(std::string* dst, const std::vector<std::string>& list) {
  PutU32(dst, static_cast<uint32_t>(list.size()));
  for (const auto& s : list) PutString(dst, s);
}

Result<std::vector<std::string>> DecodeStringList(ByteReader* reader) {
  BEAS_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  std::vector<std::string> list;
  list.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BEAS_ASSIGN_OR_RETURN(std::string s, reader->ReadString());
    list.push_back(std::move(s));
  }
  return list;
}

void EncodeBoundFamily(std::string* dst, const BoundFamily& f) {
  PutString(dst, f.id);
  PutString(dst, f.relation);
  EncodeStringList(dst, f.x_attrs);
  EncodeStringList(dst, f.y_attrs);
  PutU8(dst, f.is_constraint ? 1 : 0);
  PutU64(dst, f.constraint_n);
  PutU32(dst, static_cast<uint32_t>(f.max_level));
  PutU32(dst, static_cast<uint32_t>(f.level_resolution.size()));
  for (const auto& level : f.level_resolution) {
    PutU32(dst, static_cast<uint32_t>(level.size()));
    for (double d : level) PutF64(dst, d);
  }
  PutU32(dst, static_cast<uint32_t>(f.level_fanout.size()));
  for (uint64_t v : f.level_fanout) PutU64(dst, v);
}

Result<BoundFamily> DecodeBoundFamily(ByteReader* reader) {
  BoundFamily f;
  BEAS_ASSIGN_OR_RETURN(f.id, reader->ReadString());
  BEAS_ASSIGN_OR_RETURN(f.relation, reader->ReadString());
  BEAS_ASSIGN_OR_RETURN(f.x_attrs, DecodeStringList(reader));
  BEAS_ASSIGN_OR_RETURN(f.y_attrs, DecodeStringList(reader));
  BEAS_ASSIGN_OR_RETURN(uint8_t is_constraint, reader->ReadU8());
  f.is_constraint = is_constraint != 0;
  BEAS_ASSIGN_OR_RETURN(f.constraint_n, reader->ReadU64());
  BEAS_ASSIGN_OR_RETURN(uint32_t max_level, reader->ReadU32());
  f.max_level = static_cast<int>(max_level);
  BEAS_ASSIGN_OR_RETURN(uint32_t n_levels, reader->ReadU32());
  f.level_resolution.resize(n_levels);
  for (uint32_t k = 0; k < n_levels; ++k) {
    BEAS_ASSIGN_OR_RETURN(uint32_t arity, reader->ReadU32());
    f.level_resolution[k].resize(arity);
    for (uint32_t a = 0; a < arity; ++a) {
      BEAS_ASSIGN_OR_RETURN(f.level_resolution[k][a], reader->ReadF64());
    }
  }
  BEAS_ASSIGN_OR_RETURN(uint32_t n_fanout, reader->ReadU32());
  f.level_fanout.resize(n_fanout);
  for (uint32_t k = 0; k < n_fanout; ++k) {
    BEAS_ASSIGN_OR_RETURN(f.level_fanout[k], reader->ReadU64());
  }
  return f;
}

}  // namespace

/// Cursor over one block-file family: every fetch reads the group's record
/// through the cache, decodes it to heap storage, and hands that storage
/// back as a pin — the entries stay valid after any cache eviction.
class BlockCursor : public StorageBackend::FamilyCursor {
 public:
  BlockCursor(const BlockFileBackend* backend, const BlockFileBackend::FamilyMeta* meta,
              CacheCounters* counters)
      : backend_(backend), meta_(meta), counters_(counters) {}

  Status Fetch(const Tuple& xkey, int level, std::vector<FetchEntry>* out,
               FetchPins* pins) override {
    if (pins == nullptr) {
      return Status::Internal("block-file fetch requires a pin set for entry lifetime");
    }
    auto git = meta_->groups.find(xkey);
    if (git == meta_->groups.end()) return Status::OK();
    const BlockFileBackend::GroupRef& ref = git->second;
    BEAS_ASSIGN_OR_RETURN(std::string rec,
                          backend_->ReadRecord(ref.data_off, ref.data_len, counters_));
    if (meta_->is_constraint) {
      auto group = std::make_shared<DecodedConstraintGroup>();
      BEAS_ASSIGN_OR_RETURN(group->list, DecodeConstraintList(rec));
      out->reserve(out->size() + group->list.size());
      for (const auto& [y, m] : group->list) out->push_back(FetchEntry{&y, m});
      pins->push_back(std::move(group));
      return Status::OK();
    }
    ByteReader reader(rec);
    BEAS_ASSIGN_OR_RETURN(KdTree decoded, KdTree::DecodeFrom(&reader));
    auto tree = std::make_shared<const KdTree>(std::move(decoded));
    std::vector<KdTree::FrontierEntry> entries;
    tree->Frontier(level, &entries);
    out->reserve(out->size() + entries.size());
    for (const auto& e : entries) out->push_back(FetchEntry{e.representative, e.count});
    pins->push_back(std::move(tree));
    return Status::OK();
  }

 private:
  const BlockFileBackend* backend_;
  const BlockFileBackend::FamilyMeta* meta_;
  CacheCounters* counters_;
};

BlockFileBackend::BlockFileBackend(BlockFileOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes, options_.cache_shards) {}

Status BlockFileBackend::Build(const Database& db,
                               const std::vector<FamilySpec>& template_families,
                               const std::vector<ConstraintSpec>& constraints,
                               AccessSchema* schema) {
  // Build in memory first: identical structures, validation, and schema
  // metadata by construction. The memory is released when `mem` dies.
  InMemoryBackend mem;
  BEAS_RETURN_IF_ERROR(mem.Build(db, template_families, constraints, schema));

  BEAS_ASSIGN_OR_RETURN(file_, BlockFile::Create(options_.path, options_.block_bytes));
  cache_.Clear();
  families_.clear();

  for (const auto& [id, index] : mem.constraint_indices()) {
    FamilyMeta meta;
    meta.id = id;
    meta.relation = index.spec.relation;
    meta.is_constraint = true;
    meta.constraint_n = index.spec.n;
    for (size_t i : index.x_idx) meta.x_idx.push_back(static_cast<uint32_t>(i));
    for (size_t i : index.y_idx) meta.y_idx.push_back(static_cast<uint32_t>(i));
    meta.total_entries = index.total_entries;
    for (const auto& [xkey, list] : index.groups) {
      std::string rec = EncodeConstraintList(list);
      GroupRef ref;
      BEAS_ASSIGN_OR_RETURN(ref.data_off, file_->Append(rec));
      ref.data_len = rec.size();
      ref.entries = list.size();
      meta.groups.emplace(xkey, ref);
    }
    families_.emplace(id, std::move(meta));
  }

  for (const auto& [id, index] : mem.template_indices()) {
    BEAS_ASSIGN_OR_RETURN(const BoundFamily* family, schema->FindFamily(id));
    FamilyMeta meta;
    meta.id = id;
    meta.relation = family->relation;
    meta.is_constraint = false;
    for (size_t i : index.x_idx()) meta.x_idx.push_back(static_cast<uint32_t>(i));
    for (size_t i : index.y_idx()) meta.y_idx.push_back(static_cast<uint32_t>(i));
    meta.y_attrs = index.y_attrs();
    meta.total_entries = index.TotalEntries();
    for (const auto& [xkey, tree] : index.groups()) {
      std::string tree_rec;
      tree.EncodeTo(&tree_rec);
      std::string rows_rec = EncodeRows(index.group_rows().at(xkey));
      GroupRef ref;
      BEAS_ASSIGN_OR_RETURN(ref.data_off, file_->Append(tree_rec));
      ref.data_len = tree_rec.size();
      BEAS_ASSIGN_OR_RETURN(ref.rows_off, file_->Append(rows_rec));
      ref.rows_len = rows_rec.size();
      ref.entries = tree.node_count();
      meta.groups.emplace(xkey, ref);
    }
    families_.emplace(id, std::move(meta));
  }

  return SyncDirectory(*schema);
}

Status BlockFileBackend::Open(AccessSchema* schema) {
  BEAS_ASSIGN_OR_RETURN(file_, BlockFile::Open(options_.path));
  cache_.Clear();
  families_.clear();

  ByteReader reader(file_->dir_payload());
  BEAS_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kDirVersion) {
    return Status::DataLoss(StrCat("block file '", options_.path,
                                   "': unsupported directory version ", version));
  }

  BEAS_ASSIGN_OR_RETURN(uint32_t n_families, reader.ReadU32());
  for (uint32_t i = 0; i < n_families; ++i) {
    BEAS_ASSIGN_OR_RETURN(BoundFamily family, DecodeBoundFamily(&reader));
    BEAS_RETURN_IF_ERROR(schema->AddFamily(std::move(family)));
  }

  BEAS_ASSIGN_OR_RETURN(uint32_t n_metas, reader.ReadU32());
  for (uint32_t i = 0; i < n_metas; ++i) {
    FamilyMeta meta;
    BEAS_ASSIGN_OR_RETURN(meta.id, reader.ReadString());
    BEAS_ASSIGN_OR_RETURN(meta.relation, reader.ReadString());
    BEAS_ASSIGN_OR_RETURN(uint8_t is_constraint, reader.ReadU8());
    meta.is_constraint = is_constraint != 0;
    BEAS_ASSIGN_OR_RETURN(meta.constraint_n, reader.ReadU64());
    BEAS_ASSIGN_OR_RETURN(uint32_t nx, reader.ReadU32());
    for (uint32_t k = 0; k < nx; ++k) {
      BEAS_ASSIGN_OR_RETURN(uint32_t idx, reader.ReadU32());
      meta.x_idx.push_back(idx);
    }
    BEAS_ASSIGN_OR_RETURN(uint32_t ny, reader.ReadU32());
    for (uint32_t k = 0; k < ny; ++k) {
      BEAS_ASSIGN_OR_RETURN(uint32_t idx, reader.ReadU32());
      meta.y_idx.push_back(idx);
    }
    BEAS_ASSIGN_OR_RETURN(uint32_t n_attrs, reader.ReadU32());
    for (uint32_t k = 0; k < n_attrs; ++k) {
      BEAS_ASSIGN_OR_RETURN(AttributeDef attr, DecodeAttributeDef(&reader));
      meta.y_attrs.push_back(std::move(attr));
    }
    BEAS_ASSIGN_OR_RETURN(meta.total_entries, reader.ReadU64());
    BEAS_ASSIGN_OR_RETURN(uint64_t n_groups, reader.ReadU64());
    for (uint64_t g = 0; g < n_groups; ++g) {
      BEAS_ASSIGN_OR_RETURN(Tuple xkey, reader.ReadTuple());
      GroupRef ref;
      BEAS_ASSIGN_OR_RETURN(ref.data_off, reader.ReadU64());
      BEAS_ASSIGN_OR_RETURN(ref.data_len, reader.ReadU64());
      BEAS_ASSIGN_OR_RETURN(ref.rows_off, reader.ReadU64());
      BEAS_ASSIGN_OR_RETURN(ref.rows_len, reader.ReadU64());
      BEAS_ASSIGN_OR_RETURN(ref.entries, reader.ReadU64());
      if (ref.data_off + ref.data_len > file_->data_len() ||
          ref.rows_off + ref.rows_len > file_->data_len()) {
        return Status::DataLoss(StrCat("block file '", options_.path, "': family '",
                                       meta.id, "' group record out of range"));
      }
      meta.groups.emplace(std::move(xkey), ref);
    }
    families_.emplace(meta.id, std::move(meta));
  }
  return Status::OK();
}

Result<std::unique_ptr<StorageBackend::FamilyCursor>> BlockFileBackend::OpenFamily(
    const std::string& family_id, CacheCounters* counters) const {
  auto it = families_.find(family_id);
  if (it == families_.end()) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  return std::unique_ptr<FamilyCursor>(new BlockCursor(this, &it->second, counters));
}

size_t BlockFileBackend::TotalEntries() const {
  size_t n = 0;
  for (const auto& [id, meta] : families_) n += meta.total_entries;
  return n;
}

size_t BlockFileBackend::ConstraintEntries() const {
  size_t n = 0;
  for (const auto& [id, meta] : families_) {
    if (meta.is_constraint) n += meta.total_entries;
  }
  return n;
}

Result<size_t> BlockFileBackend::FamilyEntries(const std::string& family_id) const {
  auto it = families_.find(family_id);
  if (it == families_.end()) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  return static_cast<size_t>(it->second.total_entries);
}

Result<std::string> BlockFileBackend::ReadRecord(uint64_t off, uint64_t len,
                                                 CacheCounters* counters) const {
  std::string out;
  out.reserve(len);
  const uint64_t block_bytes = file_->block_bytes();
  const uint64_t end = off + len;
  uint64_t pos = off;
  while (pos < end) {
    const uint64_t block = pos / block_bytes;
    BEAS_ASSIGN_OR_RETURN(
        std::shared_ptr<const std::string> data,
        cache_.Get(block, [this](uint64_t index) { return file_->ReadBlockVerified(index); },
                   counters));
    const uint64_t in_block = pos - block * block_bytes;
    if (in_block >= data->size()) {
      return Status::DataLoss(StrCat("block file '", options_.path, "': record at offset ",
                                     off, " extends past block ", block));
    }
    const uint64_t take = std::min<uint64_t>(end - pos, data->size() - in_block);
    out.append(data->data() + in_block, take);
    pos += take;
  }
  return out;
}

Result<std::vector<Tuple>> BlockFileBackend::DecodeRows(const GroupRef& ref) const {
  BEAS_ASSIGN_OR_RETURN(std::string rec, ReadRecord(ref.rows_off, ref.rows_len, nullptr));
  ByteReader reader(rec);
  BEAS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BEAS_ASSIGN_OR_RETURN(Tuple t, reader.ReadTuple());
    rows.push_back(std::move(t));
  }
  return rows;
}

Status BlockFileBackend::WriteTemplateGroup(FamilyMeta* meta, const Tuple& xkey,
                                            std::vector<Tuple> rows) {
  auto git = meta->groups.find(xkey);
  const uint64_t old_entries = git != meta->groups.end() ? git->second.entries : 0;
  if (rows.empty()) {
    if (git != meta->groups.end()) {
      meta->total_entries -= old_entries;
      meta->groups.erase(git);
    }
    return Status::OK();
  }
  // Rebuild exactly as TemplateIndex::ApplyInsert/ApplyRemove do: the tree
  // over the full row bag in insertion order.
  KdTree tree;
  tree.Build(meta->y_attrs, rows);
  std::string tree_rec;
  tree.EncodeTo(&tree_rec);
  std::string rows_rec = EncodeRows(rows);
  GroupRef ref;
  BEAS_ASSIGN_OR_RETURN(ref.data_off, file_->Append(tree_rec));
  ref.data_len = tree_rec.size();
  BEAS_ASSIGN_OR_RETURN(ref.rows_off, file_->Append(rows_rec));
  ref.rows_len = rows_rec.size();
  ref.entries = tree.node_count();
  meta->total_entries = meta->total_entries - old_entries + ref.entries;
  meta->groups[xkey] = ref;
  // Appends may rewrite the shared tail block; drop any cached copy before
  // the refresh below (or a concurrent-free future fetch) reads it back.
  cache_.InvalidateFrom(ref.data_off / file_->block_bytes());
  return Status::OK();
}

Status BlockFileBackend::RefreshTemplateFamily(const FamilyMeta& meta,
                                               BoundFamily* family) const {
  std::vector<KdTree> trees;
  trees.reserve(meta.groups.size());
  for (const auto& [xkey, ref] : meta.groups) {
    BEAS_ASSIGN_OR_RETURN(std::string rec, ReadRecord(ref.data_off, ref.data_len, nullptr));
    ByteReader reader(rec);
    BEAS_ASSIGN_OR_RETURN(KdTree tree, KdTree::DecodeFrom(&reader));
    trees.push_back(std::move(tree));
  }
  std::vector<const KdTree*> ptrs;
  ptrs.reserve(trees.size());
  for (const KdTree& t : trees) ptrs.push_back(&t);
  RefreshFamilyLevels(ptrs, meta.y_attrs.size(), family);
  return Status::OK();
}

Status BlockFileBackend::ApplyInsert(const std::string& relation, const Tuple& row,
                                     AccessSchema* schema) {
  if (file_ == nullptr) return Status::Internal("block-file backend has no open file");
  // Same family order as InMemoryBackend: template families by id, then
  // constraint families by id.
  for (auto& [id, meta] : families_) {
    if (meta.is_constraint) continue;
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema->FindMutableFamily(id));
    if (family->relation != relation) continue;
    Tuple xkey;
    xkey.reserve(meta.x_idx.size());
    for (uint32_t i : meta.x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(meta.y_idx.size());
    for (uint32_t i : meta.y_idx) y.push_back(row[i]);
    std::vector<Tuple> rows;
    auto git = meta.groups.find(xkey);
    if (git != meta.groups.end()) {
      BEAS_ASSIGN_OR_RETURN(rows, DecodeRows(git->second));
    }
    rows.push_back(std::move(y));
    BEAS_RETURN_IF_ERROR(WriteTemplateGroup(&meta, xkey, std::move(rows)));
    BEAS_RETURN_IF_ERROR(RefreshTemplateFamily(meta, family));
  }
  for (auto& [id, meta] : families_) {
    if (!meta.is_constraint || meta.relation != relation) continue;
    Tuple xkey;
    xkey.reserve(meta.x_idx.size());
    for (uint32_t i : meta.x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(meta.y_idx.size());
    for (uint32_t i : meta.y_idx) y.push_back(row[i]);
    std::vector<std::pair<Tuple, int64_t>> list;
    auto git = meta.groups.find(xkey);
    if (git != meta.groups.end()) {
      BEAS_ASSIGN_OR_RETURN(std::string rec,
                            ReadRecord(git->second.data_off, git->second.data_len, nullptr));
      BEAS_ASSIGN_OR_RETURN(list, DecodeConstraintList(rec));
    }
    bool found = false;
    for (auto& [t, m] : list) {
      if (t == y) {
        m += 1;
        found = true;
        break;
      }
    }
    if (!found) {
      if (list.size() + 1 > meta.constraint_n) {
        return Status::InvalidArgument(StrCat("insert violates constraint ", id));
      }
      list.emplace_back(std::move(y), 1);
      meta.total_entries += 1;
    }
    BEAS_RETURN_IF_ERROR(WriteConstraintGroup(&meta, xkey, list));
  }
  return SyncDirectory(*schema);
}

Status BlockFileBackend::ApplyRemove(const std::string& relation, const Tuple& row,
                                     AccessSchema* schema) {
  if (file_ == nullptr) return Status::Internal("block-file backend has no open file");
  for (auto& [id, meta] : families_) {
    if (meta.is_constraint) continue;
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema->FindMutableFamily(id));
    if (family->relation != relation) continue;
    Tuple xkey;
    xkey.reserve(meta.x_idx.size());
    for (uint32_t i : meta.x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(meta.y_idx.size());
    for (uint32_t i : meta.y_idx) y.push_back(row[i]);
    auto git = meta.groups.find(xkey);
    if (git == meta.groups.end()) {
      return Status::NotFound("ApplyRemove: no such group");
    }
    BEAS_ASSIGN_OR_RETURN(std::vector<Tuple> rows, DecodeRows(git->second));
    auto pos = std::find(rows.begin(), rows.end(), y);
    if (pos == rows.end()) {
      return Status::NotFound("ApplyRemove: tuple not present in group");
    }
    rows.erase(pos);
    BEAS_RETURN_IF_ERROR(WriteTemplateGroup(&meta, xkey, std::move(rows)));
    BEAS_RETURN_IF_ERROR(RefreshTemplateFamily(meta, family));
  }
  for (auto& [id, meta] : families_) {
    if (!meta.is_constraint || meta.relation != relation) continue;
    Tuple xkey;
    xkey.reserve(meta.x_idx.size());
    for (uint32_t i : meta.x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(meta.y_idx.size());
    for (uint32_t i : meta.y_idx) y.push_back(row[i]);
    auto git = meta.groups.find(xkey);
    if (git == meta.groups.end()) {
      return Status::NotFound("ApplyRemove: no such constraint group");
    }
    BEAS_ASSIGN_OR_RETURN(std::string rec,
                          ReadRecord(git->second.data_off, git->second.data_len, nullptr));
    BEAS_ASSIGN_OR_RETURN(ConstraintList list, DecodeConstraintList(rec));
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->first == y) {
        if (--it->second == 0) {
          list.erase(it);
          meta.total_entries -= 1;
        }
        break;
      }
    }
    BEAS_RETURN_IF_ERROR(WriteConstraintGroup(&meta, xkey, list));
  }
  return SyncDirectory(*schema);
}

Status BlockFileBackend::WriteConstraintGroup(FamilyMeta* meta, const Tuple& xkey,
                                              const std::vector<std::pair<Tuple, int64_t>>& list) {
  if (list.empty()) {
    meta->groups.erase(xkey);
    return Status::OK();
  }
  std::string rec = EncodeConstraintList(list);
  GroupRef ref;
  BEAS_ASSIGN_OR_RETURN(ref.data_off, file_->Append(rec));
  ref.data_len = rec.size();
  ref.entries = list.size();
  meta->groups[xkey] = ref;
  cache_.InvalidateFrom(ref.data_off / file_->block_bytes());
  return Status::OK();
}

Status BlockFileBackend::SyncDirectory(const AccessSchema& schema) {
  std::string payload;
  PutU32(&payload, kDirVersion);
  PutU32(&payload, static_cast<uint32_t>(schema.families().size()));
  for (const BoundFamily& f : schema.families()) EncodeBoundFamily(&payload, f);
  PutU32(&payload, static_cast<uint32_t>(families_.size()));
  for (const auto& [id, meta] : families_) {
    PutString(&payload, meta.id);
    PutString(&payload, meta.relation);
    PutU8(&payload, meta.is_constraint ? 1 : 0);
    PutU64(&payload, meta.constraint_n);
    PutU32(&payload, static_cast<uint32_t>(meta.x_idx.size()));
    for (uint32_t i : meta.x_idx) PutU32(&payload, i);
    PutU32(&payload, static_cast<uint32_t>(meta.y_idx.size()));
    for (uint32_t i : meta.y_idx) PutU32(&payload, i);
    PutU32(&payload, static_cast<uint32_t>(meta.y_attrs.size()));
    for (const AttributeDef& attr : meta.y_attrs) EncodeAttributeDef(&payload, attr);
    PutU64(&payload, meta.total_entries);
    PutU64(&payload, meta.groups.size());
    for (const auto& [xkey, ref] : meta.groups) {
      PutTuple(&payload, xkey);
      PutU64(&payload, ref.data_off);
      PutU64(&payload, ref.data_len);
      PutU64(&payload, ref.rows_off);
      PutU64(&payload, ref.rows_len);
      PutU64(&payload, ref.entries);
    }
  }
  return file_->Sync(payload);
}

}  // namespace beas
