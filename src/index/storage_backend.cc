#include "index/storage_backend.h"

#include "common/string_util.h"

namespace beas {

namespace {

/// Cursor over one in-memory family. Entries point into the backend's own
/// structures, which outlive any query (maintenance is excluded while
/// fetches are in flight), so no pins are emitted.
class MemoryCursor : public StorageBackend::FamilyCursor {
 public:
  explicit MemoryCursor(const TemplateIndex* index) : template_(index) {}
  explicit MemoryCursor(const InMemoryBackend::ConstraintIndex* index)
      : constraint_(index) {}

  Status Fetch(const Tuple& xkey, int level, std::vector<FetchEntry>* out,
               FetchPins* pins) override {
    (void)pins;
    if (constraint_ != nullptr) {
      auto git = constraint_->groups.find(xkey);
      if (git == constraint_->groups.end()) return Status::OK();
      out->reserve(out->size() + git->second.size());
      for (const auto& [y, m] : git->second) out->push_back(FetchEntry{&y, m});
      return Status::OK();
    }
    template_->Fetch(xkey, level, out);
    return Status::OK();
  }

 private:
  const TemplateIndex* template_ = nullptr;
  const InMemoryBackend::ConstraintIndex* constraint_ = nullptr;
};

}  // namespace

Status InMemoryBackend::Build(const Database& db,
                              const std::vector<FamilySpec>& template_families,
                              const std::vector<ConstraintSpec>& constraints,
                              AccessSchema* schema) {
  template_indices_.clear();
  constraint_indices_.clear();

  for (const auto& spec : constraints) {
    BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(spec.relation));
    ConstraintIndex index;
    BEAS_ASSIGN_OR_RETURN(BoundFamily family, BuildConstraint(spec, *table, &index));
    BEAS_RETURN_IF_ERROR(schema->AddFamily(std::move(family)));
    constraint_indices_.emplace(spec.Id(), std::move(index));
  }

  for (const auto& spec : template_families) {
    BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(spec.relation));
    TemplateIndex index;
    BEAS_ASSIGN_OR_RETURN(BoundFamily family, index.Build(spec, *table));
    BEAS_RETURN_IF_ERROR(schema->AddFamily(std::move(family)));
    template_indices_.emplace(spec.Id(), std::move(index));
  }
  return Status::OK();
}

Result<BoundFamily> InMemoryBackend::BuildConstraint(const ConstraintSpec& spec,
                                                     const Table& table,
                                                     ConstraintIndex* out) {
  const RelationSchema& schema = table.schema();
  out->spec = spec;
  for (const auto& x : spec.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    out->x_idx.push_back(i);
  }
  for (const auto& y : spec.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(y));
    out->y_idx.push_back(i);
  }

  // Group, collapse duplicates, and validate the cardinality bound N.
  std::unordered_map<Tuple, std::unordered_map<Tuple, int64_t, TupleHasher>, TupleHasher>
      grouped;
  for (const auto& row : table.rows()) {
    Tuple xkey;
    xkey.reserve(out->x_idx.size());
    for (size_t i : out->x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(out->y_idx.size());
    for (size_t i : out->y_idx) y.push_back(row[i]);
    grouped[std::move(xkey)][std::move(y)] += 1;
  }
  out->total_entries = 0;
  for (auto& [xkey, ys] : grouped) {
    if (ys.size() > spec.n) {
      return Status::InvalidArgument(
          StrCat("constraint ", spec.Id(), " violated: X-value ", TupleToString(xkey),
                 " has ", ys.size(), " distinct Y-values > N = ", spec.n));
    }
    auto& list = out->groups[xkey];
    list.reserve(ys.size());
    for (auto& [y, m] : ys) list.emplace_back(y, m);
    out->total_entries += list.size();
  }

  BoundFamily family;
  family.id = spec.Id();
  family.relation = spec.relation;
  family.x_attrs = spec.x_attrs;
  family.y_attrs = spec.y_attrs;
  family.is_constraint = true;
  family.constraint_n = spec.n;
  family.max_level = 0;
  family.level_resolution = {std::vector<double>(spec.y_attrs.size(), 0.0)};
  family.level_fanout = {spec.n};
  return family;
}

Result<std::unique_ptr<StorageBackend::FamilyCursor>> InMemoryBackend::OpenFamily(
    const std::string& family_id, CacheCounters* counters) const {
  (void)counters;  // no cache: every fetch reads resident structures
  auto cit = constraint_indices_.find(family_id);
  if (cit != constraint_indices_.end()) {
    return std::unique_ptr<FamilyCursor>(new MemoryCursor(&cit->second));
  }
  auto tit = template_indices_.find(family_id);
  if (tit != template_indices_.end()) {
    return std::unique_ptr<FamilyCursor>(new MemoryCursor(&tit->second));
  }
  return Status::NotFound(StrCat("no index for family '", family_id, "'"));
}

size_t InMemoryBackend::TotalEntries() const {
  size_t n = 0;
  for (const auto& [id, idx] : template_indices_) n += idx.TotalEntries();
  for (const auto& [id, idx] : constraint_indices_) n += idx.total_entries;
  return n;
}

size_t InMemoryBackend::ConstraintEntries() const {
  size_t n = 0;
  for (const auto& [id, idx] : constraint_indices_) n += idx.total_entries;
  return n;
}

Result<size_t> InMemoryBackend::FamilyEntries(const std::string& family_id) const {
  auto tit = template_indices_.find(family_id);
  if (tit != template_indices_.end()) return tit->second.TotalEntries();
  auto cit = constraint_indices_.find(family_id);
  if (cit != constraint_indices_.end()) return cit->second.total_entries;
  return Status::NotFound(StrCat("no index for family '", family_id, "'"));
}

Status InMemoryBackend::ApplyInsert(const std::string& relation, const Tuple& row,
                                    AccessSchema* schema) {
  for (auto& [id, index] : template_indices_) {
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema->FindMutableFamily(id));
    if (family->relation != relation) continue;
    BEAS_RETURN_IF_ERROR(index.ApplyInsert(row, family));
  }
  for (auto& [id, index] : constraint_indices_) {
    if (index.spec.relation != relation) continue;
    Tuple xkey;
    for (size_t i : index.x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : index.y_idx) y.push_back(row[i]);
    auto& list = index.groups[xkey];
    bool found = false;
    for (auto& [t, m] : list) {
      if (t == y) {
        m += 1;
        found = true;
        break;
      }
    }
    if (!found) {
      if (list.size() + 1 > index.spec.n) {
        return Status::InvalidArgument(
            StrCat("insert violates constraint ", index.spec.Id()));
      }
      list.emplace_back(std::move(y), 1);
      index.total_entries += 1;
    }
  }
  return Status::OK();
}

Status InMemoryBackend::ApplyRemove(const std::string& relation, const Tuple& row,
                                    AccessSchema* schema) {
  for (auto& [id, index] : template_indices_) {
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema->FindMutableFamily(id));
    if (family->relation != relation) continue;
    BEAS_RETURN_IF_ERROR(index.ApplyRemove(row, family));
  }
  for (auto& [id, index] : constraint_indices_) {
    if (index.spec.relation != relation) continue;
    Tuple xkey;
    for (size_t i : index.x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : index.y_idx) y.push_back(row[i]);
    auto git = index.groups.find(xkey);
    if (git == index.groups.end()) {
      return Status::NotFound("ApplyRemove: no such constraint group");
    }
    auto& list = git->second;
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->first == y) {
        if (--it->second == 0) {
          list.erase(it);
          index.total_entries -= 1;
        }
        break;
      }
    }
    if (list.empty()) index.groups.erase(git);
  }
  return Status::OK();
}

}  // namespace beas
