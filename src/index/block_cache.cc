#include "index/block_cache.h"

#include <algorithm>

namespace beas {

namespace {

/// Bookkeeping overhead charged per entry on top of the block bytes, so
/// that many tiny blocks cannot blow past the budget through map/list
/// nodes the byte count would otherwise ignore.
constexpr uint64_t kEntryOverhead = 64;

}  // namespace

BlockCache::BlockCache(uint64_t capacity_bytes, size_t shards)
    : capacity_(capacity_bytes), shards_(std::max<size_t>(1, shards)) {
  shard_capacity_ = capacity_ / shards_.size();
}

Result<std::shared_ptr<const std::string>> BlockCache::Get(uint64_t index,
                                                           const Loader& loader,
                                                           CacheCounters* counters) {
  Shard& shard = ShardFor(index);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(index);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) counters->hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.data;
    }
  }
  // Miss: load outside the shard lock (disk reads must not serialize
  // unrelated lookups). Two racing misses both load; last insert wins.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (counters != nullptr) counters->misses.fetch_add(1, std::memory_order_relaxed);
  BEAS_ASSIGN_OR_RETURN(std::string bytes, loader(index));
  auto data = std::make_shared<const std::string>(std::move(bytes));
  uint64_t charge = data->size() + kEntryOverhead;
  if (charge > shard_capacity_) return data;  // read-through: never overshoot
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(index);
  if (it != shard.map.end()) return it->second.data;  // racer beat us
  shard.lru.push_front(index);
  shard.map.emplace(index, Shard::Entry{data, shard.lru.begin(), charge});
  shard.bytes += charge;
  while (shard.bytes > shard_capacity_) {
    uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.map.find(victim);
    shard.bytes -= vit->second.charge;
    shard.map.erase(vit);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return data;
}

void BlockCache::InvalidateFrom(uint64_t first_block) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first >= first_block) {
        shard.bytes -= it->second.charge;
        shard.lru.erase(it->second.pos);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::Clear() { InvalidateFrom(0); }

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.capacity_bytes = capacity_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.resident_bytes += shard.bytes;
  }
  return out;
}

}  // namespace beas
