#include "index/index_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace beas {

void AccessMeter::StartQuery(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  accessed_ = 0;
  pending_.clear();
  deposited_.clear();
  commit_slot_ = 0;
  failed_ = false;
  failure_ = Status::OK();
}

Status AccessMeter::ChargeLocked(uint64_t n) {
  if (n > UINT64_MAX - accessed_) {
    // A wrapped counter would silently pass the budget check below;
    // clamp and fail regardless of enforcement.
    accessed_ = UINT64_MAX;
    return Status::OutOfBudget(
        StrCat("access counter overflow: charge of ", n, " tuples"));
  }
  accessed_ += n;
  if (budget_ > 0 && accessed_ > budget_) {
    return Status::OutOfBudget(
        StrCat("access budget exceeded: ", accessed_, " > ", budget_));
  }
  return Status::OK();
}

Status AccessMeter::Charge(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return ChargeLocked(n);
}

void AccessMeter::BeginDeposits(size_t n_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.assign(n_slots, {});
  deposited_.assign(n_slots, false);
  commit_slot_ = 0;
}

void AccessMeter::Deposit(size_t slot, std::vector<uint64_t> per_key_counts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= pending_.size() || deposited_[slot]) return;  // caller bug; harmless
  pending_[slot] = std::move(per_key_counts);
  deposited_[slot] = true;
  // Commit the newly contiguous prefix in slot order, key by key — the
  // exact charge stream a sequential execution would have issued. The
  // first failure freezes the counter; later deposits are discarded.
  while (commit_slot_ < pending_.size() && deposited_[commit_slot_]) {
    std::vector<uint64_t> counts = std::move(pending_[commit_slot_]);
    ++commit_slot_;
    if (failed_) continue;
    for (uint64_t n : counts) {
      Status st = ChargeLocked(n);
      if (!st.ok()) {
        failed_ = true;
        failure_ = std::move(st);
        break;
      }
    }
  }
}

bool AccessMeter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

Status AccessMeter::FinishDeposits() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return failure_;
  if (commit_slot_ < pending_.size()) {
    return Status::Internal("AccessMeter: missing deposits at finish");
  }
  return Status::OK();
}

uint64_t AccessMeter::accessed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accessed_;
}

uint64_t AccessMeter::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

Status IndexStore::Build(const Database& db,
                         const std::vector<FamilySpec>& template_families,
                         const std::vector<ConstraintSpec>& constraints) {
  schema_ = AccessSchema();
  template_indices_.clear();
  constraint_indices_.clear();

  for (const auto& spec : constraints) {
    BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(spec.relation));
    ConstraintIndex index;
    BEAS_ASSIGN_OR_RETURN(BoundFamily family, BuildConstraint(spec, *table, &index));
    BEAS_RETURN_IF_ERROR(schema_.AddFamily(std::move(family)));
    constraint_indices_.emplace(spec.Id(), std::move(index));
  }

  for (const auto& spec : template_families) {
    BEAS_ASSIGN_OR_RETURN(const Table* table, db.FindTable(spec.relation));
    TemplateIndex index;
    BEAS_ASSIGN_OR_RETURN(BoundFamily family, index.Build(spec, *table));
    BEAS_RETURN_IF_ERROR(schema_.AddFamily(std::move(family)));
    template_indices_.emplace(spec.Id(), std::move(index));
  }
  return Status::OK();
}

Result<BoundFamily> IndexStore::BuildConstraint(const ConstraintSpec& spec,
                                                const Table& table, ConstraintIndex* out) {
  const RelationSchema& schema = table.schema();
  out->spec = spec;
  for (const auto& x : spec.x_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(x));
    out->x_idx.push_back(i);
  }
  for (const auto& y : spec.y_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t i, schema.AttributeIndex(y));
    out->y_idx.push_back(i);
  }

  // Group, collapse duplicates, and validate the cardinality bound N.
  std::unordered_map<Tuple, std::unordered_map<Tuple, int64_t, TupleHasher>, TupleHasher>
      grouped;
  for (const auto& row : table.rows()) {
    Tuple xkey;
    xkey.reserve(out->x_idx.size());
    for (size_t i : out->x_idx) xkey.push_back(row[i]);
    Tuple y;
    y.reserve(out->y_idx.size());
    for (size_t i : out->y_idx) y.push_back(row[i]);
    grouped[std::move(xkey)][std::move(y)] += 1;
  }
  out->total_entries = 0;
  for (auto& [xkey, ys] : grouped) {
    if (ys.size() > spec.n) {
      return Status::InvalidArgument(
          StrCat("constraint ", spec.Id(), " violated: X-value ", TupleToString(xkey),
                 " has ", ys.size(), " distinct Y-values > N = ", spec.n));
    }
    auto& list = out->groups[xkey];
    list.reserve(ys.size());
    for (auto& [y, m] : ys) list.emplace_back(y, m);
    out->total_entries += list.size();
  }

  BoundFamily family;
  family.id = spec.Id();
  family.relation = spec.relation;
  family.x_attrs = spec.x_attrs;
  family.y_attrs = spec.y_attrs;
  family.is_constraint = true;
  family.constraint_n = spec.n;
  family.max_level = 0;
  family.level_resolution = {std::vector<double>(spec.y_attrs.size(), 0.0)};
  family.level_fanout = {spec.n};
  return family;
}

Result<std::vector<FetchEntry>> IndexStore::Fetch(const std::string& family_id, int level,
                                                  const Tuple& xkey) {
  return Fetch(family_id, level, xkey, &meter_);
}

Result<std::vector<FetchEntry>> IndexStore::Fetch(const std::string& family_id, int level,
                                                  const Tuple& xkey,
                                                  AccessMeter* meter) const {
  std::vector<FetchEntry> out;
  auto cit = constraint_indices_.find(family_id);
  if (cit != constraint_indices_.end()) {
    auto git = cit->second.groups.find(xkey);
    if (git != cit->second.groups.end()) {
      out.reserve(git->second.size());
      for (const auto& [y, m] : git->second) out.push_back(FetchEntry{&y, m});
    }
    if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge(out.size()));
    return out;
  }
  auto tit = template_indices_.find(family_id);
  if (tit == template_indices_.end()) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  tit->second.Fetch(xkey, level, &out);
  if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge(out.size()));
  return out;
}

Status IndexStore::FetchBatchImpl(const std::string& family_id, int level,
                                  const std::vector<const Tuple*>& xkeys,
                                  std::vector<std::vector<FetchEntry>>* out,
                                  AccessMeter* meter) const {
  out->clear();
  out->resize(xkeys.size());
  // The family is resolved once per batch (the per-probe cost FetchBatch
  // amortizes). With a meter, each key is charged as it is fetched, so
  // the access bound stays exactly as tight as the scalar Fetch loop —
  // on exhaustion the fetch stops at the first over-budget key, with
  // identical accessed_. Without one (the parallel executor), the same
  // entries come back in the same order and the caller charges through
  // the deposit protocol.
  auto cit = constraint_indices_.find(family_id);
  if (cit != constraint_indices_.end()) {
    for (size_t k = 0; k < xkeys.size(); ++k) {
      auto git = cit->second.groups.find(*xkeys[k]);
      if (git == cit->second.groups.end()) continue;
      std::vector<FetchEntry>& entries = (*out)[k];
      entries.reserve(git->second.size());
      for (const auto& [y, m] : git->second) entries.push_back(FetchEntry{&y, m});
      if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge(entries.size()));
    }
    return Status::OK();
  }
  auto tit = template_indices_.find(family_id);
  if (tit == template_indices_.end()) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  for (size_t k = 0; k < xkeys.size(); ++k) {
    tit->second.Fetch(*xkeys[k], level, &(*out)[k]);
    if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge((*out)[k].size()));
  }
  return Status::OK();
}

Status IndexStore::FetchBatch(const std::string& family_id, int level,
                              const std::vector<const Tuple*>& xkeys,
                              std::vector<std::vector<FetchEntry>>* out) {
  return FetchBatchImpl(family_id, level, xkeys, out, &meter_);
}

Status IndexStore::FetchBatch(const std::string& family_id, int level,
                              const std::vector<const Tuple*>& xkeys,
                              std::vector<std::vector<FetchEntry>>* out,
                              AccessMeter* meter) const {
  return FetchBatchImpl(family_id, level, xkeys, out, meter);
}

Status IndexStore::FetchBatchUnmetered(const std::string& family_id, int level,
                                       const std::vector<const Tuple*>& xkeys,
                                       std::vector<std::vector<FetchEntry>>* out) const {
  return FetchBatchImpl(family_id, level, xkeys, out, /*meter=*/nullptr);
}

size_t IndexStore::TotalEntries() const {
  size_t n = 0;
  for (const auto& [id, idx] : template_indices_) n += idx.TotalEntries();
  for (const auto& [id, idx] : constraint_indices_) n += idx.total_entries;
  return n;
}

size_t IndexStore::ConstraintEntries() const {
  size_t n = 0;
  for (const auto& [id, idx] : constraint_indices_) n += idx.total_entries;
  return n;
}

Result<size_t> IndexStore::FamilyEntries(const std::string& family_id) const {
  auto tit = template_indices_.find(family_id);
  if (tit != template_indices_.end()) return tit->second.TotalEntries();
  auto cit = constraint_indices_.find(family_id);
  if (cit != constraint_indices_.end()) return cit->second.total_entries;
  return Status::NotFound(StrCat("no index for family '", family_id, "'"));
}

Status IndexStore::ApplyInsert(const std::string& relation, const Tuple& row) {
  for (auto& [id, index] : template_indices_) {
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema_.FindMutableFamily(id));
    if (family->relation != relation) continue;
    BEAS_RETURN_IF_ERROR(index.ApplyInsert(row, family));
  }
  for (auto& [id, index] : constraint_indices_) {
    if (index.spec.relation != relation) continue;
    Tuple xkey;
    for (size_t i : index.x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : index.y_idx) y.push_back(row[i]);
    auto& list = index.groups[xkey];
    bool found = false;
    for (auto& [t, m] : list) {
      if (t == y) {
        m += 1;
        found = true;
        break;
      }
    }
    if (!found) {
      if (list.size() + 1 > index.spec.n) {
        return Status::InvalidArgument(
            StrCat("insert violates constraint ", index.spec.Id()));
      }
      list.emplace_back(std::move(y), 1);
      index.total_entries += 1;
    }
  }
  return Status::OK();
}

Status IndexStore::ApplyRemove(const std::string& relation, const Tuple& row) {
  for (auto& [id, index] : template_indices_) {
    BEAS_ASSIGN_OR_RETURN(BoundFamily* family, schema_.FindMutableFamily(id));
    if (family->relation != relation) continue;
    BEAS_RETURN_IF_ERROR(index.ApplyRemove(row, family));
  }
  for (auto& [id, index] : constraint_indices_) {
    if (index.spec.relation != relation) continue;
    Tuple xkey;
    for (size_t i : index.x_idx) xkey.push_back(row[i]);
    Tuple y;
    for (size_t i : index.y_idx) y.push_back(row[i]);
    auto git = index.groups.find(xkey);
    if (git == index.groups.end()) {
      return Status::NotFound("ApplyRemove: no such constraint group");
    }
    auto& list = git->second;
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->first == y) {
        if (--it->second == 0) {
          list.erase(it);
          index.total_entries -= 1;
        }
        break;
      }
    }
    if (list.empty()) index.groups.erase(git);
  }
  return Status::OK();
}

}  // namespace beas
