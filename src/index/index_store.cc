#include "index/index_store.h"

#include <utility>

#include "common/string_util.h"
#include "index/block_file.h"
#include "index/storage_backend.h"

namespace beas {

void AccessMeter::StartQuery(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  accessed_ = 0;
  pending_.clear();
  deposited_.clear();
  commit_slot_ = 0;
  failed_ = false;
  failure_ = Status::OK();
  cache_counters_.Reset();
}

Status AccessMeter::ChargeLocked(uint64_t n) {
  if (n > UINT64_MAX - accessed_) {
    // A wrapped counter would silently pass the budget check below;
    // clamp and fail regardless of enforcement.
    accessed_ = UINT64_MAX;
    return Status::OutOfBudget(
        StrCat("access counter overflow: charge of ", n, " tuples"));
  }
  accessed_ += n;
  if (budget_ > 0 && accessed_ > budget_) {
    return Status::OutOfBudget(
        StrCat("access budget exceeded: ", accessed_, " > ", budget_));
  }
  return Status::OK();
}

Status AccessMeter::Charge(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return ChargeLocked(n);
}

void AccessMeter::BeginDeposits(size_t n_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.assign(n_slots, {});
  deposited_.assign(n_slots, false);
  commit_slot_ = 0;
}

void AccessMeter::Deposit(size_t slot, std::vector<uint64_t> per_key_counts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= pending_.size() || deposited_[slot]) return;  // caller bug; harmless
  pending_[slot] = std::move(per_key_counts);
  deposited_[slot] = true;
  // Commit the newly contiguous prefix in slot order, key by key — the
  // exact charge stream a sequential execution would have issued. The
  // first failure freezes the counter; later deposits are discarded.
  while (commit_slot_ < pending_.size() && deposited_[commit_slot_]) {
    std::vector<uint64_t> counts = std::move(pending_[commit_slot_]);
    ++commit_slot_;
    if (failed_) continue;
    for (uint64_t n : counts) {
      Status st = ChargeLocked(n);
      if (!st.ok()) {
        failed_ = true;
        failure_ = std::move(st);
        break;
      }
    }
  }
}

bool AccessMeter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

Status AccessMeter::FinishDeposits() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return failure_;
  if (commit_slot_ < pending_.size()) {
    return Status::Internal("AccessMeter: missing deposits at finish");
  }
  return Status::OK();
}

uint64_t AccessMeter::accessed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accessed_;
}

uint64_t AccessMeter::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

namespace {

BlockFileOptions ToBlockFileOptions(const IndexStoreOptions& options) {
  BlockFileOptions out;
  out.path = options.path;
  out.block_bytes = options.block_bytes;
  out.cache_bytes = options.cache_bytes;
  out.cache_shards = options.cache_shards;
  return out;
}

}  // namespace

IndexStore::IndexStore() = default;
IndexStore::~IndexStore() = default;

Status IndexStore::Build(const Database& db,
                         const std::vector<FamilySpec>& template_families,
                         const std::vector<ConstraintSpec>& constraints) {
  return Build(db, template_families, constraints, IndexStoreOptions{});
}

Status IndexStore::Build(const Database& db,
                         const std::vector<FamilySpec>& template_families,
                         const std::vector<ConstraintSpec>& constraints,
                         const IndexStoreOptions& options) {
  schema_ = AccessSchema();
  std::unique_ptr<StorageBackend> backend;
  if (options.backend == IndexBackendKind::kBlockFile) {
    if (options.path.empty()) {
      return Status::InvalidArgument("block-file index backend requires a path");
    }
    backend = std::make_unique<BlockFileBackend>(ToBlockFileOptions(options));
  } else {
    backend = std::make_unique<InMemoryBackend>();
  }
  BEAS_RETURN_IF_ERROR(backend->Build(db, template_families, constraints, &schema_));
  backend_ = std::move(backend);
  return Status::OK();
}

Status IndexStore::Open(const IndexStoreOptions& options) {
  if (options.backend != IndexBackendKind::kBlockFile) {
    return Status::InvalidArgument("IndexStore::Open requires the block-file backend");
  }
  if (options.path.empty()) {
    return Status::InvalidArgument("block-file index backend requires a path");
  }
  schema_ = AccessSchema();
  auto backend = std::make_unique<BlockFileBackend>(ToBlockFileOptions(options));
  BEAS_RETURN_IF_ERROR(backend->Open(&schema_));
  backend_ = std::move(backend);
  return Status::OK();
}

Result<FetchResult> IndexStore::Fetch(const std::string& family_id, int level,
                                      const Tuple& xkey) {
  return Fetch(family_id, level, xkey, &meter_);
}

Result<FetchResult> IndexStore::Fetch(const std::string& family_id, int level,
                                      const Tuple& xkey, AccessMeter* meter) const {
  if (backend_ == nullptr) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  FetchResult result;
  BEAS_ASSIGN_OR_RETURN(
      std::unique_ptr<StorageBackend::FamilyCursor> cursor,
      backend_->OpenFamily(family_id, meter != nullptr ? meter->cache_counters() : nullptr));
  BEAS_RETURN_IF_ERROR(cursor->Fetch(xkey, level, &result.entries, &result.pins));
  if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge(result.entries.size()));
  return result;
}

Status IndexStore::FetchBatchImpl(const std::string& family_id, int level,
                                  const std::vector<const Tuple*>& xkeys,
                                  std::vector<std::vector<FetchEntry>>* out, FetchPins* pins,
                                  AccessMeter* meter, CacheCounters* counters) const {
  out->clear();
  out->resize(xkeys.size());
  if (backend_ == nullptr) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  // The family is resolved once per batch (the per-probe cost FetchBatch
  // amortizes). With a meter, each key is charged as it is fetched, so
  // the access bound stays exactly as tight as the scalar Fetch loop —
  // on exhaustion the fetch stops at the first over-budget key, with
  // identical accessed_. Without one (the parallel executor), the same
  // entries come back in the same order and the caller charges through
  // the deposit protocol.
  BEAS_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend::FamilyCursor> cursor,
                        backend_->OpenFamily(family_id, counters));
  for (size_t k = 0; k < xkeys.size(); ++k) {
    BEAS_RETURN_IF_ERROR(cursor->Fetch(*xkeys[k], level, &(*out)[k], pins));
    if (meter != nullptr) BEAS_RETURN_IF_ERROR(meter->Charge((*out)[k].size()));
  }
  return Status::OK();
}

Status IndexStore::FetchBatch(const std::string& family_id, int level,
                              const std::vector<const Tuple*>& xkeys,
                              std::vector<std::vector<FetchEntry>>* out, FetchPins* pins) {
  return FetchBatchImpl(family_id, level, xkeys, out, pins, &meter_,
                        meter_.cache_counters());
}

Status IndexStore::FetchBatch(const std::string& family_id, int level,
                              const std::vector<const Tuple*>& xkeys,
                              std::vector<std::vector<FetchEntry>>* out, FetchPins* pins,
                              AccessMeter* meter) const {
  return FetchBatchImpl(family_id, level, xkeys, out, pins, meter,
                        meter != nullptr ? meter->cache_counters() : nullptr);
}

Status IndexStore::FetchBatchUnmetered(const std::string& family_id, int level,
                                       const std::vector<const Tuple*>& xkeys,
                                       std::vector<std::vector<FetchEntry>>* out,
                                       FetchPins* pins, CacheCounters* counters) const {
  return FetchBatchImpl(family_id, level, xkeys, out, pins, /*meter=*/nullptr, counters);
}

size_t IndexStore::TotalEntries() const {
  return backend_ != nullptr ? backend_->TotalEntries() : 0;
}

size_t IndexStore::ConstraintEntries() const {
  return backend_ != nullptr ? backend_->ConstraintEntries() : 0;
}

Result<size_t> IndexStore::FamilyEntries(const std::string& family_id) const {
  if (backend_ == nullptr) {
    return Status::NotFound(StrCat("no index for family '", family_id, "'"));
  }
  return backend_->FamilyEntries(family_id);
}

Status IndexStore::ApplyInsert(const std::string& relation, const Tuple& row) {
  if (backend_ == nullptr) return Status::OK();  // empty store: nothing to maintain
  return backend_->ApplyInsert(relation, row, &schema_);
}

Status IndexStore::ApplyRemove(const std::string& relation, const Tuple& row) {
  if (backend_ == nullptr) return Status::OK();
  return backend_->ApplyRemove(relation, row, &schema_);
}

BlockCacheStats IndexStore::cache_stats() const {
  return backend_ != nullptr ? backend_->cache_stats() : BlockCacheStats{};
}

uint64_t IndexStore::disk_bytes() const {
  return backend_ != nullptr ? backend_->disk_bytes() : 0;
}

}  // namespace beas
