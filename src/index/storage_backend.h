// The pluggable storage layer under IndexStore: every physical fetch,
// size accounting and incremental maintenance call goes through this
// interface, while the metering loop — the part that defines accessed
// counts and the OutOfBudget failure point — stays in IndexStore, shared
// verbatim by every backend. Two implementations exist:
//
//  - InMemoryBackend (here): the original hash-map + K-D-tree store,
//    extracted behavior-identically.
//  - BlockFileBackend (block_file.h): the same structures serialized into
//    fixed-size checksummed blocks on disk, read through a bounded LRU
//    block cache.
//
// Contract: for one database + family set, all backends return identical
// entries in identical order for every (family, level, xkey) fetch — the
// property the conformance suite and property test P9 assert — so answers
// are bit-identical regardless of where the bytes live.

#ifndef BEAS_INDEX_STORAGE_BACKEND_H_
#define BEAS_INDEX_STORAGE_BACKEND_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accschema/access_schema.h"
#include "common/result.h"
#include "index/block_cache.h"
#include "index/template_index.h"
#include "storage/database.h"

namespace beas {

/// \brief Physical storage of all index families of one database.
///
/// Thread-safety mirrors IndexStore's: OpenFamily and cursor fetches are
/// const reads, safe from any number of query threads at once; Build /
/// ApplyInsert / ApplyRemove require exclusive access (the drain-then-
/// mutate protocol of the query service's epoch guard).
class StorageBackend {
 public:
  /// A per-batch fetch handle with the family resolved once — the
  /// dominant per-probe overhead FetchBatch amortizes.
  class FamilyCursor {
   public:
    virtual ~FamilyCursor() = default;

    /// Appends the entries for (\p xkey, \p level) to \p out (an unknown
    /// X-value yields none) and any keep-alive pins to \p pins. The
    /// entries stay valid while the pins (and the backend) live.
    virtual Status Fetch(const Tuple& xkey, int level, std::vector<FetchEntry>* out,
                         FetchPins* pins) = 0;
  };

  virtual ~StorageBackend() = default;

  /// Builds all indices and populates \p schema with the bound families
  /// (constraints first, then template families; validation included).
  virtual Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
                       const std::vector<ConstraintSpec>& constraints,
                       AccessSchema* schema) = 0;

  /// Resolves \p family_id for a batch of fetches; NotFound for unknown
  /// ids. \p counters (nullable) receives block-cache hit/miss counts for
  /// the cursor's reads (backends without a cache ignore it).
  virtual Result<std::unique_ptr<FamilyCursor>> OpenFamily(const std::string& family_id,
                                                           CacheCounters* counters) const = 0;

  virtual size_t TotalEntries() const = 0;
  virtual size_t ConstraintEntries() const = 0;
  virtual Result<size_t> FamilyEntries(const std::string& family_id) const = 0;

  /// Incremental maintenance; updates the affected families in \p schema.
  virtual Status ApplyInsert(const std::string& relation, const Tuple& row,
                             AccessSchema* schema) = 0;
  virtual Status ApplyRemove(const std::string& relation, const Tuple& row,
                             AccessSchema* schema) = 0;

  /// Store-wide block-cache counters; all zero for cache-less backends.
  virtual BlockCacheStats cache_stats() const { return BlockCacheStats{}; }

  /// On-disk footprint in bytes; 0 for purely in-memory backends.
  virtual uint64_t disk_bytes() const { return 0; }
};

/// \brief The original in-memory store: a TemplateIndex per template
/// family and an exact group map per constraint family.
class InMemoryBackend : public StorageBackend {
 public:
  /// Exact (d = 0) index of one declared constraint family.
  struct ConstraintIndex {
    ConstraintSpec spec;
    std::vector<size_t> x_idx;
    std::vector<size_t> y_idx;
    /// Distinct Y-tuples with multiplicities, per X-key.
    std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHasher> groups;
    size_t total_entries = 0;
  };

  Status Build(const Database& db, const std::vector<FamilySpec>& template_families,
               const std::vector<ConstraintSpec>& constraints, AccessSchema* schema) override;
  Result<std::unique_ptr<FamilyCursor>> OpenFamily(const std::string& family_id,
                                                   CacheCounters* counters) const override;
  size_t TotalEntries() const override;
  size_t ConstraintEntries() const override;
  Result<size_t> FamilyEntries(const std::string& family_id) const override;
  Status ApplyInsert(const std::string& relation, const Tuple& row,
                     AccessSchema* schema) override;
  Status ApplyRemove(const std::string& relation, const Tuple& row,
                     AccessSchema* schema) override;

  /// Structural accessors for the block-file backend, which serializes a
  /// freshly built in-memory store block by block (guaranteeing identical
  /// trees and group lists by construction).
  const std::map<std::string, TemplateIndex>& template_indices() const {
    return template_indices_;
  }
  const std::map<std::string, ConstraintIndex>& constraint_indices() const {
    return constraint_indices_;
  }

 private:
  Result<BoundFamily> BuildConstraint(const ConstraintSpec& spec, const Table& table,
                                      ConstraintIndex* out);

  std::map<std::string, TemplateIndex> template_indices_;  // by family id
  std::map<std::string, ConstraintIndex> constraint_indices_;
};

}  // namespace beas

#endif  // BEAS_INDEX_STORAGE_BACKEND_H_
