// K-D tree over tuples, the index structure behind access templates
// (paper Section 4.1 "Implementation").
//
// Tuples (distinct Y-values with multiplicities) live at the leaves; each
// internal node carries a *representative* — an actual tuple from its
// subtree — plus the total represented multiplicity. The index for
// template level k is the depth-k frontier: all nodes at depth k plus
// leaves shallower than k. The frontier has at most 2^k nodes, covers
// every tuple, and its per-attribute subtree spreads give the resolution
// d_k. At k = depth the frontier is exactly the distinct tuples (d = 0).

#ifndef BEAS_INDEX_KD_TREE_H_
#define BEAS_INDEX_KD_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/codec.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace beas {

/// \brief A K-D tree over a bag of equal-arity tuples.
///
/// Split dimensions are chosen greedily by largest scaled spread, which
/// maximizes the resolution gain per level (the property the paper cites
/// for choosing K-D trees). The schema provides per-attribute distances.
class KdTree {
 public:
  /// One entry of a level-k frontier: a representative tuple and the
  /// number of base tuples (counting duplicates) it stands for.
  struct FrontierEntry {
    const Tuple* representative;
    int64_t count;
  };

  KdTree() = default;

  /// Builds the tree over \p rows (a bag; duplicates are collapsed into
  /// multiplicities). \p attrs are the AttributeDefs of the tuple columns.
  void Build(const std::vector<AttributeDef>& attrs, const std::vector<Tuple>& rows);

  /// True once Build has been called with at least one row.
  bool built() const { return !nodes_.empty(); }

  /// Depth of the tree: frontier(depth()) is the exact distinct-tuple set.
  int depth() const { return depth_; }

  /// Number of distinct tuples stored.
  size_t distinct_count() const { return tuples_.size(); }

  /// Total multiplicity (number of base tuples represented).
  int64_t total_count() const { return nodes_.empty() ? 0 : nodes_[0].count; }

  /// Number of tree nodes (the index-size unit of Fig 6(k)).
  size_t node_count() const { return nodes_.size(); }

  /// Appends the level-\p k frontier entries to \p out (k clamped to
  /// [0, depth()]).
  void Frontier(int k, std::vector<FrontierEntry>* out) const;

  /// Per-attribute resolution of the level-\p k frontier: the maximum
  /// subtree spread (in distance units) over frontier nodes. Infinite for
  /// trivial-metric attributes whose subtree holds distinct values.
  std::vector<double> FrontierResolution(int k) const;

  /// Number of entries in the level-\p k frontier (<= 2^k).
  size_t FrontierSize(int k) const;

  /// Serializes the tree (distinct tuples, multiplicities, nodes, depth)
  /// for the block-file backend. DecodeFrom reproduces Frontier /
  /// FrontierResolution / FrontierSize output bit-identically. Attribute
  /// defs are not stored (per-node spreads are precomputed), so a decoded
  /// tree serves fetches but is not re-Build()-able — incremental rebuilds
  /// go through the raw Y-row bags instead.
  void EncodeTo(std::string* dst) const;
  static Result<KdTree> DecodeFrom(ByteReader* reader);

 private:
  struct Node {
    int32_t rep = -1;    ///< index into tuples_
    int64_t count = 0;   ///< total multiplicity of the subtree
    int32_t left = -1;   ///< child node index, -1 for leaf
    int32_t right = -1;
    std::vector<double> spread;  ///< per-attribute subtree spread
  };

  int32_t BuildNode(std::vector<int32_t>::iterator begin,
                    std::vector<int32_t>::iterator end, int depth);

  std::vector<AttributeDef> attrs_;
  std::vector<Tuple> tuples_;    ///< distinct tuples
  std::vector<int64_t> mults_;   ///< multiplicity per distinct tuple
  std::vector<Node> nodes_;      ///< nodes_[0] is the root
  int depth_ = 0;
};

}  // namespace beas

#endif  // BEAS_INDEX_KD_TREE_H_
