#include "index/kd_tree.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "types/distance.h"

namespace beas {

namespace {

// Per-attribute spread of a set of tuples, in distance units: for numeric
// metrics (max - min) * scale; for trivial metrics 0 when all values are
// equal and +inf otherwise.
std::vector<double> ComputeSpread(const std::vector<AttributeDef>& attrs,
                                  const std::vector<Tuple>& tuples,
                                  std::vector<int32_t>::iterator begin,
                                  std::vector<int32_t>::iterator end) {
  std::vector<double> spread(attrs.size(), 0.0);
  for (size_t a = 0; a < attrs.size(); ++a) {
    const DistanceSpec& spec = attrs[a].distance;
    if (spec.kind == DistanceKind::kNumeric) {
      double lo = kInfDistance, hi = -kInfDistance;
      bool numeric_ok = true;
      for (auto it = begin; it != end; ++it) {
        const Value& v = tuples[static_cast<size_t>(*it)][a];
        if (!v.is_numeric()) {
          numeric_ok = false;
          break;
        }
        lo = std::min(lo, v.numeric());
        hi = std::max(hi, v.numeric());
      }
      if (numeric_ok) {
        spread[a] = (end - begin) <= 1 ? 0.0 : (hi - lo) * spec.scale;
        continue;
      }
    }
    // Trivial metric (or non-numeric data): 0 iff all equal.
    const Value& first = tuples[static_cast<size_t>(*begin)][a];
    for (auto it = begin; it != end; ++it) {
      if (!(tuples[static_cast<size_t>(*it)][a] == first)) {
        spread[a] = kInfDistance;
        break;
      }
    }
  }
  return spread;
}

}  // namespace

void KdTree::Build(const std::vector<AttributeDef>& attrs, const std::vector<Tuple>& rows) {
  attrs_ = attrs;
  tuples_.clear();
  mults_.clear();
  nodes_.clear();
  depth_ = 0;
  if (rows.empty()) return;

  // Collapse duplicates into multiplicities (templates return *distinct*
  // representative tuples; counts feed sum/count/avg, paper Section 7).
  std::unordered_map<Tuple, int64_t, TupleHasher> mult;
  for (const auto& r : rows) mult[r] += 1;
  tuples_.reserve(mult.size());
  mults_.reserve(mult.size());
  for (auto& [t, m] : mult) {
    tuples_.push_back(t);
    mults_.push_back(m);
  }

  std::vector<int32_t> ids(tuples_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  nodes_.reserve(2 * tuples_.size());
  BuildNode(ids.begin(), ids.end(), 0);
  // BuildNode appends the root last; rotate it to the front for the
  // conventional nodes_[0] == root layout.
  std::swap(nodes_.front(), nodes_.back());
  // Fix child pointers that referenced the old positions.
  int32_t old_root = static_cast<int32_t>(nodes_.size()) - 1;
  for (auto& n : nodes_) {
    if (n.left == 0) n.left = old_root;
    if (n.right == 0) n.right = old_root;
  }
}

int32_t KdTree::BuildNode(std::vector<int32_t>::iterator begin,
                          std::vector<int32_t>::iterator end, int depth) {
  assert(begin != end);
  Node node;
  node.spread = ComputeSpread(attrs_, tuples_, begin, end);
  node.count = 0;
  for (auto it = begin; it != end; ++it) node.count += mults_[static_cast<size_t>(*it)];

  if (end - begin == 1) {
    node.rep = *begin;
    depth_ = std::max(depth_, depth);
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size()) - 1;
  }

  // Split dimension: largest spread wins; among infinite (trivial-metric)
  // spreads, rotate by depth so every such attribute converges.
  size_t dim = 0;
  {
    std::vector<size_t> inf_dims;
    double best = -1.0;
    for (size_t a = 0; a < attrs_.size(); ++a) {
      if (node.spread[a] == kInfDistance) {
        inf_dims.push_back(a);
      } else if (node.spread[a] > best) {
        best = node.spread[a];
        dim = a;
      }
    }
    if (!inf_dims.empty()) {
      dim = inf_dims[static_cast<size_t>(depth) % inf_dims.size()];
    }
  }

  // Sort by the split dimension and cut at the value boundary nearest the
  // midpoint: equal values never straddle the cut, so trivial-metric
  // attributes become uniform (spread 0) within log2(#distinct) levels.
  std::sort(begin, end, [&](int32_t a, int32_t b) {
    return tuples_[static_cast<size_t>(a)][dim] < tuples_[static_cast<size_t>(b)][dim];
  });
  auto n = end - begin;
  auto half = n / 2;
  std::ptrdiff_t best_cut = -1;
  for (std::ptrdiff_t i = 1; i < n; ++i) {
    if (!(tuples_[static_cast<size_t>(*(begin + i - 1))][dim] ==
          tuples_[static_cast<size_t>(*(begin + i))][dim])) {
      if (best_cut < 0 || std::abs(i - half) < std::abs(best_cut - half)) {
        best_cut = i;
      }
    }
  }
  if (best_cut < 0) best_cut = half;  // all equal on dim (defensive)
  auto mid = begin + best_cut;

  int32_t left = BuildNode(begin, mid, depth + 1);
  int32_t right = BuildNode(mid, end, depth + 1);
  node.left = left;
  node.right = right;
  // The representative is a real tuple drawn from the subtree (the left
  // child's representative), so every fetched answer exists in D.
  node.rep = nodes_[static_cast<size_t>(left)].rep;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

void KdTree::Frontier(int k, std::vector<FrontierEntry>* out) const {
  if (nodes_.empty()) return;
  k = std::clamp(k, 0, depth_);
  // Iterative DFS to depth k.
  std::vector<std::pair<int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (d == k || n.left < 0) {
      out->push_back(FrontierEntry{&tuples_[static_cast<size_t>(n.rep)], n.count});
      continue;
    }
    stack.push_back({n.left, d + 1});
    stack.push_back({n.right, d + 1});
  }
}

std::vector<double> KdTree::FrontierResolution(int k) const {
  std::vector<double> res(attrs_.size(), 0.0);
  if (nodes_.empty()) return res;
  k = std::clamp(k, 0, depth_);
  std::vector<std::pair<int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (d == k || n.left < 0) {
      for (size_t a = 0; a < res.size(); ++a) res[a] = std::max(res[a], n.spread[a]);
      continue;
    }
    stack.push_back({n.left, d + 1});
    stack.push_back({n.right, d + 1});
  }
  return res;
}

void KdTree::EncodeTo(std::string* dst) const {
  PutU32(dst, static_cast<uint32_t>(depth_));
  PutU32(dst, static_cast<uint32_t>(tuples_.size()));
  for (size_t i = 0; i < tuples_.size(); ++i) {
    PutTuple(dst, tuples_[i]);
    PutI64(dst, mults_[i]);
  }
  PutU32(dst, static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    PutU32(dst, static_cast<uint32_t>(n.rep));
    PutI64(dst, n.count);
    PutU32(dst, static_cast<uint32_t>(n.left));
    PutU32(dst, static_cast<uint32_t>(n.right));
    PutU32(dst, static_cast<uint32_t>(n.spread.size()));
    for (double s : n.spread) PutF64(dst, s);
  }
}

Result<KdTree> KdTree::DecodeFrom(ByteReader* reader) {
  KdTree tree;
  BEAS_ASSIGN_OR_RETURN(uint32_t depth, reader->ReadU32());
  tree.depth_ = static_cast<int>(depth);
  BEAS_ASSIGN_OR_RETURN(uint32_t n_tuples, reader->ReadU32());
  tree.tuples_.reserve(n_tuples);
  tree.mults_.reserve(n_tuples);
  for (uint32_t i = 0; i < n_tuples; ++i) {
    BEAS_ASSIGN_OR_RETURN(Tuple t, reader->ReadTuple());
    BEAS_ASSIGN_OR_RETURN(int64_t m, reader->ReadI64());
    tree.tuples_.push_back(std::move(t));
    tree.mults_.push_back(m);
  }
  BEAS_ASSIGN_OR_RETURN(uint32_t n_nodes, reader->ReadU32());
  tree.nodes_.reserve(n_nodes);
  for (uint32_t i = 0; i < n_nodes; ++i) {
    Node n;
    BEAS_ASSIGN_OR_RETURN(uint32_t rep, reader->ReadU32());
    n.rep = static_cast<int32_t>(rep);
    BEAS_ASSIGN_OR_RETURN(n.count, reader->ReadI64());
    BEAS_ASSIGN_OR_RETURN(uint32_t left, reader->ReadU32());
    n.left = static_cast<int32_t>(left);
    BEAS_ASSIGN_OR_RETURN(uint32_t right, reader->ReadU32());
    n.right = static_cast<int32_t>(right);
    BEAS_ASSIGN_OR_RETURN(uint32_t n_spread, reader->ReadU32());
    n.spread.reserve(n_spread);
    for (uint32_t a = 0; a < n_spread; ++a) {
      BEAS_ASSIGN_OR_RETURN(double s, reader->ReadF64());
      n.spread.push_back(s);
    }
    // Bound-check the structural indices so a corrupted (but checksum-
    // colliding) record cannot produce out-of-range accesses later.
    if (n.rep < 0 || static_cast<uint32_t>(n.rep) >= n_tuples ||
        n.left >= static_cast<int32_t>(n_nodes) || n.right >= static_cast<int32_t>(n_nodes)) {
      return Status::DataLoss("kd-tree record: node index out of range");
    }
    tree.nodes_.push_back(std::move(n));
  }
  // Attribute defs are not serialized (decoded trees are fetch-only), but
  // FrontierResolution sizes its result by attrs_.size() — restore the
  // arity with placeholder defs so resolutions keep their width.
  if (!tree.nodes_.empty()) {
    tree.attrs_.resize(tree.nodes_[0].spread.size());
  }
  return tree;
}

size_t KdTree::FrontierSize(int k) const {
  if (nodes_.empty()) return 0;
  k = std::clamp(k, 0, depth_);
  size_t count = 0;
  std::vector<std::pair<int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (d == k || n.left < 0) {
      ++count;
      continue;
    }
    stack.push_back({n.left, d + 1});
    stack.push_back({n.right, d + 1});
  }
  return count;
}

}  // namespace beas
