// Random query generator reproducing the Section 8 workload recipe:
// per dataset, queries with #-sel in [3,7] selection predicates, #-prod
// in [0,4] products (joins along key/FK edges), 0-3 set differences, and
// ~30% aggregate queries; constants are drawn from the data.

#ifndef BEAS_WORKLOAD_QUERY_GEN_H_
#define BEAS_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "ra/analysis.h"
#include "workload/workload.h"

namespace beas {

/// Knobs for the generator (defaults follow the paper).
struct QueryGenConfig {
  int min_sel = 3;
  int max_sel = 7;
  int min_prod = 0;
  int max_prod = 4;
  double frac_agg = 0.3;   ///< fraction of aggregate queries
  double frac_diff = 0.5;  ///< fraction of non-aggregate queries with EXCEPT
  int max_diff = 3;
  uint64_t seed = 42;
};

/// A generated query with the knobs it realizes.
struct GeneratedQuery {
  std::string sql;
  int n_sel = 0;
  int n_prod = 0;
  int n_diff = 0;
  bool has_agg = false;
  AggFunc agg = AggFunc::kCount;
};

/// Generates \p count queries over \p dataset. Deterministic in the seed.
std::vector<GeneratedQuery> GenerateQueries(const Dataset& dataset, int count,
                                            const QueryGenConfig& config = {});

}  // namespace beas

#endif  // BEAS_WORKLOAD_QUERY_GEN_H_
