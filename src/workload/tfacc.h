// Synthetic stand-in for the paper's TFACC dataset (UK road accidents [3]
// + NaPTAN public-transport access nodes [4], Section 8). Reproduces the
// shape the experiments need: an accident fact table with lat/lon
// geometry and categorical severity codes, per-accident vehicle and
// casualty detail tables with bounded fanout, and a NaPTAN-style node
// table sharing the coordinate space. See DESIGN.md ("substitutions").

#ifndef BEAS_WORKLOAD_TFACC_H_
#define BEAS_WORKLOAD_TFACC_H_

#include "workload/workload.h"

namespace beas {

/// Generates the TFACC stand-in with roughly \p n_accidents accident rows
/// (vehicles/casualties scale with it; naptan nodes are ~n/10).
Dataset MakeTfacc(int64_t n_accidents, uint64_t seed);

}  // namespace beas

#endif  // BEAS_WORKLOAD_TFACC_H_
