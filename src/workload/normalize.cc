#include "workload/normalize.h"

#include <vector>

namespace beas {

void NormalizeNumericDistances(Database* db) {
  std::vector<std::string> names;
  for (const auto& [name, table] : db->tables()) names.push_back(name);
  for (const auto& name : names) {
    Table* table = *db->FindMutableTable(name);
    RelationSchema schema = table->schema();
    std::vector<AttributeDef> attrs = schema.attributes();
    for (size_t a = 0; a < attrs.size(); ++a) {
      if (attrs[a].distance.kind != DistanceKind::kNumeric) continue;
      double lo = 1e300, hi = -1e300;
      bool any = false;
      for (const auto& row : table->rows()) {
        if (!row[a].is_numeric()) continue;
        lo = std::min(lo, row[a].numeric());
        hi = std::max(hi, row[a].numeric());
        any = true;
      }
      if (any && hi > lo) attrs[a].distance.scale = 1.0 / (hi - lo);
    }
    (void)table->SetSchema(RelationSchema(schema.name(), std::move(attrs)));
  }
}

}  // namespace beas
