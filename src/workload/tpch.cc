#include "workload/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workload/normalize.h"
#include "common/string_util.h"

namespace beas {

namespace {

constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
constexpr const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM",
    "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation, dbgen order.
constexpr int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                                     "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                                       "5-LOW"};
constexpr const char* kTypes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                                  "PROMO"};
constexpr const char* kMaterials[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
constexpr const char* kFinishes[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                     "BRUSHED"};

// Dates are int64 day offsets from 1992-01-01; dbgen spans ~7 years.
constexpr int64_t kDateSpan = 2406;

DistanceSpec Triv() { return DistanceSpec::Trivial(); }
DistanceSpec Num(double scale = 1.0) { return DistanceSpec::Numeric(scale); }

}  // namespace

Dataset MakeTpch(double sf, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "TPCH";

  auto count = [&](double base, double minimum) {
    return static_cast<int64_t>(std::max(minimum, std::round(base * sf)));
  };
  int64_t n_supplier = count(10000, 10);
  int64_t n_customer = count(150000, 15);
  int64_t n_part = count(200000, 20);
  int64_t n_orders = count(1500000, 30);

  // region
  {
    Table t(RelationSchema("region", {{"r_regionkey", DataType::kInt64, Triv()},
                                      {"r_name", DataType::kString, Triv()}}));
    for (int64_t r = 0; r < 5; ++r) t.AppendUnchecked({Value(r), Value(kRegions[r])});
    (void)ds.db.AddTable(std::move(t));
  }
  // nation
  {
    Table t(RelationSchema("nation", {{"n_nationkey", DataType::kInt64, Triv()},
                                      {"n_name", DataType::kString, Triv()},
                                      {"n_regionkey", DataType::kInt64, Triv()}}));
    for (int64_t n = 0; n < 25; ++n) {
      t.AppendUnchecked({Value(n), Value(kNations[n]),
                         Value(static_cast<int64_t>(kNationRegion[n]))});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // supplier
  {
    Table t(RelationSchema("supplier", {{"s_suppkey", DataType::kInt64, Triv()},
                                        {"s_name", DataType::kString, Triv()},
                                        {"s_nationkey", DataType::kInt64, Triv()},
                                        {"s_acctbal", DataType::kDouble, Num()}}));
    for (int64_t s = 0; s < n_supplier; ++s) {
      t.AppendUnchecked({Value(s), Value(StrCat("Supplier#", s)),
                         Value(rng.Uniform(0, 24)),
                         Value(std::round(rng.UniformReal(-999.99, 9999.99) * 100) / 100)});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // customer
  {
    Table t(RelationSchema("customer", {{"c_custkey", DataType::kInt64, Triv()},
                                        {"c_name", DataType::kString, Triv()},
                                        {"c_nationkey", DataType::kInt64, Triv()},
                                        {"c_mktsegment", DataType::kString, Triv()},
                                        {"c_acctbal", DataType::kDouble, Num()}}));
    for (int64_t c = 0; c < n_customer; ++c) {
      t.AppendUnchecked({Value(c), Value(StrCat("Customer#", c)),
                         Value(rng.Uniform(0, 24)), Value(kSegments[rng.Uniform(0, 4)]),
                         Value(std::round(rng.UniformReal(-999.99, 9999.99) * 100) / 100)});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // part
  std::vector<double> retail_price(static_cast<size_t>(n_part));
  {
    Table t(RelationSchema("part", {{"p_partkey", DataType::kInt64, Triv()},
                                    {"p_name", DataType::kString, Triv()},
                                    {"p_brand", DataType::kString, Triv()},
                                    {"p_type", DataType::kString, Triv()},
                                    {"p_size", DataType::kInt64, Num()},
                                    {"p_retailprice", DataType::kDouble, Num()}}));
    for (int64_t p = 0; p < n_part; ++p) {
      // dbgen: retailprice = (90000 + (partkey/10) % 20001 + 100*(partkey % 1000))/100
      double price = (90000.0 + static_cast<double>((p / 10) % 20001) +
                      100.0 * static_cast<double>(p % 1000)) /
                     100.0;
      retail_price[static_cast<size_t>(p)] = price;
      t.AppendUnchecked(
          {Value(p), Value(StrCat("part_", rng.String(8))),
           Value(StrCat("Brand#", rng.Uniform(1, 5), rng.Uniform(1, 5))),
           Value(StrCat(kTypes[rng.Uniform(0, 5)], " ", kMaterials[rng.Uniform(0, 4)], " ",
                        kFinishes[rng.Uniform(0, 4)])),
           Value(rng.Uniform(1, 50)), Value(price)});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // partsupp: 4 suppliers per part, as in dbgen.
  {
    Table t(RelationSchema("partsupp", {{"ps_partkey", DataType::kInt64, Triv()},
                                        {"ps_suppkey", DataType::kInt64, Triv()},
                                        {"ps_availqty", DataType::kInt64, Num()},
                                        {"ps_supplycost", DataType::kDouble, Num()}}));
    for (int64_t p = 0; p < n_part; ++p) {
      for (int64_t j = 0; j < 4; ++j) {
        int64_t s = (p + j * (n_supplier / 4 + 1)) % n_supplier;
        t.AppendUnchecked({Value(p), Value(s), Value(rng.Uniform(1, 9999)),
                           Value(std::round(rng.UniformReal(1.0, 1000.0) * 100) / 100)});
      }
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // orders + lineitem
  {
    Table orders(RelationSchema("orders", {{"o_orderkey", DataType::kInt64, Triv()},
                                           {"o_custkey", DataType::kInt64, Triv()},
                                           {"o_orderstatus", DataType::kString, Triv()},
                                           {"o_totalprice", DataType::kDouble, Num()},
                                           {"o_orderdate", DataType::kInt64, Num()},
                                           {"o_orderpriority", DataType::kString, Triv()}}));
    Table lineitem(
        RelationSchema("lineitem", {{"l_orderkey", DataType::kInt64, Triv()},
                                    {"l_linenumber", DataType::kInt64, Triv()},
                                    {"l_partkey", DataType::kInt64, Triv()},
                                    {"l_suppkey", DataType::kInt64, Triv()},
                                    {"l_quantity", DataType::kInt64, Num()},
                                    {"l_extendedprice", DataType::kDouble, Num(0.01)},
                                    {"l_discount", DataType::kDouble, Num(100.0)},
                                    {"l_tax", DataType::kDouble, Num(100.0)},
                                    {"l_returnflag", DataType::kString, Triv()},
                                    {"l_linestatus", DataType::kString, Triv()},
                                    {"l_shipdate", DataType::kInt64, Num()}}));
    for (int64_t o = 0; o < n_orders; ++o) {
      int64_t orderdate = rng.Uniform(0, kDateSpan - 151);
      int64_t lines = rng.Uniform(1, 7);
      double total = 0;
      for (int64_t l = 0; l < lines; ++l) {
        int64_t partkey = rng.Uniform(0, n_part - 1);
        int64_t suppkey = (partkey + rng.Uniform(0, 3) * (n_supplier / 4 + 1)) % n_supplier;
        int64_t qty = rng.Uniform(1, 50);
        double extended =
            static_cast<double>(qty) * retail_price[static_cast<size_t>(partkey)];
        double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
        int64_t shipdate = orderdate + rng.Uniform(1, 121);
        bool shipped = shipdate <= kDateSpan - 30;
        const char* flag = !shipped ? "N" : (rng.Bernoulli(0.25) ? "R" : "A");
        lineitem.AppendUnchecked({Value(o), Value(l + 1), Value(partkey), Value(suppkey),
                                  Value(qty), Value(std::round(extended * 100) / 100),
                                  Value(discount), Value(tax), Value(flag),
                                  Value(shipped ? "F" : "O"), Value(shipdate)});
        total += extended * (1 - discount) * (1 + tax);
      }
      const char* status = rng.Bernoulli(0.49) ? "F" : (rng.Bernoulli(0.5) ? "O" : "P");
      orders.AppendUnchecked({Value(o), Value(rng.Uniform(0, n_customer - 1)),
                              Value(status), Value(std::round(total * 100) / 100),
                              Value(orderdate), Value(kPriorities[rng.Uniform(0, 4)])});
    }
    (void)ds.db.AddTable(std::move(orders));
    (void)ds.db.AddTable(std::move(lineitem));
  }

  // --- Access constraints (the paper picked 9 for TPCH, Section 8). ---
  ds.constraints = {
      {"region", {"r_regionkey"}, {"r_name"}, 1},
      {"nation", {"n_nationkey"}, {"n_name", "n_regionkey"}, 1},
      {"nation", {"n_regionkey"}, {"n_nationkey", "n_name"}, 5},
      {"supplier", {"s_suppkey"}, {"s_name", "s_nationkey", "s_acctbal"}, 1},
      {"customer", {"c_custkey"}, {"c_name", "c_nationkey", "c_mktsegment", "c_acctbal"}, 1},
      {"part", {"p_partkey"}, {"p_name", "p_brand", "p_type", "p_size", "p_retailprice"}, 1},
      {"partsupp", {"ps_partkey"}, {"ps_suppkey", "ps_availqty", "ps_supplycost"}, 4},
      {"orders",
       {"o_orderkey"},
       {"o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"},
       1},
      {"lineitem",
       {"l_orderkey"},
       {"l_linenumber", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice",
        "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate"},
       7},
  };

  // --- Workload spec for the query generator. ---
  ds.spec.joins = {
      {"customer", "c_nationkey", "nation", "n_nationkey"},
      {"supplier", "s_nationkey", "nation", "n_nationkey"},
      {"nation", "n_regionkey", "region", "r_regionkey"},
      {"orders", "o_custkey", "customer", "c_custkey"},
      {"lineitem", "l_orderkey", "orders", "o_orderkey"},
      {"lineitem", "l_partkey", "part", "p_partkey"},
      {"lineitem", "l_suppkey", "supplier", "s_suppkey"},
      {"partsupp", "ps_partkey", "part", "p_partkey"},
      {"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
  };
  ds.spec.filters = {
      {"customer", "c_mktsegment", true},   {"customer", "c_acctbal", false},
      {"orders", "o_orderstatus", true},    {"orders", "o_orderpriority", true},
      {"orders", "o_totalprice", false},    {"orders", "o_orderdate", false},
      {"lineitem", "l_returnflag", true},   {"lineitem", "l_linestatus", true},
      {"lineitem", "l_quantity", false},    {"lineitem", "l_shipdate", false},
      {"part", "p_size", false},            {"part", "p_retailprice", false},
      {"supplier", "s_acctbal", false},     {"partsupp", "ps_availqty", false},
      {"partsupp", "ps_supplycost", false}, {"region", "r_name", true},
  };
  ds.spec.group_attrs = {
      {"customer", "c_mktsegment", true}, {"orders", "o_orderstatus", true},
      {"orders", "o_orderpriority", true}, {"lineitem", "l_returnflag", true},
      {"lineitem", "l_linestatus", true},  {"nation", "n_name", true},
  };
  ds.spec.agg_attrs = {
      {"lineitem", "l_quantity", false},   {"lineitem", "l_extendedprice", false},
      {"orders", "o_totalprice", false},   {"part", "p_retailprice", false},
      {"partsupp", "ps_availqty", false},  {"supplier", "s_acctbal", false},
  };
  ds.spec.output_prefs = {"orders.o_totalprice", "orders.o_orderdate",
                          "lineitem.l_quantity", "lineitem.l_shipdate",
                          "part.p_retailprice", "part.p_size",
                          "customer.c_acctbal",  "supplier.s_acctbal"};

  ds.spec.point_keys = {
      {"orders", "o_orderkey", true},   {"customer", "c_custkey", true},
      {"part", "p_partkey", true},      {"supplier", "s_suppkey", true},
      {"lineitem", "l_orderkey", true}, {"nation", "n_nationkey", true},
  };
  ds.qcs = {
      {"lineitem", {"l_returnflag", "l_linestatus"}},
      {"orders", {"o_orderstatus"}},
      {"orders", {"o_orderpriority"}},
      {"customer", {"c_mktsegment"}},
  };
  NormalizeNumericDistances(&ds.db);
  return ds;
}

}  // namespace beas
