#include "workload/airca.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workload/normalize.h"
#include "common/string_util.h"

namespace beas {

namespace {
DistanceSpec Triv() { return DistanceSpec::Trivial(); }
DistanceSpec Num(double scale = 1.0) { return DistanceSpec::Numeric(scale); }
}  // namespace

Dataset MakeAirca(int64_t n_flights, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "AIRCA";

  int64_t n_carriers = 18;
  int64_t n_airports = std::max<int64_t>(20, n_flights / 400);
  int64_t n_years = 6;

  // carriers(carrier_id, name, lcc)
  {
    Table t(RelationSchema("carriers", {{"carrier_id", DataType::kInt64, Triv()},
                                        {"carrier_name", DataType::kString, Triv()},
                                        {"lcc", DataType::kInt64, Triv()}}));
    for (int64_t c = 0; c < n_carriers; ++c) {
      t.AppendUnchecked(
          {Value(c), Value(StrCat("Carrier_", rng.String(5))), Value(rng.Uniform(0, 1))});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // airports(airport_id, state, lat, lon)
  std::vector<std::pair<double, double>> coords;
  {
    Table t(RelationSchema("airports", {{"airport_id", DataType::kInt64, Triv()},
                                        {"state", DataType::kInt64, Triv()},
                                        {"lat", DataType::kDouble, Num()},
                                        {"lon", DataType::kDouble, Num()}}));
    for (int64_t a = 0; a < n_airports; ++a) {
      double lat = rng.UniformReal(25, 49);
      double lon = rng.UniformReal(-124, -67);
      coords.emplace_back(lat, lon);
      t.AppendUnchecked({Value(a), Value(rng.Uniform(0, 49)), Value(lat), Value(lon)});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // routes(route_id, origin, dest, distance): at most 6 routes per origin.
  int64_t n_routes = n_airports * 4;
  {
    Table t(RelationSchema("routes", {{"route_id", DataType::kInt64, Triv()},
                                      {"origin", DataType::kInt64, Triv()},
                                      {"dest", DataType::kInt64, Triv()},
                                      {"distance", DataType::kDouble, Num()}}));
    for (int64_t r = 0; r < n_routes; ++r) {
      int64_t origin = r % n_airports;
      int64_t dest = rng.Uniform(0, n_airports - 1);
      if (dest == origin) dest = (dest + 1) % n_airports;
      auto [lat1, lon1] = coords[static_cast<size_t>(origin)];
      auto [lat2, lon2] = coords[static_cast<size_t>(dest)];
      double dist = 69.0 * std::hypot(lat1 - lat2, (lon1 - lon2) * 0.8);
      t.AppendUnchecked({Value(r), Value(origin), Value(dest), Value(std::round(dist))});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // flights(flight_id, carrier_id, route_id, year, month, dep_delay,
  //         arr_delay, cancelled)
  {
    Table t(RelationSchema("flights", {{"flight_id", DataType::kInt64, Triv()},
                                       {"carrier_id", DataType::kInt64, Triv()},
                                       {"route_id", DataType::kInt64, Triv()},
                                       {"year", DataType::kInt64, Num()},
                                       {"month", DataType::kInt64, Num()},
                                       {"dep_delay", DataType::kDouble, Num()},
                                       {"arr_delay", DataType::kDouble, Num()},
                                       {"cancelled", DataType::kInt64, Triv()}}));
    for (int64_t f = 0; f < n_flights; ++f) {
      int64_t carrier = rng.Zipf(n_carriers, 1.1) - 1;  // big carriers dominate
      int64_t route = rng.Zipf(n_routes, 1.05) - 1;     // hub routes dominate
      // Delays: mostly small, heavy right tail (lognormal-ish).
      double dep = std::round(std::exp(rng.Normal(2.0, 1.1)) - 8.0);
      double arr = std::round(dep + rng.Normal(0, 12));
      bool cancelled = rng.Bernoulli(0.015);
      t.AppendUnchecked({Value(f), Value(carrier), Value(route),
                         Value(2009 + rng.Uniform(0, n_years - 1)), Value(rng.Uniform(1, 12)),
                         Value(dep), Value(arr), Value(static_cast<int64_t>(cancelled))});
    }
    (void)ds.db.AddTable(std::move(t));
  }
  // carrier_stats(carrier_id, year, month, passengers, freight)
  {
    Table t(RelationSchema("carrier_stats", {{"carrier_id", DataType::kInt64, Triv()},
                                             {"year", DataType::kInt64, Num()},
                                             {"month", DataType::kInt64, Num()},
                                             {"passengers", DataType::kDouble, Num()},
                                             {"freight", DataType::kDouble, Num()}}));
    for (int64_t c = 0; c < n_carriers; ++c) {
      double scale = rng.UniformReal(0.3, 3.0);
      for (int64_t y = 0; y < n_years; ++y) {
        for (int64_t m = 1; m <= 12; ++m) {
          t.AppendUnchecked({Value(c), Value(2009 + y), Value(m),
                             Value(std::round(scale * rng.UniformReal(50000, 900000))),
                             Value(std::round(scale * rng.UniformReal(1000, 90000)))});
        }
      }
    }
    (void)ds.db.AddTable(std::move(t));
  }

  ds.constraints = {
      {"carriers", {"carrier_id"}, {"carrier_name", "lcc"}, 1},
      {"airports", {"airport_id"}, {"state", "lat", "lon"}, 1},
      {"routes", {"route_id"}, {"origin", "dest", "distance"}, 1},
      {"routes", {"origin"}, {"route_id", "dest", "distance"}, 6},
      {"carrier_stats",
       {"carrier_id", "year", "month"},
       {"passengers", "freight"},
       1},
      {"carrier_stats", {"carrier_id", "year"}, {"month", "passengers", "freight"}, 12},
      {"flights", {"flight_id"},
       {"carrier_id", "route_id", "year", "month", "dep_delay", "arr_delay", "cancelled"},
       1},
  };

  ds.spec.joins = {
      {"flights", "carrier_id", "carriers", "carrier_id"},
      {"flights", "route_id", "routes", "route_id"},
      {"routes", "origin", "airports", "airport_id"},
      {"carrier_stats", "carrier_id", "carriers", "carrier_id"},
  };
  ds.spec.filters = {
      {"flights", "year", false},        {"flights", "month", false},
      {"flights", "dep_delay", false},   {"flights", "arr_delay", false},
      {"flights", "cancelled", true},    {"routes", "distance", false},
      {"airports", "state", true},       {"carriers", "lcc", true},
      {"carrier_stats", "year", false},  {"carrier_stats", "passengers", false},
  };
  ds.spec.group_attrs = {
      {"flights", "year", true},
      {"flights", "month", true},
      {"carriers", "lcc", true},
      {"airports", "state", true},
  };
  ds.spec.agg_attrs = {
      {"flights", "dep_delay", false},
      {"flights", "arr_delay", false},
      {"routes", "distance", false},
      {"carrier_stats", "passengers", false},
      {"carrier_stats", "freight", false},
  };
  ds.spec.output_prefs = {"flights.dep_delay", "flights.arr_delay", "flights.year",
                          "routes.distance", "carrier_stats.passengers",
                          "airports.lat", "airports.lon"};

  ds.spec.point_keys = {
      {"carriers", "carrier_id", true},
      {"airports", "airport_id", true},
      {"routes", "route_id", true},
      {"routes", "origin", true},
      {"flights", "flight_id", true},
      {"carrier_stats", "carrier_id", true},
  };
  ds.qcs = {
      {"flights", {"year", "month"}},
      {"flights", {"cancelled"}},
      {"carriers", {"lcc"}},
  };
  NormalizeNumericDistances(&ds.db);
  return ds;
}

}  // namespace beas
