#include "workload/tfacc.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workload/normalize.h"
#include "common/string_util.h"

namespace beas {

namespace {
DistanceSpec Triv() { return DistanceSpec::Trivial(); }
DistanceSpec Num(double scale = 1.0) { return DistanceSpec::Numeric(scale); }
}  // namespace

Dataset MakeTfacc(int64_t n_accidents, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "TFACC";

  int64_t n_districts = 40;

  // districts(district_id, region)
  {
    Table t(RelationSchema("districts", {{"district_id", DataType::kInt64, Triv()},
                                         {"region", DataType::kInt64, Triv()}}));
    for (int64_t d = 0; d < n_districts; ++d) {
      t.AppendUnchecked({Value(d), Value(rng.Uniform(0, 10))});
    }
    (void)ds.db.AddTable(std::move(t));
  }

  // accidents(acc_id, district_id, severity, year, road_class,
  //           speed_limit, lat, lon, num_vehicles, num_casualties)
  std::vector<int64_t> veh_count, cas_count;
  {
    Table t(RelationSchema("accidents",
                           {{"acc_id", DataType::kInt64, Triv()},
                            {"district_id", DataType::kInt64, Triv()},
                            {"severity", DataType::kInt64, Num()},
                            {"year", DataType::kInt64, Num()},
                            {"road_class", DataType::kInt64, Triv()},
                            {"speed_limit", DataType::kInt64, Num()},
                            {"lat", DataType::kDouble, Num(69.0)},
                            {"lon", DataType::kDouble, Num(43.0)},
                            {"num_vehicles", DataType::kInt64, Num()},
                            {"num_casualties", DataType::kInt64, Num()}}));
    static const int64_t kSpeeds[] = {20, 30, 40, 50, 60, 70};
    for (int64_t a = 0; a < n_accidents; ++a) {
      // Severity: 1 fatal (rare), 2 serious, 3 slight (dominant).
      int64_t severity = rng.Bernoulli(0.013) ? 1 : (rng.Bernoulli(0.14) ? 2 : 3);
      int64_t nveh = std::min<int64_t>(8, 1 + rng.Zipf(4, 1.6));
      int64_t ncas = std::min<int64_t>(8, rng.Zipf(5, 1.8));
      veh_count.push_back(nveh);
      cas_count.push_back(ncas);
      t.AppendUnchecked({Value(a), Value(rng.Uniform(0, n_districts - 1)), Value(severity),
                         Value(1995 + rng.Uniform(0, 10)), Value(rng.Uniform(1, 6)),
                         Value(kSpeeds[rng.Uniform(0, 5)]), Value(rng.UniformReal(50, 58.6)),
                         Value(rng.UniformReal(-6.0, 1.7)), Value(nveh), Value(ncas)});
    }
    (void)ds.db.AddTable(std::move(t));
  }

  // vehicles(acc_id, veh_seq, veh_type, driver_age)
  {
    Table t(RelationSchema("vehicles", {{"acc_id", DataType::kInt64, Triv()},
                                        {"veh_seq", DataType::kInt64, Triv()},
                                        {"veh_type", DataType::kInt64, Triv()},
                                        {"driver_age", DataType::kInt64, Num()}}));
    for (int64_t a = 0; a < n_accidents; ++a) {
      for (int64_t v = 0; v < veh_count[static_cast<size_t>(a)]; ++v) {
        t.AppendUnchecked({Value(a), Value(v + 1), Value(rng.Uniform(1, 9)),
                           Value(std::max<int64_t>(17, std::llround(rng.Normal(38, 15))))});
      }
    }
    (void)ds.db.AddTable(std::move(t));
  }

  // casualties(acc_id, cas_seq, cas_class, severity, age)
  {
    Table t(RelationSchema("casualties", {{"acc_id", DataType::kInt64, Triv()},
                                          {"cas_seq", DataType::kInt64, Triv()},
                                          {"cas_class", DataType::kInt64, Triv()},
                                          {"severity", DataType::kInt64, Num()},
                                          {"age", DataType::kInt64, Num()}}));
    for (int64_t a = 0; a < n_accidents; ++a) {
      for (int64_t c = 0; c < cas_count[static_cast<size_t>(a)]; ++c) {
        int64_t severity = rng.Bernoulli(0.02) ? 1 : (rng.Bernoulli(0.16) ? 2 : 3);
        t.AppendUnchecked({Value(a), Value(c + 1), Value(rng.Uniform(1, 3)), Value(severity),
                           Value(std::max<int64_t>(0, std::llround(rng.Normal(34, 18))))});
      }
    }
    (void)ds.db.AddTable(std::move(t));
  }

  // naptan(stop_id, stop_type, lat, lon)
  {
    Table t(RelationSchema("naptan", {{"stop_id", DataType::kInt64, Triv()},
                                      {"stop_type", DataType::kInt64, Triv()},
                                      {"lat", DataType::kDouble, Num(69.0)},
                                      {"lon", DataType::kDouble, Num(43.0)}}));
    int64_t n_stops = std::max<int64_t>(20, n_accidents / 10);
    for (int64_t s = 0; s < n_stops; ++s) {
      t.AppendUnchecked({Value(s), Value(rng.Uniform(1, 4)), Value(rng.UniformReal(50, 58.6)),
                         Value(rng.UniformReal(-6.0, 1.7))});
    }
    (void)ds.db.AddTable(std::move(t));
  }

  ds.constraints = {
      {"districts", {"district_id"}, {"region"}, 1},
      {"accidents",
       {"acc_id"},
       {"district_id", "severity", "year", "road_class", "speed_limit", "lat", "lon",
        "num_vehicles", "num_casualties"},
       1},
      {"vehicles", {"acc_id"}, {"veh_seq", "veh_type", "driver_age"}, 8},
      {"casualties", {"acc_id"}, {"cas_seq", "cas_class", "severity", "age"}, 8},
      {"naptan", {"stop_id"}, {"stop_type", "lat", "lon"}, 1},
  };

  ds.spec.joins = {
      {"vehicles", "acc_id", "accidents", "acc_id"},
      {"casualties", "acc_id", "accidents", "acc_id"},
      {"accidents", "district_id", "districts", "district_id"},
  };
  ds.spec.filters = {
      {"accidents", "severity", false},    {"accidents", "year", false},
      {"accidents", "road_class", true},   {"accidents", "speed_limit", false},
      {"accidents", "num_vehicles", false}, {"accidents", "num_casualties", false},
      {"vehicles", "veh_type", true},      {"vehicles", "driver_age", false},
      {"casualties", "cas_class", true},   {"casualties", "age", false},
      {"districts", "region", true},       {"naptan", "stop_type", true},
  };
  ds.spec.group_attrs = {
      {"accidents", "road_class", true}, {"accidents", "speed_limit", true},
      {"accidents", "year", true},       {"districts", "region", true},
      {"vehicles", "veh_type", true},
  };
  ds.spec.agg_attrs = {
      {"accidents", "num_casualties", false},
      {"accidents", "num_vehicles", false},
      {"vehicles", "driver_age", false},
      {"casualties", "age", false},
      {"accidents", "speed_limit", false},
  };
  ds.spec.output_prefs = {"accidents.speed_limit", "accidents.year",
                          "accidents.num_casualties", "accidents.severity",
                          "vehicles.driver_age", "casualties.age"};

  ds.spec.point_keys = {
      {"accidents", "acc_id", true},
      {"vehicles", "acc_id", true},
      {"casualties", "acc_id", true},
      {"districts", "district_id", true},
      {"naptan", "stop_id", true},
  };
  ds.qcs = {
      {"accidents", {"year", "road_class"}},
      {"accidents", {"speed_limit"}},
      {"vehicles", {"veh_type"}},
  };
  NormalizeNumericDistances(&ds.db);
  return ds;
}

}  // namespace beas
