#include "workload/query_gen.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace beas {

namespace {

struct ChosenRelations {
  std::vector<std::string> relations;          // in join order
  std::map<std::string, std::string> alias;    // relation -> alias
  std::vector<std::string> join_conditions;    // "a.x = b.y"
};

// Picks a connected chain of relations along the dataset's join edges.
ChosenRelations PickRelations(const Dataset& ds, int want, Rng* rng) {
  ChosenRelations out;
  std::set<std::string> chosen;
  // Seed with a relation that has join edges if we need more than one.
  std::vector<std::string> all;
  for (const auto& [name, t] : ds.db.tables()) all.push_back(name);
  std::string first = want > 1 && !ds.spec.joins.empty()
                          ? (rng->Bernoulli(0.5) ? rng->Pick(ds.spec.joins).rel_a
                                                 : rng->Pick(ds.spec.joins).rel_b)
                          : rng->Pick(all);
  out.relations.push_back(first);
  chosen.insert(first);
  while (static_cast<int>(out.relations.size()) < want) {
    // Candidate edges touching a chosen relation and a new one.
    std::vector<const JoinEdge*> candidates;
    for (const auto& e : ds.spec.joins) {
      bool a_in = chosen.count(e.rel_a) > 0, b_in = chosen.count(e.rel_b) > 0;
      if (a_in != b_in) candidates.push_back(&e);
    }
    if (candidates.empty()) break;
    const JoinEdge* e = candidates[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(candidates.size()) - 1))];
    std::string next = chosen.count(e->rel_a) > 0 ? e->rel_b : e->rel_a;
    out.relations.push_back(next);
    chosen.insert(next);
  }
  // Aliases: first letters + index for uniqueness.
  std::set<std::string> used_aliases;
  for (const auto& rel : out.relations) {
    std::string a(1, rel[0]);
    int i = 1;
    while (used_aliases.count(a) > 0) a = StrCat(std::string(1, rel[0]), i++);
    used_aliases.insert(a);
    out.alias[rel] = a;
  }
  // Join conditions along edges internal to the chosen set.
  for (const auto& e : ds.spec.joins) {
    if (chosen.count(e.rel_a) > 0 && chosen.count(e.rel_b) > 0) {
      out.join_conditions.push_back(StrCat(out.alias[e.rel_a], ".", e.attr_a, " = ",
                                           out.alias[e.rel_b], ".", e.attr_b));
    }
  }
  return out;
}

// Samples an attribute value from the data.
Value SampleValue(const Dataset& ds, const std::string& rel, const std::string& attr,
                  Rng* rng) {
  auto table = ds.db.FindTable(rel);
  if (!table.ok() || (*table)->empty()) return Value(int64_t{0});
  auto idx = (*table)->schema().FindAttribute(attr);
  if (!idx) return Value(int64_t{0});
  const Tuple& row =
      (*table)->row(static_cast<size_t>(rng->Uniform(0, (*table)->size() - 1)));
  return row[*idx];
}

std::string Literal(const Value& v) {
  if (v.is_string()) {
    std::string escaped;
    for (char c : v.as_string()) {
      escaped += c;
      if (c == '\'') escaped += '\'';
    }
    return StrCat("'", escaped, "'");
  }
  return v.ToString();
}

// Builds the WHERE filters (non-join selection predicates). With
// probability `point_prob` the first filter is a point predicate on a
// constraint-covered key (the paper draws half the query attributes from
// the access constraints; cf. Example 1's "f.pid = p0"), which lets the
// chase start a constraint chain.
std::vector<std::string> MakeFilters(const Dataset& ds, const ChosenRelations& rels,
                                     int n_sel, double point_prob, Rng* rng) {
  std::vector<const WorkloadAttr*> pool;
  for (const auto& f : ds.spec.filters) {
    if (rels.alias.count(f.relation) > 0) pool.push_back(&f);
  }
  std::vector<std::string> filters;
  if (n_sel > 0 && rng->Bernoulli(point_prob)) {
    std::vector<const WorkloadAttr*> keys;
    for (const auto& k : ds.spec.point_keys) {
      if (rels.alias.count(k.relation) > 0) keys.push_back(&k);
    }
    if (!keys.empty()) {
      const WorkloadAttr* k = keys[static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(keys.size()) - 1))];
      Value v = SampleValue(ds, k->relation, k->attr, rng);
      filters.push_back(
          StrCat(rels.alias.at(k->relation), ".", k->attr, " = ", Literal(v)));
    }
  }
  if (pool.empty()) return filters;
  while (static_cast<int>(filters.size()) < n_sel) {
    const WorkloadAttr* f =
        pool[static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
    std::string lhs = StrCat(rels.alias.at(f->relation), ".", f->attr);
    if (f->categorical) {
      Value v = SampleValue(ds, f->relation, f->attr, rng);
      filters.push_back(StrCat(lhs, " = ", Literal(v)));
    } else {
      // Bias toward permissive ranges (max-of-2 for <=, min-of-2 for >=):
      // expected per-predicate selectivity ~2/3, so conjunctions of up to
      // 7 predicates still leave answers to approximate.
      Value v1 = SampleValue(ds, f->relation, f->attr, rng);
      Value v2 = SampleValue(ds, f->relation, f->attr, rng);
      bool le = rng->Bernoulli(0.5);
      Value v = v1;
      if (v1.is_numeric() && v2.is_numeric()) {
        bool pick_first = le ? v2.numeric() < v1.numeric() : v1.numeric() < v2.numeric();
        v = pick_first ? v1 : v2;
      }
      filters.push_back(StrCat(lhs, " ", le ? "<=" : ">=", " ", Literal(v)));
    }
  }
  return filters;
}

// Output attributes: prefer the dataset's preferred (numeric) outputs.
std::vector<std::string> MakeOutputs(const Dataset& ds, const ChosenRelations& rels,
                                     int want, Rng* rng) {
  std::vector<std::string> prefs;
  for (const auto& p : ds.spec.output_prefs) {
    size_t dot = p.find('.');
    std::string rel = p.substr(0, dot);
    if (rels.alias.count(rel) > 0) {
      prefs.push_back(StrCat(rels.alias.at(rel), ".", p.substr(dot + 1)));
    }
  }
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < want && !prefs.empty()) {
    std::string pick =
        prefs[static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(prefs.size()) - 1))];
    if (std::find(out.begin(), out.end(), pick) == out.end()) out.push_back(pick);
    if (out.size() == prefs.size()) break;
  }
  if (out.empty()) {
    // Fall back to any filterable attribute of a chosen relation.
    for (const auto& f : ds.spec.filters) {
      if (rels.alias.count(f.relation) > 0) {
        out.push_back(StrCat(rels.alias.at(f.relation), ".", f.attr));
        break;
      }
    }
  }
  return out;
}

std::string FromClause(const ChosenRelations& rels) {
  std::vector<std::string> parts;
  for (const auto& rel : rels.relations) {
    parts.push_back(StrCat(rel, " as ", rels.alias.at(rel)));
  }
  return Join(parts, ", ");
}

}  // namespace

std::vector<GeneratedQuery> GenerateQueries(const Dataset& ds, int count,
                                            const QueryGenConfig& config) {
  Rng rng(config.seed);
  std::vector<GeneratedQuery> queries;
  queries.reserve(static_cast<size_t>(count));

  while (static_cast<int>(queries.size()) < count) {
    GeneratedQuery gq;
    int want_rel =
        static_cast<int>(rng.Uniform(config.min_prod, config.max_prod)) + 1;
    ChosenRelations rels = PickRelations(ds, want_rel, &rng);
    gq.n_prod = static_cast<int>(rels.relations.size()) - 1;
    gq.n_sel = static_cast<int>(rng.Uniform(config.min_sel, config.max_sel));
    std::vector<std::string> filters = MakeFilters(ds, rels, gq.n_sel, 0.45, &rng);
    gq.n_sel = static_cast<int>(filters.size());
    std::vector<std::string> where = rels.join_conditions;
    for (const auto& f : filters) where.push_back(f);

    gq.has_agg = rng.Bernoulli(config.frac_agg);
    if (gq.has_agg) {
      // Grouping and aggregation attrs available on the chosen relations?
      std::vector<const WorkloadAttr*> groups, values;
      for (const auto& g : ds.spec.group_attrs) {
        if (rels.alias.count(g.relation) > 0) groups.push_back(&g);
      }
      for (const auto& v : ds.spec.agg_attrs) {
        if (rels.alias.count(v.relation) > 0) values.push_back(&v);
      }
      if (groups.empty() || values.empty()) {
        gq.has_agg = false;
      } else {
        const WorkloadAttr* g = groups[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(groups.size()) - 1))];
        const WorkloadAttr* v = values[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(values.size()) - 1))];
        static const AggFunc kAggs[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                                        AggFunc::kMin, AggFunc::kMax};
        gq.agg = kAggs[rng.Uniform(0, 4)];
        std::string gattr = StrCat(rels.alias.at(g->relation), ".", g->attr);
        std::string vattr = StrCat(rels.alias.at(v->relation), ".", v->attr);
        gq.sql = StrCat("select ", gattr, ", ", AggFuncToString(gq.agg), "(", vattr,
                        ") from ", FromClause(rels));
        if (!where.empty()) gq.sql += StrCat(" where ", Join(where, " and "));
        gq.sql += StrCat(" group by ", gattr);
        queries.push_back(std::move(gq));
        continue;
      }
    }

    // Non-aggregate: projection, possibly with EXCEPT blocks.
    std::vector<std::string> outputs = MakeOutputs(ds, rels, rng.Bernoulli(0.5) ? 2 : 1,
                                                   &rng);
    if (outputs.empty()) continue;
    gq.sql = StrCat("select ", Join(outputs, ", "), " from ", FromClause(rels));
    if (!where.empty()) gq.sql += StrCat(" where ", Join(where, " and "));

    if (rng.Bernoulli(config.frac_diff)) {
      gq.n_diff = static_cast<int>(rng.Uniform(1, config.max_diff));
      // EXCEPT blocks project the same attributes from their home
      // relations under fresh filters.
      for (int d = 0; d < gq.n_diff; ++d) {
        // Relations that own the output attributes.
        std::set<std::string> needed_rels;
        std::vector<std::string> out2;
        for (const auto& o : outputs) {
          std::string alias = o.substr(0, o.find('.'));
          for (const auto& [rel, a] : rels.alias) {
            if (a == alias) needed_rels.insert(rel);
          }
        }
        ChosenRelations rels2;
        for (const auto& rel : needed_rels) {
          rels2.relations.push_back(rel);
          rels2.alias[rel] = rels.alias.at(rel);
        }
        // Keep join conditions among the needed relations.
        for (const auto& e : ds.spec.joins) {
          if (needed_rels.count(e.rel_a) > 0 && needed_rels.count(e.rel_b) > 0) {
            rels2.join_conditions.push_back(StrCat(rels2.alias[e.rel_a], ".", e.attr_a,
                                                   " = ", rels2.alias[e.rel_b], ".",
                                                   e.attr_b));
          }
        }
        std::vector<std::string> f2 = MakeFilters(ds, rels2, 2, 0.0, &rng);
        std::vector<std::string> where2 = rels2.join_conditions;
        for (const auto& f : f2) where2.push_back(f);
        gq.sql += StrCat(" except select ", Join(outputs, ", "), " from ",
                         FromClause(rels2));
        if (!where2.empty()) gq.sql += StrCat(" where ", Join(where2, " and "));
      }
    }
    queries.push_back(std::move(gq));
  }
  return queries;
}

}  // namespace beas
