// Synthetic stand-in for the paper's AIRCA dataset (US flight on-time
// performance [1] + carrier statistics [2], Section 8). The real data is
// not redistributable here; this generator reproduces the schema shape
// the experiments need: multi-table key/FK joins, numeric delay/distance
// measures with realistic skew, and monthly carrier statistics. See
// DESIGN.md ("substitutions").

#ifndef BEAS_WORKLOAD_AIRCA_H_
#define BEAS_WORKLOAD_AIRCA_H_

#include "workload/workload.h"

namespace beas {

/// Generates the AIRCA stand-in with roughly \p n_flights flight rows
/// (plus carriers, airports, routes and carrier_stats dimension tables).
Dataset MakeAirca(int64_t n_flights, uint64_t seed);

}  // namespace beas

#endif  // BEAS_WORKLOAD_AIRCA_H_
