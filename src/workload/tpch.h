// A TPC-H dbgen-style generator (the paper's synthetic dataset, Section
// 8): the eight standard relations with their key/foreign-key structure
// and dbgen-like value distributions, scaled by a fractional scale factor.
// Text columns are simplified (random words instead of the dbgen grammar);
// see DESIGN.md for the substitution notes.

#ifndef BEAS_WORKLOAD_TPCH_H_
#define BEAS_WORKLOAD_TPCH_H_

#include "workload/workload.h"

namespace beas {

/// Generates TPC-H at scale factor \p sf (sf=1 is the canonical 1GB
/// scale; benches use small fractions). Deterministic in \p seed.
Dataset MakeTpch(double sf, uint64_t seed);

}  // namespace beas

#endif  // BEAS_WORKLOAD_TPCH_H_
