// Workload descriptors shared by the dataset generators and the random
// query generator (Section 8 "Queries").

#ifndef BEAS_WORKLOAD_WORKLOAD_H_
#define BEAS_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "accschema/access_schema.h"
#include "baselines/baselines.h"
#include "storage/database.h"

namespace beas {

/// A joinable attribute pair (a key/foreign-key edge).
struct JoinEdge {
  std::string rel_a, attr_a;
  std::string rel_b, attr_b;
};

/// An attribute usable in selections / grouping / aggregation.
struct WorkloadAttr {
  std::string relation;
  std::string attr;
  bool categorical = false;  ///< trivial metric, equality filters
};

/// What the query generator may use for a dataset.
struct WorkloadSpec {
  std::vector<JoinEdge> joins;
  std::vector<WorkloadAttr> filters;      ///< selection candidates
  std::vector<WorkloadAttr> group_attrs;  ///< group-by candidates
  std::vector<WorkloadAttr> agg_attrs;    ///< numeric aggregation candidates
  std::vector<std::string> output_prefs;  ///< "rel.attr" preferred outputs
  /// Key attributes covered by access constraints: the generator emits
  /// point predicates on them (the paper draws half the query attributes
  /// from the access constraints, Section 8), seeding constraint chains
  /// like Example 1's "f.pid = p0".
  std::vector<WorkloadAttr> point_keys;
};

/// A generated dataset: the instance, its workload spec, the declared
/// access constraints (validated at index build), and the QCS patterns
/// handed to the BlinkDB baseline.
struct Dataset {
  std::string name;
  Database db;
  WorkloadSpec spec;
  std::vector<ConstraintSpec> constraints;
  std::vector<QcsSpec> qcs;
};

}  // namespace beas

#endif  // BEAS_WORKLOAD_WORKLOAD_H_
