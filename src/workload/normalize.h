// Distance normalization: rescales every numeric attribute's distance by
// 1/(max - min) so distances from different attributes are commensurate
// inside the RC measure and the K-D tree resolutions. The paper leaves
// the choice of dis_A open (Section 2.1); normalized units make the
// accuracy numbers comparable across attributes and datasets.

#ifndef BEAS_WORKLOAD_NORMALIZE_H_
#define BEAS_WORKLOAD_NORMALIZE_H_

#include "storage/database.h"

namespace beas {

/// Sets scale = 1/(max-min) for every numeric-metric attribute with a
/// non-degenerate range (observed over the current rows).
void NormalizeNumericDistances(Database* db);

}  // namespace beas

#endif  // BEAS_WORKLOAD_NORMALIZE_H_
