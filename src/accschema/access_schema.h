// Access schema: access templates and access constraints (paper Section 2).
//
// An access template psi = R(X -> Y, N, d_Y) promises: for every X-value
// a, an index returns at most N distinct representative Y-tuples such that
// every Y-tuple of D_Y(X=a) is within the resolution d_Y (attribute-wise)
// of some representative. Access constraints are the special case d_Y = 0.
//
// Templates come in *families* sharing (R, X, Y): levels k = 0..max_level
// with N = 2^k and data-dependent resolutions d_k computed by the index
// builder from the K-D tree (Section 4.1). The top level enumerates all
// distinct Y-values exactly (d = 0). The planner consumes only this
// metadata — never the data — when generating alpha-bounded plans.

#ifndef BEAS_ACCSCHEMA_ACCESS_SCHEMA_H_
#define BEAS_ACCSCHEMA_ACCESS_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

namespace beas {

/// Build-time specification of a template family R(X -> Y, ...).
struct FamilySpec {
  std::string relation;
  std::vector<std::string> x_attrs;  ///< unqualified column names of R
  std::vector<std::string> y_attrs;

  /// Canonical id "R(x1,x2->y1,y2)".
  std::string Id() const;
};

/// Declared access constraint R(X -> Y, N, 0): the cardinality bound N is
/// asserted by the user (or a discovery pass) and validated at build time.
struct ConstraintSpec {
  std::string relation;
  std::vector<std::string> x_attrs;
  std::vector<std::string> y_attrs;
  uint64_t n = 0;

  /// Canonical id "R(x1->y1)!N".
  std::string Id() const;
};

/// \brief Bound metadata of one template family after index construction.
///
/// For constraint families, `is_constraint` is set and `constraint_n` is the
/// declared bound; levels are not populated. For template families,
/// level k in [0, max_level] has N = 2^k, per-Y-attribute resolutions
/// `level_resolution[k]`, and `level_fanout[k]` = the maximum number of
/// representatives any X-group actually returns at level k (<= 2^k), the
/// constant the planner uses for tariff accounting.
struct BoundFamily {
  std::string id;
  std::string relation;
  std::vector<std::string> x_attrs;
  std::vector<std::string> y_attrs;
  bool is_constraint = false;
  uint64_t constraint_n = 0;

  int max_level = 0;
  std::vector<std::vector<double>> level_resolution;  ///< [k][y-index]
  std::vector<uint64_t> level_fanout;                 ///< [k]

  /// Resolution of \p attr (a member of y_attrs) at \p level; 0 for
  /// constraint families.
  double ResolutionOf(const std::string& attr, int level) const;

  /// max_A d_k[A]: the d-bar-m(psi,k) of Theorem 5.
  double MaxResolution(int level) const;

  /// Worst-case number of representatives one fetch returns at \p level.
  uint64_t Fanout(int level) const;
};

/// \brief The bound access schema A: all families the planner may use.
class AccessSchema {
 public:
  /// Adds a bound family; fails on duplicate ids.
  Status AddFamily(BoundFamily family);

  /// All families over \p relation.
  std::vector<const BoundFamily*> FamiliesFor(const std::string& relation) const;

  /// Family lookup by id.
  Result<const BoundFamily*> FindFamily(const std::string& id) const;

  /// Mutable family lookup (incremental index maintenance only).
  Result<BoundFamily*> FindMutableFamily(const std::string& id);

  const std::vector<BoundFamily>& families() const { return families_; }

  /// Number of access templates (constraint families count 1; template
  /// families count max_level + 1 levels), the ||A|| of Theorem 5.
  size_t TemplateCount() const;

 private:
  std::vector<BoundFamily> families_;
};

/// The universal schema A_t of the Approximability Theorem (Section 4.1):
/// one family R(emptyset -> attr(R)) per relation.
std::vector<FamilySpec> UniversalFamilies(const DatabaseSchema& schema);

/// The paper's Section 8 recipe: for each declared constraint
/// R(X -> Y, N, 0), add the template family R(X u Y -> Z) with
/// Z = attr(R) \ (X u Y) (skipped when Z is empty).
Result<std::vector<FamilySpec>> FamiliesFromConstraints(
    const DatabaseSchema& schema, const std::vector<ConstraintSpec>& constraints);

}  // namespace beas

#endif  // BEAS_ACCSCHEMA_ACCESS_SCHEMA_H_
