#include "accschema/access_schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace beas {

namespace {
std::string AttrsToString(const std::vector<std::string>& attrs) {
  return Join(attrs, ",");
}
}  // namespace

std::string FamilySpec::Id() const {
  return StrCat(relation, "(", AttrsToString(x_attrs), "->", AttrsToString(y_attrs), ")");
}

std::string ConstraintSpec::Id() const {
  return StrCat(relation, "(", AttrsToString(x_attrs), "->", AttrsToString(y_attrs), ")!",
                n);
}

double BoundFamily::ResolutionOf(const std::string& attr, int level) const {
  if (is_constraint) return 0.0;
  for (size_t i = 0; i < y_attrs.size(); ++i) {
    if (y_attrs[i] == attr) {
      int k = std::clamp(level, 0, max_level);
      return level_resolution[static_cast<size_t>(k)][i];
    }
  }
  return 0.0;
}

double BoundFamily::MaxResolution(int level) const {
  if (is_constraint) return 0.0;
  int k = std::clamp(level, 0, max_level);
  double m = 0;
  for (double d : level_resolution[static_cast<size_t>(k)]) m = std::max(m, d);
  return m;
}

uint64_t BoundFamily::Fanout(int level) const {
  if (is_constraint) return constraint_n;
  int k = std::clamp(level, 0, max_level);
  return level_fanout[static_cast<size_t>(k)];
}

Status AccessSchema::AddFamily(BoundFamily family) {
  for (const auto& f : families_) {
    if (f.id == family.id) {
      return Status::InvalidArgument(StrCat("duplicate family '", family.id, "'"));
    }
  }
  families_.push_back(std::move(family));
  return Status::OK();
}

std::vector<const BoundFamily*> AccessSchema::FamiliesFor(const std::string& relation) const {
  std::vector<const BoundFamily*> out;
  for (const auto& f : families_) {
    if (f.relation == relation) out.push_back(&f);
  }
  return out;
}

Result<const BoundFamily*> AccessSchema::FindFamily(const std::string& id) const {
  for (const auto& f : families_) {
    if (f.id == id) return &f;
  }
  return Status::NotFound(StrCat("family '", id, "' not in access schema"));
}

Result<BoundFamily*> AccessSchema::FindMutableFamily(const std::string& id) {
  for (auto& f : families_) {
    if (f.id == id) return &f;
  }
  return Status::NotFound(StrCat("family '", id, "' not in access schema"));
}

size_t AccessSchema::TemplateCount() const {
  size_t n = 0;
  for (const auto& f : families_) {
    n += f.is_constraint ? 1 : static_cast<size_t>(f.max_level) + 1;
  }
  return n;
}

std::vector<FamilySpec> UniversalFamilies(const DatabaseSchema& schema) {
  std::vector<FamilySpec> out;
  for (const auto& rel : schema.relations()) {
    FamilySpec spec;
    spec.relation = rel.name();
    spec.y_attrs = rel.AttributeNames();
    out.push_back(std::move(spec));
  }
  return out;
}

Result<std::vector<FamilySpec>> FamiliesFromConstraints(
    const DatabaseSchema& schema, const std::vector<ConstraintSpec>& constraints) {
  std::vector<FamilySpec> out;
  for (const auto& c : constraints) {
    BEAS_ASSIGN_OR_RETURN(const RelationSchema* rel, schema.FindRelation(c.relation));
    FamilySpec spec;
    spec.relation = c.relation;
    spec.x_attrs = c.x_attrs;
    for (const auto& y : c.y_attrs) spec.x_attrs.push_back(y);
    std::sort(spec.x_attrs.begin(), spec.x_attrs.end());
    spec.x_attrs.erase(std::unique(spec.x_attrs.begin(), spec.x_attrs.end()),
                       spec.x_attrs.end());
    for (const auto& a : rel->attributes()) {
      bool in_xy = std::find(spec.x_attrs.begin(), spec.x_attrs.end(), a.name) !=
                   spec.x_attrs.end();
      if (!in_xy) spec.y_attrs.push_back(a.name);
    }
    if (!spec.y_attrs.empty()) out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace beas
