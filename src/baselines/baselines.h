// The approximation baselines BEAS is compared against in Section 8:
//
//  * Sampl  — uniform row sampling [17]: a one-size-fits-all sample of
//    alpha*|D| tuples; aggregates scaled by the inverse sampling fraction.
//  * Histo  — multidimensional equi-width histograms [27]: alpha*|D|
//    buckets across relations, one representative tuple per bucket with
//    its population as weight.
//  * BlinkDbSim — a BlinkDB-style stratified sampler [8]: per configured
//    QCS (query column set) a stratified sample capped per group; the
//    best-matching sample answers each query. Supports aggregate queries
//    without min/max, like the original (the paper simulated BlinkDB's
//    strategy the same way, Section 8 "Algorithms").
//
// All baselines answer SQL text parsed against their synopsis schema; the
// synopsis tables carry a "__w" multiplicity column so count/sum/avg use
// the weighted-aggregate path of the engine.

#ifndef BEAS_BASELINES_BASELINES_H_
#define BEAS_BASELINES_BASELINES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "ra/analysis.h"
#include "storage/database.h"

namespace beas {

/// Interface shared by all approximate answering methods in the benches.
class ApproxMethod {
 public:
  virtual ~ApproxMethod() = default;
  /// Human-readable method name ("Sampl", "Histo", "BlinkDB").
  virtual const std::string& name() const = 0;
  /// Answers \p sql; Unimplemented when the method does not support the
  /// query class (scored 0 by the harness, as in the paper).
  virtual Result<Table> Answer(const std::string& sql) = 0;
  /// Synopsis size in tuples (the alpha*|D| budget check).
  virtual size_t SynopsisSize() const = 0;
};

/// Uniform row sampling over all relations, proportional to their sizes.
class Sampl : public ApproxMethod {
 public:
  /// Draws ~alpha*|D| rows from \p db with \p seed.
  Sampl(const Database& db, double alpha, uint64_t seed);

  const std::string& name() const override { return name_; }
  Result<Table> Answer(const std::string& sql) override;
  size_t SynopsisSize() const override { return synopsis_rows_; }

 private:
  std::string name_ = "Sampl";
  Database synopsis_;
  DatabaseSchema synopsis_schema_;
  size_t synopsis_rows_ = 0;
};

/// Multidimensional equi-width histograms, one per relation, with a
/// representative tuple and population count per non-empty bucket.
class Histo : public ApproxMethod {
 public:
  /// Budgets ~alpha*|D| buckets across relations (proportional).
  Histo(const Database& db, double alpha, uint64_t seed);

  const std::string& name() const override { return name_; }
  Result<Table> Answer(const std::string& sql) override;
  size_t SynopsisSize() const override { return synopsis_rows_; }

 private:
  std::string name_ = "Histo";
  Database synopsis_;
  DatabaseSchema synopsis_schema_;
  size_t synopsis_rows_ = 0;
};

/// One stratification request: keep up to a per-group cap of rows for
/// every distinct value combination of `columns` in `relation`.
struct QcsSpec {
  std::string relation;
  std::vector<std::string> columns;
};

/// BlinkDB-style stratified sampling over historical QCS patterns.
class BlinkDbSim : public ApproxMethod {
 public:
  /// Builds one stratified sample per QCS plus a uniform fallback,
  /// splitting the ~alpha*|D| budget evenly.
  BlinkDbSim(const Database& db, double alpha, std::vector<QcsSpec> qcs, uint64_t seed);

  const std::string& name() const override { return name_; }
  /// Answers aggregate queries without min/max; Unimplemented otherwise
  /// (matching the restrictions reported in Section 8).
  Result<Table> Answer(const std::string& sql) override;
  size_t SynopsisSize() const override { return synopsis_rows_; }

 private:
  // One sample set: per relation a (possibly stratified) weighted table.
  struct SampleSet {
    QcsSpec qcs;  // empty relation string for the uniform fallback
    Database db;
    DatabaseSchema schema;
  };

  std::string name_ = "BlinkDB";
  std::vector<SampleSet> samples_;
  size_t synopsis_rows_ = 0;
};

}  // namespace beas

#endif  // BEAS_BASELINES_BASELINES_H_
