#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "ra/parser.h"

namespace beas {

namespace {

// Schema of a weighted synopsis table: base attributes plus "__w".
RelationSchema WeightedSchema(const RelationSchema& base) {
  std::vector<AttributeDef> attrs = base.attributes();
  attrs.emplace_back("__w", DataType::kDouble, DistanceSpec::Numeric());
  return RelationSchema(base.name(), attrs);
}

Tuple WeightedRow(const Tuple& row, double weight) {
  Tuple t = row;
  t.push_back(Value(weight));
  return t;
}

Result<Table> AnswerOnSynopsis(const Database& synopsis, const DatabaseSchema& schema,
                               const std::string& sql) {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, ParseSql(schema, sql));
  Evaluator ev(synopsis);
  return ev.Eval(q);
}

}  // namespace

// ---------------------------------------------------------------------------
// Sampl
// ---------------------------------------------------------------------------

Sampl::Sampl(const Database& db, double alpha, uint64_t seed) {
  Rng rng(seed);
  for (const auto& [name, table] : db.tables()) {
    size_t want = static_cast<size_t>(
        std::max(1.0, std::floor(alpha * static_cast<double>(table.size()))));
    want = std::min(want, table.size());
    // Reservoir-free: sample distinct row indices.
    std::vector<size_t> idx(table.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.Shuffle(&idx);
    double weight = table.empty()
                        ? 1.0
                        : static_cast<double>(table.size()) / static_cast<double>(want);
    Table out(WeightedSchema(table.schema()));
    out.Reserve(want);
    for (size_t i = 0; i < want; ++i) {
      out.AppendUnchecked(WeightedRow(table.row(idx[i]), weight));
    }
    synopsis_rows_ += out.size();
    (void)synopsis_.AddTable(std::move(out));
  }
  synopsis_schema_ = synopsis_.Schema();
}

Result<Table> Sampl::Answer(const std::string& sql) {
  return AnswerOnSynopsis(synopsis_, synopsis_schema_, sql);
}

// ---------------------------------------------------------------------------
// Histo
// ---------------------------------------------------------------------------

Histo::Histo(const Database& db, double alpha, uint64_t seed) {
  (void)seed;
  for (const auto& [name, table] : db.tables()) {
    const RelationSchema& schema = table.schema();
    size_t budget = static_cast<size_t>(
        std::max(1.0, std::floor(alpha * static_cast<double>(table.size()))));

    // Numeric dimensions get equi-width bins; low-cardinality categorical
    // dimensions join the bucket key outright.
    struct Dim {
      size_t attr;
      bool numeric;
      double lo = 0, hi = 0;
      size_t bins = 1;
    };
    std::vector<Dim> dims;
    size_t categorical_combos = 1;
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (schema.attribute(a).distance.kind == DistanceKind::kNumeric) {
        Dim d;
        d.attr = a;
        d.numeric = true;
        d.lo = 1e300;
        d.hi = -1e300;
        for (const auto& row : table.rows()) {
          if (!row[a].is_numeric()) continue;
          d.lo = std::min(d.lo, row[a].numeric());
          d.hi = std::max(d.hi, row[a].numeric());
        }
        if (d.lo <= d.hi) dims.push_back(d);
      } else {
        std::set<std::string> values;
        for (const auto& row : table.rows()) {
          values.insert(row[a].ToString());
          if (values.size() > 8) break;
        }
        if (values.size() <= 8 && categorical_combos * values.size() <= budget) {
          Dim d;
          d.attr = a;
          d.numeric = false;
          dims.push_back(d);
          categorical_combos *= std::max<size_t>(1, values.size());
        }
      }
    }
    size_t numeric_dims = 0;
    for (const auto& d : dims) numeric_dims += d.numeric ? 1 : 0;
    if (numeric_dims > 0) {
      double per_dim = std::pow(
          std::max(1.0, static_cast<double>(budget) /
                            static_cast<double>(categorical_combos)),
          1.0 / static_cast<double>(numeric_dims));
      for (auto& d : dims) {
        if (d.numeric) d.bins = std::max<size_t>(1, static_cast<size_t>(per_dim));
      }
    }

    auto bucket_key = [&](const Tuple& row) {
      std::string key;
      for (const auto& d : dims) {
        if (d.numeric) {
          double v = row[d.attr].is_numeric() ? row[d.attr].numeric() : d.lo;
          size_t bin = 0;
          if (d.hi > d.lo) {
            bin = std::min(d.bins - 1,
                           static_cast<size_t>((v - d.lo) / (d.hi - d.lo) *
                                               static_cast<double>(d.bins)));
          }
          key += StrCat("n", bin, "|");
        } else {
          key += row[d.attr].ToString() + "|";
        }
      }
      return key;
    };

    // Group rows into buckets.
    std::unordered_map<std::string, std::vector<size_t>> buckets;
    for (size_t r = 0; r < table.size(); ++r) {
      buckets[bucket_key(table.row(r))].push_back(r);
    }
    // Cap at budget: keep the most populated buckets.
    std::vector<std::pair<std::string, std::vector<size_t>>> ordered(buckets.begin(),
                                                                     buckets.end());
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      return a.second.size() > b.second.size();
    });
    if (ordered.size() > budget) ordered.resize(budget);

    Table out(WeightedSchema(schema));
    for (const auto& [key, rows] : ordered) {
      // Representative: the row nearest the bucket's numeric centroid.
      std::vector<double> centroid(dims.size(), 0.0);
      for (size_t di = 0; di < dims.size(); ++di) {
        if (!dims[di].numeric) continue;
        for (size_t r : rows) {
          const Value& v = table.row(r)[dims[di].attr];
          centroid[di] += v.is_numeric() ? v.numeric() : 0.0;
        }
        centroid[di] /= static_cast<double>(rows.size());
      }
      size_t best = rows[0];
      double best_dist = 1e300;
      for (size_t r : rows) {
        double dist = 0;
        for (size_t di = 0; di < dims.size(); ++di) {
          if (!dims[di].numeric) continue;
          const Value& v = table.row(r)[dims[di].attr];
          double x = v.is_numeric() ? v.numeric() : 0.0;
          dist += std::abs(x - centroid[di]);
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = r;
        }
      }
      out.AppendUnchecked(WeightedRow(table.row(best), static_cast<double>(rows.size())));
    }
    synopsis_rows_ += out.size();
    (void)synopsis_.AddTable(std::move(out));
  }
  synopsis_schema_ = synopsis_.Schema();
}

Result<Table> Histo::Answer(const std::string& sql) {
  return AnswerOnSynopsis(synopsis_, synopsis_schema_, sql);
}

// ---------------------------------------------------------------------------
// BlinkDbSim
// ---------------------------------------------------------------------------

BlinkDbSim::BlinkDbSim(const Database& db, double alpha, std::vector<QcsSpec> qcs,
                       uint64_t seed) {
  Rng rng(seed);
  size_t num_sets = qcs.size() + 1;
  double set_alpha = alpha / static_cast<double>(num_sets);

  auto uniform_table = [&](const Table& table, double a) {
    size_t want = static_cast<size_t>(
        std::max(1.0, std::floor(a * static_cast<double>(table.size()))));
    want = std::min(want, table.size());
    std::vector<size_t> idx(table.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.Shuffle(&idx);
    double weight =
        table.empty() ? 1.0
                      : static_cast<double>(table.size()) / static_cast<double>(want);
    Table out(WeightedSchema(table.schema()));
    for (size_t i = 0; i < want; ++i) {
      out.AppendUnchecked(WeightedRow(table.row(idx[i]), weight));
    }
    return out;
  };

  auto stratified_table = [&](const Table& table, const std::vector<std::string>& columns,
                              double a) -> Result<Table> {
    std::vector<size_t> col_idx;
    for (const auto& c : columns) {
      BEAS_ASSIGN_OR_RETURN(size_t i, table.schema().AttributeIndex(c));
      col_idx.push_back(i);
    }
    std::unordered_map<Tuple, std::vector<size_t>, TupleHasher> groups;
    for (size_t r = 0; r < table.size(); ++r) {
      Tuple key;
      for (size_t i : col_idx) key.push_back(table.row(r)[i]);
      groups[std::move(key)].push_back(r);
    }
    size_t budget = static_cast<size_t>(
        std::max(1.0, std::floor(a * static_cast<double>(table.size()))));
    size_t cap = std::max<size_t>(1, budget / std::max<size_t>(1, groups.size()));
    Table out(WeightedSchema(table.schema()));
    for (auto& [key, rows] : groups) {
      rng.Shuffle(&rows);
      size_t keep = std::min(cap, rows.size());
      double weight = static_cast<double>(rows.size()) / static_cast<double>(keep);
      for (size_t i = 0; i < keep; ++i) {
        out.AppendUnchecked(WeightedRow(table.row(rows[i]), weight));
      }
    }
    return out;
  };

  // Uniform fallback set.
  {
    SampleSet set;
    for (const auto& [name, table] : db.tables()) {
      Table t = uniform_table(table, set_alpha);
      synopsis_rows_ += t.size();
      (void)set.db.AddTable(std::move(t));
    }
    set.schema = set.db.Schema();
    samples_.push_back(std::move(set));
  }

  // One stratified set per QCS.
  for (auto& spec : qcs) {
    SampleSet set;
    set.qcs = spec;
    for (const auto& [name, table] : db.tables()) {
      Table t;
      if (name == spec.relation) {
        auto strat = stratified_table(table, spec.columns, set_alpha);
        if (!strat.ok()) continue;  // bad column spec: skip this relation
        t = std::move(*strat);
      } else {
        t = uniform_table(table, set_alpha);
      }
      synopsis_rows_ += t.size();
      (void)set.db.AddTable(std::move(t));
    }
    set.schema = set.db.Schema();
    samples_.push_back(std::move(set));
  }
}

Result<Table> BlinkDbSim::Answer(const std::string& sql) {
  if (samples_.empty()) return Status::Internal("no samples");
  // Parse against the fallback schema to classify and analyze the query.
  BEAS_ASSIGN_OR_RETURN(QueryPtr probe, ParseSql(samples_[0].schema, sql));
  QueryClass cls = ClassifyQuery(probe);
  if (cls != QueryClass::kAggSpc && cls != QueryClass::kAggRa) {
    return Status::Unimplemented("BlinkDB answers aggregate queries only");
  }
  if (probe->agg() == AggFunc::kMin || probe->agg() == AggFunc::kMax) {
    return Status::Unimplemented("BlinkDB does not support min/max");
  }

  // Columns used for filtering/grouping, per relation.
  std::map<std::string, std::string> alias_to_rel;
  for (const auto& atom : CollectAtoms(probe)) alias_to_rel[atom.alias] = atom.relation;
  auto split = [](const std::string& qualified) {
    size_t dot = qualified.find('.');
    return std::make_pair(qualified.substr(0, dot), qualified.substr(dot + 1));
  };
  std::map<std::string, std::set<std::string>> used;
  for (const auto& cmp : CollectComparisons(probe)) {
    auto [alias, col] = split(cmp.lhs.attr);
    if (alias_to_rel.count(alias)) used[alias_to_rel[alias]].insert(col);
  }
  for (const auto& g : probe->group_attrs()) {
    auto [alias, col] = split(g);
    if (alias_to_rel.count(alias)) used[alias_to_rel[alias]].insert(col);
  }

  // Pick the stratified sample with the largest QCS overlap.
  size_t best_set = 0;  // fallback
  size_t best_overlap = 0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    const QcsSpec& qcs = samples_[i].qcs;
    auto it = used.find(qcs.relation);
    if (it == used.end()) continue;
    size_t overlap = 0;
    for (const auto& c : qcs.columns) overlap += it->second.count(c);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best_set = i;
    }
  }
  const SampleSet& set = samples_[best_set];
  return AnswerOnSynopsis(set.db, set.schema, sql);
}

}  // namespace beas
