#include "beas/chase.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace beas {

namespace {

struct VarState {
  Coverage coverage = Coverage::kNone;
  size_t source_atom = 0;     // atom whose rows carry the value
  std::string source_col;     // unqualified column there
  bool from_const = false;    // bound to a query constant
  Value const_value;
};

// A planned chain for one atom: ops share the atom and execute in order.
struct Chain {
  std::vector<FetchOp> ops;
  std::set<std::string> fetched;  // X u Y accumulated
  bool exact = true;              // all steps constraints with exact X
};

// Columns of `atom` whose term is a constant or an exactly covered var.
std::map<std::string, XSource> ExactExternalBindings(
    const TableauAtom& atom, const std::vector<VarState>& vars) {
  std::map<std::string, XSource> out;
  for (const auto& [col, term] : atom.terms) {
    if (term.is_const) {
      XSource src;
      src.kind = XSource::Kind::kConst;
      src.constant = term.constant;
      out[col] = src;
    } else {
      const VarState& vs = vars[static_cast<size_t>(term.var)];
      if (vs.coverage == Coverage::kExact) {
        XSource src;
        if (vs.from_const) {
          src.kind = XSource::Kind::kConst;
          src.constant = vs.const_value;
        } else {
          src.kind = XSource::Kind::kExternal;
          src.source_atom = vs.source_atom;
          src.column = vs.source_col;
        }
        out[col] = src;
      }
    }
  }
  return out;
}

// Tracked columns of the atom.
std::set<std::string> TrackedCols(const TableauAtom& atom) {
  std::set<std::string> cols;
  for (const auto& [col, term] : atom.terms) cols.insert(col);
  return cols;
}

const BoundFamily* FindUniversal(const AccessSchema& schema, const std::string& relation) {
  for (const auto& f : schema.families()) {
    if (f.relation == relation && !f.is_constraint && f.x_attrs.empty()) return &f;
  }
  return nullptr;
}

// Tries to build a complete chain for `atom_idx` from constraints and
// constraint-rooted templates. Returns false when no such chain covers all
// tracked columns with exactly-known probes.
bool TryConstraintChain(const Tableau& tableau, const AccessSchema& schema,
                        size_t atom_idx, const std::vector<VarState>& vars, Chain* out) {
  const TableauAtom& atom = tableau.atoms[atom_idx];
  std::map<std::string, XSource> external = ExactExternalBindings(atom, vars);
  if (external.empty()) return false;  // nothing exact to probe with

  std::set<std::string> tracked = TrackedCols(atom);
  Chain chain;
  std::set<std::string> exact_cols;  // columns exactly known within the chain
  for (const auto& [col, src] : external) exact_cols.insert(col);

  auto covered = [&](const std::string& col) {
    return chain.fetched.count(col) > 0 ||
           (external.count(col) > 0 &&
            [&] {
              // An externally bound column still needs to appear in some
              // fetch's X or Y to be *verified* against the data.
              for (const auto& op : chain.ops) {
                for (const auto& x : op.family->x_attrs) {
                  if (x == col) return true;
                }
                for (const auto& y : op.family->y_attrs) {
                  if (y == col) return true;
                }
              }
              return false;
            }());
  };
  auto all_covered = [&] {
    return std::all_of(tracked.begin(), tracked.end(), covered);
  };
  if (tracked.empty()) return false;  // witness-only atoms use the universal fetch

  bool used_template = false;
  while (!all_covered()) {
    // Candidates: X must (a) consist of exactly-known columns, (b) contain
    // every column already fetched in this chain (no chimera rows), and
    // (c) contribute at least one uncovered tracked column via X u Y.
    const BoundFamily* best = nullptr;
    size_t best_new = 0;
    int best_rank = -1;  // constraints rank above templates
    for (const auto& f : schema.families()) {
      if (f.relation != atom.relation || f.x_attrs.empty()) continue;
      if (used_template) break;  // template columns cannot be probed further
      bool x_ok = true;
      for (const auto& x : f.x_attrs) {
        if (exact_cols.count(x) == 0) {
          x_ok = false;
          break;
        }
      }
      if (!x_ok) continue;
      bool covers_fetched = true;
      for (const auto& c : chain.fetched) {
        if (std::find(f.x_attrs.begin(), f.x_attrs.end(), c) == f.x_attrs.end()) {
          covers_fetched = false;
          break;
        }
      }
      if (!covers_fetched) continue;
      size_t new_cols = 0;
      for (const auto& x : f.x_attrs) {
        if (tracked.count(x) > 0 && !covered(x)) ++new_cols;
      }
      for (const auto& y : f.y_attrs) {
        if (tracked.count(y) > 0 && !covered(y)) ++new_cols;
      }
      if (new_cols == 0) continue;
      int rank = f.is_constraint ? 1 : 0;
      if (rank > best_rank || (rank == best_rank && new_cols > best_new)) {
        best = &f;
        best_rank = rank;
        best_new = new_cols;
      }
    }
    if (best == nullptr) return false;

    FetchOp op;
    op.atom = atom_idx;
    op.family_id = best->id;
    op.family = best;
    op.level = 0;
    for (const auto& x : best->x_attrs) {
      if (chain.fetched.count(x) > 0) {
        XSource src;
        src.kind = XSource::Kind::kSelfChain;
        src.column = x;
        op.x_sources.push_back(src);
      } else {
        op.x_sources.push_back(external.at(x));
      }
    }
    for (const auto& x : best->x_attrs) chain.fetched.insert(x);
    for (const auto& y : best->y_attrs) chain.fetched.insert(y);
    if (best->is_constraint) {
      for (const auto& y : best->y_attrs) exact_cols.insert(y);
    } else {
      used_template = true;
      chain.exact = false;
    }
    chain.ops.push_back(std::move(op));
    if (chain.ops.size() > schema.families().size() + 1) return false;  // safety
  }
  *out = std::move(chain);
  return true;
}

}  // namespace

Result<ChaseResult> ChaseTableau(const Tableau& tableau, const AccessSchema& schema,
                                 double budget) {
  ChaseResult result;
  result.var_coverage.assign(static_cast<size_t>(tableau.num_vars), Coverage::kNone);

  std::vector<VarState> vars(static_cast<size_t>(tableau.num_vars));
  for (const auto& [var, value] : tableau.var_const) {
    VarState& vs = vars[static_cast<size_t>(var)];
    vs.coverage = Coverage::kExact;
    vs.from_const = true;
    vs.const_value = value;
  }

  FetchPlan& plan = result.plan;
  for (const auto& atom : tableau.atoms) {
    AtomPlan ap;
    ap.relation = atom.relation;
    ap.alias = atom.alias;
    plan.atoms.push_back(std::move(ap));
  }

  std::vector<bool> done(tableau.atoms.size(), false);
  auto commit_chain = [&](size_t atom_idx, Chain chain) {
    const TableauAtom& atom = tableau.atoms[atom_idx];
    AtomPlan& ap = plan.atoms[atom_idx];
    for (auto& op : chain.ops) {
      ap.fetched_cols.insert(op.family->x_attrs.begin(), op.family->x_attrs.end());
      ap.fetched_cols.insert(op.family->y_attrs.begin(), op.family->y_attrs.end());
      ap.op_indices.push_back(plan.ops.size());
      plan.ops.push_back(std::move(op));
    }
    // Mark variable coverage: a variable becomes exact when produced by a
    // constraint step with exact probes, approximate otherwise.
    for (const auto& [col, term] : atom.terms) {
      if (term.is_const) continue;
      VarState& vs = vars[static_cast<size_t>(term.var)];
      if (vs.coverage == Coverage::kExact) continue;
      // Which chain op produced this column?
      bool exact = false;
      bool found = false;
      for (size_t oi : ap.op_indices) {
        const FetchOp& op = plan.ops[oi];
        bool in_x = std::find(op.family->x_attrs.begin(), op.family->x_attrs.end(), col) !=
                    op.family->x_attrs.end();
        bool in_y = std::find(op.family->y_attrs.begin(), op.family->y_attrs.end(), col) !=
                    op.family->y_attrs.end();
        if (in_x) {
          // Probes are exact by construction within constraint chains, but
          // a universal fallback never probes.
          found = true;
          exact = chain.exact || op.family->is_constraint;
        } else if (in_y) {
          found = true;
          exact = op.family->is_constraint;
        }
        if (found) break;
      }
      if (!found) continue;
      Coverage cov = exact ? Coverage::kExact : Coverage::kApprox;
      if (static_cast<int>(cov) > static_cast<int>(vs.coverage)) {
        vs.coverage = cov;
        vs.source_atom = atom_idx;
        vs.source_col = col;
        vs.from_const = false;
      }
    }
    done[atom_idx] = true;
  };

  auto universal_chain = [&](size_t atom_idx) -> Result<Chain> {
    const BoundFamily* uni = FindUniversal(schema, tableau.atoms[atom_idx].relation);
    if (uni == nullptr) {
      return Status::InvalidArgument(
          StrCat("access schema lacks the universal template for relation '",
                 tableau.atoms[atom_idx].relation, "' (A must subsume A_t)"));
    }
    Chain chain;
    FetchOp op;
    op.atom = atom_idx;
    op.family_id = uni->id;
    op.family = uni;
    op.level = 0;
    chain.ops.push_back(std::move(op));
    chain.exact = false;
    for (const auto& y : uni->y_attrs) chain.fetched.insert(y);
    return chain;
  };

  // Rounds: commit constraint chains while possible (each commit may make
  // more variables exact); when stuck, fall back to a universal fetch for
  // one remaining atom, which unlocks nothing exact but makes progress.
  size_t remaining = tableau.atoms.size();
  while (remaining > 0) {
    bool progress = false;
    for (size_t i = 0; i < tableau.atoms.size(); ++i) {
      if (done[i]) continue;
      Chain chain;
      if (TryConstraintChain(tableau, schema, i, vars, &chain)) {
        commit_chain(i, std::move(chain));
        --remaining;
        progress = true;
      }
    }
    if (!progress) {
      for (size_t i = 0; i < tableau.atoms.size(); ++i) {
        if (done[i]) continue;
        BEAS_ASSIGN_OR_RETURN(Chain chain, universal_chain(i));
        commit_chain(i, std::move(chain));
        --remaining;
        break;
      }
    }
  }

  plan.Recompute();

  // Budget degradation (Fig 3 chase): while the level-0 tariff exceeds the
  // budget, replace the most expensive non-universal chain by a universal
  // fetch (cost 1 at level 0). Degradation cascades: any atom probing the
  // degraded atom's columns loses its exact bindings and is degraded too,
  // preserving the exact-probe soundness policy.
  auto is_universal_atom = [&](size_t a) {
    const AtomPlan& ap = plan.atoms[a];
    return ap.op_indices.size() == 1 &&
           plan.ops[ap.op_indices[0]].family->x_attrs.empty();
  };
  auto degrade_atom = [&](size_t target) -> Status {
    std::set<size_t> pending{target};
    while (!pending.empty()) {
      size_t a = *pending.begin();
      pending.erase(pending.begin());
      if (is_universal_atom(a)) continue;
      BEAS_ASSIGN_OR_RETURN(Chain chain, universal_chain(a));
      // Cascade: atoms probing columns of `a` via external sources.
      for (const auto& op : plan.ops) {
        if (op.atom == a) continue;
        for (const auto& src : op.x_sources) {
          if (src.kind == XSource::Kind::kExternal && src.source_atom == a) {
            pending.insert(op.atom);
          }
        }
      }
      // Remove the atom's old ops and append the universal fetch.
      std::vector<FetchOp> new_ops;
      std::vector<size_t> remap(plan.ops.size());
      for (size_t i = 0; i < plan.ops.size(); ++i) {
        if (plan.ops[i].atom == a) continue;
        remap[i] = new_ops.size();
        new_ops.push_back(plan.ops[i]);
      }
      AtomPlan& ap = plan.atoms[a];
      ap.op_indices.clear();
      ap.fetched_cols.clear();
      for (auto& a2 : plan.atoms) {
        for (auto& oi : a2.op_indices) oi = remap[oi];
      }
      plan.ops = std::move(new_ops);
      for (auto& op : chain.ops) {
        ap.fetched_cols.insert(op.family->y_attrs.begin(), op.family->y_attrs.end());
        ap.op_indices.push_back(plan.ops.size());
        plan.ops.push_back(std::move(op));
      }
      for (auto& vs : vars) {
        if (!vs.from_const && vs.coverage == Coverage::kExact && vs.source_atom == a) {
          vs.coverage = Coverage::kApprox;
        }
      }
    }
    plan.Recompute();
    return Status::OK();
  };

  while (plan.EstTariff() > budget) {
    int worst_atom = -1;
    double worst_cost = 0;
    for (size_t a = 0; a < plan.atoms.size(); ++a) {
      if (is_universal_atom(a)) continue;
      double cost = 0;
      for (size_t oi : plan.atoms[a].op_indices) {
        const FetchOp& op = plan.ops[oi];
        cost += op.est_bindings * static_cast<double>(op.family->Fanout(op.level));
      }
      if (cost > worst_cost) {
        worst_cost = cost;
        worst_atom = static_cast<int>(a);
      }
    }
    if (worst_atom < 0) {
      return Status::OutOfBudget(
          StrCat("even the minimal plan (one representative per atom) exceeds the budget ",
                 FormatDouble(budget, 1)));
    }
    BEAS_RETURN_IF_ERROR(degrade_atom(static_cast<size_t>(worst_atom)));
  }

  for (size_t v = 0; v < vars.size(); ++v) result.var_coverage[v] = vars[v].coverage;
  result.all_exact_by_constraints =
      std::all_of(vars.begin(), vars.end(),
                  [](const VarState& vs) { return vs.coverage == Coverage::kExact; }) &&
      plan.Exact();
  return result;
}

}  // namespace beas
