#include "beas/tableau.h"

#include <numeric>
#include <set>

#include "common/string_util.h"

namespace beas {

namespace {

// Splits "alias.col" at the first dot.
std::pair<std::string, std::string> SplitQualified(const std::string& qualified) {
  size_t dot = qualified.find('.');
  if (dot == std::string::npos) return {qualified, ""};
  return {qualified.substr(0, dot), qualified.substr(dot + 1)};
}

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::optional<int> Tableau::VarOf(const std::string& qualified_attr) const {
  auto it = var_of_attr.find(qualified_attr);
  if (it == var_of_attr.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> Tableau::ConstOf(int var) const {
  auto it = var_const.find(var);
  if (it == var_const.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<size_t, std::string>> Tableau::CellsOf(int var) const {
  std::vector<std::pair<size_t, std::string>> cells;
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (const auto& [col, term] : atoms[i].terms) {
      if (!term.is_const && term.var == var) cells.emplace_back(i, col);
    }
  }
  return cells;
}

std::string Tableau::ToString() const {
  std::string out;
  for (const auto& atom : atoms) {
    out += StrCat(atom.relation, " as ", atom.alias, ": ");
    std::vector<std::string> parts;
    for (const auto& [col, term] : atom.terms) {
      parts.push_back(
          StrCat(col, "=", term.is_const ? term.constant.ToString() : StrCat("$", term.var)));
    }
    out += Join(parts, ", ") + "\n";
  }
  return out;
}

Result<Tableau> BuildTableau(const QueryPtr& q) {
  Tableau tb;
  BEAS_ASSIGN_OR_RETURN(tb.nf, NormalizeSpc(q));

  // Tracked qualified attributes: outputs plus every comparison operand.
  std::vector<std::string> tracked;
  std::set<std::string> seen;
  auto track = [&](const std::string& attr) {
    if (seen.insert(attr).second) tracked.push_back(attr);
  };
  for (const auto& a : tb.nf.output_attrs) track(a);
  for (const auto& cmp : tb.nf.comparisons) {
    track(cmp.lhs.attr);
    if (cmp.rhs.is_attr) track(cmp.rhs.attr);
  }

  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < tracked.size(); ++i) pos[tracked[i]] = i;

  // Unify across strict attribute equalities (the equi-joins).
  UnionFind uf(tracked.size());
  for (const auto& cmp : tb.nf.comparisons) {
    if (cmp.op == CompareOp::kEq && cmp.rhs.is_attr && cmp.slack == 0.0) {
      uf.Union(pos[cmp.lhs.attr], pos[cmp.rhs.attr]);
    } else if (!(cmp.op == CompareOp::kEq && !cmp.rhs.is_attr)) {
      tb.residual.push_back(cmp);
    }
  }

  // Variable ids per union-find class.
  std::map<size_t, int> var_of_root;
  for (size_t i = 0; i < tracked.size(); ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] = var_of_root.try_emplace(root, tb.num_vars);
    if (inserted) ++tb.num_vars;
    tb.var_of_attr[tracked[i]] = it->second;
  }

  // Bind constants from sigma_{A=c}; conflicting constants on one variable
  // make the query unsatisfiable on every database.
  for (const auto& cmp : tb.nf.comparisons) {
    if (cmp.op == CompareOp::kEq && !cmp.rhs.is_attr && cmp.slack == 0.0) {
      int var = tb.var_of_attr.at(cmp.lhs.attr);
      auto [it, inserted] = tb.var_const.try_emplace(var, cmp.rhs.constant);
      if (!inserted && !(it->second == cmp.rhs.constant)) {
        tb.unsatisfiable = true;
      }
    }
  }

  // Atoms with terms for their tracked attributes.
  for (const auto& atom : tb.nf.atoms) {
    TableauAtom ta;
    ta.relation = atom.relation;
    ta.alias = atom.alias;
    std::string prefix = atom.alias + ".";
    for (const auto& attr : tracked) {
      auto [alias, col] = SplitQualified(attr);
      if (alias != atom.alias) continue;
      int var = tb.var_of_attr.at(attr);
      auto cit = tb.var_const.find(var);
      if (cit != tb.var_const.end()) {
        ta.terms[col] = Term::Const(cit->second);
      } else {
        ta.terms[col] = Term::Var(var);
      }
    }
    tb.atoms.push_back(std::move(ta));
  }
  return tb;
}

}  // namespace beas
