// Rewriting one SPC unit into xi_E form: leaves become DQ-table scans,
// selections gain targeted relaxation slack derived from the resolutions
// of the access templates that fetched their attributes (paper Section 5,
// "Evaluation plan").

#ifndef BEAS_BEAS_REWRITE_H_
#define BEAS_BEAS_REWRITE_H_

#include "beas/plan.h"
#include "common/result.h"
#include "types/schema.h"

namespace beas {

/// Builds unit.atom_schemas from the base schema and the fetch plan
/// (fetched columns in base-attribute order, then "__w").
Status BuildAtomSchemas(const DatabaseSchema& base, SpcUnit* unit);

/// Rewrites unit->query over the DQ tables, filling unit->rewritten,
/// unit->col_res and unit->d_rel.
///
/// Slack policy: a selection attribute fetched with finite resolution r is
/// relaxed by slack r (sigma_{A=c} -> |dis| <= r); attribute pairs by
/// (r_A + r_B) / 2 (dis <= r_A + r_B, the paper's 2r form). Attributes
/// with infinite resolution (trivial metric, not yet uniform) keep slack 0
/// — fetched representatives are compared exactly and the coverage bound
/// honestly records +inf for those columns.
///
/// When \p add_weights, bag projections inside the unit also carry the
/// per-atom "__w" occurrence-weight columns through to the output
/// (aggregate units, Section 7).
Status RewriteUnit(const DatabaseSchema& base, bool add_weights, SpcUnit* unit);

}  // namespace beas

#endif  // BEAS_BEAS_REWRITE_H_
