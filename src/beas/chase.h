// The chase under an access schema (paper Section 5, Fig 4): derives a
// fetching plan for an SPC query's tableau by repeatedly applying access
// constraints and templates whose X-side is covered.
//
// Soundness policy. A fetch may only probe X-values that are *exactly*
// known: query constants, variables covered by constraint chains, or
// columns fetched by constraints earlier in the same atom chain. Probing
// with approximately-covered values would break the coverage guarantee
// (the probe can miss the group holding an exact answer's counterpart);
// atoms whose bindings are only approximate fall back to the universal
// template R(emptyset -> attr(R), 2^k, d_k) of A_t, whose whole-relation
// frontier covers every tuple, with the join conditions relaxed in xi_E.
// This mirrors the paper's own plans, where constraints cover join
// variables and templates cover leaf attributes (Example 1).

#ifndef BEAS_BEAS_CHASE_H_
#define BEAS_BEAS_CHASE_H_

#include "accschema/access_schema.h"
#include "beas/fetch_plan.h"
#include "beas/tableau.h"
#include "common/result.h"

namespace beas {

/// Coverage state of a tableau variable after the chase.
enum class Coverage { kNone = 0, kApprox = 1, kExact = 2 };

/// Result of chasing a tableau: the fetching plan plus per-variable
/// coverage (exact iff derived through constraints only, Section 5).
struct ChaseResult {
  FetchPlan plan;
  std::vector<Coverage> var_coverage;
  /// True when every variable is exactly covered by constraints alone:
  /// the query is boundedly evaluable under the access constraints.
  bool all_exact_by_constraints = false;
};

/// Chases \p tableau under \p schema with budget \p budget (= alpha|D|).
/// Requires schema to subsume A_t (a universal family per used relation);
/// returns InvalidArgument otherwise. The returned plan starts templates
/// at level 0; chAT raises levels afterwards. If even the level-0 plan
/// exceeds the budget, expensive constraint chains are degraded to
/// universal fetches; OutOfBudget if the minimal plan still exceeds it.
Result<ChaseResult> ChaseTableau(const Tableau& tableau, const AccessSchema& schema,
                                 double budget);

}  // namespace beas

#endif  // BEAS_BEAS_CHASE_H_
