#include "beas/rewrite.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"
#include "types/distance.h"

namespace beas {

namespace {

std::string DqTableName(size_t unit_index, const std::string& alias) {
  return StrCat("sq", unit_index, "_", alias);
}

struct WalkResult {
  QueryPtr rewritten;
  std::vector<double> col_res;  // parallel to rewritten->output_schema()
  double d_rel = 0;
  // Coverage penalty from selections on infinite-resolution attributes
  // (see SpcUnit::d_cov_extra).
  double extra_cov = 0;
};

class Rewriter {
 public:
  Rewriter(const DatabaseSchema& dq_schema, const SpcUnit& unit, bool add_weights)
      : dq_schema_(dq_schema), unit_(unit), add_weights_(add_weights) {}

  Result<WalkResult> Walk(const QueryPtr& q) {
    switch (q->kind()) {
      case QueryNode::Kind::kRelation:
        return WalkRelation(q);
      case QueryNode::Kind::kSelect:
        return WalkSelect(q);
      case QueryNode::Kind::kProject:
        return WalkProject(q);
      case QueryNode::Kind::kProduct:
        return WalkProduct(q);
      default:
        return Status::Internal("RewriteUnit: unit is not SPC");
    }
  }

 private:
  // Resolution of qualified attribute "alias.col" per the fetch plan.
  double ResOf(const std::string& alias, const std::string& col) const {
    for (size_t a = 0; a < unit_.fetch.atoms.size(); ++a) {
      if (unit_.fetch.atoms[a].alias == alias) {
        return unit_.fetch.ResolutionOf(a, col);
      }
    }
    return 0.0;
  }

  Result<WalkResult> WalkRelation(const QueryPtr& q) {
    WalkResult out;
    BEAS_ASSIGN_OR_RETURN(
        out.rewritten,
        QueryNode::Relation(dq_schema_, DqTableName(unit_.index, q->alias()), q->alias()));
    const RelationSchema& schema = out.rewritten->output_schema();
    out.col_res.reserve(schema.arity());
    std::string prefix = q->alias() + ".";
    for (const auto& attr : schema.attributes()) {
      std::string col = attr.name.substr(prefix.size());
      out.col_res.push_back(col == "__w" ? 0.0 : ResOf(q->alias(), col));
    }
    return out;
  }

  double LookupRes(const WalkResult& in, const std::string& attr) const {
    auto idx = in.rewritten->output_schema().FindAttribute(attr);
    if (!idx) return 0.0;
    return in.col_res[*idx];
  }

  Result<WalkResult> WalkSelect(const QueryPtr& q) {
    BEAS_ASSIGN_OR_RETURN(WalkResult in, Walk(q->child()));
    Predicate relaxed;
    double d_rel = in.d_rel;
    double extra_cov = in.extra_cov;
    for (Comparison cmp : q->predicate()) {
      double res_l = LookupRes(in, cmp.lhs.attr);
      double slack = 0;
      bool finite = true;
      if (cmp.rhs.is_attr) {
        double res_r = LookupRes(in, cmp.rhs.attr);
        finite = std::isfinite(res_l) && std::isfinite(res_r);
        if (finite) slack = (res_l + res_r) / 2.0;
      } else {
        finite = std::isfinite(res_l);
        if (finite) slack = res_l;
      }
      if (!finite) {
        // Infinite resolution cannot be compensated by relaxation: keep
        // the comparison exact on representatives (slack 0, sensible
        // answers, sound relevance) but surrender the coverage claim —
        // a represented answer may fail the exact filter.
        extra_cov = kInfDistance;
      }
      cmp.slack = slack;
      d_rel = std::max(d_rel, slack);
      relaxed.push_back(std::move(cmp));
    }
    WalkResult out;
    BEAS_ASSIGN_OR_RETURN(out.rewritten,
                          QueryNode::Select(std::move(in.rewritten), std::move(relaxed)));
    out.col_res = std::move(in.col_res);
    out.d_rel = d_rel;
    out.extra_cov = extra_cov;
    return out;
  }

  Result<WalkResult> WalkProject(const QueryPtr& q) {
    BEAS_ASSIGN_OR_RETURN(WalkResult in, Walk(q->child()));
    std::vector<std::string> attrs = q->project_attrs();
    std::vector<std::string> out_names;
    for (const auto& a : q->output_schema().attributes()) out_names.push_back(a.name);
    // Aggregate units carry occurrence weights through bag projections.
    if (add_weights_ && !q->distinct()) {
      for (const auto& attr : in.rewritten->output_schema().attributes()) {
        const std::string& name = attr.name;
        if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".__w") == 0 &&
            std::find(attrs.begin(), attrs.end(), name) == attrs.end()) {
          attrs.push_back(name);
          out_names.push_back(name);
        }
      }
    }
    WalkResult out;
    std::vector<double> res;
    for (const auto& a : attrs) {
      res.push_back(LookupRes(in, a));
    }
    BEAS_ASSIGN_OR_RETURN(out.rewritten,
                          QueryNode::Project(std::move(in.rewritten), attrs, q->distinct(),
                                             std::move(out_names)));
    out.col_res = std::move(res);
    out.d_rel = in.d_rel;
    out.extra_cov = in.extra_cov;
    return out;
  }

  Result<WalkResult> WalkProduct(const QueryPtr& q) {
    BEAS_ASSIGN_OR_RETURN(WalkResult l, Walk(q->left()));
    BEAS_ASSIGN_OR_RETURN(WalkResult r, Walk(q->right()));
    WalkResult out;
    BEAS_ASSIGN_OR_RETURN(
        out.rewritten, QueryNode::Product(std::move(l.rewritten), std::move(r.rewritten)));
    out.col_res = std::move(l.col_res);
    for (double d : r.col_res) out.col_res.push_back(d);
    out.d_rel = std::max(l.d_rel, r.d_rel);
    out.extra_cov = std::max(l.extra_cov, r.extra_cov);
    return out;
  }

  const DatabaseSchema& dq_schema_;
  const SpcUnit& unit_;
  bool add_weights_;
};

}  // namespace

Status BuildAtomSchemas(const DatabaseSchema& base, SpcUnit* unit) {
  unit->atom_schemas.clear();
  for (const auto& atom : unit->fetch.atoms) {
    BEAS_ASSIGN_OR_RETURN(const RelationSchema* rel, base.FindRelation(atom.relation));
    std::vector<AttributeDef> attrs;
    for (const auto& a : rel->attributes()) {
      if (atom.fetched_cols.count(a.name) > 0) attrs.push_back(a);
    }
    attrs.emplace_back("__w", DataType::kInt64, DistanceSpec::Numeric());
    unit->atom_schemas.emplace_back(DqTableName(unit->index, atom.alias), std::move(attrs));
  }
  return Status::OK();
}

Status RewriteUnit(const DatabaseSchema& base, bool add_weights, SpcUnit* unit) {
  BEAS_RETURN_IF_ERROR(BuildAtomSchemas(base, unit));
  DatabaseSchema dq_schema;
  for (const auto& s : unit->atom_schemas) {
    BEAS_RETURN_IF_ERROR(dq_schema.AddRelation(s));
  }
  Rewriter rewriter(dq_schema, *unit, add_weights);
  BEAS_ASSIGN_OR_RETURN(WalkResult result, rewriter.Walk(unit->query));
  unit->rewritten = std::move(result.rewritten);
  unit->col_res = std::move(result.col_res);
  unit->d_rel = result.d_rel;
  unit->d_cov_extra = result.extra_cov;
  return Status::OK();
}

}  // namespace beas
