#include "beas/executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "types/column_chunk.h"
#include "types/distance.h"

namespace beas {

namespace {

// Materialized rows of one atom during fetching: columns in append order,
// with a parallel multiplicity (occurrence weight) per row.
struct AtomRows {
  std::vector<std::string> cols;
  std::vector<Tuple> rows;
  std::vector<int64_t> weights;

  int ColIndex(const std::string& col) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == col) return static_cast<int>(i);
    }
    return -1;
  }
};

// Distinct values of `col` in an atom's materialized rows.
std::vector<Value> DistinctColumn(const AtomRows& rows, const std::string& col) {
  std::vector<Value> out;
  int idx = rows.ColIndex(col);
  if (idx < 0) return out;
  std::unordered_set<Value, ValueHash> seen;
  for (const auto& r : rows.rows) {
    if (seen.insert(r[static_cast<size_t>(idx)]).second) {
      out.push_back(r[static_cast<size_t>(idx)]);
    }
  }
  return out;
}

}  // namespace

Result<BeasAnswer> PlanExecutor::Execute(const BeasPlan& plan, uint64_t budget) {
  store_->meter().StartQuery(budget);

  // --- xi_F: materialize every unit's atoms through the index store. ---
  Database dq;
  for (const auto& unit : plan.units) {
    std::vector<AtomRows> atoms(unit.fetch.atoms.size());
    for (const auto& op : unit.fetch.ops) {
      AtomRows& atom = atoms[op.atom];
      const auto& x_attrs = op.family->x_attrs;

      // Which X columns are new to the atom's rows?
      std::vector<bool> x_is_new(x_attrs.size());
      for (size_t i = 0; i < x_attrs.size(); ++i) {
        x_is_new[i] = atom.ColIndex(x_attrs[i]) < 0;
      }

      // Probe contexts: (existing row or none) x external value combos.
      bool has_self = false;
      for (const auto& src : op.x_sources) {
        has_self |= src.kind == XSource::Kind::kSelfChain;
      }
      // Enumerate external combinations (cross product of distinct column
      // values per external source; usually at most one).
      std::vector<std::vector<Value>> ext_values;  // per x position (empty = const/self)
      ext_values.resize(x_attrs.size());
      for (size_t i = 0; i < op.x_sources.size(); ++i) {
        const XSource& src = op.x_sources[i];
        if (src.kind == XSource::Kind::kExternal) {
          ext_values[i] = DistinctColumn(atoms[src.source_atom], src.column);
        }
      }

      struct ProbeCtx {
        const Tuple* row = nullptr;  // self context
        int64_t weight = 1;
        Tuple xkey;
      };
      std::vector<ProbeCtx> probes;

      // Recursive enumeration over external positions.
      auto enumerate = [&](const Tuple* row, int64_t weight) -> Status {
        ProbeCtx base;
        base.row = row;
        base.weight = weight;
        base.xkey.resize(x_attrs.size());
        // Fill const and self positions.
        for (size_t i = 0; i < op.x_sources.size(); ++i) {
          const XSource& src = op.x_sources[i];
          if (src.kind == XSource::Kind::kConst) {
            base.xkey[i] = src.constant;
          } else if (src.kind == XSource::Kind::kSelfChain) {
            int ci = atom.ColIndex(src.column);
            if (ci < 0 || row == nullptr) {
              return Status::Internal("self-chain probe without materialized column");
            }
            base.xkey[i] = (*row)[static_cast<size_t>(ci)];
          }
        }
        std::vector<ProbeCtx> partial{std::move(base)};
        for (size_t i = 0; i < x_attrs.size(); ++i) {
          if (ext_values[i].empty() &&
              op.x_sources[i].kind == XSource::Kind::kExternal) {
            // External source with no values: no probes at all.
            partial.clear();
            break;
          }
          if (op.x_sources[i].kind != XSource::Kind::kExternal) continue;
          std::vector<ProbeCtx> next;
          next.reserve(partial.size() * ext_values[i].size());
          for (const auto& p : partial) {
            for (const auto& v : ext_values[i]) {
              ProbeCtx q = p;
              q.xkey[i] = v;
              next.push_back(std::move(q));
            }
          }
          partial = std::move(next);
        }
        for (auto& p : partial) probes.push_back(std::move(p));
        return Status::OK();
      };

      if (has_self) {
        if (atom.rows.empty()) continue;  // nothing to extend
        for (size_t r = 0; r < atom.rows.size(); ++r) {
          BEAS_RETURN_IF_ERROR(enumerate(&atom.rows[r], atom.weights[r]));
        }
      } else {
        BEAS_RETURN_IF_ERROR(enumerate(nullptr, 1));
      }

      // Execute the probes and extend the atom's rows.
      AtomRows next;
      next.cols = atom.cols;
      size_t ctx_width = atom.cols.size();
      for (size_t i = 0; i < x_attrs.size(); ++i) {
        if (x_is_new[i]) next.cols.push_back(x_attrs[i]);
      }
      for (const auto& y : op.family->y_attrs) next.cols.push_back(y);

      auto extend = [&](const ProbeCtx& probe, const std::vector<FetchEntry>& entries) {
        for (const auto& e : entries) {
          Tuple row;
          row.reserve(next.cols.size());
          if (probe.row != nullptr) {
            for (size_t c = 0; c < ctx_width; ++c) row.push_back((*probe.row)[c]);
          }
          for (size_t i = 0; i < x_attrs.size(); ++i) {
            if (x_is_new[i]) row.push_back(probe.xkey[i]);
          }
          for (const auto& v : *e.y) row.push_back(v);
          next.rows.push_back(std::move(row));
          next.weights.push_back(probe.weight * e.count);
        }
      };
      if (eval_options_.vectorized) {
        // Batched fetch: one family resolution per chunk of probes
        // instead of per probe (the meter still charges per key). Same
        // accessed totals and the same rows in the same order as the
        // scalar loop below.
        std::vector<const Tuple*> keys;
        std::vector<std::vector<FetchEntry>> fetched;
        for (size_t base = 0; base < probes.size(); base += kDefaultChunkCapacity) {
          size_t m = std::min(kDefaultChunkCapacity, probes.size() - base);
          keys.clear();
          keys.reserve(m);
          for (size_t i = 0; i < m; ++i) keys.push_back(&probes[base + i].xkey);
          BEAS_RETURN_IF_ERROR(
              store_->FetchBatch(op.family_id, op.level, keys, &fetched));
          for (size_t i = 0; i < m; ++i) extend(probes[base + i], fetched[i]);
        }
      } else {
        for (const auto& probe : probes) {
          BEAS_ASSIGN_OR_RETURN(std::vector<FetchEntry> entries,
                                store_->Fetch(op.family_id, op.level, probe.xkey));
          extend(probe, entries);
        }
      }
      // Rows without self context start from scratch; rows with self
      // context replace the previous materialization.
      atom = std::move(next);
    }

    // Emit DQ tables in the planner's atom schemas.
    for (size_t a = 0; a < unit.fetch.atoms.size(); ++a) {
      const RelationSchema& schema = unit.atom_schemas[a];
      Table table(schema);
      const AtomRows& rows = atoms[a];
      std::vector<int> perm;  // schema position -> rows column (-1 = __w)
      for (const auto& attr : schema.attributes()) {
        perm.push_back(attr.name == "__w" ? -1 : rows.ColIndex(attr.name));
      }
      for (size_t r = 0; r < rows.rows.size(); ++r) {
        Tuple t;
        t.reserve(perm.size());
        for (int p : perm) {
          if (p < 0) {
            t.push_back(Value(rows.weights[r]));
          } else {
            t.push_back(rows.rows[r][static_cast<size_t>(p)]);
          }
        }
        table.AppendUnchecked(std::move(t));
      }
      BEAS_RETURN_IF_ERROR(dq.AddTable(std::move(table)));
    }
  }

  // --- xi_E: evaluate the tree, tracking both S and S-hat. ---
  Evaluator evaluator(dq, eval_options_);

  struct EvalOut {
    Table s;
    Table s_hat;
  };
  std::function<Result<EvalOut>(const EvalNode&)> eval_node =
      [&](const EvalNode& node) -> Result<EvalOut> {
    switch (node.kind) {
      case EvalNode::Kind::kSpc: {
        const SpcUnit& unit = plan.units[node.unit];
        EvalOut out;
        if (unit.unsatisfiable) {
          out.s = Table(unit.query->output_schema());
          out.s_hat = out.s;
          return out;
        }
        BEAS_ASSIGN_OR_RETURN(out.s, evaluator.Eval(unit.rewritten));
        out.s_hat = out.s;
        return out;
      }
      case EvalNode::Kind::kUnion: {
        BEAS_ASSIGN_OR_RETURN(EvalOut l, eval_node(*node.left));
        BEAS_ASSIGN_OR_RETURN(EvalOut r, eval_node(*node.right));
        auto merge = [&](Table a, const Table& b) {
          for (const auto& row : b.rows()) a.AppendUnchecked(row);
          a.Distinct();
          return a;
        };
        EvalOut out;
        out.s = merge(std::move(l.s), r.s);
        out.s_hat = merge(std::move(l.s_hat), r.s_hat);
        return out;
      }
      case EvalNode::Kind::kDifference: {
        BEAS_ASSIGN_OR_RETURN(EvalOut l, eval_node(*node.left));
        BEAS_ASSIGN_OR_RETURN(EvalOut r, eval_node(*node.right));
        EvalOut out;
        out.s_hat = l.s_hat;  // Q-hat drops the negated side
        const RelationSchema& schema = node.original->output_schema();
        if (node.guard_tolerance.empty()) {
          // Exact negated side: plain set difference against E(Q2).
          std::unordered_set<Tuple, TupleHasher> negated(r.s.rows().begin(),
                                                         r.s.rows().end());
          out.s = Table(schema);
          for (const auto& row : l.s.rows()) {
            if (negated.find(row) == negated.end()) out.s.AppendUnchecked(row);
          }
        } else {
          // Guard: drop answers within the dangerous distance of any
          // E(Q2-hat) tuple on every column (Section 6). Distance specs
          // are hoisted out of the row loops; the scan itself stays
          // row-major — each S value is read once, so a chunk transpose
          // would only add copies (docs/ARCHITECTURE.md).
          out.s = Table(schema);
          std::vector<DistanceSpec> specs;
          specs.reserve(schema.arity());
          for (size_t c = 0; c < schema.arity(); ++c) {
            specs.push_back(schema.attribute(c).distance);
          }
          for (const auto& srow : l.s.rows()) {
            bool dangerous = false;
            for (const auto& trow : r.s_hat.rows()) {
              bool within = true;
              for (size_t c = 0; c < schema.arity() && within; ++c) {
                double d = AttributeDistance(specs[c], srow[c], trow[c]);
                within = d <= node.guard_tolerance[c];
              }
              if (within) {
                dangerous = true;
                break;
              }
            }
            if (!dangerous) out.s.AppendUnchecked(srow);
          }
        }
        out.s.Distinct();
        return out;
      }
      case EvalNode::Kind::kGroupBy: {
        BEAS_ASSIGN_OR_RETURN(EvalOut c, eval_node(*node.child));
        const RelationSchema& out_schema = node.original->output_schema();
        EvalOut out;
        BEAS_ASSIGN_OR_RETURN(out.s,
                              GroupByAggregate(c.s, out_schema, node.group_attrs, node.agg,
                                               node.agg_attr, /*weighted=*/true));
        BEAS_ASSIGN_OR_RETURN(out.s_hat,
                              GroupByAggregate(c.s_hat, out_schema, node.group_attrs,
                                               node.agg, node.agg_attr, /*weighted=*/true));
        return out;
      }
    }
    return Status::Internal("unknown EvalNode kind");
  };

  BEAS_ASSIGN_OR_RETURN(EvalOut result, eval_node(*plan.root));

  // --- Runtime accuracy bound eta' (Fig 5 lines 6-7). ---
  BeasAnswer answer;
  answer.accessed = store_->meter().accessed();
  answer.est_tariff = plan.est_tariff;
  answer.exact = plan.exact;

  const RelationSchema& out_schema = plan.query->output_schema();
  bool additive_agg = plan.query->kind() == QueryNode::Kind::kGroupBy &&
                      plan.query->agg() != AggFunc::kMin &&
                      plan.query->agg() != AggFunc::kMax;
  // d' is only needed when set differences may have removed approximate
  // answers present in the hat evaluation (S == S-hat otherwise).
  bool has_difference = false;
  {
    std::vector<const EvalNode*> stack{plan.root.get()};
    while (!stack.empty()) {
      const EvalNode* n = stack.back();
      stack.pop_back();
      if (n->kind == EvalNode::Kind::kDifference) has_difference = true;
      if (n->left) stack.push_back(n->left.get());
      if (n->right) stack.push_back(n->right.get());
      if (n->child) stack.push_back(n->child.get());
    }
  }
  double d_prime = 0;
  if (has_difference) {
    if (result.s.empty()) {
      d_prime = result.s_hat.empty() ? 0 : kInfDistance;
    } else {
      for (const auto& t : result.s_hat.rows()) {
        double best = kInfDistance;
        for (const auto& s : result.s.rows()) {
          double d;
          if (additive_agg) {
            size_t v = out_schema.arity() - 1;
            double xd = 0;
            for (size_t c = 0; c < v; ++c) {
              xd = std::max(
                  xd, AttributeDistance(out_schema.attribute(c).distance, s[c], t[c]));
            }
            double fagg = AttributeDistance(out_schema.attribute(v).distance, s[v], t[v]);
            d = (std::isinf(xd) || std::isinf(fagg)) ? kInfDistance : xd + fagg;
          } else {
            d = TupleDistance(out_schema, s, t);
          }
          best = std::min(best, d);
          if (best == 0) break;
        }
        d_prime = std::max(d_prime, best);
      }
    }
  }
  answer.d_prime = d_prime;
  answer.eta = plan.exact
                   ? 1.0
                   : 1.0 / (1.0 + std::max(plan.d_rel, d_prime + plan.d_cov));
  answer.table = std::move(result.s);
  return answer;
}

}  // namespace beas
