#include "beas/executor.h"

#include <algorithm>

#include "beas/answer_sink.h"
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/string_util.h"
#include "common/trace.h"
#include "engine/aggregate.h"
#include "types/column_chunk.h"
#include "types/distance.h"

namespace beas {

namespace {

// Materialized rows of one atom during fetching: columns in append order,
// with a parallel multiplicity (occurrence weight) per row.
struct AtomRows {
  std::vector<std::string> cols;
  std::vector<Tuple> rows;
  std::vector<int64_t> weights;

  int ColIndex(const std::string& col) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == col) return static_cast<int>(i);
    }
    return -1;
  }
};

// Distinct values of `col` in an atom's materialized rows.
std::vector<Value> DistinctColumn(const AtomRows& rows, const std::string& col) {
  std::vector<Value> out;
  int idx = rows.ColIndex(col);
  if (idx < 0) return out;
  std::unordered_set<Value, ValueHash> seen;
  for (const auto& r : rows.rows) {
    if (seen.insert(r[static_cast<size_t>(idx)]).second) {
      out.push_back(r[static_cast<size_t>(idx)]);
    }
  }
  return out;
}

// One probe of a fetch op: the X-key, plus the self-context row it
// extends (and that row's weight). `row` points into the op's atom
// materialization, which is stable until the op's output replaces it.
struct ProbeCtx {
  const Tuple* row = nullptr;  // self context
  int64_t weight = 1;
  Tuple xkey;
};

// The enumerated probes of one op against the unit's current atom
// materializations. `skip` marks a self-chaining op whose atom has no
// rows to extend: the op is a no-op and the atom stays as it is (an op
// *without* self context and zero probes still replaces the atom with an
// empty materialization carrying the new columns).
struct ProbeSet {
  bool skip = false;
  std::vector<ProbeCtx> probes;
};

// Enumerates op's probe contexts: (existing row or none) x external
// value combos, in the deterministic row-major order the sequential
// executor has always used. Reads the op's own atom and any kExternal
// source atoms; the caller guarantees those are fully materialized.
Result<ProbeSet> EnumerateProbes(const FetchOp& op, const std::vector<AtomRows>& atoms) {
  const AtomRows& atom = atoms[op.atom];
  const auto& x_attrs = op.family->x_attrs;
  ProbeSet out;

  bool has_self = false;
  for (const auto& src : op.x_sources) {
    has_self |= src.kind == XSource::Kind::kSelfChain;
  }
  // Enumerate external combinations (cross product of distinct column
  // values per external source; usually at most one).
  std::vector<std::vector<Value>> ext_values;  // per x position (empty = const/self)
  ext_values.resize(x_attrs.size());
  for (size_t i = 0; i < op.x_sources.size(); ++i) {
    const XSource& src = op.x_sources[i];
    if (src.kind == XSource::Kind::kExternal) {
      ext_values[i] = DistinctColumn(atoms[src.source_atom], src.column);
    }
  }

  // Recursive enumeration over external positions.
  auto enumerate = [&](const Tuple* row, int64_t weight) -> Status {
    ProbeCtx base;
    base.row = row;
    base.weight = weight;
    base.xkey.resize(x_attrs.size());
    // Fill const and self positions.
    for (size_t i = 0; i < op.x_sources.size(); ++i) {
      const XSource& src = op.x_sources[i];
      if (src.kind == XSource::Kind::kConst) {
        base.xkey[i] = src.constant;
      } else if (src.kind == XSource::Kind::kSelfChain) {
        int ci = atom.ColIndex(src.column);
        if (ci < 0 || row == nullptr) {
          return Status::Internal("self-chain probe without materialized column");
        }
        base.xkey[i] = (*row)[static_cast<size_t>(ci)];
      }
    }
    std::vector<ProbeCtx> partial{std::move(base)};
    for (size_t i = 0; i < x_attrs.size(); ++i) {
      if (ext_values[i].empty() &&
          op.x_sources[i].kind == XSource::Kind::kExternal) {
        // External source with no values: no probes at all.
        partial.clear();
        break;
      }
      if (op.x_sources[i].kind != XSource::Kind::kExternal) continue;
      std::vector<ProbeCtx> next;
      next.reserve(partial.size() * ext_values[i].size());
      for (const auto& p : partial) {
        for (const auto& v : ext_values[i]) {
          ProbeCtx q = p;
          q.xkey[i] = v;
          next.push_back(std::move(q));
        }
      }
      partial = std::move(next);
    }
    for (auto& p : partial) out.probes.push_back(std::move(p));
    return Status::OK();
  };

  if (has_self) {
    if (atom.rows.empty()) {
      out.skip = true;  // nothing to extend
      return out;
    }
    for (size_t r = 0; r < atom.rows.size(); ++r) {
      BEAS_RETURN_IF_ERROR(enumerate(&atom.rows[r], atom.weights[r]));
    }
  } else {
    BEAS_RETURN_IF_ERROR(enumerate(nullptr, 1));
  }
  return out;
}

// Builds the op's output materialization from the fetched entries
// (`fetched` parallel to `probes`), extending each probe's self context
// in probe order. Pure function of its inputs: both execution modes
// produce the same rows in the same order.
AtomRows BuildNextRows(const FetchOp& op, const AtomRows& atom,
                       const std::vector<ProbeCtx>& probes,
                       const std::vector<std::vector<FetchEntry>>& fetched) {
  const auto& x_attrs = op.family->x_attrs;
  // Which X columns are new to the atom's rows?
  std::vector<bool> x_is_new(x_attrs.size());
  for (size_t i = 0; i < x_attrs.size(); ++i) {
    x_is_new[i] = atom.ColIndex(x_attrs[i]) < 0;
  }
  AtomRows next;
  next.cols = atom.cols;
  size_t ctx_width = atom.cols.size();
  for (size_t i = 0; i < x_attrs.size(); ++i) {
    if (x_is_new[i]) next.cols.push_back(x_attrs[i]);
  }
  for (const auto& y : op.family->y_attrs) next.cols.push_back(y);

  for (size_t p = 0; p < probes.size(); ++p) {
    const ProbeCtx& probe = probes[p];
    for (const auto& e : fetched[p]) {
      Tuple row;
      row.reserve(next.cols.size());
      if (probe.row != nullptr) {
        for (size_t c = 0; c < ctx_width; ++c) row.push_back((*probe.row)[c]);
      }
      for (size_t i = 0; i < x_attrs.size(); ++i) {
        if (x_is_new[i]) row.push_back(probe.xkey[i]);
      }
      for (const auto& v : *e.y) row.push_back(v);
      next.rows.push_back(std::move(row));
      next.weights.push_back(probe.weight * e.count);
    }
  }
  return next;
}

// ---------------------------------------------------------------------------
// Sequential fetch (the reference path): ops in plan order, fetches
// metered as they go through IndexStore::Fetch/FetchBatch.
// ---------------------------------------------------------------------------

Status FetchUnitSequential(const IndexStore* store, const SpcUnit& unit, bool vectorized,
                           std::vector<AtomRows>* atoms, AccessMeter* meter,
                           std::chrono::steady_clock::time_point deadline =
                               std::chrono::steady_clock::time_point::max()) {
  const bool has_deadline =
      deadline != std::chrono::steady_clock::time_point::max();
  for (const auto& op : unit.fetch.ops) {
    // Each fetch op is a cancellation point (the sequential analogue of
    // the parallel scheduler's per-op deadline check).
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "query deadline expired during index fetch");
    }
    BEAS_ASSIGN_OR_RETURN(ProbeSet ps, EnumerateProbes(op, *atoms));
    if (ps.skip) continue;
    const std::vector<ProbeCtx>& probes = ps.probes;
    std::vector<std::vector<FetchEntry>> fetched(probes.size());
    // Keep-alive pins for the op's fetched entries (the block-file
    // backend decodes groups out of cached blocks); they must outlive
    // BuildNextRows below, which copies the entry values out.
    FetchPins pins;
    if (vectorized) {
      // Batched fetch: one family resolution per chunk of probes
      // instead of per probe (the meter still charges per key). Same
      // accessed totals and the same rows in the same order as the
      // scalar loop below.
      std::vector<const Tuple*> keys;
      std::vector<std::vector<FetchEntry>> chunk;
      for (size_t base = 0; base < probes.size(); base += kDefaultChunkCapacity) {
        // Per-chunk cancellation: without this, one op with a huge probe
        // set could overshoot the deadline by its whole fetch (measured
        // by the overshoot tests; chunk granularity bounds it by one
        // batch of work).
        if (base > 0 && has_deadline &&
            std::chrono::steady_clock::now() >= deadline) {
          return Status::DeadlineExceeded(
              "query deadline expired during index fetch");
        }
        size_t m = std::min(kDefaultChunkCapacity, probes.size() - base);
        keys.clear();
        keys.reserve(m);
        for (size_t i = 0; i < m; ++i) keys.push_back(&probes[base + i].xkey);
        BEAS_RETURN_IF_ERROR(
            store->FetchBatch(op.family_id, op.level, keys, &chunk, &pins, meter));
        for (size_t i = 0; i < m; ++i) fetched[base + i] = std::move(chunk[i]);
      }
    } else {
      for (size_t p = 0; p < probes.size(); ++p) {
        // Same chunk-granularity cancellation as the batched loop.
        if (p > 0 && p % kDefaultChunkCapacity == 0 && has_deadline &&
            std::chrono::steady_clock::now() >= deadline) {
          return Status::DeadlineExceeded(
              "query deadline expired during index fetch");
        }
        BEAS_ASSIGN_OR_RETURN(
            FetchResult r, store->Fetch(op.family_id, op.level, probes[p].xkey, meter));
        fetched[p] = std::move(r.entries);
        for (auto& pin : r.pins) pins.push_back(std::move(pin));
      }
    }
    // Rows without self context start from scratch; rows with self
    // context replace the previous materialization.
    (*atoms)[op.atom] = BuildNextRows(op, (*atoms)[op.atom], probes, fetched);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel fetch: ops scheduled over the per-unit dependency DAGs
// (BuildFetchDag), sub-batches of one op's probes fetched concurrently,
// charges committed through the meter's deposit protocol in sequential
// order (docs/ARCHITECTURE.md "Parallel atom fetching"). Deterministic
// by construction: every op reads exactly the atom state it reads under
// sequential order, and the meter commits slot-by-slot, so answers and
// the OutOfBudget failure point match fetch_threads = 1 bit-for-bit.
// ---------------------------------------------------------------------------

// One schedulable fetch op. Its index in ParallelFetchScheduler::ops_ is
// its deposit slot: the position in the sequential execution order
// across all units (unit-major, then ops order).
struct GlobalOp {
  size_t unit = 0;
  size_t op = 0;  // index into the unit's fetch.ops
};

class ParallelFetchScheduler {
 public:
  ParallelFetchScheduler(const IndexStore* store, AccessMeter* meter, ThreadPool* pool,
                         const BeasPlan& plan,
                         std::vector<std::vector<AtomRows>>* unit_atoms,
                         std::chrono::steady_clock::time_point deadline =
                             std::chrono::steady_clock::time_point::max(),
                         QueryTrace* trace = nullptr)
      : store_(store), meter_(meter), pool_(pool), plan_(plan), unit_atoms_(unit_atoms),
        deadline_(deadline), trace_(trace) {}

  Status Run() {
    // Flatten ops across units in sequential order; per-unit DAGs (units
    // are independent: they materialize disjoint atom vectors).
    std::vector<size_t> slot_base(plan_.units.size(), 0);
    for (size_t u = 0; u < plan_.units.size(); ++u) {
      slot_base[u] = ops_.size();
      for (size_t o = 0; o < plan_.units[u].fetch.ops.size(); ++o) {
        ops_.push_back(GlobalOp{u, o});
      }
    }
    pending_deps_.assign(ops_.size(), 0);
    dependents_.assign(ops_.size(), {});
    std::vector<size_t> ready;
    for (size_t u = 0; u < plan_.units.size(); ++u) {
      FetchDag dag = BuildFetchDag(plan_.units[u].fetch);
      if (!dag.sequential_consistent) {
        // Defensive: no planner path produces such plans. Serialize the
        // whole unit by chaining its ops in sequential order instead.
        const size_t n = plan_.units[u].fetch.ops.size();
        dag.deps.assign(n, {});
        dag.dependents.assign(n, {});
        for (size_t o = 0; o + 1 < n; ++o) {
          dag.deps[o + 1] = {o};
          dag.dependents[o] = {o + 1};
        }
      }
      for (size_t o = 0; o < dag.deps.size(); ++o) {
        size_t g = slot_base[u] + o;
        pending_deps_[g] = dag.deps[o].size();
        for (size_t d : dag.dependents[o]) dependents_[g].push_back(slot_base[u] + d);
        if (pending_deps_[g] == 0) ready.push_back(g);
      }
    }

    meter_->BeginDeposits(ops_.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      unfinished_ = ops_.size();
      inflight_ = ready.size();
    }
    // Submitted outside mu_: the pool's nested-parallelism guard may run
    // a task inline, and an inline RunOp re-enters CompleteOp -> mu_.
    for (size_t g : ready) {
      pool_->Submit([this, g] { RunOp(g); });
    }
    {
      // Coordinator idle time: how long the fetch phase spent waiting on
      // pool workers, the deposit/commit stall the trace reports as
      // fetch_wait_us.
      const bool timed = trace_ != nullptr && trace_->timings();
      const uint64_t wait_start = timed ? trace_->NowMicros() : 0;
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return inflight_ == 0 &&
               (unfinished_ == 0 || abort_ || error_slot_ != SIZE_MAX);
      });
      if (timed) {
        trace_->IncrAttr("fetch_wait_us",
                         static_cast<int64_t>(trace_->NowMicros() - wait_start));
      }
      // Resolve exactly as sequential execution would. A worker error
      // (defensive paths only) does not abort dispatching, so every op
      // at a slot below the erroring one still fetches and deposits:
      // if any of them exhausts the budget the meter's sticky failure
      // is the sequential outcome; otherwise the lowest-slot error is.
      if (error_slot_ != SIZE_MAX && !meter_->failed()) return error_;
    }
    // All slots deposited on success; the sticky OutOfBudget on failure.
    return meter_->FinishDeposits();
  }

 private:
  // Finishing step: unblock dependents, fold in failures, and wake the
  // coordinator when the fetch phase is over. Worker errors are recorded
  // by slot (lowest wins, the sequential order); only a meter failure
  // aborts dispatching — an erroring op's own dependents stay blocked,
  // but independent lower slots must still run so the meter can settle
  // the sequential outcome (see Run()). Ready dependents are collected
  // under the lock but submitted after it drops: Submit may run the
  // dependent inline (nested-parallelism guard on a saturated pool), and
  // its own CompleteOp must be able to retake mu_.
  void CompleteOp(size_t g, bool finished, Status error) {
    std::vector<size_t> to_dispatch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (finished) {
        --unfinished_;
        for (size_t d : dependents_[g]) {
          if (--pending_deps_[d] == 0 && !abort_) to_dispatch.push_back(d);
        }
      }
      if (!error.ok() && g < error_slot_) {
        error_slot_ = g;
        error_ = std::move(error);
      }
      if (meter_->failed()) abort_ = true;
      // Dependents enter flight before this op leaves it (one critical
      // section), so the coordinator never observes a false quiescent
      // state between the two updates. The notify must also happen
      // before mu_ drops: the scheduler lives on the coordinator's
      // stack, and a notify after the unlock could hit cv_ after the
      // coordinator woke (spuriously or via an earlier notify), saw the
      // quiescent state, and destroyed the scheduler.
      inflight_ += to_dispatch.size();
      --inflight_;
      cv_.notify_all();
    }
    for (size_t d : to_dispatch) {
      pool_->Submit([this, d] { RunOp(d); });
    }
  }

  void RunOp(size_t g) {
    if (abort_.load(std::memory_order_relaxed) || meter_->failed()) {
      // The outcome is already decided by an earlier slot; anything this
      // op would deposit past the failure point gets discarded anyway.
      CompleteOp(g, /*finished=*/false, Status::OK());
      return;
    }
    // Op entry is a cancellation point: an expired op reports through
    // the error-slot protocol (lowest slot wins) like any worker error,
    // and every still-queued op drains the same way, so the coordinator
    // wakes promptly with kDeadlineExceeded.
    if (DeadlinePassed()) {
      CompleteOp(g, /*finished=*/false,
                 Status::DeadlineExceeded(
                     "query deadline expired during parallel fetch"));
      return;
    }
    const GlobalOp& gop = ops_[g];
    const FetchOp& op = plan_.units[gop.unit].fetch.ops[gop.op];
    std::vector<AtomRows>& atoms = (*unit_atoms_)[gop.unit];

    Result<ProbeSet> ps = EnumerateProbes(op, atoms);
    if (!ps.ok()) {
      CompleteOp(g, /*finished=*/false, ps.status());
      return;
    }
    if (ps->skip) {
      meter_->Deposit(g, {});
      CompleteOp(g, /*finished=*/true, Status::OK());
      return;
    }

    auto state = std::make_shared<OpState>();
    state->probes = std::move(ps->probes);
    state->fetched.resize(state->probes.size());
    size_t n = state->probes.size();
    size_t num_sub = n == 0 ? 1 : (n + kDefaultChunkCapacity - 1) / kDefaultChunkCapacity;
    state->sub_pins.resize(num_sub);
    state->remaining.store(num_sub, std::memory_order_relaxed);

    // Fan the op's probe chunks out to the pool (this worker keeps the
    // first chunk); the last chunk to finish runs the finalize step.
    // Continuation-passing, never blocking: a 1-thread pool cannot
    // deadlock, it just runs the chunks in submission order.
    for (size_t sub = 1; sub < num_sub; ++sub) {
      pool_->Submit([this, g, state, sub] { RunSubBatch(g, state, sub); });
    }
    RunSubBatch(g, state, 0);
  }

  struct OpState {
    std::vector<ProbeCtx> probes;
    std::vector<std::vector<FetchEntry>> fetched;  // parallel to probes
    // Per-sub-batch keep-alive pins (each sub-batch writes only its own
    // slot — no lock needed); they hold the fetched entries' backing
    // storage alive through FinalizeOp's BuildNextRows.
    std::vector<FetchPins> sub_pins;
    std::atomic<size_t> remaining{0};
    std::mutex mu;          // guards error
    Status error;           // first fetch error of any sub-batch
  };

  void RunSubBatch(size_t g, const std::shared_ptr<OpState>& state, size_t sub) {
    const GlobalOp& gop = ops_[g];
    const FetchOp& op = plan_.units[gop.unit].fetch.ops[gop.op];
    size_t base = sub * kDefaultChunkCapacity;
    size_t m = std::min(kDefaultChunkCapacity, state->probes.size() - base);
    // Sub-batch entry is a cancellation point, bounding the deadline
    // overshoot of one giant op to a chunk of fetch work instead of the
    // whole probe set (same morsel granularity as RunOp entry; the error
    // flows through the op's error slot like a fetch failure).
    if (DeadlinePassed()) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->error.ok()) {
        state->error = Status::DeadlineExceeded(
            "query deadline expired during parallel fetch");
      }
    } else if (!abort_.load(std::memory_order_relaxed)) {
      std::vector<const Tuple*> keys;
      keys.reserve(m);
      for (size_t i = 0; i < m; ++i) keys.push_back(&state->probes[base + i].xkey);
      std::vector<std::vector<FetchEntry>> chunk;
      Status st = store_->FetchBatchUnmetered(op.family_id, op.level, keys, &chunk,
                                              &state->sub_pins[sub],
                                              meter_->cache_counters());
      if (st.ok()) {
        for (size_t i = 0; i < m; ++i) state->fetched[base + i] = std::move(chunk[i]);
      } else {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error.ok()) state->error = std::move(st);
      }
    }
    if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) > 1) return;
    FinalizeOp(g, *state);
  }

  void FinalizeOp(size_t g, OpState& state) {
    // fetch_sub's acq_rel handoff makes every sub-batch's writes visible
    // to this (single) finalizer thread.
    if (!state.error.ok()) {
      CompleteOp(g, /*finished=*/false, std::move(state.error));
      return;
    }
    if (abort_.load(std::memory_order_relaxed)) {
      // Some chunk may have been skipped: the fetch is incomplete and
      // must not be deposited. Correctness is unaffected — abort means
      // an earlier slot already fixed the query's outcome.
      CompleteOp(g, /*finished=*/false, Status::OK());
      return;
    }
    const GlobalOp& gop = ops_[g];
    const FetchOp& op = plan_.units[gop.unit].fetch.ops[gop.op];
    std::vector<AtomRows>& atoms = (*unit_atoms_)[gop.unit];

    std::vector<uint64_t> counts(state.fetched.size());
    for (size_t i = 0; i < state.fetched.size(); ++i) counts[i] = state.fetched[i].size();
    meter_->Deposit(g, std::move(counts));

    atoms[op.atom] = BuildNextRows(op, atoms[op.atom], state.probes, state.fetched);
    CompleteOp(g, /*finished=*/true, Status::OK());
  }

  const IndexStore* store_;
  AccessMeter* meter_;  ///< the query's meter (deposit protocol target)
  ThreadPool* pool_;
  const BeasPlan& plan_;
  std::vector<std::vector<AtomRows>>* unit_atoms_;

  std::vector<GlobalOp> ops_;
  std::vector<size_t> pending_deps_;
  std::vector<std::vector<size_t>> dependents_;

  // True once the scheduler's deadline has passed; the sticky flag saves
  // clock reads after the first observation.
  bool DeadlinePassed() {
    if (deadline_ == std::chrono::steady_clock::time_point::max()) return false;
    if (deadline_passed_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() < deadline_) return false;
    deadline_passed_.store(true, std::memory_order_relaxed);
    return true;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  size_t unfinished_ = 0;
  size_t inflight_ = 0;
  std::atomic<bool> abort_{false};
  size_t error_slot_ = SIZE_MAX;  ///< lowest slot with a worker error
  Status error_ = Status::OK();   ///< its status
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> deadline_passed_{false};
  QueryTrace* trace_ = nullptr;  ///< non-owning; coordinator-wait attribution
};

// ---------------------------------------------------------------------------
// Morsel-driven parallel evaluation (xi_E): the unit subtrees of the
// union/difference tree are independent morsels — each one evaluates a
// distinct rewritten SPC query over the (now read-only) D_Q tables with
// its own intermediate-row counter, and xi_E touches neither the meter
// nor the cache counters. Workers claim unit indices from a shared
// cursor and deposit each unit's Result<Table> into its slot; the
// single-threaded eval_node recursion then *replays* the deposits in
// canonical traversal order, so merges, Distinct() calls, and the first
// surfaced error are byte-identical to sequential evaluation. Finer
// morsels (the predicate-cascade windows inside one unit) parallelize
// below this layer, in FilterTableBatched (engine/vectorized.cc), with
// the same deposit-then-ordered-commit discipline per ColumnChunk
// window.
// ---------------------------------------------------------------------------

// Shared state of one unit-morsel fan-out. Heap-held via shared_ptr so a
// straggler helper that wakes after all morsels are claimed (and the
// coordinator has moved on) still touches valid memory: it only reads
// `next` and `total`, sees the cursor exhausted, and exits without
// dereferencing the coordinator-owned pointers.
struct UnitEvalState {
  std::atomic<size_t> next{0};  ///< claim cursor over unit indices
  size_t total = 0;
  const BeasPlan* plan = nullptr;
  const Evaluator* evaluator = nullptr;
  std::optional<Result<Table>>* slots = nullptr;  ///< one deposit per unit
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::atomic<bool> expired{false};  ///< deadline passed; deposit errors

  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  ///< units deposited (guarded by mu)
};

// The claim loop: run by every helper task *and* by the coordinator
// itself, so progress never depends on a pool worker becoming free (a
// saturated 1-thread pool just makes the coordinator do all the work).
// Helpers never block on other morsels.
void RunUnitEvalClaims(const std::shared_ptr<UnitEvalState>& st) {
  size_t claimed = 0;
  for (;;) {
    size_t u = st->next.fetch_add(1, std::memory_order_relaxed);
    if (u >= st->total) break;
    // Each claim is a cancellation point: once the deadline passes the
    // remaining units deposit kDeadlineExceeded instead of evaluating
    // (the replay surfaces the first error in canonical order), keeping
    // the done == total barrier protocol intact. The evaluator itself
    // re-checks at node entry, so a unit claimed just before expiry
    // still stops promptly.
    bool expired = st->expired.load(std::memory_order_relaxed);
    if (!expired &&
        st->deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= st->deadline) {
      st->expired.store(true, std::memory_order_relaxed);
      expired = true;
    }
    const SpcUnit& unit = st->plan->units[u];
    if (expired) {
      st->slots[u].emplace(Status::DeadlineExceeded(
          "query deadline expired during unit-eval morsels"));
    } else if (unit.unsatisfiable) {
      st->slots[u].emplace(Table(unit.query->output_schema()));
    } else {
      size_t rows_materialized = 0;
      st->slots[u].emplace(st->evaluator->Eval(unit.rewritten, &rows_materialized));
    }
    ++claimed;
  }
  if (claimed > 0) {
    std::lock_guard<std::mutex> lock(st->mu);
    st->done += claimed;
    if (st->done == st->total) st->cv.notify_all();
  }
}

}  // namespace

ThreadPool* PlanExecutor::EnsurePool(size_t threads) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

Result<BeasAnswer> PlanExecutor::Execute(const BeasPlan& plan, uint64_t budget) const {
  QueryContext ctx;
  ctx.eval = eval_options_;
  return Execute(plan, budget, &ctx);
}

Result<BeasAnswer> PlanExecutor::Execute(const BeasPlan& plan, uint64_t budget,
                                         QueryContext* ctx) const {
  return ExecuteImpl(plan, budget, ctx, /*sink=*/nullptr);
}

Result<BeasAnswer> PlanExecutor::Execute(const BeasPlan& plan, uint64_t budget,
                                         QueryContext* ctx, AnswerSink* sink) const {
  return ExecuteImpl(plan, budget, ctx, sink);
}

Result<BeasAnswer> PlanExecutor::ExecuteImpl(const BeasPlan& plan, uint64_t budget,
                                             QueryContext* ctx, AnswerSink* sink) const {
  // An already-expired deadline fails deterministically before any fetch
  // or eval work touches the store (the basis of the net determinism
  // test: expired queries never charge the meter or the cache).
  if (DeadlineExpired(ctx->eval)) {
    return Status::DeadlineExceeded("query deadline expired before execution");
  }
  ctx->meter.StartQuery(budget);
  QueryTrace* trace = ctx->eval.trace;
  // The schema is known before any fetch work: open the stream now so a
  // consumer can ship it while xi_F runs.
  if (sink != nullptr) {
    BEAS_RETURN_IF_ERROR(sink->Open(plan.query->output_schema()));
  }

  // --- xi_F: materialize every unit's atoms through the index store. ---
  std::vector<std::vector<AtomRows>> unit_atoms(plan.units.size());
  size_t total_fetch_ops = 0;
  for (size_t u = 0; u < plan.units.size(); ++u) {
    unit_atoms[u].resize(plan.units[u].fetch.atoms.size());
    total_fetch_ops += plan.units[u].fetch.ops.size();
  }
  if (trace != nullptr) {
    trace->SetAttr("fetch_ops", static_cast<int64_t>(total_fetch_ops));
  }
  {
    ScopedSpan fetch_span(trace, "fetch");
    if (ctx->eval.fetch_threads > 1) {
      // Sized for both phases: fetch and eval share one pool (class doc).
      ThreadPool* pool = EnsurePool(std::max<size_t>(
          static_cast<size_t>(ctx->eval.fetch_threads),
          static_cast<size_t>(std::max(ctx->eval.eval_threads, 1))));
      ParallelFetchScheduler scheduler(store_, &ctx->meter, pool, plan, &unit_atoms,
                                       ctx->eval.deadline, trace);
      BEAS_RETURN_IF_ERROR(scheduler.Run());
    } else {
      for (size_t u = 0; u < plan.units.size(); ++u) {
        BEAS_RETURN_IF_ERROR(FetchUnitSequential(store_, plan.units[u],
                                                 ctx->eval.vectorized,
                                                 &unit_atoms[u], &ctx->meter,
                                                 ctx->eval.deadline));
      }
    }
  }

  // Emit DQ tables in the planner's atom schemas.
  Database dq;
  {
    ScopedSpan dq_span(trace, "dq_build");
    for (size_t u = 0; u < plan.units.size(); ++u) {
      const SpcUnit& unit = plan.units[u];
      for (size_t a = 0; a < unit.fetch.atoms.size(); ++a) {
        const RelationSchema& schema = unit.atom_schemas[a];
        Table table(schema);
        const AtomRows& rows = unit_atoms[u][a];
        std::vector<int> perm;  // schema position -> rows column (-1 = __w)
        for (const auto& attr : schema.attributes()) {
          perm.push_back(attr.name == "__w" ? -1 : rows.ColIndex(attr.name));
        }
        for (size_t r = 0; r < rows.rows.size(); ++r) {
          Tuple t;
          t.reserve(perm.size());
          for (int p : perm) {
            if (p < 0) {
              t.push_back(Value(rows.weights[r]));
            } else {
              t.push_back(rows.rows[r][static_cast<size_t>(p)]);
            }
          }
          table.AppendUnchecked(std::move(t));
        }
        BEAS_RETURN_IF_ERROR(dq.AddTable(std::move(table)));
      }
    }
  }
  // D_Q is a private deep copy: from here on, evaluation touches no
  // shared state, so a sink pinning shared reads (an epoch read lock)
  // can release now — backpressure stalls below must never block
  // writers.
  if (sink != nullptr) sink->OnSharedReadsDone();

  // --- xi_E: evaluate the tree, tracking both S and S-hat. ---
  // Timed manually, not RAII: an error return mid-eval reports no span
  // (the query has no answer to attribute it to), and the streaming
  // branch below would otherwise need the scope restructured around it.
  const bool time_eval = trace != nullptr && trace->timings();
  const uint64_t eval_span_start = time_eval ? trace->NowMicros() : 0;
  if (trace != nullptr) {
    trace->SetAttr("eval_units", static_cast<int64_t>(plan.units.size()));
  }
  ThreadPool* eval_pool =
      ctx->eval.eval_threads > 1
          ? EnsurePool(std::max<size_t>(
                static_cast<size_t>(std::max(ctx->eval.fetch_threads, 1)),
                static_cast<size_t>(ctx->eval.eval_threads)))
          : nullptr;
  Evaluator evaluator(dq, ctx->eval, eval_pool);

  // Morsel-parallel unit evaluation: pre-evaluate every unit subtree
  // into its deposit slot, then let the recursion below replay the
  // slots in canonical traversal order (see UnitEvalState). Evaluation
  // is side-effect free per unit (own intermediate-row counter, no
  // meter traffic), so pre-evaluating units that sequential execution
  // would have skipped after an error changes nothing observable.
  std::vector<std::optional<Result<Table>>> unit_slots;
  if (eval_pool != nullptr && plan.units.size() > 1) {
    unit_slots.resize(plan.units.size());
    auto state = std::make_shared<UnitEvalState>();
    state->total = plan.units.size();
    state->plan = &plan;
    state->evaluator = &evaluator;
    state->slots = unit_slots.data();
    state->deadline = ctx->eval.deadline;
    size_t helpers = std::min<size_t>(
        static_cast<size_t>(ctx->eval.eval_threads) - 1, plan.units.size() - 1);
    for (size_t h = 0; h < helpers; ++h) {
      eval_pool->Submit([state] { RunUnitEvalClaims(state); });
    }
    RunUnitEvalClaims(state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] { return state->done == state->total; });
  }

  struct EvalOut {
    Table s;
    Table s_hat;
  };
  std::function<Result<EvalOut>(const EvalNode&)> eval_node =
      [&](const EvalNode& node) -> Result<EvalOut> {
    switch (node.kind) {
      case EvalNode::Kind::kSpc: {
        const SpcUnit& unit = plan.units[node.unit];
        EvalOut out;
        if (!unit_slots.empty()) {
          // Ordered commit: consume this unit's parallel deposit at the
          // exact point the sequential recursion would evaluate it.
          BEAS_ASSIGN_OR_RETURN(out.s, std::move(*unit_slots[node.unit]));
          out.s_hat = out.s;
          return out;
        }
        if (unit.unsatisfiable) {
          out.s = Table(unit.query->output_schema());
          out.s_hat = out.s;
          return out;
        }
        BEAS_ASSIGN_OR_RETURN(out.s, evaluator.Eval(unit.rewritten));
        out.s_hat = out.s;
        return out;
      }
      case EvalNode::Kind::kUnion: {
        BEAS_ASSIGN_OR_RETURN(EvalOut l, eval_node(*node.left));
        BEAS_ASSIGN_OR_RETURN(EvalOut r, eval_node(*node.right));
        auto merge = [&](Table a, const Table& b) {
          for (const auto& row : b.rows()) a.AppendUnchecked(row);
          a.Distinct();
          return a;
        };
        EvalOut out;
        out.s = merge(std::move(l.s), r.s);
        out.s_hat = merge(std::move(l.s_hat), r.s_hat);
        return out;
      }
      case EvalNode::Kind::kDifference: {
        BEAS_ASSIGN_OR_RETURN(EvalOut l, eval_node(*node.left));
        BEAS_ASSIGN_OR_RETURN(EvalOut r, eval_node(*node.right));
        EvalOut out;
        out.s_hat = l.s_hat;  // Q-hat drops the negated side
        const RelationSchema& schema = node.original->output_schema();
        if (node.guard_tolerance.empty()) {
          // Exact negated side: plain set difference against E(Q2).
          std::unordered_set<Tuple, TupleHasher> negated(r.s.rows().begin(),
                                                         r.s.rows().end());
          out.s = Table(schema);
          for (const auto& row : l.s.rows()) {
            if (negated.find(row) == negated.end()) out.s.AppendUnchecked(row);
          }
        } else {
          // Guard: drop answers within the dangerous distance of any
          // E(Q2-hat) tuple on every column (Section 6). Distance specs
          // are hoisted out of the row loops; the scan itself stays
          // row-major — each S value is read once, so a chunk transpose
          // would only add copies (docs/ARCHITECTURE.md).
          out.s = Table(schema);
          std::vector<DistanceSpec> specs;
          specs.reserve(schema.arity());
          for (size_t c = 0; c < schema.arity(); ++c) {
            specs.push_back(schema.attribute(c).distance);
          }
          for (const auto& srow : l.s.rows()) {
            bool dangerous = false;
            for (const auto& trow : r.s_hat.rows()) {
              bool within = true;
              for (size_t c = 0; c < schema.arity() && within; ++c) {
                double d = AttributeDistance(specs[c], srow[c], trow[c]);
                within = d <= node.guard_tolerance[c];
              }
              if (within) {
                dangerous = true;
                break;
              }
            }
            if (!dangerous) out.s.AppendUnchecked(srow);
          }
        }
        out.s.Distinct();
        return out;
      }
      case EvalNode::Kind::kGroupBy: {
        BEAS_ASSIGN_OR_RETURN(EvalOut c, eval_node(*node.child));
        const RelationSchema& out_schema = node.original->output_schema();
        EvalOut out;
        BEAS_ASSIGN_OR_RETURN(out.s,
                              GroupByAggregate(c.s, out_schema, node.group_attrs, node.agg,
                                               node.agg_attr, /*weighted=*/true));
        BEAS_ASSIGN_OR_RETURN(out.s_hat,
                              GroupByAggregate(c.s_hat, out_schema, node.group_attrs,
                                               node.agg, node.agg_attr, /*weighted=*/true));
        return out;
      }
    }
    return Status::Internal("unknown EvalNode kind");
  };

  // Single-unit SPC plans (the dominant shape) stream for real: the
  // evaluator pushes committed filter windows into the sink as they
  // commit, long before the scalar observables below exist. Any other
  // tree shape needs the full result for dedup/guard/aggregation, so it
  // materializes through eval_node as always and pushes at the end.
  EvalOut result;
  bool streamed_live = false;
  size_t streamed = 0;
  if (sink != nullptr && plan.root->kind == EvalNode::Kind::kSpc &&
      plan.units.size() == 1) {
    streamed_live = true;
    const SpcUnit& unit = plan.units[plan.root->unit];
    result.s = Table(unit.query->output_schema());
    result.s_hat = result.s;
    if (!unit.unsatisfiable) {
      size_t rows_materialized = 0;
      BEAS_ASSIGN_OR_RETURN(
          streamed,
          evaluator.EvalStreaming(unit.rewritten, &rows_materialized,
                                  [sink](std::vector<Tuple>&& rows) {
                                    return sink->Append(std::move(rows));
                                  }));
    }
  } else {
    BEAS_ASSIGN_OR_RETURN(result, eval_node(*plan.root));
  }
  if (time_eval) {
    trace->AddSpan("eval", eval_span_start, trace->NowMicros() - eval_span_start);
  }

  // --- Runtime accuracy bound eta' (Fig 5 lines 6-7). ---
  BeasAnswer answer;
  answer.accessed = ctx->meter.accessed();
  answer.est_tariff = plan.est_tariff;
  answer.exact = plan.exact;
  answer.cache_hits = ctx->meter.cache_counters()->hits.load(std::memory_order_relaxed);
  answer.cache_misses =
      ctx->meter.cache_counters()->misses.load(std::memory_order_relaxed);
  answer.trace = trace;
  if (trace != nullptr) {
    trace->SetAttr("keys_charged", static_cast<int64_t>(answer.accessed));
    trace->SetAttr("block_cache_hits", static_cast<int64_t>(answer.cache_hits));
    trace->SetAttr("block_cache_misses", static_cast<int64_t>(answer.cache_misses));
  }

  const RelationSchema& out_schema = plan.query->output_schema();
  bool additive_agg = plan.query->kind() == QueryNode::Kind::kGroupBy &&
                      plan.query->agg() != AggFunc::kMin &&
                      plan.query->agg() != AggFunc::kMax;
  // d' is only needed when set differences may have removed approximate
  // answers present in the hat evaluation (S == S-hat otherwise).
  bool has_difference = false;
  {
    std::vector<const EvalNode*> stack{plan.root.get()};
    while (!stack.empty()) {
      const EvalNode* n = stack.back();
      stack.pop_back();
      if (n->kind == EvalNode::Kind::kDifference) has_difference = true;
      if (n->left) stack.push_back(n->left.get());
      if (n->right) stack.push_back(n->right.get());
      if (n->child) stack.push_back(n->child.get());
    }
  }
  double d_prime = 0;
  if (has_difference) {
    if (result.s.empty()) {
      d_prime = result.s_hat.empty() ? 0 : kInfDistance;
    } else {
      for (const auto& t : result.s_hat.rows()) {
        double best = kInfDistance;
        for (const auto& s : result.s.rows()) {
          double d;
          if (additive_agg) {
            size_t v = out_schema.arity() - 1;
            double xd = 0;
            for (size_t c = 0; c < v; ++c) {
              xd = std::max(
                  xd, AttributeDistance(out_schema.attribute(c).distance, s[c], t[c]));
            }
            double fagg = AttributeDistance(out_schema.attribute(v).distance, s[v], t[v]);
            d = (std::isinf(xd) || std::isinf(fagg)) ? kInfDistance : xd + fagg;
          } else {
            d = TupleDistance(out_schema, s, t);
          }
          best = std::min(best, d);
          if (best == 0) break;
        }
        d_prime = std::max(d_prime, best);
      }
    }
  }
  answer.d_prime = d_prime;
  answer.eta = plan.exact
                   ? 1.0
                   : 1.0 / (1.0 + std::max(plan.d_rel, d_prime + plan.d_cov));
  answer.table = std::move(result.s);
  if (sink != nullptr) {
    if (streamed_live) {
      answer.streamed_rows = streamed;
    } else {
      // Degenerate one-page shape: the fully materialized result is
      // pushed through the sink in window-sized chunks at the end.
      const std::vector<Tuple>& rows = answer.table.rows();
      for (size_t start = 0; start < rows.size(); start += kDefaultChunkCapacity) {
        size_t n = std::min(kDefaultChunkCapacity, rows.size() - start);
        std::vector<Tuple> chunk(rows.begin() + static_cast<ptrdiff_t>(start),
                                 rows.begin() + static_cast<ptrdiff_t>(start + n));
        BEAS_RETURN_IF_ERROR(sink->Append(std::move(chunk)));
      }
      answer.streamed_rows = answer.table.size();
    }
    answer.table = Table(plan.query->output_schema());
  }
  return answer;
}

}  // namespace beas
