// Per-query execution state, split out of the shared engine so that N
// sessions can run Answer concurrently against one Beas instance: the
// access meter (the only mutable state the alpha bound needs) and the
// evaluation options of one call live here, while the database, the
// IndexStore's indices, and the plan cache stay shared and read-only
// during execution (docs/ARCHITECTURE.md "Concurrent query service").

#ifndef BEAS_BEAS_QUERY_CONTEXT_H_
#define BEAS_BEAS_QUERY_CONTEXT_H_

#include "engine/evaluator.h"
#include "index/index_store.h"

namespace beas {

/// \brief The mutable state of one Answer/Execute call.
///
/// A QueryContext is owned by exactly one query for the duration of its
/// execution and must not be shared across concurrent calls (the meter
/// inside is thread-safe, but it counts *one* query's budget). Everything
/// the executor touches outside this context is const: concurrent
/// executions over one IndexStore are safe as long as no maintenance
/// (Build/ApplyInsert/ApplyRemove) runs at the same time — the query
/// service's epoch guard provides exactly that exclusion.
struct QueryContext {
  /// This query's access meter: charged (directly or through the deposit
  /// protocol) for every tuple the query fetches, enforcing its own
  /// alpha * |D| budget independently of any concurrent session.
  AccessMeter meter;
  /// Evaluation options of this call (vectorization, fetch/eval thread
  /// counts, intermediate-row caps). Copied from the engine defaults by
  /// Beas::Answer; per-call overrides are allowed — the query service
  /// uses them to budget eval_threads/fetch_threads per query under
  /// load. Thread-count overrides never change answers (parallel fetch
  /// and morsel evaluation are answer-invariant by construction).
  /// EvalOptions::deadline also rides here: the executor checks it at
  /// morsel boundaries (per fetch op, per unit-eval claim, per filter
  /// window) and cancels with kDeadlineExceeded, discarding partial
  /// deposits without committing them. EvalOptions::trace (when set)
  /// carries this query's QueryTrace through every layer: the planner
  /// stamps chase/chAT micros and the cache-hit flag, the executor
  /// times the fetch/eval phases and records keys charged and
  /// block-cache traffic, and the morsel engine adds window counts and
  /// commit-order stall time — all without changing the answer.
  EvalOptions eval;
};

}  // namespace beas

#endif  // BEAS_BEAS_QUERY_CONTEXT_H_
