#include "beas/fetch_plan.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace beas {

FetchDag BuildFetchDag(const FetchPlan& plan) {
  FetchDag dag;
  dag.deps.resize(plan.ops.size());
  dag.dependents.resize(plan.ops.size());
  // Position of each op within its atom's chain, to find predecessors;
  // last op index per atom, the dependency external sources bind to.
  std::vector<size_t> last_op_of_atom(plan.atoms.size(), 0);
  std::vector<bool> atom_has_ops(plan.atoms.size(), false);
  for (size_t a = 0; a < plan.atoms.size(); ++a) {
    const auto& chain = plan.atoms[a].op_indices;
    if (chain.empty()) continue;
    atom_has_ops[a] = true;
    last_op_of_atom[a] = *std::max_element(chain.begin(), chain.end());
    for (size_t i = 1; i < chain.size(); ++i) {
      // Chain order must agree with the global ops order, or the
      // sequential loop (which runs ops in vector order) and the DAG
      // (which runs chain edges) would execute different programs.
      if (chain[i - 1] >= chain[i]) dag.sequential_consistent = false;
      dag.deps[chain[i]].push_back(chain[i - 1]);
    }
  }
  for (size_t j = 0; j < plan.ops.size(); ++j) {
    for (const auto& src : plan.ops[j].x_sources) {
      if (src.kind != XSource::Kind::kExternal) continue;
      if (src.source_atom >= plan.atoms.size() || !atom_has_ops[src.source_atom]) {
        dag.sequential_consistent = false;
        continue;
      }
      size_t dep = last_op_of_atom[src.source_atom];
      if (dep >= j) dag.sequential_consistent = false;
      dag.deps[j].push_back(dep);
    }
    std::sort(dag.deps[j].begin(), dag.deps[j].end());
    dag.deps[j].erase(std::unique(dag.deps[j].begin(), dag.deps[j].end()),
                      dag.deps[j].end());
    for (size_t dep : dag.deps[j]) dag.dependents[dep].push_back(j);
  }
  return dag;
}

void FetchPlan::Recompute() {
  for (auto& atom : atoms) atom.est_rows = 1;
  std::vector<bool> atom_started(atoms.size(), false);
  for (auto& op : ops) {
    AtomPlan& atom = atoms[op.atom];
    if (op.family->x_attrs.empty()) {
      op.est_bindings = 1;
    } else {
      bool self = false;
      std::set<size_t> externals;
      for (const auto& src : op.x_sources) {
        if (src.kind == XSource::Kind::kSelfChain) self = true;
        if (src.kind == XSource::Kind::kExternal) externals.insert(src.source_atom);
      }
      double bindings = 1;
      if (self) {
        bindings = atom.est_rows;
      } else {
        for (size_t a : externals) bindings *= atoms[a].est_rows;
      }
      op.est_bindings = std::max(1.0, bindings);
    }
    double fanout = static_cast<double>(op.family->Fanout(op.level));
    if (!atom_started[op.atom]) {
      atom.est_rows = op.est_bindings * fanout;
      atom_started[op.atom] = true;
    } else {
      atom.est_rows *= fanout;
    }
  }
}

double FetchPlan::EstTariff() const {
  double tariff = 0;
  for (const auto& op : ops) {
    tariff += op.est_bindings * static_cast<double>(op.family->Fanout(op.level));
  }
  return tariff;
}

double FetchPlan::ResolutionOf(size_t atom_idx, const std::string& col) const {
  double best = kInfDistance;
  bool found = false;
  for (size_t oi : atoms[atom_idx].op_indices) {
    const FetchOp& op = ops[oi];
    // Probed as X: the index guarantees the group's X-value exactly.
    for (const auto& x : op.family->x_attrs) {
      if (x == col) {
        return 0.0;
      }
    }
    if (!op.family->is_constraint) {
      for (const auto& y : op.family->y_attrs) {
        if (y == col) {
          best = std::min(best, op.family->ResolutionOf(col, op.level));
          found = true;
        }
      }
    } else {
      for (const auto& y : op.family->y_attrs) {
        if (y == col) return 0.0;
      }
    }
  }
  return found ? best : 0.0;
}

bool FetchPlan::Exact() const {
  for (const auto& op : ops) {
    if (!op.family->is_constraint && op.level < op.family->max_level) return false;
  }
  return true;
}

void FetchPlan::UpgradeToExact() {
  for (auto& op : ops) {
    if (!op.family->is_constraint) op.level = op.family->max_level;
  }
  Recompute();
}

std::string FetchPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    const FetchOp& op = ops[i];
    const AtomPlan& atom = atoms[op.atom];
    std::vector<std::string> srcs;
    for (size_t x = 0; x < op.x_sources.size(); ++x) {
      const auto& s = op.x_sources[x];
      std::string v;
      switch (s.kind) {
        case XSource::Kind::kConst:
          v = s.constant.ToString();
          break;
        case XSource::Kind::kExternal:
          v = StrCat(atoms[s.source_atom].alias, ".", s.column);
          break;
        case XSource::Kind::kSelfChain:
          v = StrCat("self.", s.column);
          break;
      }
      srcs.push_back(StrCat(op.family->x_attrs[x], "<-", v));
    }
    out += StrCat("T", i, " = fetch[", atom.alias, "](", op.family_id, " @k=", op.level,
                  srcs.empty() ? "" : StrCat("; ", Join(srcs, ", ")),
                  ") est=", FormatDouble(op.est_bindings, 1), "x",
                  op.family->Fanout(op.level), "\n");
  }
  return out;
}

}  // namespace beas
