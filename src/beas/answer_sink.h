// Push-based answer delivery: the streaming counterpart of BeasAnswer.
//
// A materialized Answer() builds the full result table before the caller
// sees a single row. An AnswerSink inverts that: the executor deposits
// committed rows into the sink in the same deterministic order the
// materialized path would append them (the deposit/commit discipline of
// the morsel engine guarantees that order is thread-count-invariant), so
// a consumer — a network cursor, a test harness — can start shipping
// pages while evaluation is still running. The scalar observables (eta,
// accessed, d', exactness) only exist once evaluation completes; they
// arrive in one AnswerTrailer at Finish().

#ifndef BEAS_ANSWER_SINK_H_
#define BEAS_ANSWER_SINK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "beas/plan_cache.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace beas {

/// \brief The scalar observables of a streamed answer, delivered once at
/// Finish() — after the last row batch — because eta/accessed/d' are only
/// known when evaluation completes.
///
/// Field-for-field these mirror BeasAnswer minus the table: a consumer
/// that records the streamed rows plus this trailer can reconstruct a
/// BeasAnswer byte-identical to the materialized path's.
struct AnswerTrailer {
  uint64_t total_rows = 0;  ///< rows delivered through Append(), total
  double eta = 0.0;         ///< accuracy lower bound (1.0 when exact)
  double d_prime = 0.0;     ///< observed distance bound backing eta
  uint64_t accessed = 0;    ///< tuples fetched, metered against the budget
  bool exact = false;       ///< plan was provably exact under the schema
  double est_tariff = 0.0;  ///< planner's worst-case fetch estimate
  bool plan_cached = false; ///< plan came from the plan cache
  PlanCacheStats plan_cache;   ///< cache counters at answer time
  uint64_t cache_hits = 0;     ///< block-cache hits charged to this query
  uint64_t cache_misses = 0;   ///< block-cache misses charged to this query
};

/// \brief Consumer interface for streamed answers.
///
/// Contract (enforced by Beas::Answer's streaming overload and the
/// executor):
///  - Open(schema) is called exactly once, before any rows, as soon as
///    the plan is known. Plan-time failures skip Open and go straight to
///    Fail.
///  - Append(rows) delivers committed rows in the exact order the
///    materialized path would produce them; batches are never empty.
///    A non-OK return cancels the query: the executor stops evaluating
///    and the same status surfaces as the query's terminal status.
///  - OnSharedReadsDone() fires once all reads of shared state are done
///    (the executor has deep-copied its private D_Q); a sink holding an
///    epoch read lock releases it here so backpressure stalls never
///    block writers.
///  - Exactly one of Finish(trailer) / Fail(status) terminates the
///    stream. Finish may itself fail (e.g. flushing the final partial
///    page races a cancelled consumer); that status becomes the query's
///    terminal status.
class AnswerSink {
 public:
  virtual ~AnswerSink() = default;

  /// Announces the answer schema before any rows are appended.
  virtual Status Open(const RelationSchema& schema) = 0;

  /// Delivers the next batch of committed rows (never empty). Returning
  /// a non-OK status cancels the producing query with that status.
  virtual Status Append(std::vector<Tuple> rows) = 0;

  /// All shared-state reads are complete; locks pinning shared state can
  /// be released. Default: no-op.
  virtual void OnSharedReadsDone() {}

  /// Terminates a successful stream with the scalar observables.
  virtual Status Finish(const AnswerTrailer& trailer) = 0;

  /// Terminates a failed stream; rows already appended are void.
  virtual void Fail(const Status& error) = 0;
};

/// \brief An AnswerSink that materializes everything it is fed — the
/// degenerate one-page consumer, and the test harness's tool for pinning
/// the streaming path against the materialized one.
class CollectingAnswerSink : public AnswerSink {
 public:
  Status Open(const RelationSchema& schema) override {
    table_ = Table(schema);
    opened_ = true;
    return Status::OK();
  }

  Status Append(std::vector<Tuple> rows) override {
    ++batches_;
    for (Tuple& row : rows) table_.AppendUnchecked(std::move(row));
    return Status::OK();
  }

  Status Finish(const AnswerTrailer& trailer) override {
    trailer_ = trailer;
    finished_ = true;
    return Status::OK();
  }

  void Fail(const Status& error) override {
    error_ = error;
    failed_ = true;
  }

  /// Rows streamed so far, in commit order.
  const Table& table() const { return table_; }
  /// Scalar observables; valid once finished().
  const AnswerTrailer& trailer() const { return trailer_; }
  /// Terminal failure; valid once failed().
  const Status& error() const { return error_; }
  bool opened() const { return opened_; }
  bool finished() const { return finished_; }
  bool failed() const { return failed_; }
  /// Append() batches observed (streaming granularity, for tests).
  size_t batches() const { return batches_; }

 private:
  Table table_{RelationSchema("answer", {})};
  AnswerTrailer trailer_;
  Status error_ = Status::OK();
  bool opened_ = false;
  bool finished_ = false;
  bool failed_ = false;
  size_t batches_ = 0;
};

}  // namespace beas

#endif  // BEAS_ANSWER_SINK_H_
