// The plan cache: stores reusable planning results (chase/rewrite output
// and chAT-optimized fetch templates) keyed on (query fingerprint, alpha),
// with LRU eviction and hit/miss/evict/invalidation counters.
//
// Contract (docs/ARCHITECTURE.md "Plan cache"):
//   - A template may only be instantiated for a query whose fingerprint
//     (src/ra/fingerprint.h) equals the entry's key — constants are the
//     only allowed difference, and they are rebound from the new query's
//     tableau at instantiation time (Planner::PlanFromTemplate).
//   - Any mutation of the database or its indices (Beas::Insert/Remove)
//     must call InvalidateAll() before the mutation is visible to
//     queries: |D| feeds every budget and the chase's degradation
//     decisions, so every cached template is stale after a mutation. A
//     stale plan can therefore never execute.
//   - The cache stores templates, never answers: instantiation re-runs
//     the (cheap, deterministic) tableau build and unit rewrite against
//     the *current* query, so cached and fresh plans are semantically
//     identical by construction.

#ifndef BEAS_BEAS_PLAN_CACHE_H_
#define BEAS_BEAS_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "beas/fetch_plan.h"
#include "ra/fingerprint.h"

namespace beas {

/// Configuration knob for the plan cache (BeasOptions::plan_cache).
struct PlanCacheOptions {
  /// Off by default: planning behaves exactly as without a cache.
  bool enabled = false;
  /// Maximum number of (fingerprint, alpha) entries before LRU eviction.
  size_t capacity = 64;
};

/// Counters surfaced through BeasAnswer and Beas::plan_cache_stats().
struct PlanCacheStats {
  uint64_t hits = 0;           ///< lookups answered from the cache
  uint64_t misses = 0;         ///< lookups that fell through to planning
  uint64_t evictions = 0;      ///< entries dropped by the LRU policy
  uint64_t invalidations = 0;  ///< InvalidateAll calls (Insert/Remove)
  uint64_t entries = 0;        ///< current number of cached templates
};

/// \brief The reusable part of a BeasPlan for one query structure.
///
/// Per SPC unit: the chAT-optimized fetch plan (families, levels, chain
/// structure, probe sources) and whether the unit was unsatisfiable.
/// Constant probe values inside the fetch plans are placeholders from the
/// query that populated the entry; instantiation rebinds them from the
/// new query's tableau before the plan can execute.
struct PlanTemplate {
  struct UnitTemplate {
    FetchPlan fetch;
    bool unsatisfiable = false;
  };
  std::vector<UnitTemplate> units;
};

/// \brief An LRU map from (query fingerprint, alpha) to plan templates.
///
/// Entries are keyed on the fixed-size (fingerprint hash, alpha bits)
/// pair; the stored canonical form is compared on every lookup, so a
/// hash collision degrades to a miss, never to reuse of a wrong plan.
///
/// Thread-safety contract: every method is internally mutex-guarded,
/// and templates are stored behind shared ownership — a Lookup result
/// stays valid even if a concurrent Insert evicts or replaces its entry
/// before the caller instantiates it. Cache state can therefore never
/// be corrupted, nor a returned template invalidated under the caller,
/// by concurrent use (a requirement now that the executor runs fetch
/// threads; previously acknowledged as unsafe here). The cache still
/// makes `const Beas` methods stateful: PlanOnly/Answer mutate LRU
/// order and counters through this object. Note the guard covers the
/// *cache*, not the Beas instance: the meter, database, and indices
/// remain single-query-at-a-time.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);

  /// Returns the template for (\p fp, \p alpha) and bumps it to
  /// most-recently-used (counted as a hit), or nullptr (counted as a
  /// miss). Hash collisions compare the canonical form and miss. The
  /// returned template is immutable and outlives eviction/replacement.
  std::shared_ptr<const PlanTemplate> Lookup(const QueryFingerprint& fp, double alpha);

  /// Inserts (or replaces) the template for (\p fp, \p alpha), evicting
  /// the least-recently-used entry beyond capacity.
  void Insert(const QueryFingerprint& fp, double alpha, PlanTemplate tmpl);

  /// Re-books the most recent hit as a miss: the template turned out not
  /// to be instantiable for the query (e.g. its constant-conflict pattern
  /// differs) and the caller fell back to fresh planning.
  void DemoteLastHit();

  /// Drops every entry (database mutation); counted as one invalidation.
  void InvalidateAll();

  /// Snapshot of the counters (copied under the lock).
  PlanCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    std::string key;        ///< hash + alpha bits (the map key)
    std::string canonical;  ///< full canonical form, checked on lookup
    std::shared_ptr<const PlanTemplate> tmpl;
  };

  static std::string MakeKey(const QueryFingerprint& fp, double alpha);

  mutable std::mutex mu_;
  PlanCacheOptions options_;
  /// Front = most recently used.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace beas

#endif  // BEAS_BEAS_PLAN_CACHE_H_
