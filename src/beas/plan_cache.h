// The plan cache: stores reusable planning results (chase/rewrite output
// and chAT-optimized fetch templates) keyed on (query fingerprint, alpha),
// with LRU eviction and hit/miss/evict/invalidation counters.
//
// Contract (docs/ARCHITECTURE.md "Plan cache"):
//   - A template may only be instantiated for a query whose fingerprint
//     (src/ra/fingerprint.h) equals the entry's key — constants are the
//     only allowed difference, and they are rebound from the new query's
//     tableau at instantiation time (Planner::PlanFromTemplate).
//   - Any mutation of the database or its indices (Beas::Insert/Remove)
//     must call InvalidateRelation(R) — or InvalidateAll() — before the
//     mutation is visible to queries. Entries are keyed by the set of
//     relations their fingerprint touches: a mutation of R drops exactly
//     the entries reading R (whose index fanouts and chase inputs
//     changed), keeping unrelated templates warm. The residual staleness
//     — |D| shifts by one on *every* mutation, moving each alpha's
//     budget — is handled at instantiation time: PlanFromTemplate bails
//     out (and the caller re-plans) when the cached tariff no longer
//     fits the current budget, so a surviving entry can never overrun
//     the bound; it may at worst carry chAT levels chosen at a slightly
//     different |D| (still alpha-bounded, with eta re-derived for the
//     actual levels).
//   - Negative entries cache an OutOfBudget *verdict* for (fingerprint,
//     alpha): repeated unanswerable queries skip re-planning and fail
//     with the identical Status. Because the verdict depends on the
//     budget alpha * |D|, negative entries are dropped on every
//     mutation, whichever relation it touches.
//   - The cache stores templates, never answers: instantiation re-runs
//     the (cheap, deterministic) tableau build and unit rewrite against
//     the *current* query, so cached and fresh plans are semantically
//     identical by construction.

#ifndef BEAS_BEAS_PLAN_CACHE_H_
#define BEAS_BEAS_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "beas/fetch_plan.h"
#include "ra/fingerprint.h"

namespace beas {

/// Configuration knob for the plan cache (BeasOptions::plan_cache).
struct PlanCacheOptions {
  /// Off by default: planning behaves exactly as without a cache.
  bool enabled = false;
  /// Maximum number of (fingerprint, alpha) entries before LRU eviction.
  size_t capacity = 64;
  /// Maximum number of cached OutOfBudget verdicts (negative entries);
  /// 0 disables negative caching.
  size_t negative_capacity = 64;
};

/// Counters surfaced through BeasAnswer and Beas::plan_cache_stats().
struct PlanCacheStats {
  uint64_t hits = 0;           ///< lookups answered from the cache
  uint64_t misses = 0;         ///< lookups that fell through to planning
  uint64_t evictions = 0;      ///< entries dropped by the LRU policy
  uint64_t invalidations = 0;  ///< invalidation events (Insert/Remove)
  uint64_t entries = 0;        ///< current number of cached templates
  uint64_t negative_hits = 0;     ///< lookups answered by a cached verdict
  uint64_t negative_entries = 0;  ///< current number of cached verdicts
  /// Cumulative entries (templates + verdicts) dropped by invalidation
  /// events; with per-relation invalidation this is the actual blast
  /// radius of maintenance, while `invalidations` counts the events.
  uint64_t entries_invalidated = 0;
};

/// \brief The reusable part of a BeasPlan for one query structure.
///
/// Per SPC unit: the chAT-optimized fetch plan (families, levels, chain
/// structure, probe sources) and whether the unit was unsatisfiable.
/// Constant probe values inside the fetch plans are placeholders from the
/// query that populated the entry; instantiation rebinds them from the
/// new query's tableau before the plan can execute.
struct PlanTemplate {
  struct UnitTemplate {
    FetchPlan fetch;
    bool unsatisfiable = false;
  };
  std::vector<UnitTemplate> units;
};

/// \brief An LRU map from (query fingerprint, alpha) to plan templates.
///
/// Entries are keyed on the fixed-size (fingerprint hash, alpha bits)
/// pair; the stored canonical form is compared on every lookup, so a
/// hash collision degrades to a miss, never to reuse of a wrong plan.
///
/// Thread-safety contract: every method is internally mutex-guarded,
/// and templates are stored behind shared ownership — a Lookup result
/// stays valid even if a concurrent Insert evicts or replaces its entry
/// before the caller instantiates it. Cache state can therefore never
/// be corrupted, nor a returned template invalidated under the caller,
/// by concurrent use (a requirement now that the executor runs fetch
/// threads; previously acknowledged as unsafe here). The cache still
/// makes `const Beas` methods stateful: PlanOnly/Answer mutate LRU
/// order and counters through this object. Note the guard covers the
/// *cache*, not the Beas instance: the meter, database, and indices
/// remain single-query-at-a-time.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);

  /// Returns the template for (\p fp, \p alpha) and bumps it to
  /// most-recently-used (counted as a hit), or nullptr (counted as a
  /// miss). Hash collisions compare the canonical form and miss. The
  /// returned template is immutable and outlives eviction/replacement.
  std::shared_ptr<const PlanTemplate> Lookup(const QueryFingerprint& fp, double alpha);

  /// Returns the cached OutOfBudget verdict for (\p fp, \p alpha), or
  /// nullopt. A hit is counted as negative_hits (not hits) and returns
  /// the stored Status bit-identically, so repeated unanswerable queries
  /// fail exactly as the first one did — without re-planning. Callers
  /// check this before Lookup (a key is either negative or positive).
  std::optional<Status> LookupNegative(const QueryFingerprint& fp, double alpha);

  /// Inserts (or replaces) the template for (\p fp, \p alpha), evicting
  /// the least-recently-used entry beyond capacity. \p relations is the
  /// sorted relation set of the fingerprint (ra/analysis.h
  /// QueryRelations), the key of per-relation invalidation.
  void Insert(const QueryFingerprint& fp, double alpha, PlanTemplate tmpl,
              std::vector<std::string> relations = {});

  /// Caches \p verdict (an OutOfBudget failure) for (\p fp, \p alpha).
  /// No-op when negative_capacity is 0 or \p verdict is OK.
  void InsertNegative(const QueryFingerprint& fp, double alpha, Status verdict);

  /// Re-books the most recent hit as a miss: the template turned out not
  /// to be instantiable for the query (e.g. its constant-conflict pattern
  /// differs) and the caller fell back to fresh planning.
  void DemoteLastHit();

  /// Drops every entry (bulk maintenance); counted as one invalidation.
  void InvalidateAll();

  /// Targeted maintenance on \p relation: drops the templates whose
  /// relation set contains it — and every negative entry, since any
  /// mutation moves |D| and with it each alpha's budget. Counted as one
  /// invalidation event. Templates inserted without a relation set are
  /// conservatively treated as touching every relation.
  void InvalidateRelation(const std::string& relation);

  /// Snapshot of the counters (copied under the lock).
  PlanCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    std::string key;        ///< hash + alpha bits (the map key)
    std::string canonical;  ///< full canonical form, checked on lookup
    std::shared_ptr<const PlanTemplate> tmpl;
    /// Sorted base relations the fingerprint reads; empty = unknown
    /// (treated as touching everything by InvalidateRelation).
    std::vector<std::string> relations;
  };
  struct NegativeEntry {
    std::string key;
    std::string canonical;
    Status verdict;
  };

  static std::string MakeKey(const QueryFingerprint& fp, double alpha);

  void DropNegativesLocked();

  mutable std::mutex mu_;
  PlanCacheOptions options_;
  /// Front = most recently used.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// Negative (OutOfBudget-verdict) entries; front = most recently used.
  std::list<NegativeEntry> negatives_;
  std::unordered_map<std::string, std::list<NegativeEntry>::iterator> negative_index_;
  PlanCacheStats stats_;
};

}  // namespace beas

#endif  // BEAS_BEAS_PLAN_CACHE_H_
