// The BEAS framework facade (paper Fig 2): offline index construction and
// maintenance (C1/C2), online plan generation (C3) and bounded execution
// (C4) on top of the relational substrate.

#ifndef BEAS_BEAS_BEAS_H_
#define BEAS_BEAS_BEAS_H_

#include <memory>
#include <string>
#include <vector>

#include "accschema/access_schema.h"
#include "beas/executor.h"
#include "beas/plan_cache.h"
#include "beas/planner.h"
#include "common/result.h"
#include "index/index_store.h"
#include "ra/parser.h"
#include "storage/database.h"

namespace beas {

/// Configuration of a BEAS instance.
struct BeasOptions {
  /// Declared access constraints R(X -> Y, N, 0) (user-supplied or mined);
  /// validated against the data at build time.
  std::vector<ConstraintSpec> constraints;
  /// Include the universal schema A_t (required by the Approximability
  /// Theorem; disable only in targeted tests).
  bool add_universal = true;
  /// The Section 8 recipe: derive template families R(XY -> Z) from each
  /// declared constraint.
  bool add_constraint_templates = true;
  /// Engine limits for evaluating xi_E over the fetched data; also
  /// carries `fetch_threads`, the executor's parallel-fetch knob (1 =
  /// sequential; > 1 fetches independent plan atoms concurrently with
  /// answers bit-identical to sequential execution — see
  /// EvalOptions::fetch_threads).
  EvalOptions eval;
  /// Planner knobs (ablation switches; keep defaults in production).
  PlannerKnobs planner;
  /// Plan-cache knob: off keeps today's plan-every-query behavior; on
  /// reuses chase/chAT results across queries that share a structural
  /// fingerprint (only constants differ), invalidated per relation on
  /// Insert/Remove, with OutOfBudget verdicts cached negatively. The
  /// cache is internally synchronized and safe under concurrent Answer
  /// calls (it still makes logically-const planning stateful).
  PlanCacheOptions plan_cache;
  /// Storage tier of the indices: the in-memory backend (default), or a
  /// disk-backed block file read through a bounded LRU cache. With
  /// index.open_existing set, Build reopens index.path cold instead of
  /// building — the database is only consulted for its schema and size.
  /// Answers are bit-identical across backends and cache budgets.
  IndexStoreOptions index;
};

/// \brief Resource-bounded query answering over one database instance.
///
/// Usage:
///   auto beas = Beas::Build(&db, options);
///   auto answer = (*beas)->AnswerSql("select ...", /*alpha=*/1e-3);
///   answer->table, answer->eta, answer->accessed
///
/// Thread-safety: the query paths (Answer / AnswerSql / PlanOnly /
/// AlphaExact / Parse) are const and safe to call from any number of
/// threads at once — each call carries its own QueryContext (meter +
/// eval options), the indices are only read, and the plan cache is
/// internally synchronized. Every concurrent Answer returns exactly the
/// rows/eta/accessed a solo sequential run would. The maintenance paths
/// (Insert / Remove) mutate the database and indices and require
/// exclusive access: no query may be in flight. service/QueryService
/// wraps this contract in an epoch guard that drains in-flight queries
/// around each mutation; direct multi-threaded callers must provide the
/// same exclusion themselves.
class Beas {
 public:
  /// Offline phase: builds all access-schema indices over \p db (kept as a
  /// non-owning pointer; it must outlive the Beas instance and be mutated
  /// only through Insert/Remove below).
  static Result<std::unique_ptr<Beas>> Build(Database* db, BeasOptions options = {});

  /// Answers \p q with resource ratio \p alpha: generates an alpha-bounded
  /// plan (no data access), executes it fetching at most alpha*|D| tuples,
  /// and returns the answers with the deterministic RC bound eta. Safe to
  /// call concurrently (see class comment).
  Result<BeasAnswer> Answer(const QueryPtr& q, double alpha) const;

  /// Answer with per-call evaluation options overriding the instance's
  /// BeasOptions::eval — the seam the query service's per-query thread
  /// budgeting (and the differential test harness) use to vary
  /// eval_threads/fetch_threads call-by-call. Thread-count overrides are
  /// answer-invariant; overriding semantic knobs (weighted_aggregates,
  /// caps) changes answers exactly as configuring them at Build would.
  Result<BeasAnswer> Answer(const QueryPtr& q, double alpha,
                            const EvalOptions& eval) const;

  /// Streaming Answer: committed result rows are pushed into \p sink
  /// (Open as soon as the plan is known, ordered Append batches as
  /// morsels commit, then exactly one Finish-with-trailer or Fail) and
  /// the returned BeasAnswer carries streamed_rows with an empty table.
  /// Everything observable — rows and order, eta/accessed/d', the
  /// OutOfBudget cut point, deadline behavior — is identical to the
  /// materialized overloads; a CollectingAnswerSink reconstructs their
  /// answer bit-for-bit. This call owns stream termination: every
  /// return path has called Finish or Fail (never both), and a non-OK
  /// status from the sink's own Append/Finish (a cancelled or stalled
  /// consumer) becomes the query's terminal status. Safe to call
  /// concurrently like the materialized overloads.
  Result<BeasAnswer> Answer(const QueryPtr& q, double alpha,
                            const EvalOptions& eval, AnswerSink* sink) const;

  /// Parses \p sql against the database schema and answers it.
  Result<BeasAnswer> AnswerSql(const std::string& sql, double alpha) const;

  /// Plan generation only (component C3; touches no data). \p trace
  /// (optional) receives the "plan" span plus the plan_cache_hit
  /// attribute and, on a cache miss, the chase/chAT sub-spans; the
  /// Answer overloads pass EvalOptions::trace through automatically.
  Result<BeasPlan> PlanOnly(const QueryPtr& q, double alpha,
                            QueryTrace* trace = nullptr) const;

  /// Minimal resource ratio at which \p q gets an exact plan:
  /// alpha_exact = exact-plan tariff / |D| (Fig 6(j)).
  Result<double> AlphaExact(const QueryPtr& q) const;

  /// alpha_exact plus whether the exact plan is constraint-only, i.e. the
  /// query is boundedly evaluable (its tariff does not grow with |D|).
  Result<Planner::ExactPlanStats> ExactPlanStats(const QueryPtr& q) const;

  /// Parses \p sql against the database schema.
  Result<QueryPtr> Parse(const std::string& sql) const;

  /// Incremental maintenance (C2): inserts/removes a base tuple, updating
  /// both the database and every affected index.
  Status Insert(const std::string& relation, const Tuple& row);
  Status Remove(const std::string& relation, const Tuple& row);

  const AccessSchema& access_schema() const { return store_.schema(); }
  /// The instance-wide evaluation options (the defaults every Answer
  /// call without an explicit EvalOptions override runs under).
  const EvalOptions& eval_options() const { return options_.eval; }
  IndexStore& store() { return store_; }
  const IndexStore& store() const { return store_; }
  const DatabaseSchema& db_schema() const { return db_schema_; }
  size_t db_size() const { return db_size_; }

  /// Plan-cache counters (all zeros when BeasOptions::plan_cache is off).
  PlanCacheStats plan_cache_stats() const;

 private:
  Beas() = default;

  Database* db_ = nullptr;
  DatabaseSchema db_schema_;
  size_t db_size_ = 0;
  IndexStore store_;
  BeasOptions options_;
  /// Persistent executor: keeps the parallel-fetch thread pool (created
  /// lazily when eval.fetch_threads > 1) alive across Answer calls. The
  /// executor is stateless per call (every query runs in its own
  /// QueryContext), so concurrent Answers share it safely.
  std::unique_ptr<PlanExecutor> executor_;
  /// Mutable: PlanOnly is logically const but records hits/misses and
  /// bumps LRU order through this object. The cache is internally
  /// mutex-guarded, so concurrent query threads share it safely; see the
  /// class comment for the maintenance exclusion queries still need.
  /// Null when the cache is disabled.
  mutable std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace beas

#endif  // BEAS_BEAS_BEAS_H_
