#include "beas/beas.h"

#include <cmath>

#include "beas/answer_sink.h"
#include "beas/query_context.h"
#include "common/string_util.h"
#include "ra/analysis.h"
#include "ra/fingerprint.h"

namespace beas {

Result<std::unique_ptr<Beas>> Beas::Build(Database* db, BeasOptions options) {
  if (db == nullptr) return Status::InvalidArgument("database must not be null");
  auto beas = std::unique_ptr<Beas>(new Beas());
  beas->db_ = db;
  beas->db_schema_ = db->Schema();
  beas->db_size_ = db->TotalTuples();
  beas->options_ = options;

  std::vector<FamilySpec> families;
  if (options.add_universal) {
    families = UniversalFamilies(beas->db_schema_);
  }
  if (options.add_constraint_templates) {
    BEAS_ASSIGN_OR_RETURN(std::vector<FamilySpec> derived,
                          FamiliesFromConstraints(beas->db_schema_, options.constraints));
    for (auto& f : derived) {
      bool dup = false;
      for (const auto& existing : families) dup |= existing.Id() == f.Id();
      if (!dup) families.push_back(std::move(f));
    }
  }
  if (options.index.open_existing) {
    // Cold reopen of a previously built block file: the schema and group
    // maps come from the file's directory, not from the database (which
    // must of course hold the same data the file was built from).
    BEAS_RETURN_IF_ERROR(beas->store_.Open(options.index));
  } else {
    BEAS_RETURN_IF_ERROR(
        beas->store_.Build(*db, families, options.constraints, options.index));
  }
  beas->executor_ = std::make_unique<PlanExecutor>(&beas->store_, options.eval);
  if (options.plan_cache.enabled) {
    beas->plan_cache_ = std::make_unique<PlanCache>(options.plan_cache);
  }
  return beas;
}

Result<BeasPlan> Beas::PlanOnly(const QueryPtr& q, double alpha,
                                QueryTrace* trace) const {
  if (alpha <= 0 || alpha > 1) {
    return Status::InvalidArgument(StrCat("resource ratio must be in (0,1], got ", alpha));
  }
  ScopedSpan plan_span(trace, "plan");
  Planner planner(db_schema_, store_.schema(), db_size_, options_.planner);
  if (plan_cache_ == nullptr) return planner.Plan(q, alpha, trace);

  QueryFingerprint fp = FingerprintQuery(q);
  // A cached OutOfBudget verdict short-circuits planning entirely: the
  // stored Status is returned bit-identically (negative caching;
  // verdicts are dropped on every Insert/Remove since |D| moves).
  if (std::optional<Status> verdict = plan_cache_->LookupNegative(fp, alpha)) {
    return *verdict;
  }
  if (std::shared_ptr<const PlanTemplate> tmpl = plan_cache_->Lookup(fp, alpha)) {
    BEAS_ASSIGN_OR_RETURN(std::optional<BeasPlan> cached,
                          planner.PlanFromTemplate(q, alpha, *tmpl));
    if (cached.has_value()) {
      if (trace != nullptr) trace->SetAttr("plan_cache_hit", 1);
      return std::move(*cached);
    }
    // Template not instantiable for this query (its constant-conflict
    // pattern differs, or |D| drifted past its tariff): plan from
    // scratch and re-book the hit as a miss.
    plan_cache_->DemoteLastHit();
  }
  if (trace != nullptr) trace->SetAttr("plan_cache_hit", 0);
  Result<BeasPlan> plan = planner.Plan(q, alpha, trace);
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kOutOfBudget) {
      plan_cache_->InsertNegative(fp, alpha, plan.status());
    }
    return plan.status();
  }
  plan_cache_->Insert(fp, alpha, Planner::ExtractTemplate(*plan), QueryRelations(q));
  return std::move(*plan);
}

Result<BeasAnswer> Beas::Answer(const QueryPtr& q, double alpha) const {
  return Answer(q, alpha, options_.eval);
}

Result<BeasAnswer> Beas::Answer(const QueryPtr& q, double alpha,
                                const EvalOptions& eval) const {
  // Deterministic fast-fail: an already-expired deadline skips planning
  // (and thus plan-cache traffic) entirely, leaving all shared state
  // untouched.
  if (DeadlineExpired(eval)) {
    return Status::DeadlineExceeded("query deadline expired before planning");
  }
  BEAS_ASSIGN_OR_RETURN(BeasPlan plan, PlanOnly(q, alpha, eval.trace));
  uint64_t budget = static_cast<uint64_t>(
      std::floor(alpha * static_cast<double>(db_size_)));
  // All mutable execution state lives in this per-call context, so any
  // number of Answer calls may run concurrently (each with its own meter
  // and budget) against the shared read-only indices.
  QueryContext ctx;
  ctx.eval = eval;
  BEAS_ASSIGN_OR_RETURN(BeasAnswer answer, executor_->Execute(plan, budget, &ctx));
  answer.plan_cached = plan.from_cache;
  answer.plan_cache = plan_cache_stats();
  return answer;
}

Result<BeasAnswer> Beas::Answer(const QueryPtr& q, double alpha,
                                const EvalOptions& eval, AnswerSink* sink) const {
  // One Fail per failure path, exactly where the materialized overload
  // would return the error.
  auto fail = [sink](Status st) -> Status {
    sink->Fail(st);
    return st;
  };
  if (DeadlineExpired(eval)) {
    return fail(Status::DeadlineExceeded("query deadline expired before planning"));
  }
  Result<BeasPlan> plan = PlanOnly(q, alpha, eval.trace);
  if (!plan.ok()) return fail(plan.status());
  uint64_t budget = static_cast<uint64_t>(
      std::floor(alpha * static_cast<double>(db_size_)));
  QueryContext ctx;
  ctx.eval = eval;
  Result<BeasAnswer> answer = executor_->Execute(*plan, budget, &ctx, sink);
  if (!answer.ok()) return fail(answer.status());
  answer->plan_cached = plan->from_cache;
  answer->plan_cache = plan_cache_stats();
  AnswerTrailer trailer;
  trailer.total_rows = answer->streamed_rows;
  trailer.eta = answer->eta;
  trailer.d_prime = answer->d_prime;
  trailer.accessed = answer->accessed;
  trailer.exact = answer->exact;
  trailer.est_tariff = answer->est_tariff;
  trailer.plan_cached = answer->plan_cached;
  trailer.plan_cache = answer->plan_cache;
  trailer.cache_hits = answer->cache_hits;
  trailer.cache_misses = answer->cache_misses;
  // Finish can fail (flushing the last partial page races a cancelled or
  // deadline-stalled consumer); that status is the query's terminal
  // status, and the sink treats a failed Finish as stream failure — no
  // additional Fail call.
  BEAS_RETURN_IF_ERROR(sink->Finish(trailer));
  return std::move(*answer);
}

Result<BeasAnswer> Beas::AnswerSql(const std::string& sql, double alpha) const {
  BEAS_ASSIGN_OR_RETURN(QueryPtr q, Parse(sql));
  return Answer(q, alpha);
}

Result<QueryPtr> Beas::Parse(const std::string& sql) const {
  return ParseSql(db_schema_, sql);
}

Result<double> Beas::AlphaExact(const QueryPtr& q) const {
  Planner planner(db_schema_, store_.schema(), db_size_, options_.planner);
  BEAS_ASSIGN_OR_RETURN(double tariff, planner.ExactTariff(q));
  if (db_size_ == 0) return 1.0;
  return std::min(1.0, tariff / static_cast<double>(db_size_));
}

Result<Planner::ExactPlanStats> Beas::ExactPlanStats(const QueryPtr& q) const {
  Planner planner(db_schema_, store_.schema(), db_size_, options_.planner);
  return planner.ExactPlan(q);
}

PlanCacheStats Beas::plan_cache_stats() const {
  return plan_cache_ ? plan_cache_->stats() : PlanCacheStats{};
}

Status Beas::Insert(const std::string& relation, const Tuple& row) {
  BEAS_ASSIGN_OR_RETURN(Table * table, db_->FindMutableTable(relation));
  // Invalidate before the mutation becomes visible (even a partially
  // failed one): templates reading `relation` chase over its changed
  // fanouts, and every negative verdict keys on the moving |D|. Entries
  // on other relations stay warm — the |D| drift they inherit is caught
  // at instantiation time (PlanFromTemplate's budget re-check).
  if (plan_cache_) plan_cache_->InvalidateRelation(relation);
  BEAS_RETURN_IF_ERROR(store_.ApplyInsert(relation, row));
  BEAS_RETURN_IF_ERROR(table->Append(row));
  db_size_ += 1;
  return Status::OK();
}

Status Beas::Remove(const std::string& relation, const Tuple& row) {
  BEAS_ASSIGN_OR_RETURN(Table * table, db_->FindMutableTable(relation));
  if (!table->Contains(row)) {
    return Status::NotFound(StrCat("tuple not in '", relation, "'"));
  }
  if (plan_cache_) plan_cache_->InvalidateRelation(relation);
  BEAS_RETURN_IF_ERROR(store_.ApplyRemove(relation, row));
  // Rebuild the table without one occurrence of the row.
  Table rebuilt(table->schema());
  bool removed = false;
  for (const auto& r : table->rows()) {
    if (!removed && r == row) {
      removed = true;
      continue;
    }
    rebuilt.AppendUnchecked(r);
  }
  *table = std::move(rebuilt);
  db_size_ -= 1;
  return Status::OK();
}

}  // namespace beas
