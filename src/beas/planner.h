// The resource-bounded approximation scheme Gamma_A (paper Sections 4-7):
// BEAS_SPC / BEAS_RA / BEAS_agg plan generation. Planning never touches
// the data — only the query, the bound access schema, and the budget
// B = alpha * |D| (Theorem 5/6: O(|Q| min(||A||, ||Q|| log alpha|D|))).

#ifndef BEAS_BEAS_PLANNER_H_
#define BEAS_BEAS_PLANNER_H_

#include <optional>

#include "accschema/access_schema.h"
#include "beas/plan.h"
#include "beas/plan_cache.h"
#include "common/result.h"
#include "common/trace.h"
#include "ra/ast.h"

namespace beas {

/// Planner knobs (ablations; production keeps the defaults).
struct PlannerKnobs {
  /// Run chAT (Fig 3): greedily raise template levels within the budget.
  /// Disabled, plans stay at level 0 — the ablation of Fig 6 ablation
  /// bench `ablation_design_choices`.
  bool optimize_levels = true;
};

/// \brief Generates alpha-bounded plans with deterministic accuracy
/// bounds for RA_aggr queries.
class Planner {
 public:
  /// \p base_schema is the database schema R, \p access the bound access
  /// schema A (must subsume A_t), \p db_size the |D| the resource ratio
  /// multiplies.
  Planner(const DatabaseSchema& base_schema, const AccessSchema& access, size_t db_size,
          PlannerKnobs knobs = {})
      : base_(base_schema), access_(access), db_size_(db_size), knobs_(knobs) {}

  /// Generates an alpha-bounded plan for \p q: chase -> initial fetching
  /// plan -> chAT level optimization -> evaluation-plan rewrite -> static
  /// eta. OutOfBudget when alpha*|D| cannot fund even one representative
  /// per relation atom. \p trace (optional) receives the plan.chase and
  /// plan.chat span timings when its timings flag is on.
  Result<BeasPlan> Plan(const QueryPtr& q, double alpha,
                        QueryTrace* trace = nullptr) const;

  /// Cost profile of the cheapest *exact* plan (all fetches at
  /// resolution 0): alpha_exact(Q) = tariff / |D| (Fig 6(j)).
  struct ExactPlanStats {
    double tariff = 0;
    /// Every fetch uses an access constraint: the query is boundedly
    /// evaluable and the tariff is independent of |D| (Section 2.2).
    bool constraints_only = true;
  };
  Result<ExactPlanStats> ExactPlan(const QueryPtr& q) const;

  /// Tariff of the cheapest exact plan (shorthand for ExactPlan().tariff).
  Result<double> ExactTariff(const QueryPtr& q) const;

  /// The reusable part of \p plan for the plan cache: per-unit fetch
  /// plans (with their final chAT levels) and unsatisfiability flags.
  static PlanTemplate ExtractTemplate(const BeasPlan& plan);

  /// Instantiates a cached \p tmpl for \p q, which must have the same
  /// fingerprint as the query that produced the template. Skips the chase
  /// and the chAT level search: rebuilds the (cheap) eval tree and
  /// tableaux for \p q, rebinds the templates' constant probes from the
  /// new tableaux, and re-runs the unit rewrite so the evaluation plan
  /// carries \p q's constants. Returns nullopt when the template is not
  /// usable for \p q — the per-unit constant-conflict (unsatisfiable)
  /// pattern differs, the one plan-relevant property that depends on
  /// constant values — in which case the caller must plan from scratch.
  Result<std::optional<BeasPlan>> PlanFromTemplate(const QueryPtr& q, double alpha,
                                                   const PlanTemplate& tmpl) const;

  size_t db_size() const { return db_size_; }

 private:
  const DatabaseSchema& base_;
  const AccessSchema& access_;
  size_t db_size_;
  PlannerKnobs knobs_;
};

}  // namespace beas

#endif  // BEAS_BEAS_PLANNER_H_
