// Executes alpha-bounded plans: runs the fetching plan through the
// metered IndexStore (building the per-query data D_Q), evaluates the
// relaxed evaluation plan over D_Q, applies the set-difference guard, and
// computes the runtime accuracy bound eta' (paper Fig 5, lines 6-7).
//
// When EvalOptions::vectorized is set (the default), index probes are
// fetched in kDefaultChunkCapacity-sized batches with the family lookup
// amortized per batch (the meter still charges per key, keeping the
// alpha bound tight), and the rewritten tree is evaluated through the
// engine's batched paths (docs/ARCHITECTURE.md). The tuple-at-a-time
// path is kept as the reference fallback; both produce identical
// BeasAnswers — same rows, same eta, same accessed count (asserted by
// the beas_core equivalence tests).
//
// When EvalOptions::fetch_threads > 1, the fetch phase additionally runs
// independent fetch ops — and sub-batches of one op's probe keys —
// concurrently on a thread pool, scheduled over the dependency DAG of
// BuildFetchDag. Fetches are unmetered in flight; per-key entry counts
// are committed to the AccessMeter through its deposit protocol in the
// sequential execution order, so rows, eta, accessed counts, d', and the
// OutOfBudget failure point are bit-identical to fetch_threads = 1
// (docs/ARCHITECTURE.md "Parallel atom fetching"; asserted by the
// property suite's parallel-vs-sequential tests).

#ifndef BEAS_BEAS_EXECUTOR_H_
#define BEAS_BEAS_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "beas/plan.h"
#include "beas/plan_cache.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/evaluator.h"
#include "index/index_store.h"
#include "storage/table.h"

namespace beas {

/// An approximate answer with its deterministic accuracy bound.
struct BeasAnswer {
  Table table;          ///< Q(D_Q), schema = query output schema
  double eta = 0;       ///< deterministic RC lower bound (1.0 for exact)
  uint64_t accessed = 0;  ///< tuples actually fetched (<= alpha |D|)
  bool exact = false;   ///< the answers are exactly Q(D)
  double est_tariff = 0;
  double d_prime = 0;   ///< runtime coverage correction d' (Section 6)
  /// The plan came from the plan cache (identical answers either way;
  /// filled by Beas::Answer, false when the cache is disabled).
  bool plan_cached = false;
  /// Plan-cache counters at answer time (zeros when the cache is off).
  PlanCacheStats plan_cache;
};

/// \brief Executes BeasPlans against an IndexStore.
///
/// Not thread-safe: one executor runs one query at a time (it owns the
/// store's meter for the duration of Execute). The fetch worker pool is
/// created lazily on the first Execute with fetch_threads > 1 and reused
/// across subsequent Execute calls on the same instance.
class PlanExecutor {
 public:
  PlanExecutor(IndexStore* store, EvalOptions eval_options = {})
      : store_(store), eval_options_(eval_options) {}

  /// Runs \p plan with run-time budget enforcement (\p budget tuples; the
  /// plan was constructed to respect it, the meter double-checks).
  Result<BeasAnswer> Execute(const BeasPlan& plan, uint64_t budget);

 private:
  IndexStore* store_;
  EvalOptions eval_options_;
  std::unique_ptr<ThreadPool> pool_;  ///< lazily created fetch workers
};

}  // namespace beas

#endif  // BEAS_BEAS_EXECUTOR_H_
