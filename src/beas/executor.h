// Executes alpha-bounded plans: runs the fetching plan through the
// IndexStore (building the per-query data D_Q) metered against the
// query's own AccessMeter (carried in its QueryContext, so concurrent
// executions never share a counter), evaluates the relaxed evaluation
// plan over D_Q, applies the set-difference guard, and computes the
// runtime accuracy bound eta' (paper Fig 5, lines 6-7).
//
// When EvalOptions::vectorized is set (the default), index probes are
// fetched in kDefaultChunkCapacity-sized batches with the family lookup
// amortized per batch (the meter still charges per key, keeping the
// alpha bound tight), and the rewritten tree is evaluated through the
// engine's batched paths (docs/ARCHITECTURE.md). The tuple-at-a-time
// path is kept as the reference fallback; both produce identical
// BeasAnswers — same rows, same eta, same accessed count (asserted by
// the beas_core equivalence tests).
//
// When EvalOptions::fetch_threads > 1, the fetch phase additionally runs
// independent fetch ops — and sub-batches of one op's probe keys —
// concurrently on a thread pool, scheduled over the dependency DAG of
// BuildFetchDag. Fetches are unmetered in flight; per-key entry counts
// are committed to the AccessMeter through its deposit protocol in the
// sequential execution order, so rows, eta, accessed counts, d', and the
// OutOfBudget failure point are bit-identical to fetch_threads = 1
// (docs/ARCHITECTURE.md "Parallel atom fetching"; asserted by the
// property suite's parallel-vs-sequential tests).
//
// When EvalOptions::eval_threads > 1, evaluation (xi_E) is morsel-driven
// on the same shared pool: unit subtrees of the union/difference tree
// are evaluated concurrently into per-unit deposit slots that the tree
// recursion replays in canonical order, and the vectorized predicate
// cascades parallelize per ColumnChunk window with a window-ordered
// commit (engine/vectorized.cc). Both granularities are answer-invariant
// — rows, eta, accessed counts, cache traffic, and failure points are
// byte-identical to eval_threads = 1 at every fetch_threads/backend/
// budget combination (docs/ARCHITECTURE.md "Morsel-driven evaluation";
// pinned by the differential harness, property P10, and the eval-labeled
// suites).

#ifndef BEAS_BEAS_EXECUTOR_H_
#define BEAS_BEAS_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "beas/plan.h"
#include "beas/plan_cache.h"
#include "beas/query_context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/evaluator.h"
#include "index/index_store.h"
#include "storage/table.h"

namespace beas {

class AnswerSink;

/// An approximate answer with its deterministic accuracy bound.
struct BeasAnswer {
  Table table;          ///< Q(D_Q), schema = query output schema
  double eta = 0;       ///< deterministic RC lower bound (1.0 for exact)
  uint64_t accessed = 0;  ///< tuples actually fetched (<= alpha |D|)
  bool exact = false;   ///< the answers are exactly Q(D)
  double est_tariff = 0;
  double d_prime = 0;   ///< runtime coverage correction d' (Section 6)
  /// The plan came from the plan cache (identical answers either way;
  /// filled by Beas::Answer, false when the cache is disabled).
  bool plan_cached = false;
  /// Plan-cache counters at answer time (zeros when the cache is off).
  PlanCacheStats plan_cache;
  /// Block-cache traffic of this query's fetches (zeros on the in-memory
  /// backend). Observational only — never part of the accessed count or
  /// the budget, so answers are identical at any hit rate.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Rows delivered through the AnswerSink by the streaming Execute
  /// overload (`table` is left empty there); always 0 on the
  /// materialized path.
  uint64_t streamed_rows = 0;
  /// The query's trace when the caller supplied one via
  /// EvalOptions::trace (non-owning — the caller's trace outlives the
  /// answer). ExplainAnalyze() renders it; null when untraced.
  const QueryTrace* trace = nullptr;

  /// EXPLAIN ANALYZE: the trace's span/attribute summary, or "" when
  /// the query ran untraced.
  std::string ExplainAnalyze() const {
    return trace != nullptr ? trace->Summary() : std::string();
  }
};

/// \brief Executes BeasPlans against an IndexStore.
///
/// Thread-safe for concurrent Execute calls: every per-query mutable —
/// the access meter, the materialized atoms, the evaluator — lives in a
/// QueryContext owned by one call, and the store is only read (through
/// its const fetch paths), so N sessions can execute plans against one
/// executor and one IndexStore at once. The caller must still guarantee
/// that no index maintenance runs while queries are in flight (the query
/// service's epoch guard does). The worker pool (shared by parallel
/// fetching and morsel-driven evaluation) is created lazily
/// (mutex-guarded) on the first Execute with fetch_threads > 1 or
/// eval_threads > 1, sized by max(fetch_threads, eval_threads) of that
/// first request, and shared by all subsequent Execute calls.
class PlanExecutor {
 public:
  PlanExecutor(const IndexStore* store, EvalOptions eval_options = {})
      : store_(store), eval_options_(eval_options) {}

  /// Runs \p plan with run-time budget enforcement (\p budget tuples; the
  /// plan was constructed to respect it, the meter double-checks),
  /// charging \p ctx's meter and honoring \p ctx's EvalOptions.
  Result<BeasAnswer> Execute(const BeasPlan& plan, uint64_t budget,
                             QueryContext* ctx) const;

  /// Single-session convenience: runs \p plan against an internal
  /// QueryContext carrying the constructor's EvalOptions.
  Result<BeasAnswer> Execute(const BeasPlan& plan, uint64_t budget) const;

  /// Streaming execution: identical to Execute in every observable —
  /// rows and their order, eta/accessed/d', the Charge sequence and
  /// OutOfBudget cut point, deadline behavior — except that committed
  /// result rows are pushed into \p sink (Open, then ordered Append
  /// batches) instead of materialized into the answer's table, and the
  /// returned BeasAnswer carries streamed_rows with an empty table.
  /// Single-unit SPC plans stream as filter windows commit; other tree
  /// shapes (union/difference/group-by roots need the full result for
  /// dedup/guard/aggregation) materialize internally and push at the
  /// end. The executor never calls Finish or Fail — the caller
  /// (Beas::Answer's streaming overload) owns stream termination.
  Result<BeasAnswer> Execute(const BeasPlan& plan, uint64_t budget,
                             QueryContext* ctx, AnswerSink* sink) const;

 private:
  /// Shared body of the materialized (sink == nullptr) and streaming
  /// paths — one implementation, so charge-order identity holds by
  /// construction.
  Result<BeasAnswer> ExecuteImpl(const BeasPlan& plan, uint64_t budget,
                                 QueryContext* ctx, AnswerSink* sink) const;

  /// Returns the shared worker pool, creating it with \p threads workers
  /// on first use (later calls reuse the existing pool regardless of
  /// their thread count; see class comment).
  ThreadPool* EnsurePool(size_t threads) const;

  const IndexStore* store_;
  EvalOptions eval_options_;
  mutable std::mutex pool_mu_;        ///< guards lazy pool creation
  mutable std::unique_ptr<ThreadPool> pool_;  ///< shared fetch/eval workers
};

}  // namespace beas

#endif  // BEAS_BEAS_EXECUTOR_H_
