#include "beas/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "beas/chase.h"
#include "beas/rewrite.h"
#include "common/string_util.h"
#include "ra/analysis.h"
#include "types/distance.h"

namespace beas {

namespace {

// ---------------------------------------------------------------------------
// Decomposition: EvalNode tree over maximal SPC units.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<EvalNode>> BuildEvalTree(const QueryPtr& q, bool weighted,
                                                std::vector<SpcUnit>* units) {
  if (IsSpc(q)) {
    auto node = std::make_unique<EvalNode>();
    node->kind = EvalNode::Kind::kSpc;
    node->unit = units->size();
    node->original = q;
    SpcUnit unit;
    unit.index = units->size();
    unit.query = q;
    unit.weighted = weighted;
    units->push_back(std::move(unit));
    return node;
  }
  switch (q->kind()) {
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference: {
      auto node = std::make_unique<EvalNode>();
      node->kind = q->kind() == QueryNode::Kind::kUnion ? EvalNode::Kind::kUnion
                                                        : EvalNode::Kind::kDifference;
      node->original = q;
      BEAS_ASSIGN_OR_RETURN(node->left, BuildEvalTree(q->left(), weighted, units));
      BEAS_ASSIGN_OR_RETURN(node->right, BuildEvalTree(q->right(), weighted, units));
      return node;
    }
    case QueryNode::Kind::kGroupBy: {
      auto node = std::make_unique<EvalNode>();
      node->kind = EvalNode::Kind::kGroupBy;
      node->original = q;
      node->group_attrs = q->group_attrs();
      node->agg = q->agg();
      node->agg_attr = q->agg_attr();
      BEAS_ASSIGN_OR_RETURN(node->child, BuildEvalTree(q->child(), /*weighted=*/true, units));
      return node;
    }
    default:
      return Status::Unimplemented(
          "only unions, set differences and group-by are supported above the "
          "maximal SPC sub-queries");
  }
}

// ---------------------------------------------------------------------------
// Bound combination over the EvalNode tree (the lower-bound function L,
// Sections 5-7). Works on the hat path: set-difference right branches
// contribute guard tolerances, not coverage.
// ---------------------------------------------------------------------------

struct NodeBounds {
  std::vector<double> col_res;  // per output column, coverage resolution
  double d_rel = 0;
  double extra_cov = 0;  // see SpcUnit::d_cov_extra
};

bool IsExactSubtree(const EvalNode& node, const std::vector<SpcUnit>& units) {
  switch (node.kind) {
    case EvalNode::Kind::kSpc: {
      const SpcUnit& u = units[node.unit];
      return u.unsatisfiable || (u.fetch.Exact() && u.d_rel == 0);
    }
    case EvalNode::Kind::kUnion:
    case EvalNode::Kind::kDifference:
      return IsExactSubtree(*node.left, units) && IsExactSubtree(*node.right, units);
    case EvalNode::Kind::kGroupBy:
      return IsExactSubtree(*node.child, units);
  }
  return false;
}

// Computes bounds bottom-up and installs guard tolerances on set
// differences. Units must already be rewritten (col_res / d_rel filled).
Result<NodeBounds> CombineBounds(EvalNode* node, std::vector<SpcUnit>* units) {
  switch (node->kind) {
    case EvalNode::Kind::kSpc: {
      const SpcUnit& u = (*units)[node->unit];
      NodeBounds b;
      if (u.unsatisfiable) {
        b.col_res.assign(u.query->output_schema().arity(), 0.0);
        b.d_rel = 0;
        return b;
      }
      // Weighted units carry trailing "__w" columns that the group-by
      // consumes; bounds cover only the query's real output columns.
      size_t arity = u.query->output_schema().arity();
      b.col_res.assign(u.col_res.begin(),
                       u.col_res.begin() + static_cast<long>(
                                               std::min(arity, u.col_res.size())));
      b.d_rel = u.d_rel;
      b.extra_cov = u.d_cov_extra;
      return b;
    }
    case EvalNode::Kind::kUnion: {
      BEAS_ASSIGN_OR_RETURN(NodeBounds l, CombineBounds(node->left.get(), units));
      BEAS_ASSIGN_OR_RETURN(NodeBounds r, CombineBounds(node->right.get(), units));
      NodeBounds b;
      b.col_res.resize(l.col_res.size());
      for (size_t i = 0; i < l.col_res.size(); ++i) {
        b.col_res[i] = std::max(l.col_res[i], i < r.col_res.size() ? r.col_res[i] : 0.0);
      }
      b.d_rel = std::max(l.d_rel, r.d_rel);
      b.extra_cov = std::max(l.extra_cov, r.extra_cov);
      return b;
    }
    case EvalNode::Kind::kDifference: {
      BEAS_ASSIGN_OR_RETURN(NodeBounds l, CombineBounds(node->left.get(), units));
      BEAS_ASSIGN_OR_RETURN(NodeBounds r, CombineBounds(node->right.get(), units));
      if (IsExactSubtree(*node->right, *units)) {
        node->guard_tolerance.clear();  // plain set difference
      } else if (std::isinf(r.extra_cov)) {
        // The negated side's evaluation may miss Q2 tuples entirely
        // (infinite-resolution selection): only removing everything
        // preserves Theorem 6(5) soundness.
        node->guard_tolerance.assign(l.col_res.size(), kInfDistance);
      } else {
        // Dangerous distances delta(A): the coverage resolutions of the
        // negated side's hat evaluation (Section 6).
        node->guard_tolerance = r.col_res;
      }
      // Coverage/relevance of the hat path come from the left branch.
      return l;
    }
    case EvalNode::Kind::kGroupBy: {
      BEAS_ASSIGN_OR_RETURN(NodeBounds c, CombineBounds(node->child.get(), units));
      const RelationSchema& child_schema =
          node->child->kind == EvalNode::Kind::kSpc
              ? (*units)[node->child->unit].query->output_schema()
              : node->child->original->output_schema();
      NodeBounds b;
      for (const auto& g : node->group_attrs) {
        auto idx = child_schema.FindAttribute(g);
        b.col_res.push_back(idx && *idx < c.col_res.size() ? c.col_res[*idx] : 0.0);
      }
      auto vidx = child_schema.FindAttribute(node->agg_attr);
      b.col_res.push_back(vidx && *vidx < c.col_res.size() ? c.col_res[*vidx] : 0.0);
      b.d_rel = c.d_rel;
      b.extra_cov = c.extra_cov;
      return b;
    }
  }
  return Status::Internal("unknown EvalNode kind");
}

double Clamp(double v) { return std::min(v, 1.0e15); }

// Additive badness for chAT's greedy choice: total clamped coverage
// resolution + relevance + guard tolerances. Strictly decreases whenever
// any resolution the plan depends on improves.
Result<double> PlanBadness(BeasPlan* plan, const DatabaseSchema& base) {
  for (auto& unit : plan->units) {
    if (unit.unsatisfiable) continue;
    BEAS_RETURN_IF_ERROR(RewriteUnit(base, unit.weighted, &unit));
  }
  BEAS_ASSIGN_OR_RETURN(NodeBounds root, CombineBounds(plan->root.get(), &plan->units));
  double badness = root.d_rel + Clamp(root.extra_cov);
  for (double r : root.col_res) badness += Clamp(r);
  // Guard tolerances across the tree.
  std::vector<const EvalNode*> stack{plan->root.get()};
  while (!stack.empty()) {
    const EvalNode* n = stack.back();
    stack.pop_back();
    for (double t : n->guard_tolerance) badness += Clamp(t);
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
    if (n->child) stack.push_back(n->child.get());
  }
  return badness;
}

double TotalTariff(const BeasPlan& plan) {
  double t = 0;
  for (const auto& u : plan.units) t += u.fetch.EstTariff();
  return t;
}

// chAT (Fig 3): greedily upgrade the template level whose upgrade yields
// the largest accuracy improvement while the tariff stays within budget.
Status OptimizeLevels(BeasPlan* plan, const DatabaseSchema& base) {
  BEAS_ASSIGN_OR_RETURN(double badness, PlanBadness(plan, base));
  while (true) {
    int best_unit = -1, best_op = -1;
    double best_score = -1, best_cost = 0, best_badness = badness;
    for (size_t u = 0; u < plan->units.size(); ++u) {
      FetchPlan& fetch = plan->units[u].fetch;
      for (size_t o = 0; o < fetch.ops.size(); ++o) {
        FetchOp& op = fetch.ops[o];
        if (op.family->is_constraint || op.level >= op.family->max_level) continue;
        double old_tariff = TotalTariff(*plan);
        op.level += 1;
        fetch.Recompute();
        double new_tariff = TotalTariff(*plan);
        double cost = new_tariff - old_tariff;
        bool feasible = new_tariff <= plan->budget;
        double new_badness = badness;
        if (feasible) {
          BEAS_ASSIGN_OR_RETURN(new_badness, PlanBadness(plan, base));
        }
        op.level -= 1;
        fetch.Recompute();
        if (!feasible) continue;
        double score = badness - new_badness;
        if (score > best_score ||
            (score == best_score && best_unit >= 0 && cost < best_cost)) {
          best_score = score;
          best_cost = cost;
          best_unit = static_cast<int>(u);
          best_op = static_cast<int>(o);
          best_badness = new_badness;
        }
      }
    }
    if (best_unit < 0) break;
    FetchPlan& fetch = plan->units[static_cast<size_t>(best_unit)].fetch;
    fetch.ops[static_cast<size_t>(best_op)].level += 1;
    fetch.Recompute();
    badness = best_badness;
  }
  // FinalizeBounds restores the rewrites to the final levels.
  return Status::OK();
}

// Rewrites every unit at its current template levels, installs the
// set-difference guards, and fills the plan-level bounds, eta and tariff.
// Shared tail of fresh planning and cache-template instantiation: given
// the same fetch plans, both paths produce identical accuracy bookkeeping.
Status FinalizeBounds(BeasPlan* plan, const DatabaseSchema& base) {
  BEAS_RETURN_IF_ERROR(PlanBadness(plan, base).status());
  BEAS_ASSIGN_OR_RETURN(NodeBounds root, CombineBounds(plan->root.get(), &plan->units));
  plan->d_rel = root.d_rel;
  plan->d_cov = root.extra_cov;
  for (double r : root.col_res) plan->d_cov = std::max(plan->d_cov, r);
  plan->exact = IsExactSubtree(*plan->root, plan->units) && plan->d_rel == 0;
  plan->eta = plan->exact ? 1.0 : 1.0 / (1.0 + std::max(plan->d_rel, plan->d_cov));
  plan->est_tariff = TotalTariff(*plan);
  return Status::OK();
}

}  // namespace

Result<BeasPlan> Planner::Plan(const QueryPtr& q, double alpha,
                               QueryTrace* trace) const {
  BeasPlan plan;
  plan.query = q;
  plan.budget = alpha * static_cast<double>(db_size_);

  BEAS_ASSIGN_OR_RETURN(plan.root, BuildEvalTree(q, /*weighted=*/false, &plan.units));

  size_t total_atoms = 0;
  for (auto& unit : plan.units) {
    BEAS_ASSIGN_OR_RETURN(unit.tableau, BuildTableau(unit.query));
    unit.unsatisfiable = unit.tableau.unsatisfiable;
    if (!unit.unsatisfiable) total_atoms += unit.tableau.atoms.size();
  }

  {
    ScopedSpan chase_span(trace, "plan.chase");
    for (auto& unit : plan.units) {
      if (unit.unsatisfiable) continue;
      double share = total_atoms == 0
                         ? plan.budget
                         : plan.budget * static_cast<double>(unit.tableau.atoms.size()) /
                               static_cast<double>(total_atoms);
      BEAS_ASSIGN_OR_RETURN(ChaseResult chased, ChaseTableau(unit.tableau, access_, share));
      unit.fetch = std::move(chased.plan);
    }
  }

  if (knobs_.optimize_levels) {
    ScopedSpan chat_span(trace, "plan.chat");
    BEAS_RETURN_IF_ERROR(OptimizeLevels(&plan, base_));
  }

  BEAS_RETURN_IF_ERROR(FinalizeBounds(&plan, base_));
  return plan;
}

PlanTemplate Planner::ExtractTemplate(const BeasPlan& plan) {
  PlanTemplate tmpl;
  tmpl.units.reserve(plan.units.size());
  for (const auto& unit : plan.units) {
    PlanTemplate::UnitTemplate ut;
    ut.fetch = unit.fetch;
    ut.unsatisfiable = unit.unsatisfiable;
    tmpl.units.push_back(std::move(ut));
  }
  return tmpl;
}

Result<std::optional<BeasPlan>> Planner::PlanFromTemplate(const QueryPtr& q, double alpha,
                                                          const PlanTemplate& tmpl) const {
  BeasPlan plan;
  plan.query = q;
  plan.budget = alpha * static_cast<double>(db_size_);

  BEAS_ASSIGN_OR_RETURN(plan.root, BuildEvalTree(q, /*weighted=*/false, &plan.units));
  if (plan.units.size() != tmpl.units.size()) return std::optional<BeasPlan>{};

  for (size_t i = 0; i < plan.units.size(); ++i) {
    SpcUnit& unit = plan.units[i];
    BEAS_ASSIGN_OR_RETURN(unit.tableau, BuildTableau(unit.query));
    unit.unsatisfiable = unit.tableau.unsatisfiable;
    // Unsatisfiability is the one chase-relevant property that depends on
    // constant *values* (conflicting sigma_{A=c} bindings); equal
    // fingerprints do not imply it matches, so re-check per unit and let
    // the caller plan from scratch on a mismatch.
    if (unit.unsatisfiable != tmpl.units[i].unsatisfiable) {
      return std::optional<BeasPlan>{};
    }
    if (unit.unsatisfiable) continue;
    unit.fetch = tmpl.units[i].fetch;
    if (unit.fetch.atoms.size() != unit.tableau.atoms.size()) {
      return std::optional<BeasPlan>{};
    }
    // Rebind constant probes to this query's constants. Every kConst
    // source carries the constant its tableau variable is bound to
    // (chase.cc ExactExternalBindings), and equal fingerprints make the
    // two tableaux structurally identical, so the new value is the new
    // tableau's binding of the same "alias.column" variable.
    for (auto& op : unit.fetch.ops) {
      const std::string& alias = unit.fetch.atoms[op.atom].alias;
      for (size_t x = 0; x < op.x_sources.size(); ++x) {
        XSource& src = op.x_sources[x];
        if (src.kind != XSource::Kind::kConst) continue;
        auto var = unit.tableau.VarOf(StrCat(alias, ".", op.family->x_attrs[x]));
        if (!var) return std::optional<BeasPlan>{};
        auto value = unit.tableau.ConstOf(*var);
        if (!value) return std::optional<BeasPlan>{};
        src.constant = std::move(*value);
      }
    }
    unit.fetch.Recompute();
  }

  BEAS_RETURN_IF_ERROR(FinalizeBounds(&plan, base_));
  // Per-relation invalidation lets an entry outlive mutations of *other*
  // relations, which still shift |D| and with it this alpha's budget. A
  // template whose tariff was within the budget it was created under may
  // no longer fit after |D| shrank: bail out so the caller re-plans (and
  // re-degrades levels) instead of executing into a guaranteed
  // OutOfBudget. At unchanged |D| the tariff is bit-identical to the
  // populating plan's, so this never rejects a same-|D| hit.
  if (plan.est_tariff > plan.budget) return std::optional<BeasPlan>{};
  plan.from_cache = true;
  return std::optional<BeasPlan>{std::move(plan)};
}

Result<Planner::ExactPlanStats> Planner::ExactPlan(const QueryPtr& q) const {
  BeasPlan plan;
  plan.query = q;
  plan.budget = std::numeric_limits<double>::infinity();
  BEAS_ASSIGN_OR_RETURN(plan.root, BuildEvalTree(q, /*weighted=*/false, &plan.units));
  ExactPlanStats stats;
  for (auto& unit : plan.units) {
    BEAS_ASSIGN_OR_RETURN(unit.tableau, BuildTableau(unit.query));
    if (unit.tableau.unsatisfiable) continue;
    BEAS_ASSIGN_OR_RETURN(
        ChaseResult chased,
        ChaseTableau(unit.tableau, access_, std::numeric_limits<double>::infinity()));
    unit.fetch = std::move(chased.plan);
    unit.fetch.UpgradeToExact();
    stats.tariff += unit.fetch.EstTariff();
    for (const auto& op : unit.fetch.ops) {
      stats.constraints_only &= op.family->is_constraint;
    }
  }
  return stats;
}

Result<double> Planner::ExactTariff(const QueryPtr& q) const {
  BEAS_ASSIGN_OR_RETURN(ExactPlanStats stats, ExactPlan(q));
  return stats.tariff;
}

std::string BeasPlan::ToString() const {
  std::string out = StrCat("plan for: ", query->ToString(), "\n");
  out += StrCat("  budget=", FormatDouble(budget, 1), " est_tariff=",
                FormatDouble(est_tariff, 1), " eta=", FormatDouble(eta, 4),
                " exact=", exact ? "yes" : "no", "\n");
  for (const auto& u : units) {
    out += StrCat("  unit ", u.index, u.unsatisfiable ? " (unsatisfiable)" : "", ":\n");
    std::string fp = u.fetch.ToString();
    // Indent.
    size_t pos = 0;
    while (pos < fp.size()) {
      size_t nl = fp.find('\n', pos);
      if (nl == std::string::npos) nl = fp.size();
      out += "    " + fp.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

}  // namespace beas
