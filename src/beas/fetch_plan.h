// Fetching plans: the xi_F half of a canonical bounded plan (paper
// Section 5). A fetching plan is an ordered sequence of fetch operations
// through access-template indices; its tariff (estimated number of tuples
// accessed) is computed from the N constants of the access schema alone,
// without touching the data.

#ifndef BEAS_BEAS_FETCH_PLAN_H_
#define BEAS_BEAS_FETCH_PLAN_H_

#include <set>
#include <string>
#include <vector>

#include "accschema/access_schema.h"
#include "beas/tableau.h"

namespace beas {

/// Where one X-attribute of a fetch gets its probe values.
struct XSource {
  enum class Kind {
    kConst,      ///< a constant from the query
    kExternal,   ///< a column of another atom's materialized table
    kSelfChain,  ///< a column this atom's earlier chain steps fetched
  };
  Kind kind = Kind::kConst;
  Value constant;
  size_t source_atom = 0;  ///< kExternal: atom index within the same plan
  std::string column;      ///< unqualified column name in the source rows
};

/// One fetch(X in T, R, Y, psi) operation.
struct FetchOp {
  size_t atom = 0;  ///< index of the target atom in the plan
  std::string family_id;
  const BoundFamily* family = nullptr;  ///< borrowed from the AccessSchema
  int level = 0;                        ///< template level k (constraints: 0)
  std::vector<XSource> x_sources;       ///< parallel to family->x_attrs
  /// Estimated number of distinct X probes (recomputed by Recompute()).
  double est_bindings = 1;
};

/// The chain of fetch operations materializing one relation atom.
struct AtomPlan {
  std::string relation;
  std::string alias;
  std::vector<size_t> op_indices;  ///< into FetchPlan::ops, in chain order
  std::set<std::string> fetched_cols;
  double est_rows = 1;  ///< estimated materialized rows (recomputed)
};

/// \brief A fetching plan for one SPC (sub-)query.
struct FetchPlan {
  std::vector<FetchOp> ops;  ///< global execution order (dependency-safe)
  std::vector<AtomPlan> atoms;

  /// Re-derives est_bindings / est_rows from the current template levels.
  void Recompute();

  /// Estimated tuples accessed: sum over ops of est_bindings * fanout
  /// (the tariff of Fig 3).
  double EstTariff() const;

  /// Resolution (distance units) with which the plan fetches atom
  /// \p atom_idx's column \p col: 0 when probed as X or fetched via a
  /// constraint / a max-level template; the template's d_k[col] otherwise.
  double ResolutionOf(size_t atom_idx, const std::string& col) const;

  /// True when every fetch is exact (constraints or max-level templates):
  /// the plan computes exact answers Q(D) (bounded evaluability).
  bool Exact() const;

  /// Raises every template fetch to its family's max level (resolution 0),
  /// turning the plan into an exact plan; used for the alpha_exact
  /// experiment (Fig 6(j)).
  void UpgradeToExact();

  std::string ToString() const;
};

/// \brief Dependency DAG over one FetchPlan's ops, for parallel fetching.
///
/// Edges reconstruct exactly the data each op reads under the sequential
/// `ops` order: the op's chain predecessor in the same atom (covers
/// kSelfChain probes and the chain's row-context extension), and — for
/// every kExternal probe source — the *last* op of the source atom's
/// chain, since the chase commits whole chains and external sources only
/// reference fully-materialized atoms. Running ops in any topological
/// order of this DAG therefore produces bit-identical atom tables to the
/// sequential loop.
struct FetchDag {
  /// deps[j] = op indices that must complete before op j may run
  /// (deduplicated; each < j when sequential_consistent).
  std::vector<std::vector<size_t>> deps;
  /// dependents[j] = op indices unblocked (in part) by op j's completion.
  std::vector<std::vector<size_t>> dependents;
  /// True iff every kExternal source's atom has all of its ops strictly
  /// before the referencing op — the invariant the chase maintains. When
  /// false (defensive; no current planner path produces it), parallel
  /// execution must fall back to the sequential order.
  bool sequential_consistent = true;
};

/// Builds the dependency DAG for \p plan (see FetchDag).
FetchDag BuildFetchDag(const FetchPlan& plan);

}  // namespace beas

#endif  // BEAS_BEAS_FETCH_PLAN_H_
