// Canonical bounded plans xi_alpha = (xi_F, xi_E) (paper Sections 5-7).
//
// A BeasPlan decomposes Q into its maximal SPC sub-queries (units), each
// with a tableau and a fetching plan, plus an evaluation-plan tree that
// mirrors Q's non-SPC structure (unions, set differences with the
// dangerous-distance guard, group-by aggregates).

#ifndef BEAS_BEAS_PLAN_H_
#define BEAS_BEAS_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "beas/fetch_plan.h"
#include "beas/tableau.h"
#include "ra/ast.h"

namespace beas {

/// One maximal SPC sub-query with its fetching machinery.
struct SpcUnit {
  size_t index = 0;   ///< unit id; DQ tables are named "sq<index>_<alias>"
  QueryPtr query;     ///< the original SPC sub-query
  Tableau tableau;
  FetchPlan fetch;
  /// Schema of each atom's materialized DQ table (parallel to
  /// fetch.atoms): fetched columns in base order plus the "__w"
  /// occurrence-weight column.
  std::vector<RelationSchema> atom_schemas;
  /// xi_E for this unit: the query rewritten over the DQ tables with
  /// targeted relaxation slack on its selections (filled by the planner
  /// after chAT fixes template levels).
  QueryPtr rewritten;
  /// Per-output-column coverage resolution and relevance bound of the
  /// rewritten unit (from the lower-bound function L).
  std::vector<double> col_res;
  double d_rel = 0;
  /// +inf when a selection compares an attribute fetched with infinite
  /// resolution (trivial metric, subtree not yet uniform): the exact
  /// filter on representatives may drop covered answers, so the coverage
  /// bound must not claim anything. 0 otherwise.
  double d_cov_extra = 0;
  /// Q(D) is empty on every database (conflicting constants): no fetching.
  bool unsatisfiable = false;
  /// The unit feeds a group-by aggregate: bag projections keep the "__w"
  /// occurrence-weight columns (Section 7).
  bool weighted = false;
};

/// Node of the evaluation-plan tree above the SPC units.
struct EvalNode {
  enum class Kind { kSpc, kUnion, kDifference, kGroupBy };
  Kind kind = Kind::kSpc;

  size_t unit = 0;  ///< kSpc: index into BeasPlan::units
  std::unique_ptr<EvalNode> left;   ///< kUnion / kDifference
  std::unique_ptr<EvalNode> right;  ///< kUnion / kDifference
  std::unique_ptr<EvalNode> child;  ///< kGroupBy

  /// kDifference: per-column dangerous distance delta(A) (Section 6);
  /// empty when the negated side is exact (plain set difference).
  std::vector<double> guard_tolerance;

  /// kGroupBy: grouping spec against the child's output schema.
  std::vector<std::string> group_attrs;
  AggFunc agg = AggFunc::kCount;
  std::string agg_attr;

  /// The original query node this EvalNode implements (schemas, printing).
  QueryPtr original;
};

/// \brief A complete alpha-bounded plan with its accuracy bookkeeping.
struct BeasPlan {
  QueryPtr query;
  std::vector<SpcUnit> units;
  std::unique_ptr<EvalNode> root;

  double budget = 0;      ///< B = alpha * |D|
  double est_tariff = 0;  ///< estimated tuples accessed (<= budget)

  /// Static lower-bound components from L: worst relevance slack and the
  /// per-column coverage resolutions of the induced query (Section 6 uses
  /// d_rel and d_cov-hat; the executor adds the runtime d').
  double d_rel = 0;
  double d_cov = 0;

  /// Static eta = 1 / (1 + max(d_rel, d_cov)); the executor's runtime eta
  /// additionally folds in d' for set differences.
  double eta = 0;

  /// True when every fetch is exact: the plan computes exact Q(D).
  bool exact = false;

  /// True when the plan was instantiated from a PlanCache template
  /// (Planner::PlanFromTemplate) instead of a full chase + chAT run.
  bool from_cache = false;

  std::string ToString() const;
};

}  // namespace beas

#endif  // BEAS_BEAS_PLAN_H_
