// The tableau (T(Q), u(Q)) of an SPC query (paper Section 5).
//
// Each relation atom of the query becomes a row of tuple templates whose
// cells are terms: constants (from sigma_{A=c} selections) or variables
// (shared across atoms by sigma_{A=B} equalities, encoding equi-joins).
// Only *tracked* attributes — those appearing in the output or in any
// comparison — carry terms; untracked attributes never need fetching
// (access templates may cover partial tuples, Section 2).

#ifndef BEAS_BEAS_TABLEAU_H_
#define BEAS_BEAS_TABLEAU_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ra/analysis.h"
#include "ra/ast.h"

namespace beas {

/// A tableau cell: a constant or a variable id.
struct Term {
  bool is_const = false;
  Value constant;
  int var = -1;

  static Term Const(Value v) {
    Term t;
    t.is_const = true;
    t.constant = std::move(v);
    return t;
  }
  static Term Var(int id) {
    Term t;
    t.var = id;
    return t;
  }
};

/// One relation atom: an aliased occurrence of a base relation with terms
/// for its tracked attributes (keyed by unqualified column name).
struct TableauAtom {
  std::string relation;
  std::string alias;
  std::map<std::string, Term> terms;  ///< tracked column -> term
};

/// \brief The tableau of an SPC query.
struct Tableau {
  std::vector<TableauAtom> atoms;
  int num_vars = 0;

  /// Comparisons that are not variable-unifying equalities (inequalities,
  /// <>, and attr=const bindings retained for the evaluation plan).
  Predicate residual;

  /// The normal form this tableau was built from (outputs, all
  /// comparisons, distinct flag).
  SpcNormalForm nf;

  /// True when two sigma_{A=c} selections force conflicting constants on
  /// one variable: Q(D) is empty for every D.
  bool unsatisfiable = false;

  /// Qualified attribute name -> variable id (tracked attributes only).
  std::map<std::string, int> var_of_attr;
  /// Variable id -> constant bound through sigma_{A=c}, when any.
  std::map<int, Value> var_const;

  /// The variable of qualified attribute "alias.col", if tracked.
  std::optional<int> VarOf(const std::string& qualified_attr) const;

  /// Constant bound to \p var via selections, if any.
  std::optional<Value> ConstOf(int var) const;

  /// All (atom index, column) cells holding \p var.
  std::vector<std::pair<size_t, std::string>> CellsOf(int var) const;

  std::string ToString() const;
};

/// Builds the tableau of SPC query \p q: unifies variables across
/// sigma_{A=B} equalities, binds constants from sigma_{A=c}, and tracks
/// exactly the attributes the plan must fetch.
Result<Tableau> BuildTableau(const QueryPtr& q);

}  // namespace beas

#endif  // BEAS_BEAS_TABLEAU_H_
