#include "beas/plan_cache.h"

#include <cstdio>
#include <cstring>

namespace beas {

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

std::string PlanCache::MakeKey(const QueryFingerprint& fp, double alpha) {
  // The fixed-size map key: fingerprint hash plus alpha, both bit-exact
  // (plans at different resource ratios pick different template levels
  // and must never alias). The canonical form stays out of the key — it
  // is stored in the entry and compared on lookup, so a 64-bit hash
  // collision is detected and served as a miss.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(alpha), "double must be 64-bit");
  std::memcpy(&bits, &alpha, sizeof(bits));
  char key[40];
  std::snprintf(key, sizeof(key), "%016llx#%016llx",
                static_cast<unsigned long long>(fp.hash),
                static_cast<unsigned long long>(bits));
  return key;
}

std::shared_ptr<const PlanTemplate> PlanCache::Lookup(const QueryFingerprint& fp,
                                                      double alpha) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(MakeKey(fp, alpha));
  if (it == index_.end() || it->second->canonical != fp.canonical) {
    ++stats_.misses;
    return nullptr;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  ++stats_.hits;
  // Shared ownership: the pointer stays usable even if a concurrent
  // Insert evicts or replaces the entry before the caller instantiates
  // it, with no per-hit copy under the lock.
  return entries_.front().tmpl;
}

void PlanCache::Insert(const QueryFingerprint& fp, double alpha, PlanTemplate tmpl) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = MakeKey(fp, alpha);
  auto shared = std::make_shared<const PlanTemplate>(std::move(tmpl));
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Same key: refresh the entry (and let a colliding canonical form
    // take the slot over — the previous entry would only miss anyway).
    it->second->canonical = fp.canonical;
    it->second->tmpl = std::move(shared);
    entries_.splice(entries_.begin(), entries_, it->second);
  } else {
    entries_.push_front(Entry{key, fp.canonical, std::move(shared)});
    index_[std::move(key)] = entries_.begin();
    while (entries_.size() > options_.capacity) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.entries = entries_.size();
}

void PlanCache::DemoteLastHit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.hits == 0) return;
  --stats_.hits;
  ++stats_.misses;
}

void PlanCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  index_.clear();
  ++stats_.invalidations;
  stats_.entries = 0;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace beas
