#include "beas/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace beas {

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

std::string PlanCache::MakeKey(const QueryFingerprint& fp, double alpha) {
  // The fixed-size map key: fingerprint hash plus alpha, both bit-exact
  // (plans at different resource ratios pick different template levels
  // and must never alias). The canonical form stays out of the key — it
  // is stored in the entry and compared on lookup, so a 64-bit hash
  // collision is detected and served as a miss.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(alpha), "double must be 64-bit");
  std::memcpy(&bits, &alpha, sizeof(bits));
  char key[40];
  std::snprintf(key, sizeof(key), "%016llx#%016llx",
                static_cast<unsigned long long>(fp.hash),
                static_cast<unsigned long long>(bits));
  return key;
}

std::shared_ptr<const PlanTemplate> PlanCache::Lookup(const QueryFingerprint& fp,
                                                      double alpha) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(MakeKey(fp, alpha));
  if (it == index_.end() || it->second->canonical != fp.canonical) {
    ++stats_.misses;
    return nullptr;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  ++stats_.hits;
  // Shared ownership: the pointer stays usable even if a concurrent
  // Insert evicts or replaces the entry before the caller instantiates
  // it, with no per-hit copy under the lock.
  return entries_.front().tmpl;
}

void PlanCache::Insert(const QueryFingerprint& fp, double alpha, PlanTemplate tmpl,
                       std::vector<std::string> relations) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = MakeKey(fp, alpha);
  auto shared = std::make_shared<const PlanTemplate>(std::move(tmpl));
  // A successful plan supersedes any cached verdict under the same key
  // (can happen when |D| grew past the old budget between the two).
  auto nit = negative_index_.find(key);
  if (nit != negative_index_.end()) {
    negatives_.erase(nit->second);
    negative_index_.erase(nit);
    stats_.negative_entries = negatives_.size();
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Same key: refresh the entry (and let a colliding canonical form
    // take the slot over — the previous entry would only miss anyway).
    it->second->canonical = fp.canonical;
    it->second->tmpl = std::move(shared);
    it->second->relations = std::move(relations);
    entries_.splice(entries_.begin(), entries_, it->second);
  } else {
    entries_.push_front(Entry{key, fp.canonical, std::move(shared), std::move(relations)});
    index_[std::move(key)] = entries_.begin();
    while (entries_.size() > options_.capacity) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.entries = entries_.size();
}

std::optional<Status> PlanCache::LookupNegative(const QueryFingerprint& fp, double alpha) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = negative_index_.find(MakeKey(fp, alpha));
  if (it == negative_index_.end() || it->second->canonical != fp.canonical) {
    return std::nullopt;
  }
  negatives_.splice(negatives_.begin(), negatives_, it->second);
  ++stats_.negative_hits;
  return negatives_.front().verdict;
}

void PlanCache::InsertNegative(const QueryFingerprint& fp, double alpha, Status verdict) {
  if (verdict.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.negative_capacity == 0) return;
  std::string key = MakeKey(fp, alpha);
  // Mirror of Insert: a key is either negative or positive. A stale
  // template can coexist-in-waiting here when |D| drift pushed its
  // tariff past the budget (PlanFromTemplate bailed, planning failed);
  // it would never be served again, so drop it rather than let it pin
  // an LRU slot.
  auto pit = index_.find(key);
  if (pit != index_.end()) {
    entries_.erase(pit->second);
    index_.erase(pit);
    stats_.entries = entries_.size();
  }
  auto it = negative_index_.find(key);
  if (it != negative_index_.end()) {
    it->second->canonical = fp.canonical;
    it->second->verdict = std::move(verdict);
    negatives_.splice(negatives_.begin(), negatives_, it->second);
  } else {
    negatives_.push_front(NegativeEntry{key, fp.canonical, std::move(verdict)});
    negative_index_[std::move(key)] = negatives_.begin();
    while (negatives_.size() > options_.negative_capacity) {
      negative_index_.erase(negatives_.back().key);
      negatives_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.negative_entries = negatives_.size();
}

void PlanCache::DemoteLastHit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.hits == 0) return;
  --stats_.hits;
  ++stats_.misses;
}

void PlanCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.entries_invalidated += entries_.size() + negatives_.size();
  entries_.clear();
  index_.clear();
  DropNegativesLocked();
  ++stats_.invalidations;
  stats_.entries = 0;
}

void PlanCache::InvalidateRelation(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool touches = it->relations.empty() ||
                   std::binary_search(it->relations.begin(), it->relations.end(), relation);
    if (touches) {
      index_.erase(it->key);
      it = entries_.erase(it);
      ++stats_.entries_invalidated;
    } else {
      ++it;
    }
  }
  // Every mutation moves |D|, so every cached budget verdict is suspect.
  stats_.entries_invalidated += negatives_.size();
  DropNegativesLocked();
  ++stats_.invalidations;
  stats_.entries = entries_.size();
}

void PlanCache::DropNegativesLocked() {
  negatives_.clear();
  negative_index_.clear();
  stats_.negative_entries = 0;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace beas
