#include "accuracy/measures.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "engine/relaxed.h"
#include "types/distance.h"

namespace beas {

namespace {

// d(t, t') over an output schema, the worst attribute distance (Sec 3.1).
double OutDistance(const RelationSchema& schema, const Tuple& a, const Tuple& b) {
  return TupleDistance(schema, a, b);
}

// Coverage distance for avg/count/sum aggregates (Section 3.2):
// d_agg(s, t) = max_{A in X} dis_A(s[A], t[A]) + f_agg(t[V], s[V]) with
// f_agg = |v - v'| (scaled by the aggregate column's distance scale).
double AggCoverageDistance(const RelationSchema& schema, const Tuple& s, const Tuple& t) {
  size_t v = schema.arity() - 1;  // aggregate column is last by construction
  double x_dist = 0;
  for (size_t a = 0; a < v; ++a) {
    x_dist = std::max(x_dist, AttributeDistance(schema.attribute(a).distance, s[a], t[a]));
    if (x_dist == kInfDistance) return kInfDistance;
  }
  double fagg = AttributeDistance(schema.attribute(v).distance, s[v], t[v]);
  if (fagg == kInfDistance) return kInfDistance;
  return x_dist + fagg;
}

bool IsDistributiveAgg(AggFunc f) { return f == AggFunc::kMin || f == AggFunc::kMax; }

// Relevance candidates: tuples of the relaxed query with their entry
// relaxation. For aggregates this is computed over Q' (min/max) or
// pi_X(Q') (avg/count/sum), per Section 3.2.
struct RelevanceContext {
  QueryPtr target;                // the non-aggregate query to relax
  std::vector<size_t> s_mapping;  // answer-tuple positions feeding target's schema
};

Result<RelevanceContext> MakeRelevanceContext(const QueryPtr& q) {
  RelevanceContext ctx;
  if (q->kind() != QueryNode::Kind::kGroupBy) {
    ctx.target = q;
    ctx.s_mapping.resize(q->output_schema().arity());
    for (size_t i = 0; i < ctx.s_mapping.size(); ++i) ctx.s_mapping[i] = i;
    return ctx;
  }
  const QueryPtr& child = q->child();
  const RelationSchema& out = q->output_schema();
  if (IsDistributiveAgg(q->agg())) {
    // delta_rel(Q, D, s) = delta_rel(Q', D, s): the full answer tuple
    // (X-values plus the min/max value, which is in the active domain)
    // is matched against relaxed answers to Q'.
    ctx.target = child;
    const RelationSchema& cs = child->output_schema();
    ctx.s_mapping.resize(cs.arity());
    for (size_t i = 0; i < cs.arity(); ++i) {
      const std::string& name = cs.attribute(i).name;
      // Group attributes keep their names; the aggregated attribute V maps
      // to the aggregate output column (the last one).
      bool found = false;
      for (size_t j = 0; j < out.arity(); ++j) {
        if (out.attribute(j).name == name) {
          ctx.s_mapping[i] = j;
          found = true;
          break;
        }
      }
      if (!found) {
        if (name != q->agg_attr()) {
          return Status::Internal(
              StrCat("cannot map aggregate answer attribute '", name, "'"));
        }
        ctx.s_mapping[i] = out.arity() - 1;
      }
    }
    return ctx;
  }
  // avg/count/sum: delta_rel is over pi_X(Q'), D, s[X].
  if (q->group_attrs().empty()) {
    // Global aggregate without grouping: every answer is trivially
    // relevant (there is no X to match); signalled by a null target.
    ctx.target = nullptr;
    return ctx;
  }
  BEAS_ASSIGN_OR_RETURN(ctx.target,
                        QueryNode::Project(child, q->group_attrs(), /*distinct=*/true));
  ctx.s_mapping.resize(q->group_attrs().size());
  for (size_t i = 0; i < ctx.s_mapping.size(); ++i) ctx.s_mapping[i] = i;
  return ctx;
}

}  // namespace

Result<RcReport> RcMeasureWithExact(const Database& db, const QueryPtr& q,
                                    const Table& approx, const Table& exact,
                                    const RcOptions& options) {
  const RelationSchema& out_schema = q->output_schema();
  RcReport report;
  report.exact_size = exact.size();
  report.approx_size = approx.size();

  bool is_agg = q->kind() == QueryNode::Kind::kGroupBy;
  bool agg_additive = is_agg && !IsDistributiveAgg(q->agg());

  // --- Coverage: max_t min_s distance (Section 3.1 / 3.2). ---
  if (exact.empty()) {
    report.f_cov = 1.0;
    report.max_cov_distance = 0.0;
  } else if (approx.empty()) {
    report.f_cov = 0.0;
    report.max_cov_distance = kInfDistance;
  } else {
    double worst = 0;
    for (const auto& t : exact.rows()) {
      double best = kInfDistance;
      for (const auto& s : approx.rows()) {
        double d = agg_additive ? AggCoverageDistance(out_schema, s, t)
                                : OutDistance(out_schema, s, t);
        best = std::min(best, d);
        if (best == 0) break;
      }
      worst = std::max(worst, best);
      if (worst == kInfDistance) break;
    }
    report.max_cov_distance = worst;
    report.f_cov = 1.0 / (1.0 + worst);
  }

  // --- Relevance: max_s delta_rel(Q, D, s). ---
  if (approx.empty()) {
    report.f_rel = 1.0;
    report.max_rel_distance = 0.0;
  } else {
    BEAS_ASSIGN_OR_RETURN(RelevanceContext ctx, MakeRelevanceContext(q));

    // Group-by semantics: duplicated X-values in S make those answers
    // irrelevant (delta_rel = +inf), Section 3.2.
    std::vector<bool> duplicated(approx.size(), false);
    if (is_agg) {
      size_t x_arity = out_schema.arity() - 1;
      std::unordered_map<Tuple, std::vector<size_t>, TupleHasher> by_x;
      for (size_t i = 0; i < approx.size(); ++i) {
        Tuple x(approx.row(i).begin(), approx.row(i).begin() + x_arity);
        by_x[std::move(x)].push_back(i);
      }
      for (const auto& [x, rows] : by_x) {
        if (rows.size() > 1) {
          for (size_t i : rows) duplicated[i] = true;
        }
      }
    }

    double worst = 0;
    if (ctx.target == nullptr) {
      // Ungrouped additive aggregate: relevance vacuous.
      for (size_t i = 0; i < approx.size(); ++i) {
        if (duplicated[i]) worst = kInfDistance;
      }
    } else {
      const RelationSchema& tgt_schema = ctx.target->output_schema();
      RelaxedEvaluator relaxed(db, options.eval);

      // Map each approximate answer to the target schema.
      std::vector<Tuple> mapped;
      mapped.reserve(approx.size());
      for (const auto& s : approx.rows()) {
        Tuple m;
        m.reserve(ctx.s_mapping.size());
        for (size_t j : ctx.s_mapping) m.push_back(s[j]);
        mapped.push_back(std::move(m));
      }

      // Iterative-deepening relaxation cap: any candidate set found at cap
      // r proves delta_rel <= max(r_enter, d); stop once worst <= cap.
      double cap = 1.0;
      while (true) {
        BEAS_ASSIGN_OR_RETURN(std::vector<RelaxedRow> candidates,
                              relaxed.Eval(ctx.target, cap));
        worst = 0;
        bool all_resolved = true;
        for (size_t i = 0; i < mapped.size(); ++i) {
          if (duplicated[i]) {
            worst = kInfDistance;
            continue;
          }
          double best = kInfDistance;
          for (const auto& c : candidates) {
            double d = OutDistance(tgt_schema, mapped[i], c.tuple);
            best = std::min(best, std::max(c.r_enter, d));
            if (best == 0) break;
          }
          if (best > cap) all_resolved = false;
          worst = std::max(worst, best);
        }
        if (worst == kInfDistance && cap >= options.max_relaxation) break;
        if (all_resolved || cap >= options.max_relaxation) break;
        cap = std::min(cap * 16.0, options.max_relaxation);
      }
      if (worst > options.max_relaxation) worst = kInfDistance;
    }
    report.max_rel_distance = worst;
    report.f_rel = 1.0 / (1.0 + worst);
  }

  report.accuracy = std::min(report.f_rel, report.f_cov);
  return report;
}

Result<RcReport> RcMeasure(const Database& db, const QueryPtr& q, const Table& approx,
                           const RcOptions& options) {
  Evaluator eval(db, options.eval);
  BEAS_ASSIGN_OR_RETURN(Table exact, eval.Eval(q));
  return RcMeasureWithExact(db, q, approx, exact, options);
}

double MacAccuracy(const RelationSchema& schema, const Table& approx, const Table& exact) {
  if (approx.empty() && exact.empty()) return 1.0;
  if (approx.empty() || exact.empty()) return 0.0;
  auto squash = [](double d) { return std::isinf(d) ? 1.0 : d / (1.0 + d); };
  auto directed = [&](const Table& from, const Table& to) {
    double total = 0;
    for (const auto& a : from.rows()) {
      double best = kInfDistance;
      for (const auto& b : to.rows()) {
        best = std::min(best, TupleDistance(schema, a, b));
        if (best == 0) break;
      }
      total += squash(best);
    }
    return total / static_cast<double>(from.size());
  };
  double dist = 0.5 * (directed(exact, approx) + directed(approx, exact));
  return 1.0 - dist;
}

double FMeasure(const Table& approx, const Table& exact) {
  if (approx.empty() || exact.empty()) return 0.0;
  std::unordered_set<Tuple, TupleHasher> truth(exact.rows().begin(), exact.rows().end());
  size_t hits = 0;
  std::unordered_set<Tuple, TupleHasher> seen;
  for (const auto& s : approx.rows()) {
    if (truth.count(s) > 0 && seen.insert(s).second) ++hits;
  }
  double precision = static_cast<double>(hits) / static_cast<double>(approx.size());
  double recall = static_cast<double>(hits) / static_cast<double>(exact.size());
  if (precision + recall == 0) return 0.0;
  return 2 * precision * recall / (precision + recall);
}

}  // namespace beas
