// Accuracy measures for approximate answers (paper Section 3):
//  * the RC measure (relevance + coverage under query relaxation), the
//    paper's contribution;
//  * the MAC measure of Ioannidis & Poosala [27], used for comparison in
//    Fig 6(d)/(f) (normalized to [0,1] as in the paper's experiments);
//  * the classical F-measure, shown in Example 2 to be uninformative for
//    resource-bounded approximation.

#ifndef BEAS_ACCURACY_MEASURES_H_
#define BEAS_ACCURACY_MEASURES_H_

#include "common/result.h"
#include "engine/evaluator.h"
#include "ra/ast.h"
#include "storage/database.h"
#include "storage/table.h"

namespace beas {

/// Options for RC evaluation.
struct RcOptions {
  /// Engine limits for the exact and relaxed evaluations.
  EvalOptions eval;
  /// Upper bound on the relaxation search; relevance distances beyond this
  /// are reported as +inf (accuracy contribution 0).
  double max_relaxation = 1.0e12;
};

/// Result of an RC evaluation.
struct RcReport {
  double accuracy = 0;  ///< min(f_rel, f_cov)
  double f_rel = 1;     ///< 1 / (1 + max_s delta_rel)
  double f_cov = 1;     ///< 1 / (1 + max_t delta_cov)
  double max_rel_distance = 0;
  double max_cov_distance = 0;
  size_t exact_size = 0;
  size_t approx_size = 0;
};

/// Computes the RC measure of \p approx as an answer set for \p q on
/// \p db (paper Section 3). \p approx must have the schema
/// q->output_schema() (positionally). Handles both plain RA and group-by
/// aggregate queries, including the avg/count/sum coverage distance d_agg
/// and the pi_X(Q') relevance reduction of Section 3.2.
Result<RcReport> RcMeasure(const Database& db, const QueryPtr& q, const Table& approx,
                           const RcOptions& options = {});

/// Like RcMeasure but reuses precomputed \p exact answers (avoids
/// re-running the exact evaluator across methods in the benchmarks).
Result<RcReport> RcMeasureWithExact(const Database& db, const QueryPtr& q,
                                    const Table& approx, const Table& exact,
                                    const RcOptions& options = {});

/// MAC accuracy in [0,1]: 1 - the symmetric match-and-compare distance
/// between \p approx and \p exact under the output schema's attribute
/// distances, each elementwise distance squashed to [0,1] by d/(1+d).
/// Both empty -> 1; exactly one empty -> 0.
double MacAccuracy(const RelationSchema& schema, const Table& approx, const Table& exact);

/// Classical F-measure (harmonic mean of precision and recall) under
/// exact tuple equality.
double FMeasure(const Table& approx, const Table& exact);

}  // namespace beas

#endif  // BEAS_ACCURACY_MEASURES_H_
