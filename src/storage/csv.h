// Minimal CSV import/export for tables (used by examples and tooling).

#ifndef BEAS_STORAGE_CSV_H_
#define BEAS_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace beas {

/// Writes \p table to \p path as CSV with a header row. Strings containing
/// commas/quotes/newlines are quoted.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV file with a header into a table under \p schema: columns are
/// matched by header name, cells parsed per the attribute's DataType.
Result<Table> ReadCsv(const RelationSchema& schema, const std::string& path);

}  // namespace beas

#endif  // BEAS_STORAGE_CSV_H_
