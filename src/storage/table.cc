#include "storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace beas {

Status Table::Append(Tuple t) {
  if (t.size() != schema_.arity()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", t.size(), " does not match schema '", schema_.name(),
               "' arity ", schema_.arity()));
  }
  rows_.push_back(std::move(t));
  return Status::OK();
}

Status Table::SetSchema(RelationSchema schema) {
  if (schema.arity() != schema_.arity()) {
    return Status::InvalidArgument("SetSchema: arity mismatch");
  }
  schema_ = std::move(schema);
  return Status::OK();
}

void Table::Distinct() {
  std::unordered_set<Tuple, TupleHasher> seen;
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (auto& r : rows_) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  rows_ = std::move(out);
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Tuple& a, const Tuple& b) {
              return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
            });
}

size_t Table::FillBatch(size_t start, RowBatch* batch) const {
  batch->chunk.Clear();
  batch->sel.clear();
  if (start >= rows_.size()) return 0;
  size_t n = std::min(batch->chunk.capacity(), rows_.size() - start);
  batch->chunk.AppendFromRows(rows_, start, n);
  batch->SelectAll();
  return n;
}

void Table::AppendBatch(const RowBatch& batch) { AppendChunk(batch.chunk, batch.sel); }

void Table::AppendChunk(const ColumnChunk& chunk, const SelectionVector& sel) {
  // No reserve: per-batch exact reserves would defeat the vector's
  // geometric growth across a long stream of batches.
  for (uint32_t r : sel) {
    rows_.push_back(chunk.RowAt(r));
  }
}

bool Table::Contains(const Tuple& t) const {
  for (const auto& r : rows_) {
    if (r == t) return true;
  }
  return false;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += StrCat("  [", rows_.size(), " rows]\n");
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    out += "  " + TupleToString(rows_[i]) + "\n";
  }
  if (rows_.size() > max_rows) out += StrCat("  ... (", rows_.size() - max_rows, " more)\n");
  return out;
}

}  // namespace beas
