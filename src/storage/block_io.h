// Block-structured storage file for the disk-backed index tier.
//
// Layout (all little-endian):
//
//   [data region: records packed back to back, addressed by byte offset]
//   [directory:  u64 data_len | u32 n_blocks | n_blocks * u32 block CRCs
//                | u64 payload_len | payload (opaque to this layer)]
//   [footer:     u64 dir_off | u64 dir_len | u32 dir_crc | u32 block_bytes
//                | 8-byte magic "BEASBLK1"]
//
// The data region is divided into fixed-size blocks of `block_bytes`; a
// record may span blocks. Each block carries a CRC32 in the directory's
// checksum table, verified on every read: a flipped bit anywhere in the
// data region surfaces as a clean DataLoss status, never as undefined
// behavior. The directory payload (the index backend's serialized schema
// and group maps) is CRC-protected the same way.
//
// Mutations are append-only: new records land at data_len, the directory
// and footer are rewritten behind them by Sync(). Reads (ReadBlockVerified)
// use pread on a shared descriptor and are safe from any number of threads
// concurrently; Append/Sync require exclusive access (the query service's
// epoch guard provides exactly that drain-then-mutate exclusion).

#ifndef BEAS_STORAGE_BLOCK_IO_H_
#define BEAS_STORAGE_BLOCK_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace beas {

/// CRC-32 (IEEE 802.3 polynomial, the LevelDB/zlib convention) of
/// \p data[0, n).
uint32_t Crc32(const char* data, size_t n);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

/// \brief One block-structured file: an append-only data region of
/// checksummed fixed-size blocks plus an opaque directory payload.
class BlockFile {
 public:
  ~BlockFile();
  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// Creates (truncating) \p path with the given block size.
  static Result<std::unique_ptr<BlockFile>> Create(const std::string& path,
                                                   uint32_t block_bytes);

  /// Opens an existing file: reads and CRC-verifies the footer and
  /// directory (DataLoss on corruption), making dir_payload() available.
  static Result<std::unique_ptr<BlockFile>> Open(const std::string& path);

  /// Appends \p record to the data region and returns its byte offset.
  /// Not durable until the next Sync().
  Result<uint64_t> Append(const std::string& record);

  /// Rewrites the directory (with \p dir_payload) and footer after the
  /// current data region.
  Status Sync(const std::string& dir_payload);

  /// The directory payload read by Open (empty for a fresh Create).
  const std::string& dir_payload() const { return dir_payload_; }

  uint64_t data_len() const { return data_len_; }
  uint32_t block_bytes() const { return block_bytes_; }
  /// Number of data blocks (the last one may be partial).
  uint64_t block_count() const {
    return (data_len_ + block_bytes_ - 1) / block_bytes_;
  }
  /// Total on-disk footprint: data region + directory + footer.
  uint64_t file_bytes() const { return file_bytes_; }

  /// Reads block \p index (block_bytes long, except a shorter tail) and
  /// verifies its checksum; DataLoss on mismatch. Thread-safe.
  Result<std::string> ReadBlockVerified(uint64_t index) const;

 private:
  BlockFile() = default;

  int fd_ = -1;
  std::string path_;
  uint32_t block_bytes_ = 0;
  uint64_t data_len_ = 0;
  uint64_t file_bytes_ = 0;
  /// Contents of the trailing partial block (empty when data_len_ is
  /// block-aligned); kept so appends can update its checksum in place.
  std::string tail_;
  /// Per-block CRCs, one per block_count() block; the last entry covers
  /// the partial tail and is refreshed on every Append.
  std::vector<uint32_t> crcs_;
  std::string dir_payload_;
};

}  // namespace beas

#endif  // BEAS_STORAGE_BLOCK_IO_H_
