#include "storage/database.h"

#include "common/string_util.h"

namespace beas {

Status Database::AddTable(Table table) {
  std::string name = table.schema().name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument(StrCat("duplicate table '", name, "'"));
  }
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

Result<const Table*> Database::FindTable(const std::string& relation_name) const {
  auto it = tables_.find(relation_name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", relation_name, "' not in database"));
  }
  return &it->second;
}

Result<Table*> Database::FindMutableTable(const std::string& relation_name) {
  auto it = tables_.find(relation_name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", relation_name, "' not in database"));
  }
  return &it->second;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.size();
  return n;
}

DatabaseSchema Database::Schema() const {
  DatabaseSchema schema;
  for (const auto& [name, table] : tables_) {
    // Names are unique by construction, so AddRelation cannot fail.
    (void)schema.AddRelation(table.schema());
  }
  return schema;
}

}  // namespace beas
