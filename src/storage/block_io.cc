#include "storage/block_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "storage/codec.h"

namespace beas {

namespace {

constexpr char kMagic[8] = {'B', 'E', 'A', 'S', 'B', 'L', 'K', '1'};
// footer: u64 dir_off | u64 dir_len | u32 dir_crc | u32 block_bytes | magic
constexpr size_t kFooterBytes = 8 + 8 + 4 + 4 + 8;

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status PReadExact(int fd, uint64_t off, size_t n, std::string* out) {
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, &(*out)[done], n - done, static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("pread failed: ", std::strerror(errno)));
    }
    if (r == 0) {
      return Status::DataLoss(
          StrCat("unexpected end of file at offset ", off + done, " (wanted ", n, " bytes)"));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PWriteExact(int fd, uint64_t off, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, data + done, n - done, static_cast<off_t>(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("pwrite failed: ", std::strerror(errno)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  const auto& table = CrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<BlockFile>> BlockFile::Create(const std::string& path,
                                                     uint32_t block_bytes) {
  if (block_bytes == 0) {
    return Status::InvalidArgument("block_bytes must be positive");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrCat("cannot create block file '", path, "': ", std::strerror(errno)));
  }
  auto file = std::unique_ptr<BlockFile>(new BlockFile());
  file->fd_ = fd;
  file->path_ = path;
  file->block_bytes_ = block_bytes;
  return file;
}

Result<std::unique_ptr<BlockFile>> BlockFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound(
        StrCat("cannot open block file '", path, "': ", std::strerror(errno)));
  }
  auto file = std::unique_ptr<BlockFile>(new BlockFile());
  file->fd_ = fd;
  file->path_ = path;

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < static_cast<off_t>(kFooterBytes)) {
    return Status::DataLoss(StrCat("block file '", path, "' too short for a footer"));
  }
  std::string footer;
  BEAS_RETURN_IF_ERROR(
      PReadExact(fd, static_cast<uint64_t>(size) - kFooterBytes, kFooterBytes, &footer));
  if (std::memcmp(footer.data() + kFooterBytes - sizeof(kMagic), kMagic,
                  sizeof(kMagic)) != 0) {
    return Status::DataLoss(StrCat("block file '", path, "': bad magic in footer"));
  }
  ByteReader fr(footer);
  BEAS_ASSIGN_OR_RETURN(uint64_t dir_off, fr.ReadU64());
  BEAS_ASSIGN_OR_RETURN(uint64_t dir_len, fr.ReadU64());
  BEAS_ASSIGN_OR_RETURN(uint32_t dir_crc, fr.ReadU32());
  BEAS_ASSIGN_OR_RETURN(uint32_t block_bytes, fr.ReadU32());
  if (block_bytes == 0 || dir_off + dir_len + kFooterBytes != static_cast<uint64_t>(size)) {
    return Status::DataLoss(StrCat("block file '", path, "': inconsistent footer"));
  }
  file->block_bytes_ = block_bytes;

  std::string dir;
  BEAS_RETURN_IF_ERROR(PReadExact(fd, dir_off, dir_len, &dir));
  if (Crc32(dir) != dir_crc) {
    return Status::DataLoss(StrCat("block file '", path, "': directory checksum mismatch"));
  }
  ByteReader dr(dir);
  BEAS_ASSIGN_OR_RETURN(file->data_len_, dr.ReadU64());
  BEAS_ASSIGN_OR_RETURN(uint32_t n_blocks, dr.ReadU32());
  if (file->data_len_ != dir_off || n_blocks != file->block_count()) {
    return Status::DataLoss(StrCat("block file '", path, "': inconsistent directory"));
  }
  file->crcs_.reserve(n_blocks);
  for (uint32_t i = 0; i < n_blocks; ++i) {
    BEAS_ASSIGN_OR_RETURN(uint32_t crc, dr.ReadU32());
    file->crcs_.push_back(crc);
  }
  BEAS_ASSIGN_OR_RETURN(uint64_t payload_len, dr.ReadU64());
  if (dr.remaining() != payload_len) {
    return Status::DataLoss(StrCat("block file '", path, "': inconsistent directory"));
  }
  file->dir_payload_.assign(dir, dir.size() - payload_len, payload_len);
  file->file_bytes_ = static_cast<uint64_t>(size);

  // Load the partial tail block so future appends can extend it.
  uint64_t tail_len = file->data_len_ % file->block_bytes_;
  if (tail_len > 0) {
    BEAS_RETURN_IF_ERROR(
        PReadExact(fd, file->data_len_ - tail_len, tail_len, &file->tail_));
  }
  return file;
}

Result<uint64_t> BlockFile::Append(const std::string& record) {
  uint64_t offset = data_len_;
  BEAS_RETURN_IF_ERROR(PWriteExact(fd_, data_len_, record.data(), record.size()));
  data_len_ += record.size();
  // Update the block checksum table incrementally through the tail buffer.
  size_t pos = 0;
  while (pos < record.size()) {
    size_t room = block_bytes_ - tail_.size();
    size_t take = std::min(room, record.size() - pos);
    bool fresh_block = tail_.empty();
    tail_.append(record, pos, take);
    pos += take;
    uint32_t crc = Crc32(tail_);
    if (fresh_block) {
      crcs_.push_back(crc);
    } else {
      crcs_.back() = crc;
    }
    if (tail_.size() == block_bytes_) tail_.clear();
  }
  return offset;
}

Status BlockFile::Sync(const std::string& dir_payload) {
  std::string dir;
  PutU64(&dir, data_len_);
  PutU32(&dir, static_cast<uint32_t>(crcs_.size()));
  for (uint32_t crc : crcs_) PutU32(&dir, crc);
  PutU64(&dir, dir_payload.size());
  dir += dir_payload;

  std::string footer;
  PutU64(&footer, data_len_);
  PutU64(&footer, dir.size());
  PutU32(&footer, Crc32(dir));
  PutU32(&footer, block_bytes_);
  footer.append(kMagic, sizeof(kMagic));

  BEAS_RETURN_IF_ERROR(PWriteExact(fd_, data_len_, dir.data(), dir.size()));
  BEAS_RETURN_IF_ERROR(
      PWriteExact(fd_, data_len_ + dir.size(), footer.data(), footer.size()));
  file_bytes_ = data_len_ + dir.size() + footer.size();
  // Drop stale bytes of a previous (larger) directory.
  if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
    return Status::Internal(StrCat("ftruncate failed: ", std::strerror(errno)));
  }
  dir_payload_ = dir_payload;
  return Status::OK();
}

Result<std::string> BlockFile::ReadBlockVerified(uint64_t index) const {
  if (index >= block_count()) {
    return Status::InvalidArgument(StrCat("block ", index, " out of range"));
  }
  uint64_t off = index * block_bytes_;
  size_t len = static_cast<size_t>(std::min<uint64_t>(block_bytes_, data_len_ - off));
  std::string block;
  BEAS_RETURN_IF_ERROR(PReadExact(fd_, off, len, &block));
  if (Crc32(block) != crcs_[index]) {
    return Status::DataLoss(
        StrCat("block file '", path_, "': checksum mismatch in block ", index,
               " — the index file is corrupted and must be rebuilt"));
  }
  return block;
}

}  // namespace beas
