// Little-endian binary codec for the disk-backed index tier: fixed-width
// integers, bit-exact doubles, length-prefixed strings, and tagged Values
// and Tuples. Records serialized here are byte-deterministic functions of
// their inputs, which is what lets the block-file backend reproduce the
// in-memory backend's answers bit-for-bit after a round trip.

#ifndef BEAS_STORAGE_CODEC_H_
#define BEAS_STORAGE_CODEC_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {

// --- Encoders: append to *dst -----------------------------------------------

void PutU8(std::string* dst, uint8_t v);
void PutU32(std::string* dst, uint32_t v);
void PutU64(std::string* dst, uint64_t v);
void PutI64(std::string* dst, int64_t v);
/// Doubles are stored as their 8-byte IEEE-754 bit pattern, so +-inf and
/// every resolution value survive the round trip exactly.
void PutF64(std::string* dst, double v);
/// u32 length prefix + raw bytes.
void PutString(std::string* dst, const std::string& s);
/// One tag byte (0 null, 1 int64, 2 double, 3 string) + payload.
void PutValue(std::string* dst, const Value& v);
/// u32 arity + values.
void PutTuple(std::string* dst, const Tuple& t);

// --- Decoder ----------------------------------------------------------------

/// \brief Sequential reader over an encoded byte range.
///
/// Every Read* validates the remaining length first and returns DataLoss
/// on truncation or an invalid tag, so a corrupted or short record decodes
/// into a clean Status instead of undefined behavior.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  Result<Tuple> ReadTuple();

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace beas

#endif  // BEAS_STORAGE_CODEC_H_
