#include "storage/codec.h"

#include <cstring>

#include "common/string_util.h"

namespace beas {

namespace {

// Value tags; part of the on-disk format, do not renumber.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

}  // namespace

void PutU8(std::string* dst, uint8_t v) { dst->push_back(static_cast<char>(v)); }

void PutU32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutI64(std::string* dst, int64_t v) { PutU64(dst, static_cast<uint64_t>(v)); }

void PutF64(std::string* dst, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(dst, bits);
}

void PutString(std::string* dst, const std::string& s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

void PutValue(std::string* dst, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(dst, kTagNull);
      return;
    case DataType::kInt64:
      PutU8(dst, kTagInt64);
      PutI64(dst, v.as_int64());
      return;
    case DataType::kDouble:
      PutU8(dst, kTagDouble);
      PutF64(dst, v.as_double());
      return;
    case DataType::kString:
      PutU8(dst, kTagString);
      PutString(dst, v.as_string());
      return;
  }
}

void PutTuple(std::string* dst, const Tuple& t) {
  PutU32(dst, static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(dst, v);
}

Status ByteReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::DataLoss(
        StrCat("truncated record: need ", n, " bytes at offset ", pos_, ", have ",
               size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::ReadU8() {
  BEAS_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadU32() {
  BEAS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  BEAS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  BEAS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadF64() {
  BEAS_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  BEAS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  BEAS_RETURN_IF_ERROR(Need(len));
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Result<Value> ByteReader::ReadValue() {
  BEAS_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (tag) {
    case kTagNull:
      return Value();
    case kTagInt64: {
      BEAS_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case kTagDouble: {
      BEAS_ASSIGN_OR_RETURN(double v, ReadF64());
      return Value(v);
    }
    case kTagString: {
      BEAS_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    default:
      return Status::DataLoss(StrCat("invalid value tag ", tag));
  }
}

Result<Tuple> ByteReader::ReadTuple() {
  BEAS_ASSIGN_OR_RETURN(uint32_t arity, ReadU32());
  Tuple t;
  t.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    BEAS_ASSIGN_OR_RETURN(Value v, ReadValue());
    t.push_back(std::move(v));
  }
  return t;
}

}  // namespace beas
