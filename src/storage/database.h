// Database: a catalog of named tables (an instance D of a schema R).

#ifndef BEAS_STORAGE_DATABASE_H_
#define BEAS_STORAGE_DATABASE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "storage/table.h"
#include "types/schema.h"

namespace beas {

/// \brief An instance D of a database schema R: one Table per relation.
class Database {
 public:
  Database() = default;

  /// Adds a table; fails on duplicate relation names.
  Status AddTable(Table table);

  /// Looks up the table for \p relation_name.
  Result<const Table*> FindTable(const std::string& relation_name) const;

  /// Mutable lookup (for loaders and incremental maintenance).
  Result<Table*> FindMutableTable(const std::string& relation_name);

  /// |D|: the total number of tuples across all relations, the quantity
  /// the resource ratio alpha multiplies (paper Section 1).
  size_t TotalTuples() const;

  /// The database schema induced by the stored tables.
  DatabaseSchema Schema() const;

  const std::map<std::string, Table>& tables() const { return tables_; }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace beas

#endif  // BEAS_STORAGE_DATABASE_H_
