#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace beas {

namespace {

std::string EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Splits one CSV record honoring quotes. Assumes records do not span lines.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        cur += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseCell(const std::string& cell, DataType type) {
  if (cell == "NULL") return Value();
  switch (type) {
    case DataType::kInt64: {
      try {
        return Value(static_cast<int64_t>(std::stoll(cell)));
      } catch (...) {
        return Status::InvalidArgument(StrCat("bad int64 cell '", cell, "'"));
      }
    }
    case DataType::kDouble: {
      try {
        return Value(std::stod(cell));
      } catch (...) {
        return Status::InvalidArgument(StrCat("bad double cell '", cell, "'"));
      }
    }
    case DataType::kString:
      return Value(cell);
    case DataType::kNull:
      return Value();
  }
  return Status::InvalidArgument("unknown data type");
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument(StrCat("cannot open '", path, "' for writing"));
  out << Join(table.schema().AttributeNames(), ",") << "\n";
  for (const auto& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << EscapeCsv(row[i].ToString());
    }
    out << "\n";
  }
  return Status::OK();
}

Result<Table> ReadCsv(const RelationSchema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
  std::string line;
  if (!std::getline(in, line)) return Status::InvalidArgument("empty CSV file");
  std::vector<std::string> header = SplitCsvLine(line);
  // Map schema attribute -> column index in the file.
  std::vector<size_t> col_of_attr(schema.arity());
  for (size_t a = 0; a < schema.arity(); ++a) {
    bool found = false;
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == schema.attribute(a).name) {
        col_of_attr[a] = c;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("CSV missing column '", schema.attribute(a).name, "'"));
    }
  }
  Table table(schema);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    Tuple t(schema.arity());
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (col_of_attr[a] >= cells.size()) {
        return Status::InvalidArgument("CSV row with too few cells");
      }
      BEAS_ASSIGN_OR_RETURN(t[a], ParseCell(cells[col_of_attr[a]], schema.attribute(a).type));
    }
    table.AppendUnchecked(std::move(t));
  }
  return table;
}

}  // namespace beas
