// In-memory table: a bag of tuples with a RelationSchema.

#ifndef BEAS_STORAGE_TABLE_H_
#define BEAS_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace beas {

/// \brief A bag (multiset) of tuples under a fixed schema.
///
/// Base relations and intermediate results are both Tables. RA set
/// semantics (paper Section 3.1) is applied by the engine via Distinct().
class Table {
 public:
  Table() = default;
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Appends a tuple; fails if the arity does not match the schema.
  Status Append(Tuple t);

  /// Appends without arity checking (hot path for generators/engine).
  void AppendUnchecked(Tuple t) { rows_.push_back(std::move(t)); }

  /// Reserves capacity for \p n rows.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Replaces the schema (same arity required): used by offline passes
  /// that retune attribute distance functions after data generation.
  Status SetSchema(RelationSchema schema);

  /// Removes duplicate rows (set semantics), preserving first occurrence.
  void Distinct();

  /// Sorts rows lexicographically (for deterministic output and tests).
  void SortRows();

  /// True iff \p t occurs in the table.
  bool Contains(const Tuple& t) const;

  /// Renders up to \p max_rows rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace beas

#endif  // BEAS_STORAGE_TABLE_H_
