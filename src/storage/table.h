// In-memory table: a bag of tuples with a RelationSchema.

#ifndef BEAS_STORAGE_TABLE_H_
#define BEAS_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/column_chunk.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace beas {

/// \brief A bag (multiset) of tuples under a fixed schema.
///
/// Base relations and intermediate results are both Tables. RA set
/// semantics (paper Section 3.1) is applied by the engine via Distinct().
class Table {
 public:
  Table() = default;
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Appends a tuple; fails if the arity does not match the schema.
  Status Append(Tuple t);

  /// Appends without arity checking (hot path for generators/engine).
  void AppendUnchecked(Tuple t) { rows_.push_back(std::move(t)); }

  /// Reserves capacity for \p n rows.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Replaces the schema (same arity required): used by offline passes
  /// that retune attribute distance functions after data generation.
  Status SetSchema(RelationSchema schema);

  /// Removes duplicate rows (set semantics), preserving first occurrence.
  void Distinct();

  /// Sorts rows lexicographically (for deterministic output and tests).
  void SortRows();

  /// True iff \p t occurs in the table.
  bool Contains(const Tuple& t) const;

  // --- Chunked scan/materialize boundary; see docs/ARCHITECTURE.md.
  // Query operators currently filter over windows + selection vectors
  // without transposing (Value copies outweigh the benefit for one-shot
  // reads); these APIs are the batch hand-off contract for consumers
  // that need a transferable unit (parallel fetch, chunked generation),
  // with their invariants pinned by the storage/types contract tests. ---

  /// Fills \p batch with up to `batch->chunk.capacity()` rows starting at
  /// row \p start, transposing them into the batch's columns and marking
  /// all of them live (SelectAll). The batch must have been Reset against
  /// this table's schema (same arity). Returns the number of rows
  /// transferred (0 iff \p start >= size()); scan loops advance by it:
  ///
  ///   RowBatch batch;
  ///   batch.Reset(t.schema());
  ///   for (size_t pos = 0, n; (n = t.FillBatch(pos, &batch)) > 0; pos += n)
  ///     ...consume batch...
  size_t FillBatch(size_t start, RowBatch* batch) const;

  /// Appends the live (selected) rows of \p batch, in selection order.
  /// The batch's arity must equal this table's schema arity; rows are
  /// copied out (the batch keeps ownership of its chunk).
  void AppendBatch(const RowBatch& batch);

  /// Like AppendBatch for a bare chunk + selection: appends the rows of
  /// \p chunk whose indices appear in \p sel, in selection order. The
  /// chunk's column count must equal this table's schema arity.
  void AppendChunk(const ColumnChunk& chunk, const SelectionVector& sel);

  /// Renders up to \p max_rows rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace beas

#endif  // BEAS_STORAGE_TABLE_H_
