#include "ra/fingerprint.h"

#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"

namespace beas {

namespace {

// Exact, locale-independent rendering of a double (hex float): relaxation
// slack and distance scales enter the fingerprint bit-for-bit, so queries
// that differ only in a bound never share an entry.
std::string ExactDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

void AppendAttrDef(const AttributeDef& attr, std::string* out) {
  *out += attr.name;
  *out += ':';
  *out += DataTypeToString(attr.type);
  *out += ':';
  *out += attr.distance.kind == DistanceKind::kTrivial ? "triv" : "num";
  *out += ':';
  *out += ExactDouble(attr.distance.scale);
}

// Output schema rendered at nodes that introduce names (relation leaves,
// projections, group-bys); the other node kinds derive their schemas from
// the children deterministically.
void AppendSchema(const RelationSchema& schema, std::string* out) {
  *out += '{';
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) *out += ',';
    AppendAttrDef(schema.attribute(i), out);
  }
  *out += '}';
}

void AppendOperand(const Operand& op, std::string* out) {
  if (op.is_attr) {
    *out += "a(";
    *out += op.attr;
    *out += ')';
  } else {
    // The constant value is abstracted: plans are structurally identical
    // across constant renamings (the tableau's conflict pattern, which is
    // value-dependent, is re-checked at cache-instantiation time).
    *out += '?';
  }
}

void AppendPredicate(const Predicate& pred, std::string* out) {
  for (size_t i = 0; i < pred.size(); ++i) {
    if (i > 0) *out += '&';
    const Comparison& cmp = pred[i];
    AppendOperand(cmp.lhs, out);
    *out += CompareOpToString(cmp.op);
    AppendOperand(cmp.rhs, out);
    *out += '@';
    *out += ExactDouble(cmp.slack);
  }
}

void Canonicalize(const QueryPtr& q, std::string* out) {
  switch (q->kind()) {
    case QueryNode::Kind::kRelation:
      *out += "R(";
      *out += q->relation();
      *out += ',';
      *out += q->alias();
      *out += ')';
      AppendSchema(q->output_schema(), out);
      return;
    case QueryNode::Kind::kSelect:
      *out += "S[";
      AppendPredicate(q->predicate(), out);
      *out += "](";
      Canonicalize(q->child(), out);
      *out += ')';
      return;
    case QueryNode::Kind::kProject:
      *out += "P[";
      *out += Join(q->project_attrs(), ",");
      *out += q->distinct() ? "|d" : "|b";
      *out += ']';
      AppendSchema(q->output_schema(), out);
      *out += '(';
      Canonicalize(q->child(), out);
      *out += ')';
      return;
    case QueryNode::Kind::kProduct:
      *out += "X(";
      Canonicalize(q->left(), out);
      *out += ',';
      Canonicalize(q->right(), out);
      *out += ')';
      return;
    case QueryNode::Kind::kUnion:
      *out += "U(";
      Canonicalize(q->left(), out);
      *out += ',';
      Canonicalize(q->right(), out);
      *out += ')';
      return;
    case QueryNode::Kind::kDifference:
      *out += "D(";
      Canonicalize(q->left(), out);
      *out += ',';
      Canonicalize(q->right(), out);
      *out += ')';
      return;
    case QueryNode::Kind::kGroupBy:
      *out += "G[";
      *out += Join(q->group_attrs(), ",");
      *out += '|';
      *out += AggFuncToString(q->agg());
      *out += '(';
      *out += q->agg_attr();
      *out += ")]";
      AppendSchema(q->output_schema(), out);
      *out += '(';
      Canonicalize(q->child(), out);
      *out += ')';
      return;
  }
  *out += "<?>";
}

}  // namespace

QueryFingerprint FingerprintQuery(const QueryPtr& q) {
  QueryFingerprint fp;
  fp.canonical.reserve(256);
  Canonicalize(q, &fp.canonical);
  fp.hash = Fnv1a64(fp.canonical);
  return fp;
}

}  // namespace beas
