// Structural analysis of RA_aggr queries used by the BEAS planner:
// query classification, SPC normal form (the tableau's raw material,
// paper Section 5), maximal SPC sub-queries and the maximal induced
// query Q-hat (Section 6).

#ifndef BEAS_RA_ANALYSIS_H_
#define BEAS_RA_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "ra/ast.h"

namespace beas {

/// Fragments of RA_aggr the planner distinguishes (paper Sections 5-7).
enum class QueryClass {
  kSpc,     ///< selection / projection / product only
  kRa,      ///< adds union and/or set difference
  kAggSpc,  ///< gpBy over an SPC query
  kAggRa,   ///< gpBy over an RA query
};

/// Returns "SPC" / "RA" / "agg(SPC)" / "agg(RA)".
const char* QueryClassToString(QueryClass c);

/// Classifies \p q.
QueryClass ClassifyQuery(const QueryPtr& q);

/// True iff \p q uses only sigma, pi and x over base relations.
bool IsSpc(const QueryPtr& q);

/// True iff the query root is a gpBy.
bool IsAggregate(const QueryPtr& q);

/// A relation atom of an SPC query: one aliased occurrence of a relation.
struct SpcAtom {
  std::string relation;
  std::string alias;
};

/// \brief Flattened ("normal form") view of an SPC query.
///
/// All comparisons are expressed over *origin* attributes (qualified
/// "alias.column" names of the relation atoms), with projection renames
/// resolved away. This is the input to the tableau construction.
struct SpcNormalForm {
  std::vector<SpcAtom> atoms;
  Predicate comparisons;
  /// Origin attribute ("alias.column") of each output column, in order.
  std::vector<std::string> output_attrs;
  /// Output column names as they appear in the query's output schema.
  std::vector<std::string> output_names;
  bool distinct = true;
};

/// Normalizes an SPC query; fails if \p q is not SPC.
Result<SpcNormalForm> NormalizeSpc(const QueryPtr& q);

/// The maximal SPC sub-queries of \p q: sub-trees that are SPC and not
/// contained in a larger SPC sub-tree (paper Section 6). For an SPC query
/// this is {q} itself.
std::vector<QueryPtr> MaxSpcSubqueries(const QueryPtr& q);

/// The maximal induced query Q-hat of \p q: drops the negated side of
/// every set difference, so Q-hat(D) contains Q(D) for every D
/// (paper Section 6).
Result<QueryPtr> MaximalInduced(const QueryPtr& q);

/// Maps every output column name of \p q to its origin "alias.column"
/// attribute, when one exists (aggregate columns have none).
std::map<std::string, std::string> OutputOrigins(const QueryPtr& q);

/// Collects the aliases of all base-relation leaves under \p q.
std::vector<SpcAtom> CollectAtoms(const QueryPtr& q);

/// The distinct base relation names \p q reads, sorted. This is the
/// invalidation key of the plan cache: a maintenance step on relation R
/// can only stale plans whose query touches R (plus the |D| shift every
/// mutation causes, which instantiation re-checks against the budget).
std::vector<std::string> QueryRelations(const QueryPtr& q);

/// Collects every comparison from all Select nodes under \p q.
Predicate CollectComparisons(const QueryPtr& q);

}  // namespace beas

#endif  // BEAS_RA_ANALYSIS_H_
