#include "ra/analysis.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace beas {

const char* QueryClassToString(QueryClass c) {
  switch (c) {
    case QueryClass::kSpc:
      return "SPC";
    case QueryClass::kRa:
      return "RA";
    case QueryClass::kAggSpc:
      return "agg(SPC)";
    case QueryClass::kAggRa:
      return "agg(RA)";
  }
  return "?";
}

bool IsSpc(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryNode::Kind::kRelation:
      return true;
    case QueryNode::Kind::kSelect:
    case QueryNode::Kind::kProject:
      return IsSpc(q->child());
    case QueryNode::Kind::kProduct:
      return IsSpc(q->left()) && IsSpc(q->right());
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference:
    case QueryNode::Kind::kGroupBy:
      return false;
  }
  return false;
}

bool IsAggregate(const QueryPtr& q) { return q->kind() == QueryNode::Kind::kGroupBy; }

QueryClass ClassifyQuery(const QueryPtr& q) {
  if (q->kind() == QueryNode::Kind::kGroupBy) {
    return IsSpc(q->child()) ? QueryClass::kAggSpc : QueryClass::kAggRa;
  }
  return IsSpc(q) ? QueryClass::kSpc : QueryClass::kRa;
}

namespace {

// Normalization walk state: atoms and comparisons accumulate; `visible`
// maps the current node's output column names to origin attributes.
struct NormState {
  std::vector<SpcAtom> atoms;
  Predicate comparisons;
  std::vector<std::string> visible_names;    // current output column names
  std::vector<std::string> visible_origins;  // parallel origin attrs
};

Result<std::string> OriginOf(const NormState& st, const std::string& name) {
  for (size_t i = 0; i < st.visible_names.size(); ++i) {
    if (st.visible_names[i] == name) return st.visible_origins[i];
  }
  return Status::NotFound(StrCat("attribute '", name, "' has no origin"));
}

Result<NormState> Walk(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryNode::Kind::kRelation: {
      NormState st;
      st.atoms.push_back({q->relation(), q->alias()});
      for (const auto& a : q->output_schema().attributes()) {
        st.visible_names.push_back(a.name);
        st.visible_origins.push_back(a.name);
      }
      return st;
    }
    case QueryNode::Kind::kSelect: {
      BEAS_ASSIGN_OR_RETURN(NormState st, Walk(q->child()));
      for (Comparison cmp : q->predicate()) {
        BEAS_ASSIGN_OR_RETURN(cmp.lhs.attr, OriginOf(st, cmp.lhs.attr));
        if (cmp.rhs.is_attr) {
          BEAS_ASSIGN_OR_RETURN(cmp.rhs.attr, OriginOf(st, cmp.rhs.attr));
        }
        st.comparisons.push_back(std::move(cmp));
      }
      return st;
    }
    case QueryNode::Kind::kProject: {
      BEAS_ASSIGN_OR_RETURN(NormState st, Walk(q->child()));
      std::vector<std::string> names, origins;
      const auto& out = q->output_schema();
      for (size_t i = 0; i < q->project_attrs().size(); ++i) {
        BEAS_ASSIGN_OR_RETURN(std::string origin, OriginOf(st, q->project_attrs()[i]));
        names.push_back(out.attribute(i).name);
        origins.push_back(std::move(origin));
      }
      st.visible_names = std::move(names);
      st.visible_origins = std::move(origins);
      return st;
    }
    case QueryNode::Kind::kProduct: {
      BEAS_ASSIGN_OR_RETURN(NormState l, Walk(q->left()));
      BEAS_ASSIGN_OR_RETURN(NormState r, Walk(q->right()));
      for (auto& a : r.atoms) l.atoms.push_back(std::move(a));
      for (auto& c : r.comparisons) l.comparisons.push_back(std::move(c));
      for (size_t i = 0; i < r.visible_names.size(); ++i) {
        l.visible_names.push_back(std::move(r.visible_names[i]));
        l.visible_origins.push_back(std::move(r.visible_origins[i]));
      }
      return l;
    }
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference:
    case QueryNode::Kind::kGroupBy:
      return Status::InvalidArgument("NormalizeSpc: query is not SPC");
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<SpcNormalForm> NormalizeSpc(const QueryPtr& q) {
  if (!IsSpc(q)) return Status::InvalidArgument("NormalizeSpc: query is not SPC");
  BEAS_ASSIGN_OR_RETURN(NormState st, Walk(q));
  SpcNormalForm nf;
  nf.atoms = std::move(st.atoms);
  nf.comparisons = std::move(st.comparisons);
  nf.output_names = st.visible_names;
  nf.output_attrs = st.visible_origins;
  // Outermost distinct flag: a bag projection at the root means bag output.
  nf.distinct = !(q->kind() == QueryNode::Kind::kProject && !q->distinct());
  return nf;
}

std::vector<QueryPtr> MaxSpcSubqueries(const QueryPtr& q) {
  if (IsSpc(q)) return {q};
  std::vector<QueryPtr> out;
  auto add = [&out](std::vector<QueryPtr> sub) {
    for (auto& s : sub) out.push_back(std::move(s));
  };
  switch (q->kind()) {
    case QueryNode::Kind::kSelect:
    case QueryNode::Kind::kProject:
    case QueryNode::Kind::kGroupBy:
      add(MaxSpcSubqueries(q->child()));
      break;
    case QueryNode::Kind::kProduct:
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference:
      add(MaxSpcSubqueries(q->left()));
      add(MaxSpcSubqueries(q->right()));
      break;
    case QueryNode::Kind::kRelation:
      out.push_back(q);
      break;
  }
  return out;
}

Result<QueryPtr> MaximalInduced(const QueryPtr& q) {
  switch (q->kind()) {
    case QueryNode::Kind::kRelation:
      return q;
    case QueryNode::Kind::kSelect: {
      BEAS_ASSIGN_OR_RETURN(QueryPtr child, MaximalInduced(q->child()));
      if (child == q->child()) return q;
      return QueryNode::Select(std::move(child), q->predicate());
    }
    case QueryNode::Kind::kProject: {
      BEAS_ASSIGN_OR_RETURN(QueryPtr child, MaximalInduced(q->child()));
      if (child == q->child()) return q;
      std::vector<std::string> out_names;
      for (const auto& a : q->output_schema().attributes()) out_names.push_back(a.name);
      return QueryNode::Project(std::move(child), q->project_attrs(), q->distinct(),
                                std::move(out_names));
    }
    case QueryNode::Kind::kProduct: {
      BEAS_ASSIGN_OR_RETURN(QueryPtr l, MaximalInduced(q->left()));
      BEAS_ASSIGN_OR_RETURN(QueryPtr r, MaximalInduced(q->right()));
      if (l == q->left() && r == q->right()) return q;
      return QueryNode::Product(std::move(l), std::move(r));
    }
    case QueryNode::Kind::kUnion: {
      BEAS_ASSIGN_OR_RETURN(QueryPtr l, MaximalInduced(q->left()));
      BEAS_ASSIGN_OR_RETURN(QueryPtr r, MaximalInduced(q->right()));
      if (l == q->left() && r == q->right()) return q;
      return QueryNode::Union(std::move(l), std::move(r));
    }
    case QueryNode::Kind::kDifference:
      // Q1 - Q2 expands to Q1-hat: drop the negated part.
      return MaximalInduced(q->left());
    case QueryNode::Kind::kGroupBy: {
      BEAS_ASSIGN_OR_RETURN(QueryPtr child, MaximalInduced(q->child()));
      if (child == q->child()) return q;
      const auto& out = q->output_schema();
      return QueryNode::GroupBy(std::move(child), q->group_attrs(), q->agg(), q->agg_attr(),
                                out.attribute(out.arity() - 1).name);
    }
  }
  return Status::Internal("unreachable");
}

namespace {

void OutputOriginsWalk(const QueryPtr& q, std::map<std::string, std::string>* out) {
  switch (q->kind()) {
    case QueryNode::Kind::kRelation: {
      for (const auto& a : q->output_schema().attributes()) (*out)[a.name] = a.name;
      return;
    }
    case QueryNode::Kind::kSelect:
      OutputOriginsWalk(q->child(), out);
      return;
    case QueryNode::Kind::kProject: {
      std::map<std::string, std::string> inner;
      OutputOriginsWalk(q->child(), &inner);
      std::map<std::string, std::string> mapped;
      const auto& schema = q->output_schema();
      for (size_t i = 0; i < q->project_attrs().size(); ++i) {
        auto it = inner.find(q->project_attrs()[i]);
        if (it != inner.end()) mapped[schema.attribute(i).name] = it->second;
      }
      *out = std::move(mapped);
      return;
    }
    case QueryNode::Kind::kProduct: {
      OutputOriginsWalk(q->left(), out);
      std::map<std::string, std::string> right;
      OutputOriginsWalk(q->right(), &right);
      out->merge(right);
      return;
    }
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference:
      // Take origins from the left branch (schema names come from it).
      OutputOriginsWalk(q->left(), out);
      return;
    case QueryNode::Kind::kGroupBy: {
      std::map<std::string, std::string> inner;
      OutputOriginsWalk(q->child(), &inner);
      std::map<std::string, std::string> mapped;
      for (const auto& g : q->group_attrs()) {
        auto it = inner.find(g);
        if (it != inner.end()) mapped[g] = it->second;
      }
      *out = std::move(mapped);
      return;
    }
  }
}

}  // namespace

std::map<std::string, std::string> OutputOrigins(const QueryPtr& q) {
  std::map<std::string, std::string> out;
  OutputOriginsWalk(q, &out);
  return out;
}

std::vector<SpcAtom> CollectAtoms(const QueryPtr& q) {
  std::vector<SpcAtom> atoms;
  switch (q->kind()) {
    case QueryNode::Kind::kRelation:
      atoms.push_back({q->relation(), q->alias()});
      break;
    case QueryNode::Kind::kSelect:
    case QueryNode::Kind::kProject:
    case QueryNode::Kind::kGroupBy: {
      atoms = CollectAtoms(q->child());
      break;
    }
    case QueryNode::Kind::kProduct:
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference: {
      atoms = CollectAtoms(q->left());
      auto right = CollectAtoms(q->right());
      for (auto& a : right) atoms.push_back(std::move(a));
      break;
    }
  }
  return atoms;
}

Predicate CollectComparisons(const QueryPtr& q) {
  Predicate preds;
  switch (q->kind()) {
    case QueryNode::Kind::kRelation:
      break;
    case QueryNode::Kind::kSelect: {
      preds = CollectComparisons(q->child());
      for (const auto& c : q->predicate()) preds.push_back(c);
      break;
    }
    case QueryNode::Kind::kProject:
    case QueryNode::Kind::kGroupBy:
      preds = CollectComparisons(q->child());
      break;
    case QueryNode::Kind::kProduct:
    case QueryNode::Kind::kUnion:
    case QueryNode::Kind::kDifference: {
      preds = CollectComparisons(q->left());
      auto right = CollectComparisons(q->right());
      for (auto& c : right) preds.push_back(std::move(c));
      break;
    }
  }
  return preds;
}

std::vector<std::string> QueryRelations(const QueryPtr& q) {
  std::vector<std::string> out;
  for (const SpcAtom& atom : CollectAtoms(q)) out.push_back(atom.relation);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace beas
