#include "ra/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "common/string_util.h"

namespace beas {

namespace {

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (lower-cased keyword check), symbol, string body
  double number = 0;
  bool is_integer = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= in_.size()) break;
      char c = in_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < in_.size() &&
                  std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
        BEAS_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (c == '\'') {
        BEAS_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        BEAS_ASSIGN_OR_RETURN(Token t, LexSymbol());
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{});  // kEnd
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.kind = TokKind::kIdent;
    t.text = in_.substr(start, pos_ - start);
    return t;
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    if (in_[pos_] == '-') ++pos_;
    bool has_dot = false;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '.')) {
      if (in_[pos_] == '.') {
        if (has_dot) return Status::InvalidArgument("malformed number");
        has_dot = true;
      }
      ++pos_;
    }
    Token t;
    t.kind = TokKind::kNumber;
    t.text = in_.substr(start, pos_ - start);
    try {
      t.number = std::stod(t.text);
    } catch (...) {
      return Status::InvalidArgument(StrCat("malformed number '", t.text, "'"));
    }
    t.is_integer = !has_dot;
    return t;
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < in_.size()) {
      if (in_[pos_] == '\'') {
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '\'') {
          body += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        Token t;
        t.kind = TokKind::kString;
        t.text = std::move(body);
        return t;
      }
      body += in_[pos_++];
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> LexSymbol() {
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    for (const char* s : kTwoChar) {
      if (in_.compare(pos_, 2, s) == 0) {
        Token t;
        t.kind = TokKind::kSymbol;
        t.text = (std::string(s) == "!=") ? "<>" : s;
        pos_ += 2;
        return t;
      }
    }
    char c = in_[pos_];
    if (std::string("=<>,().*").find(c) == std::string::npos) {
      return Status::InvalidArgument(StrCat("unexpected character '", std::string(1, c), "'"));
    }
    ++pos_;
    Token t;
    t.kind = TokKind::kSymbol;
    t.text = std::string(1, c);
    return t;
  }

  const std::string& in_;
  size_t pos_ = 0;
};

struct SelectItem {
  bool is_aggregate = false;
  AggFunc agg = AggFunc::kCount;
  std::string attr;      // raw attribute text (possibly unqualified)
  std::string out_name;  // AS name, may be empty
};

class Parser {
 public:
  Parser(const DatabaseSchema& db_schema, std::vector<Token> tokens)
      : db_(db_schema), toks_(std::move(tokens)) {}

  Result<QueryPtr> ParseQuery() {
    BEAS_ASSIGN_OR_RETURN(QueryPtr q, ParseCore());
    while (true) {
      if (AcceptKeyword("union")) {
        BEAS_ASSIGN_OR_RETURN(QueryPtr rhs, ParseCore());
        BEAS_ASSIGN_OR_RETURN(q, QueryNode::Union(std::move(q), std::move(rhs)));
      } else if (AcceptKeyword("except")) {
        BEAS_ASSIGN_OR_RETURN(QueryPtr rhs, ParseCore());
        BEAS_ASSIGN_OR_RETURN(q, QueryNode::Difference(std::move(q), std::move(rhs)));
      } else {
        break;
      }
    }
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument(StrCat("trailing input at '", Peek().text, "'"));
    }
    return q;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  const Token& Next() { return toks_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && ToLower(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(StrCat("expected '", kw, "', got '", Peek().text, "'"));
    }
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument(StrCat("expected '", sym, "', got '", Peek().text, "'"));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(StrCat("expected identifier, got '", Peek().text, "'"));
    }
    return Next().text;
  }

  static std::optional<AggFunc> AggFromName(const std::string& name) {
    std::string n = ToLower(name);
    if (n == "min") return AggFunc::kMin;
    if (n == "max") return AggFunc::kMax;
    if (n == "sum") return AggFunc::kSum;
    if (n == "count") return AggFunc::kCount;
    if (n == "avg") return AggFunc::kAvg;
    return std::nullopt;
  }

  // Parses "alias.column" or "column".
  Result<std::string> ParseAttrRef() {
    BEAS_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (AcceptSymbol(".")) {
      BEAS_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      return StrCat(first, ".", col);
    }
    return first;
  }

  // Resolves a possibly-unqualified attribute against \p schema.
  static Result<std::string> ResolveAttr(const RelationSchema& schema,
                                         const std::string& raw) {
    if (schema.FindAttribute(raw)) return raw;
    // Unqualified: match by suffix ".raw"; must be unique.
    std::string suffix = StrCat(".", raw);
    std::string found;
    for (const auto& a : schema.attributes()) {
      if (a.name.size() > suffix.size() &&
          a.name.compare(a.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        if (!found.empty()) {
          return Status::InvalidArgument(StrCat("ambiguous attribute '", raw, "'"));
        }
        found = a.name;
      }
    }
    if (found.empty()) {
      return Status::NotFound(StrCat("unknown attribute '", raw, "'"));
    }
    return found;
  }

  Result<QueryPtr> ParseCore() {
    BEAS_RETURN_IF_ERROR(ExpectKeyword("select"));
    bool distinct = AcceptKeyword("distinct");

    bool star = false;
    std::vector<SelectItem> items;
    if (AcceptSymbol("*")) {
      star = true;
    } else {
      do {
        BEAS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }

    BEAS_RETURN_IF_ERROR(ExpectKeyword("from"));
    QueryPtr plan;
    do {
      BEAS_ASSIGN_OR_RETURN(std::string rel, ExpectIdent());
      std::string alias = rel;
      if (AcceptKeyword("as")) {
        BEAS_ASSIGN_OR_RETURN(alias, ExpectIdent());
      } else if (Peek().kind == TokKind::kIdent) {
        std::string lower = ToLower(Peek().text);
        if (lower != "where" && lower != "group" && lower != "union" && lower != "except") {
          alias = Next().text;
        }
      }
      BEAS_ASSIGN_OR_RETURN(QueryPtr leaf, QueryNode::Relation(db_, rel, alias));
      if (plan) {
        BEAS_ASSIGN_OR_RETURN(plan, QueryNode::Product(std::move(plan), std::move(leaf)));
      } else {
        plan = std::move(leaf);
      }
    } while (AcceptSymbol(","));

    if (AcceptKeyword("where")) {
      Predicate pred;
      do {
        BEAS_ASSIGN_OR_RETURN(Comparison cmp, ParseComparison(plan->output_schema()));
        pred.push_back(std::move(cmp));
      } while (AcceptKeyword("and"));
      BEAS_ASSIGN_OR_RETURN(plan, QueryNode::Select(std::move(plan), std::move(pred)));
    }

    std::vector<std::string> group_attrs;
    bool has_group_by = false;
    if (AcceptKeyword("group")) {
      BEAS_RETURN_IF_ERROR(ExpectKeyword("by"));
      has_group_by = true;
      do {
        BEAS_ASSIGN_OR_RETURN(std::string raw, ParseAttrRef());
        BEAS_ASSIGN_OR_RETURN(std::string attr, ResolveAttr(plan->output_schema(), raw));
        group_attrs.push_back(std::move(attr));
      } while (AcceptSymbol(","));
    }

    size_t num_aggs = 0;
    for (const auto& it : items) num_aggs += it.is_aggregate ? 1 : 0;

    if (num_aggs > 1) {
      return Status::Unimplemented("at most one aggregate per SELECT is supported");
    }
    if (num_aggs == 1 || has_group_by) {
      if (num_aggs != 1) {
        return Status::InvalidArgument("GROUP BY requires an aggregate select item");
      }
      if (star) return Status::InvalidArgument("SELECT * cannot be combined with aggregates");
      // Non-aggregate items must be exactly the group-by attributes.
      std::vector<std::string> x_attrs;
      std::string agg_attr;
      AggFunc agg = AggFunc::kCount;
      std::string agg_name;
      for (const auto& it : items) {
        if (it.is_aggregate) {
          agg = it.agg;
          BEAS_ASSIGN_OR_RETURN(agg_attr, ResolveAttr(plan->output_schema(), it.attr));
          agg_name = it.out_name;
        } else {
          BEAS_ASSIGN_OR_RETURN(std::string attr, ResolveAttr(plan->output_schema(), it.attr));
          x_attrs.push_back(std::move(attr));
        }
      }
      if (!has_group_by && !x_attrs.empty()) {
        return Status::InvalidArgument("non-aggregate select items require GROUP BY");
      }
      for (const auto& x : x_attrs) {
        bool in_group = false;
        for (const auto& g : group_attrs) in_group |= (g == x);
        if (!in_group) {
          return Status::InvalidArgument(
              StrCat("select item '", x, "' not in GROUP BY"));
        }
      }
      // Q' is the bag projection onto X and V (paper Section 3.2): grouping
      // and aggregation happen over the bag of qualifying tuples. Any
      // occurrence-weight columns ("*.__w", present when querying fetched
      // representative data) ride along so weighted aggregation sees them.
      std::vector<std::string> keep = group_attrs;
      bool v_in_x = false;
      for (const auto& g : group_attrs) v_in_x |= (g == agg_attr);
      if (!v_in_x) keep.push_back(agg_attr);
      for (const auto& attr : plan->output_schema().attributes()) {
        const std::string& name = attr.name;
        if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".__w") == 0 &&
            std::find(keep.begin(), keep.end(), name) == keep.end()) {
          keep.push_back(name);
        }
      }
      BEAS_ASSIGN_OR_RETURN(QueryPtr prime,
                            QueryNode::Project(std::move(plan), keep, /*distinct=*/false));
      return QueryNode::GroupBy(std::move(prime), group_attrs, agg, agg_attr, agg_name);
    }

    if (star) {
      if (distinct) {
        std::vector<std::string> all;
        for (const auto& a : plan->output_schema().attributes()) all.push_back(a.name);
        return QueryNode::Project(std::move(plan), all, /*distinct=*/true);
      }
      return plan;
    }

    std::vector<std::string> attrs;
    std::vector<std::string> out_names;
    bool any_rename = false;
    for (const auto& it : items) {
      BEAS_ASSIGN_OR_RETURN(std::string attr, ResolveAttr(plan->output_schema(), it.attr));
      attrs.push_back(attr);
      out_names.push_back(it.out_name.empty() ? attr : it.out_name);
      any_rename |= !it.out_name.empty();
    }
    // RA queries are evaluated under set semantics (paper Section 3.1), so
    // the projection deduplicates whether or not DISTINCT was written.
    return QueryNode::Project(std::move(plan), std::move(attrs), /*distinct=*/true,
                              any_rename ? std::move(out_names) : std::vector<std::string>{});
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    BEAS_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    auto agg = AggFromName(first);
    if (agg && Peek().kind == TokKind::kSymbol && Peek().text == "(") {
      BEAS_RETURN_IF_ERROR(ExpectSymbol("("));
      item.is_aggregate = true;
      item.agg = *agg;
      BEAS_ASSIGN_OR_RETURN(item.attr, ParseAttrRef());
      BEAS_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      if (AcceptSymbol(".")) {
        BEAS_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        item.attr = StrCat(first, ".", col);
      } else {
        item.attr = first;
      }
    }
    if (AcceptKeyword("as")) {
      BEAS_ASSIGN_OR_RETURN(item.out_name, ExpectIdent());
    }
    return item;
  }

  Result<Comparison> ParseComparison(const RelationSchema& schema) {
    BEAS_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(schema));
    if (Peek().kind != TokKind::kSymbol) {
      return Status::InvalidArgument(StrCat("expected comparison op, got '", Peek().text, "'"));
    }
    std::string sym = Next().text;
    CompareOp op;
    if (sym == "=") {
      op = CompareOp::kEq;
    } else if (sym == "<>") {
      op = CompareOp::kNe;
    } else if (sym == "<") {
      op = CompareOp::kLt;
    } else if (sym == "<=") {
      op = CompareOp::kLe;
    } else if (sym == ">") {
      op = CompareOp::kGt;
    } else if (sym == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument(StrCat("unknown comparison op '", sym, "'"));
    }
    BEAS_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(schema));
    // Normalize const-op-attr to attr-op-const.
    if (!lhs.is_attr && rhs.is_attr) {
      std::swap(lhs, rhs);
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (!lhs.is_attr) {
      return Status::InvalidArgument("comparison must reference at least one attribute");
    }
    Comparison cmp;
    cmp.lhs = std::move(lhs);
    cmp.op = op;
    cmp.rhs = std::move(rhs);
    return cmp;
  }

  Result<Operand> ParseOperand(const RelationSchema& schema) {
    if (Peek().kind == TokKind::kNumber) {
      Token t = Next();
      if (t.is_integer) return Operand::Const(Value(static_cast<int64_t>(t.number)));
      return Operand::Const(Value(t.number));
    }
    if (Peek().kind == TokKind::kString) {
      return Operand::Const(Value(Next().text));
    }
    BEAS_ASSIGN_OR_RETURN(std::string raw, ParseAttrRef());
    BEAS_ASSIGN_OR_RETURN(std::string attr, ResolveAttr(schema, raw));
    return Operand::Attr(std::move(attr));
  }

  const DatabaseSchema& db_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseSql(const DatabaseSchema& db_schema, const std::string& sql) {
  Lexer lexer(sql);
  BEAS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(db_schema, std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace beas
