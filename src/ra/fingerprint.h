// Structural query fingerprints: a canonicalized serialization (and hash)
// of an RA_aggr tree that abstracts constant *values* but keeps everything
// the BEAS planner's decisions can depend on — node kinds, relation names
// and aliases, attribute names with their types and distance specs,
// comparison operators and relaxation slack, projection/grouping shapes.
//
// Two queries with equal fingerprints chase to structurally identical
// plans (same tableau variables, same fetch families, same template
// levels at a given alpha); only the constants bound into probes and
// rewritten predicates differ. This is the key of the plan cache
// (src/beas/plan_cache.h): repeated-workload queries that vary constants
// alone hit the same entry, while queries that differ in any predicate
// shape, distance spec or relaxation bound never share one.

#ifndef BEAS_RA_FINGERPRINT_H_
#define BEAS_RA_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "ra/ast.h"

namespace beas {

/// \brief A structural query fingerprint: hash plus the canonical form.
///
/// The canonical string is kept alongside the hash so that lookups can
/// verify equality exactly — a 64-bit collision degrades to a cache miss,
/// never to reuse of a wrong plan.
struct QueryFingerprint {
  uint64_t hash = 0;
  std::string canonical;

  bool operator==(const QueryFingerprint& other) const {
    return hash == other.hash && canonical == other.canonical;
  }
  bool operator!=(const QueryFingerprint& other) const { return !(*this == other); }
};

/// Computes the fingerprint of \p q. Deterministic: depends only on the
/// tree structure and the bound schemas, never on pointer identity.
QueryFingerprint FingerprintQuery(const QueryPtr& q);

}  // namespace beas

#endif  // BEAS_RA_FINGERPRINT_H_
