#include "ra/ast.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "types/distance.h"

namespace beas {

namespace {

// Positive value smaller than any meaningful distance; the relaxation a
// strict inequality needs at a tie (a < c with a == c).
constexpr double kStrictTieEpsilon = std::numeric_limits<double>::min();

Result<size_t> ResolveAttr(const RelationSchema& schema, const Operand& o) {
  assert(o.is_attr);
  return schema.AttributeIndex(o.attr);
}

Status ValidateComparison(const RelationSchema& schema, const Comparison& cmp) {
  if (!cmp.lhs.is_attr) {
    return Status::InvalidArgument("comparison lhs must be an attribute");
  }
  BEAS_RETURN_IF_ERROR(ResolveAttr(schema, cmp.lhs).status());
  if (cmp.rhs.is_attr) {
    BEAS_RETURN_IF_ERROR(ResolveAttr(schema, cmp.rhs).status());
  }
  return Status::OK();
}

}  // namespace

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string Operand::ToString() const {
  if (is_attr) return attr;
  if (constant.is_string()) return StrCat("'", constant.ToString(), "'");
  return constant.ToString();
}

std::string Comparison::ToString() const {
  std::string s = StrCat(lhs.ToString(), " ", CompareOpToString(op), " ", rhs.ToString());
  if (slack > 0) s += StrCat(" (slack ", FormatDouble(slack, 4), ")");
  return s;
}

double NeededRelaxationResolved(const DistanceSpec& spec, const Value& a, const Value& b,
                                bool attr_attr, CompareOp op) {
  double dist = AttributeDistance(spec, a, b);
  switch (op) {
    case CompareOp::kEq:
      // sigma_{A=c} relaxes to |dis(A,c)| <= r; sigma_{A=B} to <= 2r.
      return attr_attr ? dist / 2.0 : dist;
    case CompareOp::kNe:
      return a == b ? kInfDistance : 0.0;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      bool sat = op == CompareOp::kLt ? (a < b) : (a < b || a == b);
      if (sat) return 0.0;
      if (dist == kInfDistance) return kInfDistance;
      double needed = attr_attr ? dist / 2.0 : dist;
      return needed > 0 ? needed : kStrictTieEpsilon;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      bool sat = op == CompareOp::kGt ? (b < a) : (b < a || a == b);
      if (sat) return 0.0;
      if (dist == kInfDistance) return kInfDistance;
      double needed = attr_attr ? dist / 2.0 : dist;
      return needed > 0 ? needed : kStrictTieEpsilon;
    }
  }
  return kInfDistance;
}

double NeededRelaxation(const RelationSchema& schema, const Tuple& t, const Comparison& cmp) {
  auto lhs_idx = schema.FindAttribute(cmp.lhs.attr);
  assert(lhs_idx.has_value());
  const Value& a = t[*lhs_idx];
  const DistanceSpec& spec = schema.attribute(*lhs_idx).distance;

  if (cmp.rhs.is_attr) {
    auto rhs_idx = schema.FindAttribute(cmp.rhs.attr);
    assert(rhs_idx.has_value());
    return NeededRelaxationResolved(spec, a, t[*rhs_idx], /*attr_attr=*/true, cmp.op);
  }
  return NeededRelaxationResolved(spec, a, cmp.rhs.constant, /*attr_attr=*/false, cmp.op);
}

bool EvalComparison(const RelationSchema& schema, const Tuple& t, const Comparison& cmp) {
  return NeededRelaxation(schema, t, cmp) <= cmp.slack;
}

bool EvalPredicate(const RelationSchema& schema, const Tuple& t, const Predicate& pred) {
  for (const auto& cmp : pred) {
    if (!EvalComparison(schema, t, cmp)) return false;
  }
  return true;
}

std::string QueryNode::ToString() const {
  switch (kind_) {
    case Kind::kRelation:
      return StrCat(relation_, " as ", alias_);
    case Kind::kSelect: {
      std::vector<std::string> parts;
      for (const auto& c : predicate_) parts.push_back(c.ToString());
      return StrCat("sigma[", Join(parts, " and "), "](", left_->ToString(), ")");
    }
    case Kind::kProject:
      return StrCat(distinct_ ? "pi[" : "pi_bag[", Join(project_attrs_, ", "), "](",
                    left_->ToString(), ")");
    case Kind::kProduct:
      return StrCat("(", left_->ToString(), ") x (", right_->ToString(), ")");
    case Kind::kUnion:
      return StrCat("(", left_->ToString(), ") union (", right_->ToString(), ")");
    case Kind::kDifference:
      return StrCat("(", left_->ToString(), ") minus (", right_->ToString(), ")");
    case Kind::kGroupBy:
      return StrCat("gpBy[", Join(group_attrs_, ", "), "; ", AggFuncToString(agg_), "(",
                    agg_attr_, ")](", left_->ToString(), ")");
  }
  return "?";
}

Result<QueryPtr> QueryNode::Relation(const DatabaseSchema& db_schema,
                                     const std::string& relation, const std::string& alias) {
  BEAS_ASSIGN_OR_RETURN(const RelationSchema* base, db_schema.FindRelation(relation));
  if (alias.empty()) return Status::InvalidArgument("relation alias must be non-empty");
  std::vector<AttributeDef> attrs;
  attrs.reserve(base->arity());
  for (const auto& a : base->attributes()) {
    attrs.emplace_back(StrCat(alias, ".", a.name), a.type, a.distance);
  }
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kRelation;
  node->relation_ = relation;
  node->alias_ = alias;
  node->output_schema_ = RelationSchema(StrCat(relation, "_", alias), std::move(attrs));
  return QueryPtr(node);
}

Result<QueryPtr> QueryNode::Select(QueryPtr child, Predicate pred) {
  if (!child) return Status::InvalidArgument("Select child is null");
  for (const auto& cmp : pred) {
    BEAS_RETURN_IF_ERROR(ValidateComparison(child->output_schema(), cmp));
  }
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kSelect;
  node->left_ = std::move(child);
  node->predicate_ = std::move(pred);
  node->output_schema_ = node->left_->output_schema();
  return QueryPtr(node);
}

Result<QueryPtr> QueryNode::Project(QueryPtr child, std::vector<std::string> attrs,
                                    bool distinct, std::vector<std::string> out_names) {
  if (!child) return Status::InvalidArgument("Project child is null");
  if (attrs.empty()) return Status::InvalidArgument("Project needs at least one attribute");
  if (!out_names.empty() && out_names.size() != attrs.size()) {
    return Status::InvalidArgument("Project out_names must match attrs length");
  }
  std::vector<AttributeDef> out_attrs;
  const RelationSchema& in = child->output_schema();
  for (size_t i = 0; i < attrs.size(); ++i) {
    BEAS_ASSIGN_OR_RETURN(size_t idx, in.AttributeIndex(attrs[i]));
    AttributeDef def = in.attribute(idx);
    if (!out_names.empty()) def.name = out_names[i];
    out_attrs.push_back(std::move(def));
  }
  std::set<std::string> names;
  for (const auto& a : out_attrs) {
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument(StrCat("duplicate output attribute '", a.name, "'"));
    }
  }
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kProject;
  node->left_ = std::move(child);
  node->project_attrs_ = std::move(attrs);
  node->distinct_ = distinct;
  node->output_schema_ = RelationSchema("projection", std::move(out_attrs));
  return QueryPtr(node);
}

Result<QueryPtr> QueryNode::Product(QueryPtr left, QueryPtr right) {
  if (!left || !right) return Status::InvalidArgument("Product child is null");
  std::vector<AttributeDef> attrs = left->output_schema().attributes();
  for (const auto& a : right->output_schema().attributes()) {
    for (const auto& l : attrs) {
      if (l.name == a.name) {
        return Status::InvalidArgument(
            StrCat("Product children share attribute name '", a.name, "'"));
      }
    }
    attrs.push_back(a);
  }
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kProduct;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->output_schema_ = RelationSchema("product", std::move(attrs));
  return QueryPtr(node);
}

namespace {
Status CheckUnionCompatible(const RelationSchema& l, const RelationSchema& r) {
  if (l.arity() != r.arity()) {
    return Status::InvalidArgument("set operation children have different arities");
  }
  for (size_t i = 0; i < l.arity(); ++i) {
    if (l.attribute(i).type != r.attribute(i).type &&
        l.attribute(i).type != DataType::kNull && r.attribute(i).type != DataType::kNull) {
      // Allow int64/double mixing: values compare numerically.
      bool numeric_mix = (l.attribute(i).type == DataType::kInt64 ||
                          l.attribute(i).type == DataType::kDouble) &&
                         (r.attribute(i).type == DataType::kInt64 ||
                          r.attribute(i).type == DataType::kDouble);
      if (!numeric_mix) {
        return Status::InvalidArgument(
            StrCat("set operation type mismatch at position ", i));
      }
    }
  }
  return Status::OK();
}
}  // namespace

Result<QueryPtr> QueryNode::Union(QueryPtr left, QueryPtr right) {
  if (!left || !right) return Status::InvalidArgument("Union child is null");
  BEAS_RETURN_IF_ERROR(CheckUnionCompatible(left->output_schema(), right->output_schema()));
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kUnion;
  node->output_schema_ = left->output_schema();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return QueryPtr(node);
}

Result<QueryPtr> QueryNode::Difference(QueryPtr left, QueryPtr right) {
  if (!left || !right) return Status::InvalidArgument("Difference child is null");
  BEAS_RETURN_IF_ERROR(CheckUnionCompatible(left->output_schema(), right->output_schema()));
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kDifference;
  node->output_schema_ = left->output_schema();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return QueryPtr(node);
}

Result<QueryPtr> QueryNode::GroupBy(QueryPtr child, std::vector<std::string> group_attrs,
                                    AggFunc agg, const std::string& agg_attr,
                                    std::string agg_output_name) {
  if (!child) return Status::InvalidArgument("GroupBy child is null");
  const RelationSchema& in = child->output_schema();
  std::vector<AttributeDef> out_attrs;
  for (const auto& g : group_attrs) {
    BEAS_ASSIGN_OR_RETURN(size_t idx, in.AttributeIndex(g));
    out_attrs.push_back(in.attribute(idx));
  }
  BEAS_ASSIGN_OR_RETURN(size_t vidx, in.AttributeIndex(agg_attr));
  const AttributeDef& vdef = in.attribute(vidx);
  if (agg != AggFunc::kCount && vdef.type == DataType::kString) {
    if (agg != AggFunc::kMin && agg != AggFunc::kMax) {
      return Status::InvalidArgument(
          StrCat(AggFuncToString(agg), " requires a numeric attribute, got string '",
                 agg_attr, "'"));
    }
  }
  if (agg_output_name.empty()) {
    agg_output_name = StrCat(AggFuncToString(agg), "_", agg_attr);
  }
  AttributeDef agg_def;
  agg_def.name = agg_output_name;
  switch (agg) {
    case AggFunc::kCount:
      agg_def.type = DataType::kInt64;
      agg_def.distance = DistanceSpec::Numeric();
      break;
    case AggFunc::kAvg:
      agg_def.type = DataType::kDouble;
      agg_def.distance = DistanceSpec::Numeric(vdef.distance.kind == DistanceKind::kNumeric
                                                   ? vdef.distance.scale
                                                   : 1.0);
      break;
    case AggFunc::kSum:
      agg_def.type = vdef.type;
      agg_def.distance = DistanceSpec::Numeric(vdef.distance.kind == DistanceKind::kNumeric
                                                   ? vdef.distance.scale
                                                   : 1.0);
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      agg_def = vdef;
      agg_def.name = agg_output_name;
      break;
  }
  for (const auto& a : out_attrs) {
    if (a.name == agg_def.name) {
      return Status::InvalidArgument(
          StrCat("aggregate output name '", agg_def.name, "' collides with group attr"));
    }
  }
  out_attrs.push_back(std::move(agg_def));
  auto node = std::shared_ptr<QueryNode>(new QueryNode());
  node->kind_ = Kind::kGroupBy;
  node->left_ = std::move(child);
  node->group_attrs_ = std::move(group_attrs);
  node->agg_ = agg;
  node->agg_attr_ = agg_attr;
  node->output_schema_ = RelationSchema("groupby", std::move(out_attrs));
  return QueryPtr(node);
}

}  // namespace beas
