// The RA_aggr abstract syntax tree (paper Sections 2.2 and 3.2).
//
// Queries are immutable trees of QueryNode. Relation leaves carry an alias;
// every attribute of a node's output schema is a qualified name
// "alias.column" (or an explicit output name after projection/group-by).
// Nodes are *bound*: construction validates against a DatabaseSchema and
// precomputes the output RelationSchema, so downstream components (engine,
// planner, accuracy) never re-resolve names.

#ifndef BEAS_RA_AST_H_
#define BEAS_RA_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace beas {

class QueryNode;
/// Shared immutable query tree handle.
using QueryPtr = std::shared_ptr<const QueryNode>;

/// Comparison operators of selection conditions.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns "=", "<>", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

/// One side of a comparison: a (qualified) attribute or a constant.
struct Operand {
  bool is_attr = false;
  std::string attr;  ///< qualified attribute name when is_attr
  Value constant;    ///< constant when !is_attr

  static Operand Attr(std::string name) {
    Operand o;
    o.is_attr = true;
    o.attr = std::move(name);
    return o;
  }
  static Operand Const(Value v) {
    Operand o;
    o.constant = std::move(v);
    return o;
  }
  std::string ToString() const;
};

/// \brief An atomic selection condition `lhs op rhs`, possibly relaxed.
///
/// `slack` implements the paper's query relaxation (Section 3): a tuple
/// passes the comparison iff its *needed relaxation* is <= slack. Needed
/// relaxation is measured in attribute-distance units: dis_A(a, c) for
/// A = c, dis_A(a, b)/2 for A = B (both sides relax by r, Section 3.1),
/// and the one-sided overshoot for inequalities. slack == 0 is the exact
/// semantics.
struct Comparison {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;
  double slack = 0.0;

  std::string ToString() const;
};

/// A conjunction of comparisons (the paper's selection conditions).
using Predicate = std::vector<Comparison>;

/// Aggregate functions of RA_aggr (paper Section 3.2).
enum class AggFunc { kMin, kMax, kSum, kCount, kAvg };

/// Returns "min" / "max" / "sum" / "count" / "avg".
const char* AggFuncToString(AggFunc f);

/// \brief One node of an RA_aggr query tree.
class QueryNode {
 public:
  enum class Kind {
    kRelation,    ///< base relation leaf with an alias
    kSelect,      ///< sigma_C(child)
    kProject,     ///< pi_Y(child), optionally deduplicating (set semantics)
    kProduct,     ///< left x right
    kUnion,       ///< left U right (set semantics)
    kDifference,  ///< left - right (set semantics)
    kGroupBy,     ///< gpBy(child, X, agg(V)) (paper Section 3.2)
  };

  Kind kind() const { return kind_; }
  const QueryPtr& left() const { return left_; }
  const QueryPtr& right() const { return right_; }
  const QueryPtr& child() const { return left_; }

  /// Base relation name (kRelation).
  const std::string& relation() const { return relation_; }
  /// Alias of the base relation (kRelation).
  const std::string& alias() const { return alias_; }
  /// Selection predicate (kSelect).
  const Predicate& predicate() const { return predicate_; }
  /// Projected qualified attribute names (kProject).
  const std::vector<std::string>& project_attrs() const { return project_attrs_; }
  /// True if the projection deduplicates (RA set semantics).
  bool distinct() const { return distinct_; }
  /// Grouping attributes (kGroupBy), qualified names in the child schema.
  const std::vector<std::string>& group_attrs() const { return group_attrs_; }
  /// Aggregate function (kGroupBy).
  AggFunc agg() const { return agg_; }
  /// Aggregated attribute V (kGroupBy), qualified name in the child schema.
  const std::string& agg_attr() const { return agg_attr_; }

  /// The bound output schema of this node.
  const RelationSchema& output_schema() const { return output_schema_; }

  /// Algebra rendering, e.g. "pi[a.x](sigma[a.x = 3](R as a))".
  std::string ToString() const;

  // --- Factory functions (the only way to build nodes). ---

  /// Base relation \p relation aliased \p alias; output attributes are
  /// "alias.column" with types and distances from \p db_schema.
  static Result<QueryPtr> Relation(const DatabaseSchema& db_schema,
                                   const std::string& relation, const std::string& alias);

  /// sigma_pred(child); all operand attributes must exist in the child
  /// schema, attribute/constant types must be comparable.
  static Result<QueryPtr> Select(QueryPtr child, Predicate pred);

  /// pi_attrs(child); \p out_names optionally renames the output columns
  /// (same length as attrs), empty keeps qualified names.
  static Result<QueryPtr> Project(QueryPtr child, std::vector<std::string> attrs,
                                  bool distinct, std::vector<std::string> out_names = {});

  /// left x right; output attribute names must be disjoint.
  static Result<QueryPtr> Product(QueryPtr left, QueryPtr right);

  /// left U right; schemas must match positionally (names from left).
  static Result<QueryPtr> Union(QueryPtr left, QueryPtr right);

  /// left - right; schemas must match positionally (names from left).
  static Result<QueryPtr> Difference(QueryPtr left, QueryPtr right);

  /// gpBy(child, group_attrs, agg(agg_attr)); the aggregate output column
  /// is named \p agg_output_name (defaults to "agg_attr" prefixed by the
  /// function name). count accepts any attribute; other aggregates require
  /// a numeric one.
  static Result<QueryPtr> GroupBy(QueryPtr child, std::vector<std::string> group_attrs,
                                  AggFunc agg, const std::string& agg_attr,
                                  std::string agg_output_name = "");

 private:
  QueryNode() = default;

  Kind kind_ = Kind::kRelation;
  QueryPtr left_;
  QueryPtr right_;
  std::string relation_;
  std::string alias_;
  Predicate predicate_;
  std::vector<std::string> project_attrs_;
  bool distinct_ = true;
  std::vector<std::string> group_attrs_;
  AggFunc agg_ = AggFunc::kCount;
  std::string agg_attr_;
  RelationSchema output_schema_;
};

/// Needed relaxation (in distance units) for tuple \p t of \p schema to
/// satisfy \p cmp: 0 when exactly satisfied, +inf when no finite relaxation
/// helps (trivial-metric mismatch, failed <>). See Comparison::slack.
double NeededRelaxation(const RelationSchema& schema, const Tuple& t, const Comparison& cmp);

/// NeededRelaxation with the operands already resolved: \p a is the lhs
/// attribute's value, \p b the rhs value (attribute or constant), \p
/// attr_attr whether the rhs is an attribute (both sides relax, Section
/// 3.1), and \p spec the lhs attribute's distance. The vectorized engine
/// paths resolve operands once per batch and call this per row, so scalar
/// and batched evaluation share one semantics (docs/ARCHITECTURE.md).
double NeededRelaxationResolved(const DistanceSpec& spec, const Value& a, const Value& b,
                                bool attr_attr, CompareOp op);

/// True iff NeededRelaxation(t) <= cmp.slack (exact evaluation at slack 0).
bool EvalComparison(const RelationSchema& schema, const Tuple& t, const Comparison& cmp);

/// True iff every comparison in \p pred passes.
bool EvalPredicate(const RelationSchema& schema, const Tuple& t, const Predicate& pred);

}  // namespace beas

#endif  // BEAS_RA_AST_H_
