// A SQL parser for the fragment BEAS answers (paper Sections 1-3):
//
//   query   := core ( (UNION | EXCEPT) core )*          -- left associative
//   core    := SELECT [DISTINCT] items FROM tables [WHERE conj] [GROUP BY attrs]
//   items   := item (',' item)*
//   item    := attr [AS name] | AGG '(' attr ')' [AS name]
//   tables  := rel [AS] alias (',' rel [AS] alias)*
//   conj    := cmp (AND cmp)*
//   cmp     := operand op operand        op in { = <> < <= > >= }
//   operand := attr | number | 'string'
//   attr    := alias '.' column | column  (unqualified must be unambiguous)
//
// A core with aggregates must have exactly one aggregate item and all other
// items listed in GROUP BY, matching the RA_aggr form gpBy(Q', X, agg(V)).

#ifndef BEAS_RA_PARSER_H_
#define BEAS_RA_PARSER_H_

#include <string>

#include "ra/ast.h"

namespace beas {

/// Parses \p sql against \p db_schema into a bound RA_aggr query tree.
Result<QueryPtr> ParseSql(const DatabaseSchema& db_schema, const std::string& sql);

}  // namespace beas

#endif  // BEAS_RA_PARSER_H_
