// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef BEAS_COMMON_RESULT_H_
#define BEAS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace beas {

/// \brief Holds either a value of type T or an error Status.
///
/// Use ValueOrDie()/operator* after checking ok(), or MoveValueUnsafe() to
/// take ownership. BEAS_ASSIGN_OR_RETURN unwraps a Result inside functions
/// that themselves return Status or Result.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a Result holding an error status. \p status must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Returns the held value (mutable); must only be called when ok().
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Moves the held value out; must only be called when ok().
  T MoveValueUnsafe() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

#define BEAS_CONCAT_IMPL(x, y) x##y
#define BEAS_CONCAT(x, y) BEAS_CONCAT_IMPL(x, y)

/// Evaluates \p expr (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise assigns the value to \p lhs.
#define BEAS_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto BEAS_CONCAT(_result_, __LINE__) = (expr);                      \
  if (!BEAS_CONCAT(_result_, __LINE__).ok())                          \
    return BEAS_CONCAT(_result_, __LINE__).status();                  \
  lhs = std::move(BEAS_CONCAT(_result_, __LINE__)).MoveValueUnsafe()

}  // namespace beas

#endif  // BEAS_COMMON_RESULT_H_
