// A small fixed-size thread pool for CPU-bound fan-out work (parallel
// atom fetching in the executor). Tasks are plain std::function<void()>
// jobs drained FIFO by the worker threads; completion is coordinated by
// the submitter (continuation tasks or an external latch), never by
// blocking a pool thread on another task — the executor's scheduler is
// continuation-passing precisely so that a 1-thread pool cannot
// deadlock.

#ifndef BEAS_COMMON_THREAD_POOL_H_
#define BEAS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace beas {

/// \brief A fixed pool of worker threads draining a FIFO task queue.
///
/// Submit() never blocks (beyond the queue mutex) and tasks must not
/// throw: work reports failures through captured state (Status slots),
/// matching the codebase's no-exceptions error model. The destructor
/// drains the queue: every task submitted before destruction runs to
/// completion before the workers join.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for execution on some worker thread.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace beas

#endif  // BEAS_COMMON_THREAD_POOL_H_
