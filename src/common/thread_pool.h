// A small fixed-size thread pool for CPU-bound fan-out work (parallel
// atom fetching and morsel-driven evaluation in the executor). Tasks are
// plain std::function<void()> jobs drained FIFO by the worker threads;
// completion is coordinated by the submitter (continuation tasks or an
// external latch), never by blocking a pool thread on another task — the
// executor's scheduler is continuation-passing precisely so that a
// 1-thread pool cannot deadlock. As a second line of defense, Submit
// carries a nested-parallelism guard: a task that submits onto its own
// pool while every worker is busy runs the new task inline in the caller
// instead of enqueueing it, so even a blocking wait for nested work
// cannot wedge a saturated pool.

#ifndef BEAS_COMMON_THREAD_POOL_H_
#define BEAS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace beas {

/// \brief A fixed pool of worker threads draining a FIFO task queue.
///
/// Submit() never blocks on queue space and tasks must not throw: work
/// reports failures through captured state (Status slots), matching the
/// codebase's no-exceptions error model. The destructor drains the
/// queue: every task submitted before destruction runs to completion
/// before the workers join.
///
/// Nested-parallelism guard: when Submit is called *from one of this
/// pool's own workers* and no other worker is idle (the pool is
/// saturated), the task runs inline in the calling worker instead of
/// being enqueued. Without the guard, a worker that enqueues a subtask
/// and then waits for it deadlocks on a saturated pool — every worker
/// waits for queued work only an occupied worker could run. Submitting
/// to a *different* pool, or from a non-worker thread, always enqueues.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for execution on some worker thread — or runs it
  /// inline when called from a worker of this pool while the pool is
  /// saturated (see the class comment's nested-parallelism guard).
  /// Callers that submit while holding a lock the task may need must
  /// therefore release it first, exactly as if the task ran concurrently.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  size_t busy_ = 0;  ///< workers currently executing a task (guarded by mu_)
  std::vector<std::thread> workers_;

  /// The pool whose WorkerLoop the current thread is running, if any
  /// (nullptr on non-worker threads). Lets Submit detect self-submission
  /// for the nested-parallelism guard.
  static thread_local const ThreadPool* current_pool_;
};

}  // namespace beas

#endif  // BEAS_COMMON_THREAD_POOL_H_
