#include "common/thread_pool.h"

#include <utility>

namespace beas {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace beas
