#include "common/thread_pool.h"

#include <utility>

namespace beas {

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Nested-parallelism guard: a worker of this pool submitting while
    // every worker (including itself) is busy would enqueue work that
    // can only start after the submitter finishes — a deadlock if the
    // submitter then waits for it. Run the task inline instead; an idle
    // worker, or a foreign thread, keeps the normal enqueue path.
    if (current_pool_ != this || busy_ < workers_.size()) {
      queue_.push_back(std::move(task));
      // Notify before mu_ drops: a caller may destroy the pool as soon
      // as the submitted task's effects are observable, and a notify
      // after the unlock could then touch a destroyed cv_.
      cv_.notify_one();
      return;
    }
  }
  task();
}

void ThreadPool::WorkerLoop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
  }
}

}  // namespace beas
