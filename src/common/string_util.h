// Small string helpers (StrCat / joins / numeric formatting).

#ifndef BEAS_COMMON_STRING_UTIL_H_
#define BEAS_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace beas {

namespace internal {
inline void StrCatImpl(std::ostringstream&) {}

template <typename T, typename... Rest>
void StrCatImpl(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  StrCatImpl(os, rest...);
}
}  // namespace internal

/// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatImpl(os, args...);
  return os.str();
}

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Formats a double compactly (up to \p precision significant decimals,
/// trailing zeros trimmed).
std::string FormatDouble(double v, int precision = 6);

/// Lower-cases ASCII letters in \p s.
std::string ToLower(std::string s);

/// Escapes \p s for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; the result carries no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace beas

#endif  // BEAS_COMMON_STRING_UTIL_H_
