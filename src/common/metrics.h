// Process-wide metrics: counters, gauges, and log-bucketed latency
// histograms behind a named registry with JSON and Prometheus-style text
// exposition. Recording is lock-free (striped relaxed atomics) so hot
// paths — per-query latency, per-request wait times — can record
// unconditionally; reads merge the stripes into a deterministic
// snapshot. `MetricsRegistry::Global()` is the process-wide default;
// subsystems (QueryService, NetServer) accept an injected registry so
// tests and multi-instance processes stay isolated. See
// docs/ARCHITECTURE.md "Observability".

#ifndef BEAS_COMMON_METRICS_H_
#define BEAS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace beas {

/// \brief A monotonically increasing counter.
///
/// Increment is a relaxed atomic add on a per-thread stripe; value()
/// sums the stripes. Safe for any number of concurrent writers.
class Counter {
 public:
  Counter();

  /// Adds \p delta (default 1). Wait-free.
  void Increment(uint64_t delta = 1);

  /// Current total across all stripes.
  uint64_t value() const;

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::vector<Stripe> stripes_;
};

/// \brief A gauge: an instantaneous signed value (queue depth, resident
/// bytes). Set/Add are single relaxed atomic ops.
class Gauge {
 public:
  /// Replaces the value.
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

  /// Adjusts the value by \p delta (may be negative).
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }

  /// Current value.
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief A log-bucketed histogram of non-negative integer samples
/// (microsecond latencies, byte sizes).
///
/// Buckets: values 0..7 are exact; beyond that every power-of-two octave
/// splits into 8 linear sub-buckets, so a percentile read returns the
/// bucket's inclusive upper bound and overstates the true order
/// statistic by at most 12.5% (reported value is in
/// [true, 1.125 * true]). Recording is a relaxed atomic increment on a
/// per-thread stripe — no locks on the hot path — and merged reads are
/// deterministic for a fixed sample multiset regardless of which
/// threads recorded which samples.
class Histogram {
 public:
  /// Buckets 0..7 are exact; octaves 3..63 contribute 8 sub-buckets
  /// each: 8 + 61 * 8 buckets total.
  static constexpr size_t kNumBuckets = 8 + 61 * 8;

  Histogram();

  /// Records one sample. Wait-free.
  void Record(uint64_t value);

  /// Number of samples recorded.
  uint64_t count() const;

  /// Sum of all recorded samples (exact, not bucketed).
  uint64_t sum() const;

  /// The ceil nearest-rank percentile (\p p in [0, 100]) as the matched
  /// bucket's inclusive upper bound; 0 when empty. Matches
  /// NearestRankPercentile semantics up to the <= 12.5% bucket
  /// rounding (exactly for samples < 8).
  double Percentile(double p) const;

  /// Adds every bucket of \p other into this histogram. The result is
  /// identical to having recorded both sample multisets here.
  void MergeFrom(const Histogram& other);

  /// Merged per-bucket counts (index -> count), for tests and merges.
  std::vector<uint64_t> bucket_counts() const;

  /// The inclusive upper bound of bucket \p index.
  static uint64_t BucketUpperBound(size_t index);

  /// The bucket index a sample value falls into.
  static size_t BucketIndex(uint64_t value);

 private:
  static constexpr size_t kStripes = 8;
  struct Stripe {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    Stripe() : buckets(kNumBuckets) {}
  };
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// \brief A named registry of counters, gauges, and histograms.
///
/// Get* calls get-or-create under a mutex and return pointers that stay
/// valid for the registry's lifetime, so callers resolve a metric once
/// and record lock-free thereafter. Exposition walks the (sorted) name
/// maps: ToJson() for programmatic consumers, ToText() for
/// Prometheus-style scrapes. Global() is the process-wide instance;
/// subsystems default to their own instance unless one is injected, so
/// two services in one process never mix their latency distributions.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Get-or-create the named metric. The pointer stays valid as long as
  /// the registry does. A name resolves to one kind only; reusing it
  /// for another kind returns a distinct metric of that kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p90, p95, p99, max}}}.
  /// Keys are sorted, so equal registry contents yield equal strings.
  std::string ToJson() const;

  /// Prometheus-style text: `# TYPE` lines, `name value` samples, and
  /// `name{quantile="0.5"}` / `_sum` / `_count` lines per histogram.
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace beas

#endif  // BEAS_COMMON_METRICS_H_
