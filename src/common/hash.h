// Non-cryptographic hashing helpers (FNV-1a) for structural keys such as
// query fingerprints. Stable across platforms and runs (no ASLR or
// std::hash dependence): the plan cache keys its entries on these values.

#ifndef BEAS_COMMON_HASH_H_
#define BEAS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace beas {

/// FNV-1a offset basis / prime (64-bit variant).
inline constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// Folds \p data into the running FNV-1a state \p h byte by byte.
inline uint64_t Fnv1a64(std::string_view data, uint64_t h = kFnv1a64Seed) {
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace beas

#endif  // BEAS_COMMON_HASH_H_
