#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace beas {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') last--;
    s.erase(last + 1);
  }
  return s;
}

std::string ToLower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace beas
